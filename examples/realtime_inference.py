#!/usr/bin/env python3
"""Near-real-time per-timestep classification (paper §1).

Collects training drives through the actual streaming middleware (so the
models see the controller's interpolated + smoothed distribution, exactly
as the paper's deployment does), trains the ensemble, then replays a
fresh held-out drive and classifies every 250 ms grid instant — frame
plus the trailing 5-second IMU window — printing a live-style timeline.

Run:  python examples/realtime_inference.py  [--epochs 8] [--drives 4]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DarNetEnsemble
from repro.core import (
    CnnConfig,
    DarNetSystem,
    DriveScript,
    RnnConfig,
    dataset_from_drives,
    run_collection_drive,
)
from repro.datasets import DrivingBehavior


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--drives", type=int, default=4,
                        help="training drives collected via the pipeline")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    script = DriveScript.standard(segment_seconds=10.0, gap_seconds=2.0)
    print(f"Collecting {args.drives} training drives through the streaming "
          f"stack\n({script.duration:.0f} s of simulated driving each)...")
    sessions = [
        run_collection_drive(script, driver_id=d,
                             rng=np.random.default_rng(args.seed + d))
        for d in range(args.drives)
    ]
    train = dataset_from_drives(sessions)
    print(f"  {len(train)} paired windows collected")

    print("Training the CNN+RNN ensemble on the collected data...")
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=args.epochs),
        rnn_config=RnnConfig(epochs=3 * args.epochs), rng=rng)
    ensemble.fit(train)

    print("Replaying a fresh held-out drive...")
    replay_script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TEXTING,
         DrivingBehavior.TALKING, DrivingBehavior.EATING_DRINKING],
        segment_seconds=10.0, gap_seconds=2.0)
    drive = run_collection_drive(replay_script, driver_id=90,
                                 rng=np.random.default_rng(args.seed + 99))

    system = DarNetSystem(ensemble)
    verdicts = system.classify_session(drive)
    print(f"\n{len(verdicts)} verdicts at 4 Hz "
          f"(each uses the trailing 5 s window):\n")
    print(f"{'time':>7}  {'predicted':<17} {'truth':<17} {'conf':>6}")
    for verdict in verdicts[::4]:  # print at 1 Hz for readability
        confidence = float(verdict.probabilities.max())
        if verdict.true_label is not None:
            truth = verdict.true_label.display_name
            marker = (" ok" if verdict.predicted == verdict.true_label
                      else " X")
        else:
            truth = "-"
            marker = ""
        print(f"{verdict.timestamp:6.1f}s  "
              f"{verdict.predicted.display_name:<17} {truth:<17} "
              f"{confidence * 100:5.1f}%{marker}")
    scored = [v for v in verdicts if v.true_label is not None]
    if scored:
        correct = sum(v.predicted == v.true_label for v in scored)
        print(f"\nTimeline accuracy on labelled instants: "
              f"{correct / len(scored) * 100:.1f}%  "
              f"({correct}/{len(scored)})")


if __name__ == "__main__":
    main()
