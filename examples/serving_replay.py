#!/usr/bin/env python3
"""Multi-driver serving: concurrent drives through the inference server.

Trains a small ensemble, registers it in the serving model registry, and
replays several concurrent scripted drives through the micro-batched
:class:`~repro.serving.InferenceServer` — killing one driver's camera
stream halfway through to show the degraded-verdict path: that driver
keeps receiving (flagged, lower-confidence) verdicts from the IMU-only
posterior instead of going silent.

Run:  python examples/serving_replay.py  [--drivers 6] [--duration 15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
from repro.datasets import generate_driving_dataset
from repro.serving import replay_concurrent_drives


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--drivers", type=int, default=6)
    parser.add_argument("--duration", type=float, default=15.0)
    parser.add_argument("--samples", type=int, default=150,
                        help="training samples for the throwaway model")
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    print(f"Training a small CNN+RNN ensemble "
          f"({args.samples} samples, {args.epochs} epochs)...")
    dataset = generate_driving_dataset(args.samples, rng=rng)
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=args.epochs),
        rnn_config=RnnConfig(epochs=2 * args.epochs), rng=rng)
    ensemble.fit(dataset)

    print(f"Replaying {args.drivers} concurrent drives "
          f"({args.duration:.0f} s each); one camera dies halfway...\n")
    report = replay_concurrent_drives(
        ensemble, drivers=args.drivers, duration=args.duration,
        kill_camera=1, seed=args.seed)
    print(report.format_report())

    total = sum(report.verdicts_per_session.values())
    expected = args.drivers * report.instants
    print(f"\nVerdict coverage: {total}/{expected} "
          f"(every driver, every grid instant)")


if __name__ == "__main__":
    main()
