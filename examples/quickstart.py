#!/usr/bin/env python3
"""Quickstart: train a DarNet ensemble and classify distracted driving.

Generates a synthetic paired dataset (frames + IMU windows), trains the
CNN+RNN ensemble with the Bayesian-network combiner, and reports Top-1
accuracy against the frame-only baseline — a miniature Table 2.

Run:  python examples/quickstart.py  [--samples 600] [--epochs 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import DarNetEnsemble, generate_driving_dataset
from repro.core import CnnConfig, RnnConfig
from repro.datasets import behavior_names
from repro.nn.metrics import format_confusion


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=600,
                        help="paired samples to synthesize")
    parser.add_argument("--epochs", type=int, default=8,
                        help="CNN fine-tuning epochs")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    print(f"Generating {args.samples} paired (frame, IMU-window) samples...")
    dataset = generate_driving_dataset(args.samples, rng=rng)
    train, evaluation = dataset.train_eval_split(rng=rng)
    print(f"  train={len(train)}  eval={len(evaluation)}")

    print("Training the frame CNN (MicroInceptionV3)...")
    darnet = DarNetEnsemble(
        "cnn+rnn",
        cnn_config=CnnConfig(epochs=args.epochs),
        rnn_config=RnnConfig(epochs=max(10, 2 * args.epochs)),
        rng=rng,
    )
    darnet.fit(train, verbose=True)

    print("Evaluating...")
    result = darnet.evaluate(evaluation)
    cnn_only = darnet.cnn.evaluate(evaluation.images, evaluation.labels)
    print(f"\nTop-1 (CNN+RNN ensemble): {result.top1 * 100:.2f}%")
    print(f"Top-1 (CNN frames only):  {cnn_only * 100:.2f}%")
    print(f"Top-1 (RNN on IMU only):  {result.imu_top1 * 100:.2f}%")
    print("\nEnsemble confusion matrix (rows = truth):")
    print(format_confusion(result.confusion, behavior_names()))


if __name__ == "__main__":
    main()
