#!/usr/bin/env python3
"""Fleet monitoring: alerts and per-driver risk reports (paper §1).

Detecting distraction matters for "providing variable insurance rates,
and providing real-time alerts to drivers and fleet managers".  This
example trains an ensemble once, saves it with the model store, reloads
it (as a fleet server would), replays one drive per fleet driver, and
produces debounced alerts plus a ranked risk report.

Run:  python examples/fleet_monitoring.py  [--drivers 3]
"""

from __future__ import annotations

import argparse
import tempfile

import numpy as np

from repro import DarNetEnsemble
from repro.core import (
    AlertPolicy,
    CnnConfig,
    DarNetSystem,
    DriveScript,
    FleetMonitor,
    RnnConfig,
    dataset_from_drives,
    load_ensemble,
    run_collection_drive,
    save_ensemble,
)
from repro.datasets import DrivingBehavior


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--drivers", type=int, default=3)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    print("Collecting training drives through the pipeline...")
    training_script = DriveScript.standard(segment_seconds=10.0,
                                           gap_seconds=2.0)
    sessions = [
        run_collection_drive(training_script, driver_id=50 + d,
                             rng=np.random.default_rng(args.seed + 50 + d))
        for d in range(3)
    ]
    train = dataset_from_drives(sessions)
    print(f"Training the ensemble on {len(train)} collected windows...")
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=args.epochs),
        rnn_config=RnnConfig(epochs=3 * args.epochs), rng=rng)
    ensemble.fit(train)

    with tempfile.TemporaryDirectory() as store:
        print(f"Saving the trained system to {store} and reloading "
              "(the fleet server's copy)...")
        save_ensemble(ensemble, store)
        server_model = load_ensemble(store)

    system = DarNetSystem(server_model)
    monitor = FleetMonitor(AlertPolicy(consecutive_to_raise=4,
                                       consecutive_to_clear=8,
                                       min_confidence=0.3))

    # Each fleet driver gets a different (scripted) driving style.
    styles = [
        [DrivingBehavior.NORMAL, DrivingBehavior.NORMAL,
         DrivingBehavior.TALKING],                       # mostly safe
        [DrivingBehavior.TEXTING, DrivingBehavior.NORMAL,
         DrivingBehavior.TEXTING],                       # phone-heavy
        [DrivingBehavior.EATING_DRINKING, DrivingBehavior.REACHING,
         DrivingBehavior.NORMAL],                        # fidgety
    ]
    for driver in range(args.drivers):
        style = styles[driver % len(styles)]
        script = DriveScript.standard(style, segment_seconds=8.0,
                                      gap_seconds=1.0)
        drive = run_collection_drive(
            script, driver_id=driver,
            rng=np.random.default_rng(args.seed + 10 + driver))
        verdicts = system.classify_session(drive)
        report = monitor.ingest_session(driver, verdicts)
        print(f"\nDriver {driver}: {len(verdicts)} verdicts, "
              f"{report.alerts} alert(s), "
              f"distraction rate {report.distraction_rate * 100:.0f}%")
        for behavior, count in sorted(report.by_behavior.items()):
            print(f"    {behavior:<17} {count:4d} verdicts")

    print("\nFleet ranking (worst first):")
    print(f"  {'driver':>6} {'rate':>6} {'alerts':>7} {'alert s':>8}")
    for report in monitor.ranking():
        print(f"  {report.driver_id:>6} "
              f"{report.distraction_rate * 100:5.0f}% "
              f"{report.alerts:>7} {report.alert_seconds:8.1f}")


if __name__ == "__main__":
    main()
