#!/usr/bin/env python3
"""The data-collection framework end to end.

Runs a scripted collection drive (paper §5.1: the passenger instructs the
driver to perform 15-second distractions) through the full middleware
stack — collection agents with drifting clocks, lossy Bluetooth-style
channels, the master–slave clock-sync protocol, and the centralized
controller's interpolation/smoothing — then inspects the aligned output
and the time-series database.

Run:  python examples/streaming_collection.py  [--loss 0.05]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import DriveScript, run_collection_drive
from repro.datasets import DrivingBehavior
from repro.streaming import SessionConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loss", type=float, default=0.0,
                        help="channel drop probability")
    parser.add_argument("--segment-seconds", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TALKING,
         DrivingBehavior.TEXTING, DrivingBehavior.REACHING],
        segment_seconds=args.segment_seconds)
    print(f"Drive script: {len(script.segments)} segments, "
          f"{script.duration:.0f} s total")
    for start, end, behavior in script.segments:
        print(f"  {start:6.1f}–{end:6.1f} s : {behavior.display_name}")

    config = SessionConfig(channel_drop=args.loss)
    result = run_collection_drive(script, config=config,
                                  rng=np.random.default_rng(args.seed))

    controller = result.controller
    print("\nController ingest:")
    print(f"  IMU readings: {controller.readings_received}")
    print(f"  camera frames: {controller.frames_received}")
    print(f"  aligned 4 Hz grid steps: {result.grid.shape[0]}")
    print(f"  aligned IMU matrix: {result.imu.shape} "
          f"(accelerometer+gyroscope+gravity+rotation)")

    print("\nClock synchronization (5 s master–slave protocol):")
    for agent_id, error in controller.sync_report().items():
        print(f"  {agent_id:<8} worst residual error: {error * 1e3:6.2f} ms")

    print("\nChannel statistics:")
    for agent_id in controller.agent_ids:
        stats = controller._agents[agent_id].uplink.stats
        print(f"  {agent_id:<8} sent={stats.sent:4d} "
              f"delivered={stats.delivered:4d} dropped={stats.dropped:3d} "
              f"mean latency={stats.mean_latency() * 1e3:5.2f} ms")

    print("\nTime-series database:")
    for series in result.tsdb.series_names():
        print(f"  {series:<22} {result.tsdb.count(series):5d} points")
    # A statsd-style bucketed aggregate over the accelerometer stream.
    starts, means = result.tsdb.aggregate("phone/accelerometer", bucket=5.0,
                                          statistic="mean")
    print("\nAccelerometer 5 s bucket means (x, y, z):")
    for start, mean in zip(starts, means):
        print(f"  t={start:6.1f}s  "
              + "  ".join(f"{v:+6.2f}" for v in mean))

    labelled = result.imu_labels[result.imu_labels >= 0]
    print(f"\nGround-truth labels on the grid: "
          f"{dict(zip(*np.unique(labelled, return_counts=True)))}")


if __name__ == "__main__":
    main()
