#!/usr/bin/env python3
"""The privacy/accuracy trade-off (paper §4.3 / Table 3).

Trains the 18-class teacher CNN on the alternative dataset, distills one
dCNN per privacy level with the paper's unsupervised L2 methodology, and
prints accuracy vs. bandwidth-saving per level, plus the Figure-4 ASCII
distortion strip.

Run:  python examples/privacy_tradeoff.py  [--samples-per-class 20]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import (
    CnnConfig,
    DistillationConfig,
    DriverFrameCNN,
    PrivacyLevel,
    train_privacy_suite,
)
from repro.datasets import generate_alternative_dataset
from repro.experiments import ascii_frame, run_fig4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples-per-class", type=int, default=20)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--distill-epochs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    print("Generating the 18-class alternative dataset (10 drivers)...")
    dataset = generate_alternative_dataset(args.samples_per_class, rng=rng)
    train, evaluation = dataset.train_eval_split(rng=rng)
    print(f"  train={len(train)}  eval={len(evaluation)}")

    print("Training the teacher CNN on clean frames...")
    teacher = DriverFrameCNN(CnnConfig(num_classes=18, epochs=args.epochs),
                             rng=rng)
    teacher.fit(train.images, train.labels, verbose=True)
    teacher_top1 = teacher.evaluate(evaluation.images, evaluation.labels)

    print("\nDistilling one dCNN per privacy level (unsupervised: the "
          "student\nmimics the teacher's outputs on distorted frames, "
          "L2 loss, SGD)...")
    suite = train_privacy_suite(
        teacher, train.images,
        config=DistillationConfig(epochs=args.distill_epochs), rng=rng)

    print(f"\n{'model':<8} {'input px':>9} {'data saved':>11} {'Top-1':>8}")
    print(f"{'CNN':<8} {'64x64':>9} {'1.0x':>11} {teacher_top1 * 100:7.2f}%")
    for level in PrivacyLevel:
        student = suite[level]
        top1 = student.evaluate(evaluation.images, evaluation.labels)
        edge = level.target_edge(64)
        print(f"{level.model_name:<8} {f'{edge}x{edge}':>9} "
              f"{level.data_reduction(64):>10.1f}x {top1 * 100:7.2f}%")

    print("\nWhat the server actually sees (Figure 4):")
    strip = run_fig4(seed=args.seed)
    for name in ("full", "low", "medium", "high"):
        edge = strip.edges[name]
        print(f"\n--- {name} ({edge}x{edge} px) ---")
        print(ascii_frame(strip.frames[name]))


if __name__ == "__main__":
    main()
