"""Serving subsystem — micro-batched vs. per-request throughput.

Measures what the serving layer was built for: coalescing many concurrent
drivers' verdict requests into shared vectorized forward passes.  The
comparison replays the same concurrent scripted drives twice — once with
micro-batching (one batch per grid instant) and once with ``max_batch=1``
(every request pays its own forward pass) — and reports request
throughput plus wall-clock latency percentiles across driver counts.

Runs two ways:

* under pytest (with the other benchmarks): writes the usual text report;
* as a script for CI's bench-smoke job::

      PYTHONPATH=src python benchmarks/bench_serving.py --quick

  which writes a JSON report and exits non-zero if batched throughput
  fails to beat unbatched.
"""

from __future__ import annotations

import argparse
import json
import os
from functools import lru_cache

import numpy as np

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: Acceptance floor: micro-batching must be at least this much faster at
#: 32 concurrent drivers.
SPEEDUP_FLOOR = 3.0


@lru_cache(maxsize=1)
def serving_ensemble():
    """A small trained ensemble shared by every serving measurement.

    Accuracy is irrelevant here — the forward-pass cost is what the
    serving benchmark exercises — so training is minimal.
    """
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
    from repro.datasets import generate_driving_dataset

    rng = np.random.default_rng(42)
    dataset = generate_driving_dataset(90, num_drivers=2, rng=rng)
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1), rng=rng)
    ensemble.fit(dataset)
    return ensemble


def _row(report) -> dict:
    return {
        "drivers": report.drivers,
        "duration_s": report.duration,
        "requests": report.requests,
        "verdicts": report.verdicts,
        "degraded_verdicts": report.degraded_verdicts,
        "throughput_rps": round(report.throughput_rps, 1),
        "wall_seconds": round(report.wall_seconds, 3),
        "latency_p50_ms": round(report.latency_p50_ms, 2),
        "latency_p95_ms": round(report.latency_p95_ms, 2),
        "latency_p99_ms": round(report.latency_p99_ms, 2),
        "mean_batch_size": round(report.mean_batch_size, 1),
        "max_batch_size": report.max_batch_size,
    }


def run_comparison(drivers: int = 32, duration: float = 5.0,
                   seed: int = 1) -> dict:
    """Batched vs. unbatched replay of the same concurrent drives."""
    from repro.serving import replay_concurrent_drives

    ensemble = serving_ensemble()
    batched = replay_concurrent_drives(
        ensemble, drivers=drivers, duration=duration,
        max_batch=drivers, seed=seed)
    unbatched = replay_concurrent_drives(
        ensemble, drivers=drivers, duration=duration,
        max_batch=1, seed=seed)
    speedup = (batched.throughput_rps / unbatched.throughput_rps
               if unbatched.throughput_rps else float("inf"))
    return {
        "drivers": drivers,
        "batched": _row(batched),
        "unbatched": _row(unbatched),
        "speedup": round(speedup, 2),
    }


def run_latency_sweep(driver_counts: tuple[int, ...] = (4, 16, 32),
                      duration: float = 5.0, seed: int = 2) -> list[dict]:
    """Micro-batched latency percentiles across driver counts."""
    from repro.serving import replay_concurrent_drives

    ensemble = serving_ensemble()
    return [
        _row(replay_concurrent_drives(ensemble, drivers=count,
                                      duration=duration, seed=seed))
        for count in driver_counts
    ]


def format_comparison(comparison: dict, sweep: list[dict]) -> str:
    """Text form of the JSON report."""
    batched, unbatched = comparison["batched"], comparison["unbatched"]
    lines = [
        f"Serving — micro-batched vs. per-request inference "
        f"({comparison['drivers']} concurrent drivers)",
        f"  {'mode':<10} {'rps':>8} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'batch':>6}",
    ]
    for name, row in (("batched", batched), ("unbatched", unbatched)):
        lines.append(
            f"  {name:<10} {row['throughput_rps']:>8.1f} "
            f"{row['latency_p50_ms']:>6.1f}ms {row['latency_p95_ms']:>6.1f}ms "
            f"{row['latency_p99_ms']:>6.1f}ms {row['mean_batch_size']:>6.1f}")
    lines.append(f"  speedup: {comparison['speedup']:.2f}x")
    lines.append("")
    lines.append(f"  latency across driver counts (batched):")
    lines.append(f"  {'drivers':>8} {'rps':>8} {'p50':>8} {'p95':>8} "
                 f"{'p99':>8}")
    for row in sweep:
        lines.append(
            f"  {row['drivers']:>8} {row['throughput_rps']:>8.1f} "
            f"{row['latency_p50_ms']:>6.1f}ms {row['latency_p95_ms']:>6.1f}ms "
            f"{row['latency_p99_ms']:>6.1f}ms")
    return "\n".join(lines)


# -- pytest entry points -----------------------------------------------------

def test_serving_batched_speedup(benchmark):
    """Micro-batching clears the 3x floor at 32 concurrent drivers."""
    from benchmarks.conftest import write_report

    comparison = benchmark.pedantic(lambda: run_comparison(32, 5.0),
                                    rounds=1, iterations=1)
    sweep = run_latency_sweep()
    write_report("serving", format_comparison(comparison, sweep))
    assert comparison["speedup"] >= SPEEDUP_FLOOR


def test_serving_latency_scales_with_batching(benchmark):
    """Batched per-request wall latency beats unbatched at 32 drivers."""
    comparison = benchmark.pedantic(lambda: run_comparison(32, 3.0, seed=7),
                                    rounds=1, iterations=1)
    assert (comparison["batched"]["latency_p50_ms"]
            < comparison["unbatched"]["latency_p50_ms"])


# -- script entry point (CI bench-smoke job) ---------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short replay (CI smoke)")
    parser.add_argument("--drivers", type=int, default=32)
    parser.add_argument("--duration", type=float, default=None,
                        help="replay seconds (default 3 quick / 10 full)")
    parser.add_argument("--out", default=os.path.join(REPORT_DIR,
                                                      "serving.json"))
    args = parser.parse_args(argv)
    duration = args.duration or (3.0 if args.quick else 10.0)
    comparison = run_comparison(args.drivers, duration)
    sweep = ([] if args.quick
             else run_latency_sweep(duration=min(duration, 5.0)))
    report = {"comparison": comparison, "latency_sweep": sweep}
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(format_comparison(
        comparison, sweep or [comparison["batched"]]))
    print(f"\n[json report written to {args.out}]")
    if comparison["speedup"] < 1.0:
        print("FAIL: batched throughput fell below unbatched")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
