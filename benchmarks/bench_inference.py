"""Inference fast path — workspace-reuse execution vs. the reference path.

Measures what PR 4 changed: single-image latency and batched throughput
for every deployable model (CNN, RNN, the three privacy dCNNs, and the
full ensemble), comparing the workspace-reuse fast path against the
reference forward (``repro.nn.reference_mode``, which runs the exact
training-style forward with backward caches).  A second section replays
concurrent drives through the serving stack with ``--workers 0``
(in-process) vs. ``--workers 4`` (persistent shared-memory workers) to
measure the parallel executor.

Runs two ways:

* under pytest (with the other benchmarks): writes the usual text report;
* as a script for CI's bench-inference-smoke job::

      PYTHONPATH=src python benchmarks/bench_inference.py --quick

  which writes ``BENCH_inference.json`` and exits non-zero if a gate
  fails.  Gates: the ensemble fast path must clear ``ENSEMBLE_FLOOR``
  (2x) at batch 32 — 1.2x in ``--quick`` smoke mode — and the 4-worker
  replay must clear ``PARALLEL_FLOOR`` (1.5x) *when the host has at
  least two cores*; on a single-core host that gate is recorded as a
  structured skip (``{"skipped": true, "reason": ..., "cpu_count": N}``)
  with the numbers still measured and written honestly.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from functools import lru_cache

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: Acceptance floors (full run / CI smoke / parallel replay).
ENSEMBLE_FLOOR = 2.0
SMOKE_FLOOR = 1.2
PARALLEL_FLOOR = 1.5
PARALLEL_WORKERS = 4

#: Max fractional throughput loss the observability layer may cost.
METRICS_OVERHEAD_LIMIT = 0.05

BATCH = 32


@lru_cache(maxsize=1)
def inference_models():
    """A small trained ensemble plus the three privacy dCNN students.

    Accuracy is irrelevant — only the forward-pass cost is measured — so
    the ensemble trains minimally and the students copy teacher weights
    without running the distillation loop.
    """
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
    from repro.core.distillation import DenoisingCNN, DistillationConfig
    from repro.core.privacy import PrivacyLevel
    from repro.datasets import generate_driving_dataset

    rng = np.random.default_rng(42)
    dataset = generate_driving_dataset(90, num_drivers=2, rng=rng)
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1), rng=rng)
    ensemble.fit(dataset)
    students = {}
    for level in PrivacyLevel:
        student = DenoisingCNN(
            ensemble.cnn, level,
            config=DistillationConfig(epochs=1), rng=rng)
        student.model.mark_fitted()  # weights are the copied teacher's
        students[level.model_name] = student
    return ensemble, students, dataset


def _best_seconds(fn, *, repeats: int = 3) -> float:
    """Best-of-N wall time after one untimed warmup call."""
    fn()
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _fast_vs_reference(fn, *, repeats: int = 3) -> tuple[float, float]:
    """(fast_seconds, reference_seconds) for one forward callable."""
    from repro.nn import reference_mode

    fast = _best_seconds(fn, repeats=repeats)
    with reference_mode():
        reference = _best_seconds(fn, repeats=repeats)
    return fast, reference


def run_model_benchmarks(*, batch: int = BATCH, repeats: int = 3) -> dict:
    """Latency + throughput rows for every deployable forward pass."""
    ensemble, students, dataset = inference_models()
    images = dataset.images[:batch]
    windows = dataset.imu[:batch]
    forwards = {
        "cnn": lambda x=images: ensemble.cnn.predict_proba(x),
        "rnn": lambda x=windows: ensemble.imu_model.predict_proba(x),
        "ensemble": lambda: ensemble.predict_degraded(images=images,
                                                      imu=windows),
    }
    for name, student in students.items():
        forwards[name] = lambda s=student: s.predict_logits(images)
    single = {
        "cnn": lambda: ensemble.cnn.predict_proba(images[:1]),
        "rnn": lambda: ensemble.imu_model.predict_proba(windows[:1]),
        "ensemble": lambda: ensemble.predict_degraded(images=images[:1],
                                                      imu=windows[:1]),
    }
    rows = {}
    for name, fn in forwards.items():
        fast, reference = _fast_vs_reference(fn, repeats=repeats)
        row = {
            "batch": batch,
            "fast_s": round(fast, 5),
            "reference_s": round(reference, 5),
            "speedup": round(reference / fast, 2),
            "throughput_ips": round(batch / fast, 1),
        }
        if name in single:
            row["latency_ms"] = round(
                1e3 * _best_seconds(single[name], repeats=repeats), 3)
        rows[name] = row
    return rows


def run_parallel_benchmark(*, drivers: int = 16, duration: float = 4.0,
                           workers: int = PARALLEL_WORKERS,
                           seed: int = 5) -> dict:
    """Serving replay throughput, in-process vs. persistent workers."""
    from repro.serving import replay_concurrent_drives

    ensemble, _, _ = inference_models()
    serial = replay_concurrent_drives(
        ensemble, drivers=drivers, duration=duration, seed=seed, workers=0)
    pooled = replay_concurrent_drives(
        ensemble, drivers=drivers, duration=duration, seed=seed,
        workers=workers)
    speedup = (pooled.throughput_rps / serial.throughput_rps
               if serial.throughput_rps else float("inf"))
    return {
        "drivers": drivers,
        "duration_s": duration,
        "workers": workers,
        "serial_rps": round(serial.throughput_rps, 1),
        "parallel_rps": round(pooled.throughput_rps, 1),
        "speedup": round(speedup, 2),
    }


def run_metrics_overhead_benchmark(*, drivers: int = 8,
                                   duration: float = 2.0,
                                   repeats: int = 4, seed: int = 7) -> dict:
    """Replay throughput with observability on vs. off.

    The PR-5 acceptance gate is that metrics + tracing cost under
    :data:`METRICS_OVERHEAD_LIMIT` of throughput.  Shared CI hosts swing
    replay throughput by ±25% run to run, so the estimator has to be
    deliberately noise-proof: the two configurations run *interleaved*
    (off, on, off, on …) so slow drift hits both equally, and each takes
    the best of ``repeats`` runs — noise on these hosts only ever slows
    a run down, so the max converges on the true capability of each
    configuration.
    """
    from repro.serving import replay_concurrent_drives

    ensemble, _, _ = inference_models()

    def rps(observability: bool) -> float:
        return replay_concurrent_drives(
            ensemble, drivers=drivers, duration=duration, seed=seed,
            workers=0, observability=observability).throughput_rps

    baseline = 0.0
    instrumented = 0.0
    for _ in range(repeats):
        baseline = max(baseline, rps(False))
        instrumented = max(instrumented, rps(True))
    overhead = 1.0 - instrumented / baseline if baseline else 0.0
    return {
        "drivers": drivers,
        "duration_s": duration,
        "baseline_rps": round(baseline, 1),
        "instrumented_rps": round(instrumented, 1),
        "overhead_fraction": round(overhead, 4),
    }


def run_all(*, quick: bool = False) -> dict:
    """The full benchmark + gate evaluation, as the JSON report dict."""
    cpu_count = os.cpu_count() or 1
    repeats = 2 if quick else 3
    models = run_model_benchmarks(repeats=repeats)
    parallel = run_parallel_benchmark(
        drivers=8 if quick else 16, duration=2.0 if quick else 4.0)
    overhead = run_metrics_overhead_benchmark(
        drivers=8 if quick else 16, duration=2.0 if quick else 4.0,
        repeats=6)
    ensemble_floor = SMOKE_FLOOR if quick else ENSEMBLE_FLOOR
    gates = {
        "ensemble_fast_path": {
            "floor": ensemble_floor,
            "value": models["ensemble"]["speedup"],
            "passed": models["ensemble"]["speedup"] >= ensemble_floor,
            "skipped": False,
        },
        "parallel_replay": {
            "floor": PARALLEL_FLOOR,
            "value": parallel["speedup"],
            # A 1-core host cannot speed anything up by adding processes;
            # gate only where the hardware makes the claim testable.
            "passed": (parallel["speedup"] >= PARALLEL_FLOOR
                       if cpu_count >= 2 else None),
            "skipped": cpu_count < 2,
            "cpu_count": cpu_count,
            "status": ("gated" if cpu_count >= 2
                       else f"skipped: single-core host ({cpu_count} cpu)"),
            **({} if cpu_count >= 2 else
               {"reason": "multi-core speedup is untestable on a "
                          f"{cpu_count}-cpu host; parity still holds "
                          "(verdicts are bitwise-identical to workers=0)"}),
        },
        "metrics_overhead": {
            "floor": METRICS_OVERHEAD_LIMIT,
            "value": overhead["overhead_fraction"],
            "unit": "",
            "passed": (overhead["overhead_fraction"]
                       <= METRICS_OVERHEAD_LIMIT),
            "skipped": False,
            "status": "gated (overhead must stay below the limit)",
        },
    }
    try:
        from benchmarks.provenance import host_provenance
    except ImportError:          # script mode: benchmarks/ is sys.path[0]
        from provenance import host_provenance
    return {
        "quick": quick,
        "cpu_count": cpu_count,
        "host": host_provenance(),
        "batch": BATCH,
        "models": models,
        "parallel_replay": parallel,
        "metrics_overhead": overhead,
        "gates": gates,
    }


def format_report(report: dict) -> str:
    """Text form of the JSON report."""
    lines = [
        f"Inference fast path — batch {report['batch']}, "
        f"{report['cpu_count']} cpu(s)",
        f"  {'model':<10} {'fast':>9} {'reference':>10} {'speedup':>8} "
        f"{'im/s':>8} {'lat(b1)':>9}",
    ]
    for name, row in report["models"].items():
        latency = (f"{row['latency_ms']:7.2f}ms" if "latency_ms" in row
                   else f"{'—':>9}")
        lines.append(
            f"  {name:<10} {row['fast_s']:>8.4f}s {row['reference_s']:>9.4f}s "
            f"{row['speedup']:>7.2f}x {row['throughput_ips']:>8.1f} {latency}")
    par = report["parallel_replay"]
    lines.append(
        f"  replay     serial {par['serial_rps']:.1f} rps   "
        f"{par['workers']} workers {par['parallel_rps']:.1f} rps   "
        f"{par['speedup']:.2f}x")
    if "metrics_overhead" in report:
        ovh = report["metrics_overhead"]
        lines.append(
            f"  obs        off {ovh['baseline_rps']:.1f} rps   "
            f"on {ovh['instrumented_rps']:.1f} rps   "
            f"overhead {100 * ovh['overhead_fraction']:.1f}%")
    for name, gate in report["gates"].items():
        verdict = {True: "PASS", False: "FAIL", None: "SKIP"}[gate["passed"]]
        status = gate.get("status", "gated")
        unit = gate.get("unit", "x")
        lines.append(f"  gate {name}: {gate['value']:.2f}{unit} vs floor "
                     f"{gate['floor']:.2f}{unit} — {verdict} ({status})")
    return "\n".join(lines)


def gates_pass(report: dict) -> bool:
    """True when no applicable gate failed (skipped gates don't fail)."""
    return all(gate["passed"] is not False
               for gate in report["gates"].values())


# -- pytest entry points -----------------------------------------------------

def test_inference_fast_path_speedup(benchmark):
    """The ensemble fast path clears its floor at batch 32."""
    from benchmarks.conftest import write_report

    report = benchmark.pedantic(lambda: run_all(quick=True),
                                rounds=1, iterations=1)
    write_report("inference", format_report(report))
    assert report["gates"]["ensemble_fast_path"]["passed"]


def test_metrics_overhead_within_limit(benchmark):
    """Observability costs under 5% of replay throughput."""
    report = benchmark.pedantic(
        lambda: run_metrics_overhead_benchmark(drivers=8, duration=2.0,
                                               repeats=6),
        rounds=1, iterations=1)
    assert report["overhead_fraction"] <= METRICS_OVERHEAD_LIMIT


def test_parallel_replay_not_slower_than_floor(benchmark):
    """4-worker replay clears its floor wherever the host has the cores."""
    report = benchmark.pedantic(
        lambda: run_parallel_benchmark(drivers=8, duration=2.0),
        rounds=1, iterations=1)
    if (os.cpu_count() or 1) >= 2:
        assert report["speedup"] >= PARALLEL_FLOOR
    else:
        assert report["parallel_rps"] > 0  # parallel path works, at least


# -- script entry point (CI bench-inference-smoke job) -----------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short measurement with the 1.2x smoke floor")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT,
                                             "BENCH_inference.json"))
    args = parser.parse_args(argv)
    report = run_all(quick=args.quick)
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(format_report(report))
    print(f"\n[json report written to {args.out}]")
    if not gates_pass(report):
        print("FAIL: an inference fast-path gate fell below its floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
