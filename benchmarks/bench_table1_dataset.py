"""Table 1 — dataset collection through the full streaming framework.

Regenerates the paper's class/modality inventory by running scripted
collection drives (5 drivers, 15-second distraction segments) through the
agents -> channels -> controller stack, and benchmarks the collection
pipeline's throughput.
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import DriveScript, run_collection_drive
from repro.experiments import format_table1, run_table1


def test_table1_collection_inventory(benchmark):
    """Report per-class counts (Table 1) and time one scripted drive."""
    scale = bench_scale()
    result = run_table1(scale, seed=0)
    write_report("table1_dataset", format_table1(result))
    assert sum(result.frame_counts.values()) > 0
    assert result.worst_clock_error < 0.1

    script = DriveScript.standard(segment_seconds=5.0)
    seeds = iter(range(10_000))

    def one_drive():
        return run_collection_drive(
            script, rng=np.random.default_rng(next(seeds)))

    drive = benchmark.pedantic(one_drive, rounds=3, iterations=1)
    assert drive.imu.shape[0] > 0
    benchmark.extra_info["readings_per_drive"] = \
        drive.controller.readings_received
    benchmark.extra_info["frames_per_drive"] = \
        drive.controller.frames_received


def test_table1_collection_rate_matches_config(benchmark):
    """25 ms polling x 4 sensors must yield ~160 readings/s of drive."""
    result = benchmark.pedantic(
        lambda: run_table1(bench_scale(), seed=1), rounds=1, iterations=1)
    total_segments = sum(result.frame_counts.values())
    assert total_segments > 0
    # All six classes observed.
    assert all(count > 0 for count in result.frame_counts.values())
    # Classes 4-6 produce no *distinct* IMU poses, but readings exist
    # (pocket position) — the IMU column counts labelled grid points.
    assert result.imu_reading_counts
