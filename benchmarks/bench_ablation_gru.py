"""Ablation — recurrent cell: the paper's bidirectional LSTM vs. a GRU.

The paper argues for RNNs over SVMs (§4.2) but fixes the cell to LSTM;
this ablation trains an identically shaped bidirectional GRU on the same
IMU windows to quantify the cell choice (GRUs have ~25% fewer parameters
and often match LSTMs on short windows).
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import ImuSequenceRNN, RnnConfig
from repro.datasets import DrivingBehavior, generate_imu_windows


def _imu_set(n_per, seed):
    rng = np.random.default_rng(seed)
    windows, labels = [], []
    for cls, behavior in [(0, DrivingBehavior.NORMAL),
                          (1, DrivingBehavior.TALKING),
                          (2, DrivingBehavior.TEXTING)]:
        windows.append(generate_imu_windows(behavior, n_per, rng=rng))
        labels.append(np.full(n_per, cls))
    x = np.concatenate(windows)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return x[order], y[order]


def test_ablation_gru_vs_lstm(benchmark):
    """Same data, same shape, different recurrent cell."""
    scale = bench_scale()
    n_per = max(40, scale.dataset_samples // 6)
    x, y = _imu_set(n_per, seed=2)
    cut = int(0.8 * len(y))
    results = {}
    params = {}
    for cell in ("lstm", "gru"):
        config = RnnConfig(epochs=scale.rnn_epochs, cell=cell)
        model = ImuSequenceRNN(config, rng=np.random.default_rng(4))
        model.fit(x[:cut], y[:cut])
        results[cell] = model.evaluate(x[cut:], y[cut:])
        params[cell] = model.network.num_parameters()
        final = model
    lines = ["Ablation — recurrent cell on IMU windows"]
    for cell in ("lstm", "gru"):
        marker = "  <- paper" if cell == "lstm" else ""
        lines.append(f"  {cell.upper():<5} top1 = {results[cell] * 100:6.2f}%"
                     f"  ({params[cell]:,} params){marker}")
    write_report("ablation_gru", "\n".join(lines))
    benchmark.pedantic(lambda: final.predict_proba(x[cut:]),
                       rounds=1, iterations=1)
    assert params["gru"] < params["lstm"]
    if bench_scale().name == "smoke":
        return
    # Both cells land in the same band; neither collapses.
    assert results["gru"] > 0.8
    assert abs(results["gru"] - results["lstm"]) < 0.12
