"""Figure 3 — the three privacy paths and their bandwidth cost.

The paper's Figure 3 shows frames flowing device -> server at three
downsampling levels; §4.3 quantifies the payoff as ~9x / 25x / 144x less
data at the paper's 300x300 resolution.  This bench measures the actual
bytes and per-frame transfer time through the simulated channel at our
64x64 resolution, and reports both our divisors and the paper's.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.core import DistortionModule, PrivacyLevel
from repro.experiments import PAPER_DATA_REDUCTION, run_fig3


def test_fig3_bandwidth_report(benchmark):
    """Per-level payload sizes, reduction factors, and transfer times."""
    result = benchmark(run_fig3)
    lines = ["Figure 3 — privacy paths: frame transmission cost",
             f"  full frame ({result.full_edge}x{result.full_edge}): "
             f"{result.bytes_per_frame['full']} bytes"]
    for level in PrivacyLevel:
        name = level.value
        lines.append(
            f"  {level.model_name:<7} edge/{level.edge_divisor} "
            f"-> {result.bytes_per_frame[name]:6d} bytes  "
            f"measured {result.reduction[name]:6.1f}x reduction  "
            f"(paper @300px: ~{PAPER_DATA_REDUCTION[name]:.0f}x)  "
            f"transfer {result.transfer_seconds[name] * 1e3:6.2f} ms")
    write_report("fig3_bandwidth", "\n".join(lines))
    assert result.reduction["high"] > result.reduction["medium"] \
        > result.reduction["low"] > 1.0


def test_fig3_distortion_throughput(benchmark):
    """Time device-side distortion of a frame batch (runs per frame)."""
    rng = np.random.default_rng(0)
    batch = rng.random((32, 1, 64, 64)).astype(np.float32)
    module = DistortionModule(PrivacyLevel.MEDIUM)

    out = benchmark(module.distort_batch, batch)
    assert out.shape == (32, 1, 21, 21)


def test_fig3_transfer_time_ordering(benchmark):
    """Serialization delay through a bandwidth-limited channel."""
    result = benchmark(run_fig3, bandwidth_bps=500_000.0)
    assert (result.transfer_seconds["full"]
            > result.transfer_seconds["low"]
            > result.transfer_seconds["high"])
