"""Ablation — fine-tuning from a pretrained checkpoint vs. from scratch.

The paper initializes Inception-V3 from the ILSVRC-2012 checkpoint and
swaps the classifier head (§4.2).  This ablation compares fine-tuning our
MicroInception from the generic-shapes checkpoint against random init,
under a *small* epoch budget where initialization matters most.
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import CnnConfig, DriverFrameCNN
from repro.datasets import generate_driving_dataset


def test_ablation_finetune_vs_scratch(benchmark):
    """Compare eval accuracy after a short fine-tune budget."""
    scale = bench_scale()
    samples = max(200, scale.dataset_samples // 3)
    epochs = max(3, scale.cnn_epochs // 3)
    dataset = generate_driving_dataset(samples, num_drivers=3,
                                       rng=np.random.default_rng(11))
    train, evaluation = dataset.train_eval_split(
        rng=np.random.default_rng(0))
    config = CnnConfig(epochs=epochs, width=scale.cnn_width,
                       pretrain_epochs=3, pretrain_samples_per_class=30)

    scores = {}
    for pretrain in (True, False):
        cnn = DriverFrameCNN(config, rng=np.random.default_rng(7))
        if pretrain:
            cnn.pretrain()
        cnn.fit(train.images, train.labels)
        key = "pretrained" if pretrain else "from-scratch"
        scores[key] = cnn.evaluate(evaluation.images, evaluation.labels)
        final_cnn = cnn
    lines = [f"Ablation — CNN initialization ({epochs} fine-tune epochs)"]
    for key, score in scores.items():
        lines.append(f"  {key:<13} top1 = {score * 100:6.2f}%")
    write_report("ablation_finetune", "\n".join(lines))
    benchmark.pedantic(lambda: final_cnn.predict_proba(evaluation.images),
                       rounds=1, iterations=1)
    # Generic-feature init should not hurt under a short budget.
    assert scores["pretrained"] > scores["from-scratch"] - 0.08


def test_ablation_pretrain_cost(benchmark):
    """Time one epoch of generic-shapes pretraining."""
    config = CnnConfig(epochs=1, width=0.5, pretrain_epochs=1,
                       pretrain_samples_per_class=20)

    def pretrain_once():
        cnn = DriverFrameCNN(config, rng=np.random.default_rng(3))
        cnn.pretrain()
        return cnn

    cnn = benchmark.pedantic(pretrain_once, rounds=1, iterations=1)
    assert cnn.pretrained
