"""Benchmark harness configuration.

Heavy experiments (Table 2 / Table 3) run once per session in fixtures;
individual benchmarks time the operational pieces (inference, collection,
distortion) and attach the paper-vs-measured comparison to the report.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``default`` /
``full`` (default: ``default``, which reproduces the paper's shape in a
few minutes).  Every report is also written to ``benchmarks/reports/``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_scale, run_table2, run_table3

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def bench_scale():
    """The active experiment scale for this benchmark session."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", "default"))


def write_report(name: str, text: str) -> None:
    """Persist a paper-vs-measured report and echo it to the terminal."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[report written to {path}]")


@pytest.fixture(scope="session")
def table2_result():
    """Train/evaluate the three Table-2 architectures once per session."""
    return run_table2(bench_scale(), seed=42)


@pytest.fixture(scope="session")
def table3_result():
    """Train the 18-class teacher and the three dCNN students once."""
    return run_table3(bench_scale(), seed=5)
