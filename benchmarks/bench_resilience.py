"""Serving resilience — journal throughput and failover recovery cost.

Measures what the resilience layer adds to the serving path and what it
costs: append/replay throughput of the fsync-batched verdict journal
across fsync cadences, and the wall-clock price of a full failover
(shard killed mid-drive, watchdog detection, checkpoint migration,
backoff restart) via the scripted serving chaos run.

Runs two ways:

* under pytest (with the other benchmarks): writes the usual text report;
* as a script::

      PYTHONPATH=src python benchmarks/bench_resilience.py --quick

  which writes a JSON report and exits non-zero if the failover run
  loses verdicts or the journal replay comes back dirty.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


class _StubResult:
    def __init__(self, count, degraded):
        self.predictions = np.full(count, 1, dtype=np.int64)
        self.probabilities = np.full((count, 5), 0.2)
        self.confidence = np.full(count, 0.8)
        self.degraded = degraded
        self.missing = ("frames",) if degraded else ()


class _StubModel:
    """predict_degraded-shaped stand-in: the benchmark measures the
    resilience machinery, not the forward pass."""

    def predict_degraded(self, images=None, imu=None):
        count = len(imu) if imu is not None else len(images)
        return _StubResult(count, images is None)


def run_journal_bench(records: int = 5000,
                      fsync_cadences: tuple[int, ...] = (1, 16, 256)
                      ) -> list[dict]:
    """Append + replay throughput across fsync batching cadences."""
    from repro.obs import MetricsRegistry
    from repro.serving import VerdictJournal, VerdictRecord

    rows = []
    for fsync_every in fsync_cadences:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "verdicts.wal")
            journal = VerdictJournal(path, fsync_every=fsync_every,
                                     registry=MetricsRegistry())
            started = time.perf_counter()
            for index in range(records):
                journal.append(VerdictRecord(
                    session_id=f"drv-{index % 8}", sequence=index,
                    timestamp=0.25 * index, predicted=2,
                    confidence=0.9, model_key="base"))
            journal.sync()
            append_seconds = time.perf_counter() - started
            size = journal.size_bytes
            journal.close()
            started = time.perf_counter()
            replay = VerdictJournal(path,
                                    registry=MetricsRegistry()).replay()
            replay_seconds = time.perf_counter() - started
            rows.append({
                "fsync_every": fsync_every,
                "records": records,
                "append_rps": round(records / append_seconds, 1),
                "replay_rps": round(records / replay_seconds, 1),
                "bytes": size,
                "replayed": len(replay.records),
                "torn": replay.torn,
                "duplicates": replay.duplicates,
            })
    return rows


def run_failover_bench(drivers: int = 4, duration: float = 12.0,
                       seed: int = 0) -> dict:
    """Wall-clock cost of a full scripted failover (virtual-clock chaos
    drive: shard kill, hang, sink blackhole, journal disk-full)."""
    from repro.serving import run_serving_chaos

    started = time.perf_counter()
    report = run_serving_chaos(_StubModel(), shards=3, drivers=drivers,
                               duration=duration, seed=seed)
    wall = time.perf_counter() - started
    return {
        "drivers": drivers,
        "duration_s": duration,
        "wall_seconds": round(wall, 3),
        "requested": report.requested,
        "delivered": report.delivered,
        "deferred": report.deferred,
        "lost": report.lost,
        "restarts": report.restarts,
        "migrations": report.migrations,
        "recovery_times_s": [round(r, 3) for r in report.recovery_times],
        "recovery_bound_s": report.recovery_bound,
        "journal_records": report.journal_records,
        "journal_torn": report.journal_torn,
        "violations": report.violations,
    }


def format_resilience(journal_rows: list[dict], failover: dict) -> str:
    """Text form of the JSON report."""
    lines = [
        "Serving resilience — journal throughput and failover cost",
        f"  {'fsync_every':>12} {'append rps':>12} {'replay rps':>12} "
        f"{'bytes':>10} {'torn':>5}",
    ]
    for row in journal_rows:
        lines.append(
            f"  {row['fsync_every']:>12} {row['append_rps']:>12.1f} "
            f"{row['replay_rps']:>12.1f} {row['bytes']:>10} "
            f"{row['torn']:>5}")
    recoveries = (", ".join(f"{r:.2f}s"
                            for r in failover["recovery_times_s"])
                  or "none")
    lines.extend([
        "",
        f"  failover chaos drive ({failover['drivers']} drivers, "
        f"{failover['duration_s']:.0f} s virtual): "
        f"{failover['wall_seconds']:.2f} s wall",
        f"  ledger: {failover['requested']} requested = "
        f"{failover['delivered']} delivered + {failover['deferred']} "
        f"deferred, {failover['lost']} lost",
        f"  recovery: {failover['restarts']} restarts, "
        f"{failover['migrations']} migrations, times [{recoveries}] "
        f"(bound {failover['recovery_bound_s']:.2f}s)",
    ])
    if failover["violations"]:
        lines.append("  VIOLATIONS: " + "; ".join(failover["violations"]))
    return "\n".join(lines)


# -- pytest entry points -----------------------------------------------------

def test_journal_replay_is_lossless(benchmark):
    """Every append cadence replays complete, untorn, duplicate-free."""
    from benchmarks.conftest import write_report

    rows = benchmark.pedantic(lambda: run_journal_bench(2000),
                              rounds=1, iterations=1)
    failover = run_failover_bench(drivers=2, duration=8.0)
    write_report("resilience", format_resilience(rows, failover))
    for row in rows:
        assert row["replayed"] == row["records"]
        assert row["torn"] == 0
        assert row["duplicates"] == 0


def test_batched_fsync_beats_per_record_fsync(benchmark):
    """The fsync_every batching knob is worth having."""
    rows = benchmark.pedantic(
        lambda: run_journal_bench(1500, fsync_cadences=(1, 256)),
        rounds=1, iterations=1)
    per_record, batched = rows[0], rows[1]
    assert batched["append_rps"] > per_record["append_rps"]


def test_failover_loses_nothing(benchmark):
    """A scripted shard kill mid-drive costs zero verdicts."""
    failover = benchmark.pedantic(
        lambda: run_failover_bench(drivers=2, duration=8.0),
        rounds=1, iterations=1)
    assert failover["lost"] == 0
    assert failover["violations"] == []
    assert failover["restarts"] >= 1


# -- script entry point ------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer records, shorter drive (CI smoke)")
    parser.add_argument("--records", type=int, default=None,
                        help="journal records (default 2000 quick / "
                             "20000 full)")
    parser.add_argument("--out", default=os.path.join(REPORT_DIR,
                                                      "resilience.json"))
    args = parser.parse_args(argv)
    records = args.records or (2000 if args.quick else 20000)
    duration = 8.0 if args.quick else 20.0
    journal_rows = run_journal_bench(records)
    failover = run_failover_bench(drivers=2 if args.quick else 6,
                                  duration=duration)
    report = {"journal": journal_rows, "failover": failover}
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(format_resilience(journal_rows, failover))
    print(f"\n[json report written to {args.out}]")
    failed = False
    for row in journal_rows:
        if (row["replayed"] != row["records"] or row["torn"]
                or row["duplicates"]):
            print(f"FAIL: dirty journal replay at "
                  f"fsync_every={row['fsync_every']}")
            failed = True
    if failover["lost"] or failover["violations"]:
        print(f"FAIL: failover lost {failover['lost']} verdicts; "
              f"violations: {failover['violations']}")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
