"""Host provenance for benchmark reports.

Timings in a committed BENCH report are meaningless without knowing what
produced them: which BLAS numpy was linked against, how many threads it
was allowed, and which revision of this repo ran.  ``host_provenance()``
collects that once per run; every benchmark JSON embeds it under
``"host"``.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys

import numpy as np

#: Environment variables that cap BLAS threading, in precedence order.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "BLIS_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def _blas_info() -> dict:
    """The BLAS/LAPACK libraries numpy was built against, best effort."""
    try:
        config = np.show_config(mode="dicts")
    except TypeError:            # numpy < 1.25 has no dicts mode
        return {}
    except Exception:
        return {}
    info = {}
    for section in ("blas", "lapack"):
        entry = (config.get("Build Dependencies") or {}).get(section) or {}
        if entry:
            info[section] = {
                "name": entry.get("name"),
                "version": entry.get("version"),
            }
    return info


def _git_revision() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def host_provenance() -> dict:
    """Machine/toolchain context for one benchmark run."""
    thread_caps = {var: os.environ[var] for var in _THREAD_ENV_VARS
                   if var in os.environ}
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "blas": _blas_info(),
        "blas_thread_caps": thread_caps,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "git_revision": _git_revision(),
        "argv": sys.argv[1:],
    }
