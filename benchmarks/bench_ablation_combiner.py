"""Ablation — the Bayesian-network combiner vs. simpler fusion rules.

The BN combiner is the paper's stated novelty ("we present a novel
Bayesian Network combiner approach", §1).  This ablation swaps it for
probability averaging, product-of-experts, and max-confidence selection
over the same trained member models, quantifying what the BN buys.
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import (
    AveragingCombiner,
    MaxConfidenceCombiner,
    ProductCombiner,
)
from repro.nn.metrics import accuracy


def _member_probabilities(table2_result):
    ensemble = table2_result.ensembles["cnn+rnn"]
    evaluation = table2_result.evaluation
    cnn_probs = ensemble.cnn.predict_proba(evaluation.images)
    imu_probs = ensemble.imu_model.predict_proba(evaluation.imu)
    return ensemble, evaluation, cnn_probs, imu_probs


def test_ablation_combiner_comparison(benchmark, table2_result):
    """Accuracy of each fusion rule over identical member outputs."""
    ensemble, evaluation, cnn_probs, imu_probs = benchmark.pedantic(
        _member_probabilities, args=(table2_result,), rounds=1, iterations=1)
    scores = {
        "bayesian-network": accuracy(
            evaluation.labels,
            ensemble.combiner.predict(cnn_probs, imu_probs)),
        "averaging": accuracy(
            evaluation.labels,
            AveragingCombiner().predict(cnn_probs, imu_probs)),
        "product": accuracy(
            evaluation.labels,
            ProductCombiner().predict(cnn_probs, imu_probs)),
        "max-confidence": accuracy(
            evaluation.labels,
            MaxConfidenceCombiner().predict(cnn_probs, imu_probs)),
        "cnn-only": accuracy(evaluation.labels, cnn_probs.argmax(axis=1)),
    }
    lines = ["Ablation — ensemble combiner (same member models)"]
    for name, score in sorted(scores.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<18} top1 = {score * 100:6.2f}%")
    write_report("ablation_combiner", "\n".join(lines))
    if bench_scale().name == "smoke":
        return  # shape criteria only hold at default/full training budgets
    # The BN must beat the raw CNN and not trail the naive rules badly.
    assert scores["bayesian-network"] > scores["cnn-only"]
    naive_best = max(scores["averaging"], scores["product"],
                     scores["max-confidence"])
    assert scores["bayesian-network"] >= naive_best - 0.05


def test_ablation_combiner_inference_cost(benchmark, table2_result):
    """The BN fusion step itself is a cheap einsum."""
    ensemble, _, cnn_probs, imu_probs = _member_probabilities(table2_result)

    out = benchmark(ensemble.combiner.predict_proba, cnn_probs, imu_probs)
    assert out.shape == cnn_probs.shape
