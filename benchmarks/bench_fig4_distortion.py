"""Figure 4 — the visual distortion strip.

The paper shows one frame at full resolution and the three downsampled
sizes ("the distortion levels for dCNN-M and dCNN-H render the image
almost unidentifiable").  This bench renders the same strip as ASCII art,
reports PSNR per level, and times the distort/restore round-trip.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.core import PrivacyLevel, distort_restore
from repro.experiments import ascii_frame, run_fig4


def test_fig4_distortion_strip(benchmark):
    """Render the Figure-4 strip and check fidelity degrades with level."""
    result = benchmark(run_fig4, seed=3)
    sections = []
    for name in ("full", "low", "medium", "high"):
        edge = result.edges[name]
        header = f"--- {name} ({edge}x{edge} px"
        if name != "full":
            header += f", PSNR {result.psnr[name]:.1f} dB"
        header += ") ---"
        sections.append(header)
        sections.append(ascii_frame(result.frames[name]))
    write_report("fig4_distortion", "\n".join(sections))
    # Low distortion must be the most faithful of the three.
    assert result.psnr["low"] >= result.psnr["medium"] - 0.5
    assert result.psnr["low"] >= result.psnr["high"] - 0.5


def test_fig4_roundtrip_throughput(benchmark):
    """Time the distort -> restore pipeline (the dCNN input path)."""
    rng = np.random.default_rng(1)
    batch = rng.random((64, 1, 64, 64)).astype(np.float32)

    out = benchmark(distort_restore, batch, PrivacyLevel.HIGH)
    assert out.shape == batch.shape


def test_fig4_information_loss_monotone(benchmark):
    """Unique pixel values shrink monotonically with distortion level."""
    result = benchmark(run_fig4, seed=7)
    unique = {name: len(np.unique(result.frames[name]))
              for name in ("full", "low", "medium", "high")}
    assert unique["full"] >= unique["low"] >= unique["medium"] \
        >= unique["high"]
