"""Extension — local vs. remote processing placement (paper §3.2).

Sweeps link bandwidth and reports per-verdict latency for both
placements, showing the crossover the controller's processing decision
exploits, and how privacy downsampling moves it (smaller frames make
remote viable at lower bandwidth — the §3.2/§4.3 interaction).
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.core import PrivacyLevel
from repro.streaming import placement_sweep


BANDWIDTHS = [5e4, 2e5, 1e6, 5e6, 2e7, 1e8]


def test_ext_placement_crossover(benchmark):
    """Latency per placement across bandwidths, full-resolution frames."""
    rows = benchmark.pedantic(
        lambda: placement_sweep(BANDWIDTHS, latency_s=0.005,
                                rng=np.random.default_rng(0)),
        rounds=1, iterations=1)
    lines = ["Extension — processing placement (64x64 frames, 5 ms RTT/2)",
             f"  {'bandwidth':>12} {'local':>9} {'remote':>9} {'policy':>8}"]
    for row in rows:
        lines.append(
            f"  {row['bandwidth_bps']:>10.0e}  "
            f"{row['local_seconds'] * 1e3:7.1f}ms "
            f"{row['remote_seconds'] * 1e3:7.1f}ms {row['decision']:>8}")
    write_report("ext_placement", "\n".join(lines))
    # Local is flat; remote improves with bandwidth and eventually wins.
    local = [row["local_seconds"] for row in rows]
    remote = [row["remote_seconds"] for row in rows]
    assert max(local) - min(local) < 1e-9
    assert remote[0] > local[0]
    assert remote[-1] < local[-1]


def test_ext_placement_privacy_interaction(benchmark):
    """Downsampled frames shift the remote-viability crossover left."""
    def sweep_for_edge(edge):
        return placement_sweep(BANDWIDTHS, frame_edge=edge,
                               latency_s=0.005,
                               rng=np.random.default_rng(1))

    full = benchmark.pedantic(lambda: sweep_for_edge(64),
                              rounds=1, iterations=1)
    small_edge = PrivacyLevel.HIGH.target_edge(64)
    small = sweep_for_edge(small_edge)
    lines = [f"Extension — placement with privacy downsampling "
             f"(remote latency, ms)",
             f"  {'bandwidth':>12} {'64px':>9} {f'{small_edge}px':>9}"]
    for row_full, row_small in zip(full, small):
        lines.append(f"  {row_full['bandwidth_bps']:>10.0e}  "
                     f"{row_full['remote_seconds'] * 1e3:7.1f} "
                     f"{row_small['remote_seconds'] * 1e3:8.1f}")
    write_report("ext_placement_privacy", "\n".join(lines))
    # At every bandwidth the distorted frame is at least as fast to ship.
    for row_full, row_small in zip(full, small):
        assert row_small["remote_seconds"] <= row_full["remote_seconds"] + 1e-9
