"""Ablation — dCNN initialization: teacher weights vs. random.

The paper initializes the dCNN "using the CNN trained on the driving
dataset ... we believe that this initialization methodology provides a
good starting point" (§4.3).  This ablation re-distills dCNN-L from a
random initialization under the same epoch budget and compares.
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import DenoisingCNN, DistillationConfig, PrivacyLevel


def test_ablation_distill_init(benchmark, table3_result):
    """Teacher-initialized vs. randomly initialized dCNN-L."""
    scale = bench_scale()
    teacher_init_top1 = table3_result.dcnn_top1[PrivacyLevel.LOW]
    config = DistillationConfig(epochs=scale.distill_epochs,
                                init_from_teacher=False)
    random_student = DenoisingCNN(table3_result.teacher, PrivacyLevel.LOW,
                                  config=config,
                                  rng=np.random.default_rng(9))
    random_student.distill(table3_result.train.images)
    random_top1 = random_student.evaluate(table3_result.evaluation.images,
                                          table3_result.evaluation.labels)
    benchmark.pedantic(
        lambda: random_student.predict(table3_result.evaluation.images[:32]),
        rounds=1, iterations=1)
    lines = [
        "Ablation — dCNN-L initialization (same distillation budget)",
        f"  init from teacher  top1 = {teacher_init_top1 * 100:6.2f}%"
        "   <- paper's methodology",
        f"  random init        top1 = {random_top1 * 100:6.2f}%",
    ]
    write_report("ablation_distill_init", "\n".join(lines))
    # Teacher init should dominate under a fixed budget.
    assert teacher_init_top1 > random_top1 - 0.05


def test_ablation_distillation_loss_throughput(benchmark, table3_result):
    """Time one distillation forward/backward step at level L."""
    from repro.core.privacy import distort_restore
    from repro.nn import MSELoss

    student = table3_result.students[PrivacyLevel.LOW]
    images = table3_result.train.images[:32]
    targets = table3_result.teacher.predict_logits(images)
    distorted = distort_restore(images, PrivacyLevel.LOW)
    loss = MSELoss()
    student.network.set_training(True)

    def step():
        out = student.network.forward(distorted)
        value = loss.forward(out, targets)
        student.network.backward(loss.backward())
        return value

    value = benchmark.pedantic(step, rounds=3, iterations=1)
    student.network.set_training(False)
    assert np.isfinite(value)
