"""Backends x models x batch-size inference matrix.

Sweeps every inference backend over every deployable model (CNN, RNN,
full ensemble, and the three privacy dCNN students) at batch sizes
{1, 8, 32, 128}, measuring wall time against the reference forward and
checking cross-backend parity.  The committed ``BENCH_matrix.json`` is
the acceptance record for the graph-compiled backend (PR 8):

* ``numpy-compiled`` must be **bitwise identical** to ``numpy-fast``
  for every float32 model (the compiler restructures GEMMs only in ways
  verified bit-stable) — the parity section records the max abs diff;
* at batch 32, the compiled RNN must clear ``RNN_FLOOR`` (2x) and the
  compiled ensemble ``ENSEMBLE_FLOOR`` (5x) over the reference path;
* ``numpy-compiled`` must not lose to ``numpy-fast`` on any model;
* ``numpy-compiled-int8`` is lossy by contract and is gated only on
  verdict-class agreement with the float fast path.

Runs under pytest (explicitly: ``pytest benchmarks/bench_matrix.py``)
or as the CI bench-matrix-smoke script::

    PYTHONPATH=src python benchmarks/bench_matrix.py --quick

which writes the JSON report and exits non-zero on any gate failure.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import time

import numpy as np

try:
    from benchmarks.bench_inference import inference_models
    from benchmarks.provenance import host_provenance
except ImportError:              # script mode: benchmarks/ is sys.path[0]
    from bench_inference import inference_models
    from provenance import host_provenance

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Batch sizes swept per (backend, model) cell.
BATCHES = (1, 8, 32, 128)
QUICK_BATCHES = (1, 32)
#: The batch every speedup gate is evaluated at.
GATE_BATCH = 32

#: Compiled-vs-reference floors at the gate batch (full / --quick smoke).
RNN_FLOOR = 2.0
RNN_SMOKE_FLOOR = 1.2
ENSEMBLE_FLOOR = 5.0
ENSEMBLE_SMOKE_FLOOR = 2.0
#: Compiled must not lose to the interpreted fast path on any model
#: (smoke runs tolerate scheduler noise on shared CI hosts).
COMPILED_VS_FAST_FLOOR = 1.0
COMPILED_VS_FAST_SMOKE_FLOOR = 0.85
#: Float32 plans are bit-exact; the gate leaves headroom for a future
#: backend that reorders reductions.
PARITY_ATOL = 1e-5
#: Minimum verdict-class agreement for the lossy int8 plans.
INT8_AGREEMENT_FLOOR = 0.97

FLOAT_BACKENDS = ("numpy-fast", "numpy-compiled")


def _best_seconds(fn, *, repeats: int) -> float:
    """Best-of-N wall time after two untimed warmup calls.

    The collector is paused around the timed region so a cycle sweep
    landing mid-call cannot inflate a cell; best-of-N then discards the
    scheduler noise a shared host adds on top.
    """
    fn()
    fn()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


class MatrixRunner:
    """One full sweep: forwards per model, cells per (backend, batch).

    Timing always goes through the public predict surface
    (``predict_proba`` / ``predict_logits`` / ``predict_degraded``) so a
    cell measures what serving dispatch would pay, not a bare forward.
    """

    def __init__(self, *, quick: bool = False) -> None:
        self.quick = quick
        self.repeats = 2 if quick else 9
        self.batches = QUICK_BATCHES if quick else BATCHES
        ensemble, students, dataset = inference_models()
        self.ensemble = ensemble
        self.students = students
        # The seed dataset has 90 samples; tile it so batch 128 is real.
        tile = int(np.ceil(max(self.batches) / len(dataset.images)))
        self.images = np.concatenate([dataset.images] * tile, axis=0)
        self.windows = np.concatenate([dataset.imu] * tile, axis=0)

    def model_names(self) -> list[str]:
        return ["cnn", "rnn", "ensemble"] + sorted(self.students)

    def forward(self, model: str, batch: int) -> np.ndarray:
        """One batched inference; returns the probability/logit matrix."""
        images = self.images[:batch]
        windows = self.windows[:batch]
        if model == "cnn":
            return self.ensemble.cnn.predict_proba(images)
        if model == "rnn":
            return self.ensemble.imu_model.predict_proba(windows)
        if model == "ensemble":
            return self.ensemble.predict_degraded(
                images=images, imu=windows).probabilities
        return self.students[model].predict_logits(images)

    # -- sections ---------------------------------------------------------
    def run_matrix(self) -> dict:
        """Wall-time cells: reference + each float backend, per batch."""
        from repro.nn import reference_mode, using_backend

        matrix: dict[str, dict] = {}
        for model in self.model_names():
            rows = {}
            for batch in self.batches:
                def fwd(m=model, b=batch):
                    return self.forward(m, b)

                with reference_mode():
                    reference = _best_seconds(fwd, repeats=self.repeats)
                row = {"reference_s": round(reference, 5)}
                for backend in FLOAT_BACKENDS:
                    with using_backend(backend):
                        seconds = _best_seconds(fwd, repeats=self.repeats)
                    row[f"{backend}_s"] = round(seconds, 5)
                    row[f"{backend}_speedup"] = round(reference / seconds, 2)
                row["compiled_vs_fast"] = round(
                    row["numpy-fast_s"] / row["numpy-compiled_s"], 2)
                rows[f"batch_{batch}"] = row
            matrix[model] = rows
        return matrix

    def run_parity(self) -> dict:
        """Max abs diff of numpy-compiled vs numpy-fast, per model."""
        from repro.nn import using_backend

        batch = max(self.batches)
        parity = {}
        for model in self.model_names():
            with using_backend("numpy-fast"):
                fast = self.forward(model, batch)
            with using_backend("numpy-compiled"):
                compiled = self.forward(model, batch)
            diff = float(np.max(np.abs(fast - compiled)))
            parity[model] = {
                "batch": batch,
                "max_abs_diff": diff,
                "bitwise": bool(np.array_equal(fast, compiled)),
            }
        return parity

    def run_int8(self) -> dict:
        """Verdict-class agreement of the int8 plans, per dCNN level.

        int8 is scoped to the distilled privacy students: lower fidelity
        is already their contract, so the agreement gate extends it.
        """
        from repro.nn import using_backend

        count = len(self.images)
        results = {}
        for model in sorted(self.students):
            with using_backend("numpy-fast"):
                fast = self.forward(model, count)
            with using_backend("numpy-compiled-int8"):
                int8 = self.forward(model, count)
            agreement = float(np.mean(
                fast.argmax(axis=1) == int8.argmax(axis=1)))
            results[model] = {
                "samples": count,
                "verdict_agreement": round(agreement, 4),
                "max_abs_logit_diff": round(
                    float(np.max(np.abs(fast - int8))), 5),
            }
        return results

    def run_all(self) -> dict:
        matrix = self.run_matrix()
        parity = self.run_parity()
        int8 = self.run_int8()
        gates = self._gates(matrix, parity, int8)
        return {
            "quick": self.quick,
            "host": host_provenance(),
            "gate_batch": GATE_BATCH,
            "batches": list(self.batches),
            "backends": list(FLOAT_BACKENDS) + ["numpy-compiled-int8"],
            "matrix": matrix,
            "parity": parity,
            "int8": int8,
            "gates": gates,
        }

    def _gates(self, matrix: dict, parity: dict, int8: dict) -> dict:
        quick = self.quick
        cell = f"batch_{GATE_BATCH}"
        rnn_floor = RNN_SMOKE_FLOOR if quick else RNN_FLOOR
        ens_floor = ENSEMBLE_SMOKE_FLOOR if quick else ENSEMBLE_FLOOR
        vs_fast_floor = (COMPILED_VS_FAST_SMOKE_FLOOR if quick
                         else COMPILED_VS_FAST_FLOOR)
        rnn_speedup = matrix["rnn"][cell]["numpy-compiled_speedup"]
        ens_speedup = matrix["ensemble"][cell]["numpy-compiled_speedup"]
        worst_model = min(matrix, key=lambda m: matrix[m][cell]
                          ["compiled_vs_fast"])
        worst_vs_fast = matrix[worst_model][cell]["compiled_vs_fast"]
        worst_parity = max(parity.values(), key=lambda p: p["max_abs_diff"])
        worst_agreement = (min(row["verdict_agreement"]
                               for row in int8.values()) if int8 else 1.0)
        return {
            "compiled_rnn_speedup": {
                "floor": rnn_floor,
                "value": rnn_speedup,
                "passed": rnn_speedup >= rnn_floor,
            },
            "compiled_ensemble_speedup": {
                "floor": ens_floor,
                "value": ens_speedup,
                "passed": ens_speedup >= ens_floor,
            },
            "compiled_not_slower_than_fast": {
                "floor": vs_fast_floor,
                "value": worst_vs_fast,
                "model": worst_model,
                "passed": worst_vs_fast >= vs_fast_floor,
            },
            "float_backend_parity": {
                "floor": PARITY_ATOL,
                "value": worst_parity["max_abs_diff"],
                "unit": "",
                "passed": worst_parity["max_abs_diff"] <= PARITY_ATOL,
            },
            "int8_verdict_agreement": {
                "floor": INT8_AGREEMENT_FLOOR,
                "value": worst_agreement,
                "unit": "",
                "passed": worst_agreement >= INT8_AGREEMENT_FLOOR,
            },
        }


def gates_pass(report: dict) -> bool:
    return all(gate["passed"] for gate in report["gates"].values())


def format_report(report: dict) -> str:
    lines = [
        f"Backend matrix — gate batch {report['gate_batch']}, "
        f"backends {', '.join(report['backends'])}",
        f"  {'model':<10} {'batch':>5} {'reference':>10} {'fast':>9} "
        f"{'compiled':>9} {'cmp/ref':>8} {'cmp/fast':>9}",
    ]
    for model, rows in report["matrix"].items():
        for key, row in rows.items():
            batch = key.split("_", 1)[1]
            lines.append(
                f"  {model:<10} {batch:>5} {row['reference_s']:>9.4f}s "
                f"{row['numpy-fast_s']:>8.4f}s "
                f"{row['numpy-compiled_s']:>8.4f}s "
                f"{row['numpy-compiled_speedup']:>7.2f}x "
                f"{row['compiled_vs_fast']:>8.2f}x")
    for model, row in report["parity"].items():
        bit = "bitwise" if row["bitwise"] else "NOT bitwise"
        lines.append(f"  parity {model}: max|diff|={row['max_abs_diff']:g} "
                     f"({bit})")
    for model, row in report["int8"].items():
        lines.append(f"  int8 {model}: verdict agreement "
                     f"{100 * row['verdict_agreement']:.1f}% over "
                     f"{row['samples']} samples")
    for name, gate in report["gates"].items():
        verdict = "PASS" if gate["passed"] else "FAIL"
        unit = gate.get("unit", "x")
        lines.append(f"  gate {name}: {gate['value']:g}{unit} vs floor "
                     f"{gate['floor']:g}{unit} — {verdict}")
    return "\n".join(lines)


# -- pytest entry point ------------------------------------------------------

def test_backend_matrix_gates(benchmark):
    """Every backend-matrix gate holds in quick mode."""
    from benchmarks.conftest import write_report

    report = benchmark.pedantic(
        lambda: MatrixRunner(quick=True).run_all(), rounds=1, iterations=1)
    write_report("matrix", format_report(report))
    failed = [name for name, gate in report["gates"].items()
              if not gate["passed"]]
    assert not failed, f"backend matrix gates failed: {failed}"


# -- script entry point (CI bench-matrix-smoke job) --------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short sweep with the smoke floors")
    parser.add_argument("--out",
                        default=os.path.join(REPO_ROOT, "BENCH_matrix.json"))
    args = parser.parse_args(argv)
    report = MatrixRunner(quick=args.quick).run_all()
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(format_report(report))
    print(f"\n[json report written to {args.out}]")
    if not gates_pass(report):
        print("FAIL: a backend-matrix gate fell below its floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
