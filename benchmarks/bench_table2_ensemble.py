"""Table 2 — Top-1 classification of the three architectures.

Paper:  CNN+RNN 87.02%,  CNN+SVM 86.23%,  CNN 73.88%
        (§5.2 IMU-only: RNN 97.44%, SVM 95.37%)

Shape criteria: both ensembles beat the frame-only CNN by double digits;
CNN+RNN >= CNN+SVM; IMU-only RNN > SVM with both in the mid-90s.
"""

from benchmarks.conftest import bench_scale, write_report
from repro.experiments import PAPER_TABLE2, format_table2


def test_table2_report_and_shape(benchmark, table2_result):
    """Print paper-vs-measured and assert the qualitative shape."""
    report = benchmark(format_table2, table2_result)
    timing = "\n".join(
        f"  train[{name}] = {seconds:.1f}s"
        for name, seconds in table2_result.train_seconds.items())
    write_report("table2_ensemble", report + "\nTraining time:\n" + timing)
    if bench_scale().name == "smoke":
        return  # shape criteria only hold at default/full training budgets
    measured = {arch: table2_result.results[arch].top1
                for arch in PAPER_TABLE2}
    # Ensemble >> CNN-only (paper: +13 points).
    assert measured["cnn+rnn"] > measured["cnn"] + 0.05
    assert measured["cnn+svm"] > measured["cnn"] + 0.05
    # The RNN ensemble edges out the SVM ensemble (paper: +0.8).
    assert measured["cnn+rnn"] >= measured["cnn+svm"] - 0.01
    # IMU-only ordering (paper: 97.44 vs 95.37).
    assert table2_result.imu_only["rnn"] > 0.85
    assert table2_result.imu_only["svm"] > 0.80


def test_table2_cnn_rnn_inference_throughput(benchmark, table2_result):
    """Time full-ensemble inference over the evaluation set."""
    ensemble = table2_result.ensembles["cnn+rnn"]
    evaluation = table2_result.evaluation

    probs = benchmark.pedantic(
        lambda: ensemble.predict_proba(evaluation), rounds=3, iterations=1)
    assert probs.shape[0] == len(evaluation)
    benchmark.extra_info["samples"] = len(evaluation)
    benchmark.extra_info["top1"] = table2_result.results["cnn+rnn"].top1


def test_table2_cnn_only_inference_throughput(benchmark, table2_result):
    """Frame-only inference (the latency-critical real-time path)."""
    cnn = table2_result.ensembles["cnn"].cnn
    images = table2_result.evaluation.images

    probs = benchmark.pedantic(lambda: cnn.predict_proba(images),
                               rounds=3, iterations=1)
    assert probs.shape[0] == images.shape[0]
    benchmark.extra_info["samples"] = images.shape[0]


def test_table2_imu_rnn_inference_throughput(benchmark, table2_result):
    """IMU-window inference (runs every 250 ms in deployment)."""
    rnn = table2_result.ensembles["cnn+rnn"].imu_model
    windows = table2_result.evaluation.imu

    probs = benchmark.pedantic(lambda: rnn.predict_proba(windows),
                               rounds=3, iterations=1)
    assert probs.shape == (windows.shape[0], 3)
