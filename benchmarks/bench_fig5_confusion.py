"""Figure 5 — confusion matrices for CNN+RNN / CNN+SVM / CNN.

Shape criteria from the paper's §5.2 narrative:
* the frame-only CNN collapses texting (36% in the paper) into normal
  driving / talking, while the ensembles recover it (87%);
* all architectures over-predict normal driving (high false positives);
* the ensembles pick up a small reaching -> talking error (~5%) that the
  CNN does not have, caused by reaching motion polluting the IMU.
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.experiments import format_fig5
from repro.nn.metrics import normalized_confusion

NORMAL, TALKING, TEXTING, REACHING = 0, 1, 2, 5


def test_fig5_report_and_shape(benchmark, table2_result):
    """Print the three matrices and assert the confusion structure."""
    write_report("fig5_confusion", benchmark(format_fig5, table2_result))
    if bench_scale().name == "smoke":
        return  # shape criteria only hold at default/full training budgets
    cnn = normalized_confusion(table2_result.results["cnn"].confusion)
    ensemble = normalized_confusion(
        table2_result.results["cnn+rnn"].confusion)
    # CNN texting accuracy collapses (paper 36%); ensemble recovers (87%).
    assert cnn[TEXTING, TEXTING] < 0.65
    assert ensemble[TEXTING, TEXTING] > cnn[TEXTING, TEXTING] + 0.2
    # CNN's texting errors flow into the normal/talking attractor.
    leak = cnn[TEXTING, NORMAL] + cnn[TEXTING, TALKING]
    assert leak > 0.25
    # Normal-driving false positives: other classes predicted as normal.
    off_diagonal_normal = cnn[:, NORMAL].sum() - cnn[NORMAL, NORMAL]
    assert off_diagonal_normal > 0.1


def test_fig5_ensemble_cleans_phone_classes(benchmark, table2_result):
    """The IMU modality eliminates most texting/talking/normal noise."""
    cnn = benchmark(normalized_confusion, table2_result.results["cnn"].confusion)
    if bench_scale().name == "smoke":
        return  # shape criteria only hold at default/full training budgets
    ensemble = normalized_confusion(
        table2_result.results["cnn+rnn"].confusion)
    phone = [NORMAL, TALKING, TEXTING]
    cnn_diag = np.mean([cnn[i, i] for i in phone])
    ens_diag = np.mean([ensemble[i, i] for i in phone])
    assert ens_diag > cnn_diag + 0.1


def test_fig5_confusion_computation_throughput(benchmark, table2_result):
    """Time confusion-matrix construction over the evaluation set."""
    from repro.nn.metrics import confusion_matrix
    result = table2_result.results["cnn+rnn"]
    labels = table2_result.evaluation.labels

    matrix = benchmark(confusion_matrix, labels, result.predictions, 6)
    assert matrix.sum() == len(labels)
