"""Ablation — RNN window length.

The paper fixes 20 steps (4 Hz x 5 s).  This ablation sweeps shorter and
longer windows on the same IMU distribution to show where 20 sits on the
accuracy/latency curve (shorter windows = faster detection, less context).
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import ImuSequenceRNN, RnnConfig
from repro.datasets import DrivingBehavior, generate_imu_windows


def _windowed_set(steps: int, n_per: int, seed: int):
    rng = np.random.default_rng(seed)
    windows, labels = [], []
    for cls, behavior in [(0, DrivingBehavior.NORMAL),
                          (1, DrivingBehavior.TALKING),
                          (2, DrivingBehavior.TEXTING)]:
        windows.append(generate_imu_windows(behavior, n_per, steps=steps,
                                            rng=rng))
        labels.append(np.full(n_per, cls))
    x = np.concatenate(windows)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return x[order], y[order]


def test_ablation_window_length(benchmark):
    """Train an RNN per window length and compare eval accuracy."""
    scale = bench_scale()
    n_per = max(30, scale.dataset_samples // 12)
    epochs = max(4, scale.rnn_epochs // 2)
    results = {}
    for steps in (5, 10, 20, 40):
        x, y = _windowed_set(steps, n_per, seed=steps)
        cut = int(0.8 * len(y))
        rnn = ImuSequenceRNN(RnnConfig(window_steps=steps, epochs=epochs),
                             rng=np.random.default_rng(1))
        rnn.fit(x[:cut], y[:cut])
        results[steps] = rnn.evaluate(x[cut:], y[cut:])
        final = (rnn, x[cut:])
    lines = ["Ablation — IMU window length (paper uses 20 = 4 Hz x 5 s)"]
    for steps, score in results.items():
        marker = "  <- paper" if steps == 20 else ""
        lines.append(f"  {steps:>3} steps ({steps / 4.0:4.1f} s): "
                     f"top1 = {score * 100:6.2f}%{marker}")
    write_report("ablation_window", "\n".join(lines))
    rnn, held_out = final
    benchmark.pedantic(lambda: rnn.predict_proba(held_out),
                       rounds=1, iterations=1)
    # Longer context helps: 20 steps beats 5 steps.
    assert results[20] > results[5] - 0.02


def test_ablation_window_inference_scales(benchmark):
    """Inference cost grows with window length; time the paper's 20."""
    x, y = _windowed_set(20, 40, seed=0)
    rnn = ImuSequenceRNN(RnnConfig(epochs=2), rng=np.random.default_rng(2))
    rnn.fit(x, y)

    probs = benchmark(rnn.predict_proba, x)
    assert probs.shape == (len(x), 3)
