"""Extension — adversarial privacy evaluation (paper §5.3 future work).

"Future work is still required to determine how effective these
distortion techniques are for preventing adversarial networks from
performing classification tasks e.g. facial recognition."

We run that study: a driver re-identification CNN trained on exactly the
frames the server receives, per privacy level.  A level is protective to
the degree the adversary collapses toward the majority-class chance floor
while the behaviour dCNN (Table 3) keeps working.
"""

import numpy as np

from benchmarks.conftest import bench_scale, write_report
from repro.core import CnnConfig, PrivacyLevel, run_privacy_adversary_study


def test_ext_privacy_adversary(benchmark, table3_result):
    """Re-identification accuracy per distortion level."""
    scale = bench_scale()
    # Reuse the Table-3 dataset: 18-class frames across 10 drivers.
    images = np.concatenate([table3_result.train.images,
                             table3_result.evaluation.images])
    drivers = np.concatenate([table3_result.train.drivers,
                              table3_result.evaluation.drivers])
    config = CnnConfig(epochs=max(4, scale.cnn_epochs // 2),
                       width=scale.cnn_width)
    results = benchmark.pedantic(
        lambda: run_privacy_adversary_study(
            images, drivers, config=config, rng=np.random.default_rng(3)),
        rounds=1, iterations=1)
    lines = ["Extension — driver re-identification vs. distortion level",
             f"  (10 drivers; chance floor = majority class share)"]
    for name in ("clean", "low", "medium", "high"):
        result = results[name]
        lines.append(
            f"  {name:<7} adversary top1 = {result.accuracy * 100:6.2f}%  "
            f"chance = {result.chance * 100:5.2f}%  "
            f"privacy margin = {result.privacy_margin:.2f}")
    write_report("ext_adversary", "\n".join(lines))
    if bench_scale().name == "smoke":
        return
    # Clean frames leak identity well above chance.
    assert results["clean"].accuracy > results["clean"].chance + 0.1
    # Distortion reduces identity leakage monotonically in level severity.
    assert results["high"].accuracy <= results["clean"].accuracy + 0.02
    assert (results["high"].privacy_margin
            >= results["clean"].privacy_margin - 0.05)
