"""Figure 2 — end-to-end system characterization.

The paper's Figure 2 is the architecture diagram (agents -> controller ->
analytics engine).  This bench exercises that exact path and reports the
pipeline's operational envelope: ingest rate, clock-sync quality, channel
latency, and behaviour under packet loss — plus the local-vs-remote
processing decision of §3.2.
"""

import numpy as np

from benchmarks.conftest import write_report
from repro.experiments import run_fig2
from repro.streaming import (
    NetworkConditions,
    ProcessingLocation,
    decide_processing,
)


def test_fig2_pipeline_characterization(benchmark):
    """Run a 3-class scripted drive end-to-end and time it."""
    seeds = iter(range(10_000))
    result = benchmark.pedantic(
        lambda: run_fig2(seed=next(seeds), segment_seconds=5.0),
        rounds=3, iterations=1)
    lines = [
        "Figure 2 — end-to-end collection pipeline",
        f"  simulated drive duration   {result.duration:8.1f} s",
        f"  IMU readings ingested      {result.readings_received:8d}",
        f"  frames ingested            {result.frames_received:8d}",
        f"  aligned grid steps (4 Hz)  {result.grid_steps:8d}",
        f"  worst clock error          {result.worst_clock_error * 1e3:8.2f} ms",
        f"  mean uplink latency        {result.mean_latency * 1e3:8.2f} ms",
        f"  delivery ratio             {result.delivery_ratio:8.3f}",
        f"  wall-clock per drive       {result.wall_seconds:8.2f} s",
    ]
    write_report("fig2_system", "\n".join(lines))
    assert result.delivery_ratio == 1.0
    assert result.worst_clock_error < 0.05
    benchmark.extra_info["sim_to_wall_ratio"] = (
        result.duration / max(result.wall_seconds, 1e-9))


def test_fig2_pipeline_survives_packet_loss(benchmark):
    """20% loss degrades delivery but the aligned output still forms."""
    result = benchmark.pedantic(
        lambda: run_fig2(seed=3, segment_seconds=4.0, drop_probability=0.2),
        rounds=1, iterations=1)
    assert 0.5 < result.delivery_ratio < 0.95
    assert result.grid_steps > 0


def test_fig2_processing_decision_boundary(benchmark):
    """The controller's local/remote choice across network conditions."""
    conditions = [
        NetworkConditions(bandwidth_bps=b, latency_s=lat, loss_rate=loss)
        for b in (1e4, 1e6, 1e7)
        for lat in (0.01, 1.0)
        for loss in (0.0, 0.3)
    ]

    def decide_all():
        return [decide_processing(c) for c in conditions]

    decisions = benchmark(decide_all)
    assert ProcessingLocation.LOCAL in decisions
    assert ProcessingLocation.REMOTE in decisions
    # Best conditions -> remote; worst -> local.
    best = NetworkConditions(bandwidth_bps=1e7, latency_s=0.01)
    worst = NetworkConditions(bandwidth_bps=1e4, latency_s=1.0,
                              loss_rate=0.3)
    assert decide_processing(best) is ProcessingLocation.REMOTE
    assert decide_processing(worst) is ProcessingLocation.LOCAL
