"""Table 3 — CNN vs dCNN Top-1 on the 18-class alternative dataset.

Paper:  CNN 78.87%,  dCNN-L 80.00%,  dCNN-M 77.78%,  dCNN-H 63.13%

Shape criteria: dCNN-L matches or beats the baseline CNN (the paper's
headline anomaly, attributed to distillation regularizing the overfit
teacher); dCNN-M lands within a few points; dCNN-H drops double digits
but stays far above the 1/18 chance floor.
"""

from benchmarks.conftest import bench_scale, write_report
from repro.core import PrivacyLevel
from repro.experiments import format_table3


def test_table3_report_and_shape(benchmark, table3_result):
    """Print paper-vs-measured and assert the accuracy shape."""
    write_report("table3_privacy", benchmark(format_table3, table3_result))
    if bench_scale().name == "smoke":
        return  # shape criteria only hold at default/full training budgets
    cnn = table3_result.cnn_top1
    dcnn = table3_result.dcnn_top1
    # dCNN-L >= baseline (paper: 80.00 vs 78.87).
    assert dcnn[PrivacyLevel.LOW] >= cnn - 0.02
    # dCNN-M within a handful of points of the baseline.
    assert abs(dcnn[PrivacyLevel.MEDIUM] - cnn) < 0.15
    # dCNN-H well below the best student yet far above chance (1/18).
    # (Anchored to dCNN-L rather than the teacher: small-data teacher
    # accuracy is seed-noisy, the student ordering is not.)
    assert dcnn[PrivacyLevel.HIGH] < dcnn[PrivacyLevel.LOW] - 0.05
    assert dcnn[PrivacyLevel.HIGH] > 3.0 / 18.0
    # Severity ordering.
    assert dcnn[PrivacyLevel.LOW] >= dcnn[PrivacyLevel.MEDIUM] - 0.02
    assert dcnn[PrivacyLevel.MEDIUM] > dcnn[PrivacyLevel.HIGH]


def test_table3_dcnn_inference_throughput(benchmark, table3_result):
    """Server-side dCNN-H inference on distorted frames."""
    student = table3_result.students[PrivacyLevel.HIGH]
    images = table3_result.evaluation.images

    preds = benchmark.pedantic(lambda: student.predict(images),
                               rounds=3, iterations=1)
    assert preds.shape[0] == images.shape[0]
    benchmark.extra_info["top1"] = table3_result.dcnn_top1[PrivacyLevel.HIGH]


def test_table3_teacher_inference_throughput(benchmark, table3_result):
    """Baseline CNN inference on clean frames, for comparison."""
    teacher = table3_result.teacher
    images = table3_result.evaluation.images

    preds = benchmark.pedantic(lambda: teacher.predict(images),
                               rounds=3, iterations=1)
    assert preds.shape[0] == images.shape[0]
    benchmark.extra_info["top1"] = table3_result.cnn_top1
