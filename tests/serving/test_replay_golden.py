"""Golden-verdict replay: the exact delivered sequence is pinned.

A seeded :func:`replay_concurrent_drives` over the package ensemble must
deliver byte-for-byte the same ``(session_id, sequence, predicted,
degraded)`` sequence as the committed fixture — any change to stream
synthesis, session bookkeeping, scheduling order, or the inference fast
path that shifts a single verdict shows up here.

Regenerate deliberately after an intended behaviour change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/serving/test_replay_golden.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.serving import replay_concurrent_drives

GOLDEN_PATH = Path(__file__).parent.parent / "fixtures" / \
    "replay_golden_verdicts.json"

REPLAY_ARGS = dict(drivers=2, duration=3.0, kill_camera=1, seed=11)


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["numpy-fast", "numpy-compiled"])
def test_replay_matches_golden_verdict_sequence(serving_ensemble, backend):
    """Every float backend must reproduce the one committed sequence.

    ``numpy-compiled`` shares this fixture with the default fast path on
    purpose: compiled plans are bit-exact by contract, so a single
    verdict of drift under either backend fails the same assertion.
    """
    report = replay_concurrent_drives(serving_ensemble, backend=backend,
                                      **REPLAY_ARGS)
    if os.environ.get("REGEN_GOLDEN"):
        if backend != "numpy-fast":
            pytest.skip("fixture regenerates under the default backend only")
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(
            {"replay_args": REPLAY_ARGS, "verdicts": report.verdict_log},
            indent=1) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["replay_args"] == REPLAY_ARGS
    assert len(report.verdict_log) == len(golden["verdicts"])
    for index, (got, want) in enumerate(
            zip(report.verdict_log, golden["verdicts"])):
        assert got == want, f"verdict #{index} diverged under {backend}"


@pytest.mark.slow
def test_replay_verdict_log_is_deterministic(serving_ensemble):
    """Two identically seeded replays deliver identical sequences."""
    first = replay_concurrent_drives(serving_ensemble, **REPLAY_ARGS)
    second = replay_concurrent_drives(serving_ensemble, **REPLAY_ARGS)
    assert first.verdict_log == second.verdict_log
    assert len(first.verdict_log) == first.verdicts
