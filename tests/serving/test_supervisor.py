"""Shard supervisor: routing, watchdog failover, migration, restart
backoff, and the request degradation ladder."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    ServingError,
    ShardTimeoutError,
    ShardUnavailableError,
)
from repro.serving import HashRing, ShardSupervisor
from repro.serving.journal import KIND_DEFERRED, KIND_VERDICT
from repro.serving.supervisor import SHARD_DOWN, SHARD_UP


class StubResult:
    def __init__(self, count, degraded):
        self.predictions = np.full(count, 2, dtype=np.int64)
        self.probabilities = np.full((count, 5), 0.2)
        self.confidence = np.full(count, 0.9)
        self.degraded = degraded
        self.missing = ("frames",) if degraded else ()


class StubModel:
    """predict_degraded-shaped stand-in: no training, instant answers."""

    def predict_degraded(self, images=None, imu=None):
        count = len(imu) if imu is not None else len(images)
        return StubResult(count, images is None)


def make_supervisor(**overrides):
    options = dict(shards=3, degraded_after=0.5, silent_after=1.0,
                   checkpoint_interval=0.5, backoff_base=1.0,
                   backoff_cap=4.0, request_deadline=2.0,
                   heartbeat_interval=0.25,
                   server_options={"max_batch": 8, "max_delay": 0.02})
    options.update(overrides)
    return ShardSupervisor(StubModel(), **options)


def run_drive(supervisor, session_ids, *, start=0.0, until, step=0.25,
              rng=None, before_step=None):
    """Ingest + request + supervise on a fixed grid."""
    rng = rng or np.random.default_rng(0)
    now = start
    while now < until:
        if before_step is not None:
            before_step(now)
        for sid in session_ids:
            supervisor.ingest_imu(sid, now, rng.normal(size=12))
            supervisor.request_verdict(sid, now)
        supervisor.step(now)
        now += step
    return now


# -- hash ring ------------------------------------------------------------


def test_ring_routes_deterministically():
    ring = HashRing()
    for name in ("a", "b", "c"):
        ring.add(name)
    routes = {f"k{i}": ring.route(f"k{i}") for i in range(50)}
    assert routes == {f"k{i}": ring.route(f"k{i}") for i in range(50)}
    assert len(set(routes.values())) == 3  # every shard owns a slice


def test_ring_removal_only_moves_the_dead_slice():
    ring = HashRing()
    for name in ("a", "b", "c"):
        ring.add(name)
    before = {f"k{i}": ring.route(f"k{i}") for i in range(100)}
    ring.remove("b")
    for key, owner in before.items():
        if owner != "b":
            assert ring.route(key) == owner  # survivors keep their keys


def test_ring_exclude_and_empty():
    ring = HashRing()
    assert ring.route("k") is None
    ring.add("only")
    assert ring.route("k", exclude={"only"}) is None


# -- supervisor basics ----------------------------------------------------


def test_invalid_configuration_raises():
    with pytest.raises(ConfigurationError):
        make_supervisor(shards=0)
    with pytest.raises(ConfigurationError):
        make_supervisor(backoff_base=0.0)
    with pytest.raises(ConfigurationError):
        make_supervisor(request_deadline=0.0)


def test_sessions_route_to_their_hash_home():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(8)]
        for sid in sids:
            assert supervisor.assignment(sid) == supervisor.ring.route(sid)
        with pytest.raises(ServingError):
            supervisor.open_session(0)  # duplicate session id
        supervisor.close_session(sids[0])
        assert sids[0] not in supervisor.sessions
    finally:
        supervisor.close()


def test_happy_path_delivers_every_window():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(4)]
        end = run_drive(supervisor, sids, until=5.0)
        supervisor.drain(end)
        assert supervisor.stats["deaths"] == 0
        requested = 4 * 20
        assert len(supervisor.delivered_ids) == requested
        assert len(supervisor.deferred_ids) == 0
        assert len(supervisor.sink.delivered) == requested
    finally:
        supervisor.close()


def test_crashed_shard_handle_refuses_calls():
    supervisor = make_supervisor()
    try:
        handle = supervisor.shard("shard-0")
        handle.crashed = True
        with pytest.raises(ShardUnavailableError):
            handle.heartbeat(0.0)
        handle.crashed = False
        handle.hung = True
        with pytest.raises(ShardTimeoutError):
            handle.step(0.0)
    finally:
        supervisor.close()


# -- failover -------------------------------------------------------------


def crash_and_settle(supervisor, sids, *, crash_at=3.0, until=12.0):
    victims = {}

    def chaos(now):
        if now >= crash_at and not victims:
            name = supervisor.assignment(sids[0])
            victims["name"] = name
            supervisor.shard(name).crashed = True

    end = run_drive(supervisor, sids, until=until, before_step=chaos)
    supervisor.drain(end)
    return victims["name"]


def test_watchdog_detects_death_and_migrates():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(4)]
        victim = crash_and_settle(supervisor, sids)
        stats = supervisor.stats
        assert stats["deaths"] == 1
        assert stats["restarts"] == 1
        assert stats["migrations"] >= 1
        # The victim's sessions ended up supervised by a live shard.
        for sid in sids:
            owner = supervisor.assignment(sid)
            assert owner is not None
            assert supervisor.shard(owner).state == SHARD_UP
        # Checkpoint migration happened away from the dead shard.
        away = [m for m in supervisor.migrations if m.source == victim]
        assert away and all(m.via == "checkpoint" for m in away)
    finally:
        supervisor.close()


def test_failover_loses_no_windows():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(4)]
        crash_and_settle(supervisor, sids)
        requested = 4 * int(12.0 / 0.25)
        resolved = supervisor.delivered_ids | supervisor.deferred_ids
        assert len(resolved) == requested
        assert not (supervisor.delivered_ids & supervisor.deferred_ids)
        # Durability: every resolved window is in the journal.
        replay = supervisor.journal.replay()
        assert replay.ids >= resolved
        assert replay.torn == 0
        kinds = {r.record_id: r.kind for r in replay.records}
        assert all(kinds[key] == KIND_VERDICT
                   for key in supervisor.delivered_ids)
        assert all(kinds[key] == KIND_DEFERRED
                   for key in supervisor.deferred_ids)
        # Exactly-once downstream.
        downstream_ids = [r.record_id for r in supervisor.sink.delivered]
        assert len(downstream_ids) == len(set(downstream_ids))
    finally:
        supervisor.close()


def test_close_on_crashed_shard_never_resurrects_the_session():
    """Closing a session whose shard has crashed — but the watchdog has
    not noticed yet — must fully forget it: the later death sweep must
    neither raise nor migrate the closed session onto a survivor."""
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(4)]
        end = run_drive(supervisor, sids, until=1.0)
        victim_sid = sids[0]
        home = supervisor.assignment(victim_sid)
        supervisor.shard(home).crashed = True  # dead but undetected
        supervisor.close_session(victim_sid)   # evict fails under the hood
        assert victim_sid not in supervisor.shard(home).sessions
        now = end
        while supervisor.shard(home).state == SHARD_UP:
            supervisor.step(now)  # death sweep must not KeyError
            now += 0.25
        assert victim_sid not in supervisor.sessions
        assert not any(m.session_id == victim_sid
                       for m in supervisor.migrations)
        with pytest.raises(ServingError):
            supervisor.assignment(victim_sid)
    finally:
        supervisor.close()


def test_migrated_ring_state_is_bit_exact():
    supervisor = make_supervisor(checkpoint_interval=0.25)
    try:
        sid = supervisor.open_session(0)
        rng = np.random.default_rng(1)
        samples = [rng.normal(size=12) for _ in range(10)]
        for k, sample in enumerate(samples):
            now = 0.25 * k
            supervisor.ingest_imu(sid, now, sample)
            supervisor.step(now)
        home = supervisor.assignment(sid)
        expected = supervisor.shard(home).export_session(sid).window()
        supervisor.shard(home).crashed = True
        now = 2.5
        while supervisor.assignment(sid) == home:
            supervisor.step(now)
            now += 0.25
        adoptee = supervisor.assignment(sid)
        migrated = supervisor.shard(adoptee).export_session(sid).window()
        np.testing.assert_array_equal(migrated, expected)
    finally:
        supervisor.close()


def test_restart_backoff_doubles():
    supervisor = make_supervisor(shards=2, backoff_base=1.0,
                                 backoff_factor=2.0, backoff_cap=4.0)
    try:
        handle = supervisor.shard("shard-0")
        observed = []
        now = 0.0
        for _ in range(4):
            handle.crashed = True
            while handle.state == SHARD_UP:
                supervisor.step(now)
                now += 0.25
            observed.append(handle.backoff)
            while handle.state == SHARD_DOWN:
                supervisor.step(now)
                now += 0.25
        assert observed == [1.0, 2.0, 4.0, 4.0]  # doubling, then capped
        assert supervisor.stats["restarts"] == 4
        assert len(supervisor.recovery_times) == 4
    finally:
        supervisor.close()


def test_restarted_shard_gets_its_home_sessions_back_live():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(6)]
        victim = crash_and_settle(supervisor, sids, until=15.0)
        home_again = [sid for sid in sids
                      if supervisor.ring.route(sid) == victim]
        assert home_again  # the victim is back in the ring with its slice
        for sid in home_again:
            assert supervisor.assignment(sid) == victim
        back = [m for m in supervisor.migrations
                if m.target == victim and m.via == "live"]
        assert back  # rebalance used live eviction, not a stale checkpoint
    finally:
        supervisor.close()


def test_hung_shard_is_declared_dead_and_replaced():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(4)]

        def chaos(now):
            if now >= 3.0:
                handle = supervisor.shard("shard-0")
                if handle.state == SHARD_UP and handle.restarts == 0:
                    handle.hung = True

        end = run_drive(supervisor, sids, until=12.0, before_step=chaos)
        supervisor.drain(end)
        assert supervisor.stats["deaths"] >= 1
        requested = 4 * int(12.0 / 0.25)
        resolved = supervisor.delivered_ids | supervisor.deferred_ids
        assert len(resolved) == requested
    finally:
        supervisor.close()


# -- degradation ladder ---------------------------------------------------


def test_all_shards_down_defers_instead_of_losing():
    supervisor = make_supervisor(shards=2)
    try:
        sid = supervisor.open_session(0)
        for name in supervisor.shard_names:
            supervisor.shard(name).crashed = True
        now = 0.0
        while supervisor.shards_up:  # let the watchdog declare both dead
            supervisor.ingest_imu(sid, now, np.zeros(12))
            supervisor.request_verdict(sid, now)
            supervisor.step(now)
            now += 0.25
        window_id = supervisor.request_verdict(sid, now)
        assert (sid, window_id) in supervisor.deferred_ids
        assert supervisor.assignment(sid) is None  # parked, not lost
        replay = supervisor.journal.replay()
        assert (sid, window_id) in replay.ids
    finally:
        supervisor.close()


def test_expired_request_is_journaled_and_deferred():
    # A tiny deadline with a huge batch threshold: requests sit in the
    # queue past expiry and must come back as deferred, not vanish.
    supervisor = make_supervisor(
        request_deadline=0.1,
        server_options={"max_batch": 64, "max_delay": 30.0})
    try:
        sid = supervisor.open_session(0)
        supervisor.ingest_imu(sid, 0.0, np.zeros(12))
        window_id = supervisor.request_verdict(sid, 0.0)
        supervisor.step(1.0)  # past expires_at=0.1
        assert (sid, window_id) in supervisor.deferred_ids
        assert supervisor.pending_windows == 0
    finally:
        supervisor.close()


def test_metrics_snapshot_carries_resilience_series():
    supervisor = make_supervisor()
    try:
        sids = [supervisor.open_session(d) for d in range(3)]
        crash_and_settle(supervisor, sids, until=10.0)
        names = {entry["name"]
                 for entry in supervisor.metrics_snapshot()["metrics"]}
        assert {"serving_supervisor_restarts_total",
                "serving_supervisor_migrations_total",
                "serving_supervisor_shards_up",
                "serving_supervisor_recovery_seconds",
                "serving_journal_disk_bytes",
                "serving_sink_delivered_total"} <= names
        assert supervisor.recovery_p99 > 0.0
    finally:
        supervisor.close()
