"""Micro-batch scheduler: flush triggers, grouping, priority shedding."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import (
    MODALITY_BOTH,
    MODALITY_FRAMES,
    MODALITY_IMU,
    InferenceRequest,
    MicroBatchScheduler,
)

_COUNTER = iter(range(10_000))


def make_request(priority=0.0, *, session_id="s0", model_key="base",
                 now=0.0, deadline=None, window=True, frame=True):
    return InferenceRequest(
        session_id=session_id,
        sequence=next(_COUNTER),
        submitted_at=now,
        deadline=now + 0.025 if deadline is None else deadline,
        priority=priority,
        model_key=model_key,
        window=np.zeros((4, 12)) if window else None,
        frame=np.zeros((1, 8, 8)) if frame else None,
    )


def test_modality_property():
    assert make_request().modality == MODALITY_BOTH
    assert make_request(frame=False).modality == MODALITY_IMU
    assert make_request(window=False).modality == MODALITY_FRAMES
    with pytest.raises(ConfigurationError):
        _ = make_request(window=False, frame=False).modality


def test_flush_on_batch_size():
    scheduler = MicroBatchScheduler(max_batch=2, max_delay=10.0)
    scheduler.submit(make_request(), 0.0)
    assert not scheduler.due(0.0)
    scheduler.submit(make_request(), 0.0)
    assert scheduler.due(0.0)
    (batch,) = scheduler.flush(0.0)
    assert len(batch) == 2
    assert scheduler.depth == 0


def test_flush_on_deadline():
    scheduler = MicroBatchScheduler(max_batch=32, max_delay=0.025)
    scheduler.submit(make_request(now=0.0), 0.0)
    assert not scheduler.due(0.01)
    assert scheduler.flush(0.01) == []
    assert scheduler.due(0.03)
    (batch,) = scheduler.flush(0.03)
    assert len(batch) == 1


def test_groups_do_not_mix():
    scheduler = MicroBatchScheduler(max_batch=8, max_delay=0.0)
    scheduler.submit(make_request(model_key="a"), 0.0)
    scheduler.submit(make_request(model_key="a", frame=False), 0.0)
    scheduler.submit(make_request(model_key="b"), 0.0)
    batches = scheduler.flush(1.0)
    groups = sorted((b.model_key, b.modality) for b in batches)
    assert groups == [("a", MODALITY_BOTH), ("a", MODALITY_IMU),
                      ("b", MODALITY_BOTH)]


def test_priority_dispatch_order():
    scheduler = MicroBatchScheduler(max_batch=2, max_delay=0.0)
    low = make_request(0.0)
    mid = make_request(1.0)
    high = make_request(2.0)
    for request in (low, mid, high):
        scheduler.submit(request, 0.0)
    first, second = scheduler.flush(1.0)
    # Alert-adjacent (high-priority) sessions ride in the first batch.
    assert [r.priority for r in first.requests] == [2.0, 1.0]
    assert [r.priority for r in second.requests] == [0.0]


def test_capacity_sheds_lowest_priority():
    scheduler = MicroBatchScheduler(max_batch=32, max_delay=10.0, capacity=2)
    victim = make_request(0.0, session_id="cold")
    scheduler.submit(victim, 0.0)
    scheduler.submit(make_request(1.0), 0.0)
    assert scheduler.submit(make_request(2.0, session_id="hot"), 0.0)
    assert scheduler.depth == 2
    assert scheduler.stats.shed == 1
    queued = [r for b in scheduler.flush(0.0, force=True)
              for r in b.requests]
    assert victim not in queued


def test_capacity_rejects_incoming_lowest():
    scheduler = MicroBatchScheduler(max_batch=32, max_delay=10.0, capacity=2)
    scheduler.submit(make_request(1.0), 0.0)
    scheduler.submit(make_request(1.0), 0.0)
    assert not scheduler.submit(make_request(1.0), 0.0)
    assert scheduler.stats.rejected == 1
    assert scheduler.stats.shed == 0


def test_stats_track_batching():
    scheduler = MicroBatchScheduler(max_batch=2, max_delay=0.0)
    for _ in range(3):
        scheduler.submit(make_request(), 0.0)
    scheduler.flush(1.0)
    stats = scheduler.stats
    assert (stats.submitted, stats.dispatched, stats.batches) == (3, 3, 2)
    assert stats.max_batch_size == 2
    assert stats.mean_batch_size == pytest.approx(1.5)


def test_invalid_configuration_raises():
    with pytest.raises(ConfigurationError):
        MicroBatchScheduler(max_batch=0)
    with pytest.raises(ConfigurationError):
        MicroBatchScheduler(capacity=0)
    with pytest.raises(ConfigurationError):
        MicroBatchScheduler(max_delay=-1.0)


def test_requeued_requests_keep_head_of_line_standing():
    """Regression: a retried request must dispatch before newly arrived
    higher-priority work, not be reordered into a second delay."""
    scheduler = MicroBatchScheduler(max_batch=2, max_delay=0.0)
    retried = make_request(0.0, session_id="retried")
    retried.retries = 1
    scheduler.submit(make_request(1.0), 0.0)
    scheduler.requeue([retried])
    # A high-priority batch arrives AFTER the requeue.
    scheduler.submit(make_request(5.0, session_id="vip"), 0.0)
    scheduler.submit(make_request(4.0), 0.0)
    first = scheduler.flush(1.0)[0]
    assert first.requests[0] is retried
    assert scheduler.stats.requeued == 1


def test_requeue_bypasses_capacity():
    scheduler = MicroBatchScheduler(max_batch=8, max_delay=10.0, capacity=2)
    scheduler.submit(make_request(1.0), 0.0)
    scheduler.submit(make_request(1.0), 0.0)
    retried = make_request(0.0)
    retried.retries = 1
    scheduler.requeue([retried])  # over capacity, still admitted
    assert scheduler.depth == 3
    assert scheduler.stats.shed == 0


def test_shedding_victimizes_fresh_requests_before_retried():
    scheduler = MicroBatchScheduler(max_batch=8, max_delay=10.0, capacity=2)
    retried = make_request(0.0, session_id="retried")
    retried.retries = 1
    fresh = make_request(0.5, session_id="fresh")
    scheduler.submit(fresh, 0.0)
    scheduler.requeue([retried])
    # Capacity pressure: the fresh request is shed even though the
    # retried one has strictly lower priority.
    assert scheduler.submit(make_request(3.0, session_id="hot"), 0.0)
    queued = [r for b in scheduler.flush(0.0, force=True)
              for r in b.requests]
    assert retried in queued
    assert fresh not in queued


def test_pop_expired_removes_only_expired_requests():
    scheduler = MicroBatchScheduler(max_batch=32, max_delay=10.0)
    expiring = make_request(1.0, session_id="late")
    expiring.expires_at = 1.0
    keeper = make_request(0.0, session_id="fine")
    scheduler.submit(expiring, 0.0)
    scheduler.submit(keeper, 0.0)
    assert scheduler.pop_expired(0.5) == []
    popped = scheduler.pop_expired(1.5)
    assert popped == [expiring]
    assert scheduler.stats.expired == 1
    assert scheduler.depth == 1
    remaining = [r for b in scheduler.flush(20.0, force=True)
                 for r in b.requests]
    assert remaining == [keeper]
