"""Session checkpoint/restore: bit-exact state, interval store, npz
persistence."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import (
    CheckpointStore,
    DriverSession,
    load_checkpoint,
    save_checkpoint,
)


def drive_session(steps, *, window_steps=8, with_frame=True):
    session = DriverSession(session_id="drv-0", driver_id=0,
                            window_steps=window_steps, base_priority=0.5)
    rng = np.random.default_rng(3)
    for k in range(steps):
        session.ingest_imu(0.25 * k, rng.normal(size=12))
    if with_frame:
        session.ingest_frame(0.25 * steps, rng.random((8, 8)))
    session.next_sequence()
    session.record_verdict(2, degraded=True)
    return session


@pytest.mark.parametrize("steps", [3, 8, 13])
def test_restore_is_bit_exact(steps):
    """Partial, exactly-full and wrapped rings all restore bit-exact."""
    source = drive_session(steps)
    restored = DriverSession.from_state(source.export_state())
    np.testing.assert_array_equal(restored.window(), source.window())
    assert restored.window().dtype == np.float64
    np.testing.assert_array_equal(restored.latest_frame(),
                                  source.latest_frame())
    assert restored.counters == source.counters
    assert restored.next_sequence() == source.next_sequence()
    assert restored.alert_adjacent and restored.degraded
    assert restored.priority(0.0) == source.priority(0.0)


def test_restore_continues_the_ring_identically():
    """Post-restore ingest must land exactly where the source's would."""
    source = drive_session(13, window_steps=8)
    restored = DriverSession.from_state(source.export_state())
    sample = np.arange(12, dtype=np.float64)
    source.ingest_imu(9.0, sample)
    restored.ingest_imu(9.0, sample)
    np.testing.assert_array_equal(restored.window(), source.window())


def test_export_is_a_copy_not_a_view():
    source = drive_session(5)
    state = source.export_state()
    before = state["buffer"].copy()
    source.ingest_imu(99.0, np.ones(12))
    np.testing.assert_array_equal(state["buffer"], before)


def test_restore_validates_buffer_shape():
    state = drive_session(3).export_state()
    state["window_steps"] = 99
    with pytest.raises(ConfigurationError):
        DriverSession.from_state(state)


def test_checkpoint_object_restores():
    store = CheckpointStore(interval=1.0)
    checkpoint = store.take(drive_session(6), now=2.5)
    assert checkpoint.taken_at == 2.5
    restored = checkpoint.restore()
    assert restored.session_id == "drv-0"
    assert restored.counters.imu_samples == 6


def test_store_interval_gating():
    store = CheckpointStore(interval=1.0)
    session = drive_session(4)
    assert store.due("drv-0", 0.0)  # no checkpoint yet
    assert store.maybe_take(session, 0.0) is not None
    assert store.maybe_take(session, 0.5) is None  # too soon
    assert store.maybe_take(session, 1.0) is not None
    assert store.taken == 2
    assert store.latest("drv-0").taken_at == 1.0


def test_store_restore_and_discard():
    store = CheckpointStore(interval=1.0)
    store.take(drive_session(4), 0.0)
    assert store.restore("drv-0") is not None
    assert store.restored == 1
    store.discard("drv-0")
    assert store.restore("drv-0") is None
    assert store.restore("never-seen") is None
    assert store.session_ids == []


def test_npz_round_trip(tmp_path):
    path = str(tmp_path / "drv-0.npz")
    store = CheckpointStore(interval=1.0)
    source = drive_session(10)
    save_checkpoint(path, store.take(source, 3.0))
    loaded = load_checkpoint(path)
    assert loaded.taken_at == 3.0
    restored = loaded.restore()
    np.testing.assert_array_equal(restored.window(), source.window())
    np.testing.assert_array_equal(restored.latest_frame(),
                                  source.latest_frame())
    assert restored.counters == source.counters


def test_npz_round_trip_without_frame(tmp_path):
    path = str(tmp_path / "drv-0.npz")
    checkpoint = CheckpointStore().take(
        drive_session(4, with_frame=False), 0.0)
    save_checkpoint(path, checkpoint)
    assert load_checkpoint(path).restore().latest_frame() is None


def test_directory_persistence_survives_restart(tmp_path):
    directory = str(tmp_path / "checkpoints")
    store = CheckpointStore(interval=1.0, directory=directory)
    store.take(drive_session(7), 1.0)
    # A brand-new store (serving process restart) rebuilds from disk.
    reborn = CheckpointStore(interval=1.0, directory=directory)
    assert reborn.load_directory() == 1
    assert reborn.session_ids == ["drv-0"]
    restored = reborn.restore("drv-0")
    np.testing.assert_array_equal(restored.window(),
                                  drive_session(7).window())
    reborn.discard("drv-0")
    assert CheckpointStore(interval=1.0,
                           directory=directory).load_directory() == 0


def test_invalid_interval_raises():
    with pytest.raises(ConfigurationError):
        CheckpointStore(interval=0.0)
