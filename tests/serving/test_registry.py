"""Model registry: lazy loading, ladder routing, hot swap."""

import pytest

from repro.exceptions import ConfigurationError, ServingError
from repro.serving import ServingModelRegistry


class FakeModel:
    def __init__(self, tag):
        self.tag = tag


def test_register_requires_exactly_one_source():
    registry = ServingModelRegistry()
    with pytest.raises(ConfigurationError):
        registry.register("a")
    with pytest.raises(ConfigurationError):
        registry.register("a", FakeModel("a"), loader=lambda: FakeModel("a"))


def test_register_twice_raises():
    registry = ServingModelRegistry()
    registry.register("a", FakeModel("a"))
    with pytest.raises(ConfigurationError):
        registry.register("a", FakeModel("a2"))


def test_first_registered_is_default():
    registry = ServingModelRegistry()
    registry.register("full", FakeModel("full"))
    registry.register("lite", FakeModel("lite"))
    assert registry.default == "full"
    assert registry.route(None) == "full"


def test_lazy_loader_loads_once_and_counts():
    loads = []
    registry = ServingModelRegistry()
    registry.register("lazy",
                      loader=lambda: loads.append(1) or FakeModel("lazy"))
    record = registry.record("lazy")
    assert not record.loaded
    first = registry.get("lazy")
    second = registry.get("lazy")
    assert first is second
    assert loads == [1]
    assert (record.loads, record.hits) == (1, 2)


def test_warm_forces_all_loads():
    registry = ServingModelRegistry()
    registry.register("a", loader=lambda: FakeModel("a"))
    registry.register("b", loader=lambda: FakeModel("b"))
    registry.warm()
    assert registry.record("a").loaded and registry.record("b").loaded


def test_get_unknown_raises():
    with pytest.raises(ServingError):
        ServingModelRegistry().get("nope")


def test_route_walks_ladder_down():
    registry = ServingModelRegistry()
    registry.register("full", FakeModel("full"))
    registry.register("med", FakeModel("med"))
    registry.bind(None, "full")
    registry.bind("medium", "med")
    assert registry.route("medium") == "med"
    # No "high" variant: fall back down the ladder to the nearest one.
    assert registry.route("high") == "med"
    # No "low" variant either: keep walking to the undistorted rung.
    assert registry.route("low") == "full"


def test_route_falls_back_to_default_without_routes():
    registry = ServingModelRegistry()
    registry.register("only", FakeModel("only"))
    assert registry.route("high") == "only"


def test_route_unknown_level_raises():
    registry = ServingModelRegistry()
    registry.register("a", FakeModel("a"))
    with pytest.raises(ConfigurationError):
        registry.route("extreme")
    with pytest.raises(ConfigurationError):
        registry.bind("extreme", "a")


def test_empty_registry_route_raises():
    with pytest.raises(ServingError):
        ServingModelRegistry().route(None)


def test_swap_bumps_generation_keeps_old_reference():
    registry = ServingModelRegistry()
    old = FakeModel("v1")
    registry.register("base", old)
    held = registry.get("base")  # a dispatched batch holds this reference
    generation = registry.swap("base", FakeModel("v2"))
    assert generation == 2
    assert registry.swaps == 1
    assert held is old
    assert registry.get("base").tag == "v2"
    with pytest.raises(ServingError):
        registry.swap("nope", FakeModel("x"))
    with pytest.raises(ConfigurationError):
        registry.swap("base", None)


def test_register_store_roundtrip(serving_ensemble, tmp_path):
    from repro.core.model_store import save_ensemble

    directory = str(tmp_path / "variant")
    save_ensemble(serving_ensemble, directory)
    registry = ServingModelRegistry()
    registry.register_store("stored", directory)
    assert not registry.record("stored").loaded
    model = registry.get("stored")
    assert hasattr(model, "predict_degraded")
    assert registry.record("stored").loads == 1


# -- thread safety ---------------------------------------------------------


def test_concurrent_lazy_gets_load_exactly_once():
    import threading
    import time

    loads = []

    def slow_loader():
        loads.append(1)
        time.sleep(0.02)  # widen the check-then-load race window
        return FakeModel("lazy")

    registry = ServingModelRegistry()
    registry.register("lazy", loader=slow_loader)
    barrier = threading.Barrier(8)
    results = []

    def reader():
        barrier.wait()
        results.append(registry.get("lazy"))

    threads = [threading.Thread(target=reader) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert loads == [1]  # the loader ran once, not once per racer
    assert all(model is results[0] for model in results)
    assert registry.record("lazy").hits == 8


def test_swap_races_never_expose_a_missing_model():
    import threading

    registry = ServingModelRegistry()
    registry.register("edge", FakeModel("v0"))
    stop = threading.Event()
    errors = []

    def swapper():
        generation = 0
        while not stop.is_set():
            generation += 1
            registry.swap("edge", FakeModel(f"v{generation}"))

    def reader():
        while not stop.is_set():
            try:
                model = registry.get("edge")
                if not model.tag.startswith("v"):
                    errors.append(f"garbage model {model.tag!r}")
            except Exception as error:  # noqa: BLE001 — the assertion
                errors.append(repr(error))

    threads = [threading.Thread(target=swapper)] + [
        threading.Thread(target=reader) for _ in range(4)]
    for thread in threads:
        thread.start()
    import time

    time.sleep(0.3)
    stop.set()
    for thread in threads:
        thread.join()
    assert errors == []
    assert registry.swaps > 0
