"""Concurrent replay: full coverage, degraded verdicts after camera kill."""

from repro.serving import replay_concurrent_drives


def test_replay_delivers_one_verdict_per_instant_per_driver(
        serving_ensemble):
    report = replay_concurrent_drives(
        serving_ensemble, drivers=3, duration=4.0, kill_camera=1, seed=3)
    assert report.instants == 16
    assert report.verdicts == report.drivers * report.instants
    assert all(count == report.instants
               for count in report.verdicts_per_session.values())
    assert report.rejected == 0 and report.unservable == 0

    # The killed driver keeps getting verdicts — degraded, not silent.
    (killed,) = report.killed_sessions
    assert report.verdicts_per_session[killed] == report.instants
    assert report.degraded_per_session[killed] > 0
    # Survivors never degrade: their camera stream stays live throughout.
    for sid, count in report.degraded_per_session.items():
        if sid != killed:
            assert count == 0

    assert report.throughput_rps > 0
    assert report.mean_batch_size > 1.0


def test_replay_report_text(serving_ensemble):
    report = replay_concurrent_drives(
        serving_ensemble, drivers=2, duration=2.0, kill_camera=1, seed=0)
    text = report.format_report()
    assert "2 concurrent drivers" in text
    assert "camera killed mid-replay" in text
    assert report.killed_sessions[0] in text
