"""InferenceServer end-to-end: verdicts, degradation, batching, hot swap."""

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import (
    AdmissionController,
    InferenceServer,
    ServingModelRegistry,
)


def feed(server, session_id, dataset, sample, *, instants=4, period=0.25,
         frames=True, start=0.0):
    """Stream one dataset sample's window/image into a session."""
    window = dataset.imu[sample]
    for k in range(instants):
        now = start + period * k
        server.ingest_imu(session_id, now, window[k % window.shape[0]])
        if frames:
            server.ingest_frame(session_id, now, dataset.images[sample])
    return start + period * (instants - 1)


def test_full_modality_verdict(serving_ensemble, tiny_driving_dataset):
    server = InferenceServer.for_model(serving_ensemble, max_batch=4)
    sid = server.open_session(0)
    now = feed(server, sid, tiny_driving_dataset, sample=0)
    assert server.request_verdict(sid, now)
    verdicts = server.step(now + server.scheduler.max_delay)
    assert len(verdicts) == 1
    verdict = verdicts[0]
    assert verdict.session_id == sid
    assert not verdict.degraded
    assert verdict.missing == ()
    assert verdict.probabilities.shape[-1] >= 2
    np.testing.assert_allclose(verdict.probabilities.sum(), 1.0, atol=1e-6)
    assert 0.0 <= verdict.confidence <= 1.0
    assert server.poll(sid) == [verdict]
    assert server.poll(sid) == []  # outbox drained


def test_stale_camera_degrades_instead_of_silencing(
        serving_ensemble, tiny_driving_dataset):
    server = InferenceServer.for_model(serving_ensemble)
    sid = server.open_session(1)
    server.ingest_frame(sid, 0.0, tiny_driving_dataset.images[1])
    window = tiny_driving_dataset.imu[1]
    for k in range(4):
        server.ingest_imu(sid, 5.0 + 0.25 * k, window[k])
    now = 5.75  # camera last seen 5.75 s ago, stale_after is 1.0
    assert server.request_verdict(sid, now)
    (verdict,) = server.drain(now)
    assert verdict.degraded
    assert "frames" in verdict.missing
    assert server.session(sid).counters.degraded_verdicts == 1


def test_unservable_when_all_streams_dead(serving_ensemble):
    server = InferenceServer.for_model(serving_ensemble)
    sid = server.open_session(2)
    assert not server.request_verdict(sid, 0.0)
    assert server.stats.unservable == 1


def test_sessions_coalesce_into_one_batch(
        serving_ensemble, tiny_driving_dataset):
    server = InferenceServer.for_model(serving_ensemble, max_batch=8)
    sids = [server.open_session(d) for d in range(3)]
    for index, sid in enumerate(sids):
        feed(server, sid, tiny_driving_dataset, sample=index)
    for sid in sids:
        assert server.request_verdict(sid, 0.75)
    verdicts = server.step(0.75 + server.scheduler.max_delay)
    assert len(verdicts) == 3
    assert all(v.batch_size == 3 for v in verdicts)
    assert server.scheduler.stats.batches == 1


def test_batched_matches_unbatched_predictions(
        serving_ensemble, tiny_driving_dataset):
    def serve(max_batch):
        server = InferenceServer.for_model(serving_ensemble,
                                           max_batch=max_batch)
        results = {}
        sids = [server.open_session(d) for d in range(4)]
        for index, sid in enumerate(sids):
            feed(server, sid, tiny_driving_dataset, sample=10 + index)
        for sid in sids:
            server.request_verdict(sid, 0.75)
            if max_batch == 1:
                for verdict in server.drain(0.75):
                    results[verdict.session_id] = verdict.predicted
        for verdict in server.drain(0.75):
            results[verdict.session_id] = verdict.predicted
        return results

    assert serve(max_batch=4) == serve(max_batch=1)


def test_hot_swap_applies_to_queued_requests(
        serving_ensemble, tiny_driving_dataset):
    registry = ServingModelRegistry()
    registry.register("base", serving_ensemble)
    server = InferenceServer(registry, max_batch=8)
    sid = server.open_session(0)
    now = feed(server, sid, tiny_driving_dataset, sample=0)
    assert server.request_verdict(sid, now)
    # Swap while the request is still queued: it must resolve the new
    # generation at dispatch time, not the one current at submit time.
    assert registry.swap("base", serving_ensemble) == 2
    (verdict,) = server.drain(now)
    assert verdict.model_generation == 2
    assert verdict.model_key == "base"


def test_session_lifecycle_errors(serving_ensemble):
    server = InferenceServer.for_model(
        serving_ensemble,
        admission=AdmissionController(max_sessions=1))
    sid = server.open_session(7)
    with pytest.raises(ServingError):
        server.open_session(7)  # duplicate id and sessions full
    closed = server.close_session(sid)
    assert closed.session_id == sid
    with pytest.raises(ServingError):
        server.session(sid)
    server.open_session(8)  # slot freed by the close
