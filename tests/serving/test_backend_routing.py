"""Backend routing through the serving tier.

The registry owns one backend default plus per-variant overrides, and
the server's dispatch loop must execute each variant under its pinned
backend (the selection is thread-local, so it cannot leak between
variants or sessions).  These tests use a recording stub model so the
routing is observable without a trained ensemble.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import DegradedPrediction
from repro.exceptions import ConfigurationError
from repro.nn.compile import active_backend_name
from repro.serving import InferenceServer, ServingModelRegistry


class RecordingModel:
    """predict_degraded stub that logs the active inference backend."""

    def __init__(self) -> None:
        self.backends_seen: list[str] = []

    def predict_degraded(self, *, images=None, imu=None
                         ) -> DegradedPrediction:
        count = len(images) if images is not None else len(imu)
        self.backends_seen.append(active_backend_name())
        return DegradedPrediction(
            probabilities=np.full((count, 2), 0.5, dtype=np.float32),
            predictions=np.zeros(count, dtype=np.int64),
            confidence=np.full(count, 0.5, dtype=np.float32),
            degraded=images is None,
            missing=("frames",) if images is None else (),
        )


def test_registry_default_and_per_variant_override():
    registry = ServingModelRegistry(backend="numpy-compiled")
    registry.register("float", RecordingModel())
    registry.register("quant", RecordingModel(),
                      backend="numpy-compiled-int8")
    assert registry.backend_for("float") == "numpy-compiled"
    assert registry.backend_for("quant") == "numpy-compiled-int8"


def test_registry_rejects_unknown_backends():
    with pytest.raises(ConfigurationError):
        ServingModelRegistry(backend="no-such-backend")
    registry = ServingModelRegistry()
    with pytest.raises(ConfigurationError):
        registry.register("m", RecordingModel(), backend="no-such-backend")


def _verdict_for(server, driver, privacy, now):
    sid = server.open_session(driver, privacy=privacy)
    window = np.zeros(12, dtype=np.float32)
    for k in range(4):
        server.ingest_imu(sid, now + 0.25 * k, window)
    deadline = now + 0.75
    assert server.request_verdict(sid, deadline)
    return server.drain(deadline + server.scheduler.max_delay)


def test_dispatch_runs_each_variant_under_its_pinned_backend():
    float_model, quant_model = RecordingModel(), RecordingModel()
    registry = ServingModelRegistry(default="float")
    registry.register("float", float_model)
    registry.register("quant", quant_model, backend="numpy-compiled-int8")
    registry.bind("high", "quant")
    server = InferenceServer(registry, max_batch=4)

    assert _verdict_for(server, 0, None, 0.0)
    assert _verdict_for(server, 1, "high", 10.0)

    assert float_model.backends_seen == ["numpy-fast"]
    assert quant_model.backends_seen == ["numpy-compiled-int8"]
    # The thread-local selection must not linger after dispatch.
    assert active_backend_name() == "numpy-fast"
