"""SlotRing protocol: stamps, cursors, backpressure, torn-slot detection.

These run the exact protocol the persistent workers use, but over a
plain ``bytearray`` with both ends driven from the test (or from
threads, for the stress cases) — fully deterministic on a 1-core CI
host, no processes, no shared memory.
"""

from __future__ import annotations

import struct
import threading

import pytest

from repro.exceptions import RingError, TornSlotError
from repro.serving.ring import HEADER_BYTES, SLOT_OVERHEAD, SlotRing

CAPACITY = 4
PAYLOAD = 64


def make_ring(capacity: int = CAPACITY, payload: int = PAYLOAD):
    buf = bytearray(SlotRing.required_bytes(capacity, payload))
    return buf, SlotRing(buf, capacity=capacity, slot_payload=payload,
                         reset=True)


def push(ring: SlotRing, data: bytes):
    claim = ring.claim()
    assert claim is not None
    claim.payload[:len(data)] = data
    ring.publish(claim, len(data))


def pop(ring: SlotRing) -> bytes:
    item = ring.try_pop()
    assert item is not None
    data = bytes(item.payload)
    ring.release(item)
    return data


def test_required_bytes_layout():
    assert SlotRing.required_bytes(CAPACITY, PAYLOAD) == \
        HEADER_BYTES + CAPACITY * (PAYLOAD + SLOT_OVERHEAD)


def test_geometry_validation():
    with pytest.raises(RingError):
        make_ring(capacity=0)
    with pytest.raises(RingError):
        make_ring(payload=0)
    with pytest.raises(RingError):  # buffer one byte too small
        SlotRing(bytearray(SlotRing.required_bytes(2, 8) - 1),
                 capacity=2, slot_payload=8)


def test_roundtrip_preserves_bytes_and_length():
    _, ring = make_ring()
    push(ring, b"hello ring")
    assert ring.occupancy == 1
    assert pop(ring) == b"hello ring"
    assert ring.occupancy == 0
    assert ring.try_pop() is None


def test_wraparound_many_times_over():
    """Sequences keep counting past capacity; slots are reused cleanly."""
    _, ring = make_ring()
    for i in range(10 * CAPACITY):
        push(ring, f"msg-{i}".encode())
        assert pop(ring) == f"msg-{i}".encode()
    assert ring.head == ring.tail == 10 * CAPACITY


def test_backpressure_claim_returns_none_when_full():
    _, ring = make_ring()
    claims = [ring.claim() for _ in range(CAPACITY)]
    assert all(c is not None for c in claims)
    assert ring.claim() is None          # all slots claimed ahead
    for claim in claims:
        ring.publish(claim, 0)
    assert ring.full
    assert ring.claim() is None          # all slots published, none read
    item = ring.try_pop()
    ring.release(item)                   # one slot back to the producer
    assert ring.claim() is not None


def test_multiple_outstanding_claims_publish_in_order():
    """A submit fans out several claims before any publish lands."""
    _, ring = make_ring()
    first, second = ring.claim(), ring.claim()
    assert (first.sequence, second.sequence) == (1, 2)
    with pytest.raises(RingError):       # out-of-order publish refused
        ring.publish(second, 0)
    ring.publish(first, 0)
    ring.publish(second, 0)
    assert ring.occupancy == 2


def test_publish_rejects_oversized_used():
    _, ring = make_ring()
    claim = ring.claim()
    with pytest.raises(RingError):
        ring.publish(claim, PAYLOAD + 1)


def test_release_out_of_order_is_refused():
    _, ring = make_ring()
    push(ring, b"a")
    item = ring.try_pop()
    ring.release(item)
    with pytest.raises(RingError):       # tail already advanced past it
        ring.release(item)


def test_torn_end_stamp_raises():
    """A writer that died between the two stamp writes is detected."""
    buf, ring = make_ring()
    push(ring, b"doomed")
    offset = HEADER_BYTES  # slot 0
    end_off = offset + 16 + PAYLOAD
    struct.pack_into("<Q", buf, end_off, 999)   # scribble the end stamp
    with pytest.raises(TornSlotError):
        ring.try_pop()


def test_torn_begin_stamp_raises():
    buf, ring = make_ring()
    push(ring, b"doomed")
    struct.pack_into("<Q", buf, HEADER_BYTES, 0)  # zero the begin stamp
    with pytest.raises(TornSlotError):
        ring.try_pop()


def test_corrupt_used_length_raises():
    buf, ring = make_ring()
    push(ring, b"doomed")
    struct.pack_into("<Q", buf, HEADER_BYTES + 8, PAYLOAD + 100)
    with pytest.raises(TornSlotError):
        ring.try_pop()


def test_attach_without_reset_sees_producer_state():
    """The worker-side attach (reset=False) reads the creator's cursors."""
    buf, producer = make_ring()
    push(producer, b"cross-view")
    consumer = SlotRing(buf, capacity=CAPACITY, slot_payload=PAYLOAD)
    assert consumer.occupancy == 1
    assert pop(consumer) == b"cross-view"
    # The release is visible back on the producer's view of the header.
    assert producer.occupancy == 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_threaded_producer_consumer_stress(seed):
    """Randomized SPSC stress: wraparound + backpressure under threads.

    The producer pushes messages of random (seeded) sizes through a
    4-slot ring while a consumer thread drains it; every message must
    come out exactly once, in order, byte-identical.  Thread timing
    varies run to run but the assertions are order/content-exact, so
    any protocol bug (lost slot, double pop, stale payload after
    wraparound) fails deterministically.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    messages = [bytes(rng.integers(0, 256, size=int(n), dtype=np.uint8))
                for n in rng.integers(1, PAYLOAD + 1, size=500)]
    buf, ring = make_ring()
    received: list[bytes] = []
    failures: list[Exception] = []

    def consume():
        try:
            while len(received) < len(messages):
                item = ring.try_pop()
                if item is None:
                    continue
                received.append(bytes(item.payload))
                ring.release(item)
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append(exc)

    thread = threading.Thread(target=consume)
    thread.start()
    try:
        for message in messages:
            claim = ring.claim()
            while claim is None:         # backpressure: consumer behind
                claim = ring.claim()
            claim.payload[:len(message)] = message
            ring.publish(claim, len(message))
    finally:
        thread.join(timeout=30)
    assert not failures
    assert not thread.is_alive()
    assert received == messages
    assert ring.head == ring.tail == len(messages)
