"""Serving-suite fixtures: one small trained ensemble for all tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CnnConfig, DarNetEnsemble, RnnConfig


@pytest.fixture(scope="package")
def serving_ensemble(tiny_driving_dataset):
    """A trained cnn+rnn ensemble cheap enough to share across tests."""
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(7))
    ensemble.fit(tiny_driving_dataset)
    return ensemble
