"""Admission control: session caps and priority-aware backpressure."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import (
    AdmissionController,
    AdmissionDecision,
    InferenceRequest,
    MicroBatchScheduler,
)


def queued_request(priority, sequence):
    return InferenceRequest(
        session_id="s", sequence=sequence, submitted_at=0.0, deadline=10.0,
        priority=priority, model_key="base", window=np.zeros((4, 12)))


def test_session_cap():
    controller = AdmissionController(max_sessions=2)
    assert controller.admit_session(1) is AdmissionDecision.ADMIT
    assert (controller.admit_session(2)
            is AdmissionDecision.REJECT_SESSIONS_FULL)
    assert controller.stats.sessions_admitted == 1
    assert controller.stats.sessions_rejected == 1


def test_requests_admitted_below_watermark():
    controller = AdmissionController(high_watermark=0.5)
    scheduler = MicroBatchScheduler(max_batch=32, max_delay=10.0, capacity=10)
    scheduler.submit(queued_request(5.0, 0), 0.0)
    assert (controller.admit_request(0.0, scheduler)
            is AdmissionDecision.ADMIT)


def test_above_watermark_only_beating_lowest_enters():
    controller = AdmissionController(high_watermark=0.5)
    scheduler = MicroBatchScheduler(max_batch=32, max_delay=10.0, capacity=4)
    scheduler.submit(queued_request(1.0, 0), 0.0)
    scheduler.submit(queued_request(3.0, 1), 0.0)
    # Depth 2 >= 0.5 * 4: a request must now beat the lowest queued.
    assert (controller.admit_request(1.0, scheduler)
            is AdmissionDecision.REJECT_QUEUE_FULL)
    assert (controller.admit_request(2.0, scheduler)
            is AdmissionDecision.ADMIT)
    assert controller.stats.requests_rejected == 1
    assert controller.stats.requests_admitted == 1


def test_invalid_configuration_raises():
    with pytest.raises(ConfigurationError):
        AdmissionController(max_sessions=0)
    with pytest.raises(ConfigurationError):
        AdmissionController(high_watermark=0.0)
    with pytest.raises(ConfigurationError):
        AdmissionController(high_watermark=1.5)
