"""Serving observability: stage histograms, traces, snapshot merging."""

import numpy as np

from repro.obs.metrics import get_registry
from repro.serving import (
    AdmissionController,
    AdmissionDecision,
    InferenceServer,
    replay_concurrent_drives,
)

STAGES = ("admission", "queue", "forward", "combine")


def feed(server, session_id, dataset, sample, *, instants=4, period=0.25,
         start=0.0):
    """Stream one dataset sample's window/image into a session."""
    window = dataset.imu[sample]
    for k in range(instants):
        now = start + period * k
        server.ingest_imu(session_id, now, window[k % window.shape[0]])
        server.ingest_frame(session_id, now, dataset.images[sample])
    return start + period * (instants - 1)


def serve_one(server, dataset, *, driver=0, sample=0):
    """Open a session, feed it, and deliver one verdict."""
    sid = server.open_session(driver)
    now = feed(server, sid, dataset, sample=sample)
    assert server.request_verdict(sid, now)
    (verdict,) = server.drain(now)
    return sid, verdict


def find_metric(snapshot, name, **labels):
    """The snapshot entry for ``name`` whose labels include ``labels``."""
    for entry in snapshot["metrics"]:
        if entry["name"] == name and all(
                entry["labels"].get(key) == value
                for key, value in labels.items()):
            return entry
    return None


class TestStageHistograms:
    def test_every_stage_observed_once_per_verdict(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        serve_one(server, tiny_driving_dataset)
        for stage in STAGES:
            hist = server._stage[stage]
            assert hist.count == 1, stage
            assert hist.sum >= 0.0

    def test_stage_histograms_land_in_snapshot(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        serve_one(server, tiny_driving_dataset)
        snapshot = server.metrics_snapshot()
        for stage in STAGES:
            entry = find_metric(snapshot, f"serving_stage_{stage}_seconds")
            assert entry is not None, stage
            assert entry["count"] == 1

    def test_verdict_latency_histogram_counts_verdicts(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        serve_one(server, tiny_driving_dataset)
        entry = find_metric(server.metrics_snapshot(),
                            "serving_verdict_latency_seconds",
                            server=server.stats.label)
        assert entry["count"] == 1

    def test_queue_latency_uses_wall_clock_stamps(
            self, serving_ensemble, tiny_driving_dataset):
        # Simulation time stands still (same `now` at submit and drain),
        # so a nonzero queue observation proves wall stamps were used.
        server = InferenceServer.for_model(serving_ensemble)
        serve_one(server, tiny_driving_dataset)
        assert server._stage["queue"].max > 0.0


class TestTracePropagation:
    def test_one_complete_trace_per_verdict(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        sid, _ = serve_one(server, tiny_driving_dataset)
        assert server.tracer.active_count == 0
        (trace,) = server.traces()
        assert trace["complete"] is True
        assert trace["name"] == f"verdict/{sid}"
        assert [span["name"] for span in trace["spans"]] == \
            ["admission", "queue", "forward", "combine"]

    def test_forward_span_carries_batch_meta(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        serve_one(server, tiny_driving_dataset)
        (trace,) = server.traces()
        forward = next(span for span in trace["spans"]
                       if span["name"] == "forward")
        assert forward["meta"] == {"batch_size": 1, "modality": "both"}

    def test_batched_sessions_each_get_their_own_trace(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble, max_batch=8)
        sids = [server.open_session(d) for d in range(3)]
        for index, sid in enumerate(sids):
            feed(server, sid, tiny_driving_dataset, sample=index)
        for sid in sids:
            assert server.request_verdict(sid, 0.75)
        verdicts = server.drain(0.75)
        assert len(verdicts) == 3
        traces = server.traces()
        assert sorted(trace["name"] for trace in traces) == \
            sorted(f"verdict/{sid}" for sid in sids)
        assert all(trace["complete"] for trace in traces)

    def test_unservable_request_mints_no_trace(self, serving_ensemble):
        server = InferenceServer.for_model(serving_ensemble)
        server.open_session(0)
        assert not server.request_verdict("drv-0", 0.0)
        assert server.tracer.active_count == 0


class TestTraceDiscard:
    def test_shed_request_trace_is_discarded(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble,
                                           queue_capacity=1)
        low = server.open_session(0, base_priority=0.0)
        high = server.open_session(1, base_priority=5.0)
        for index, sid in enumerate((low, high)):
            feed(server, sid, tiny_driving_dataset, sample=index)
        assert server.request_verdict(low, 0.75)
        assert server.tracer.active_count == 1
        # The higher-priority request evicts the queued one; the victim's
        # trace must not stay active forever.
        assert server.request_verdict(high, 0.75)
        assert server.scheduler.stats.shed == 1
        assert server.tracer.active_count == 1
        (verdict,) = server.drain(0.75)
        assert verdict.session_id == high
        assert server.tracer.active_count == 0

    def test_scheduler_reject_discards_trace(
            self, serving_ensemble, tiny_driving_dataset):
        class AlwaysAdmit(AdmissionController):
            def admit_request(self, priority, scheduler):
                return AdmissionDecision.ADMIT

        # With admission out of the way the scheduler itself rejects the
        # equal-priority overflow request — the path that must discard.
        server = InferenceServer.for_model(
            serving_ensemble, queue_capacity=1, admission=AlwaysAdmit())
        sids = [server.open_session(d) for d in range(2)]
        for index, sid in enumerate(sids):
            feed(server, sid, tiny_driving_dataset, sample=index)
        assert server.request_verdict(sids[0], 0.75)
        assert not server.request_verdict(sids[1], 0.75)
        assert server.stats.rejected == 1
        assert server.tracer.active_count == 1


class TestDegradedAccounting:
    def test_degraded_verdicts_counted(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        sid = server.open_session(0)
        window = tiny_driving_dataset.imu[0]
        for k in range(4):
            server.ingest_imu(sid, 0.25 * k, window[k])
        assert server.request_verdict(sid, 0.75)  # never saw a frame
        (verdict,) = server.drain(0.75)
        assert verdict.degraded
        entry = find_metric(server.metrics_snapshot(),
                            "serving_degraded_verdicts_total")
        assert entry["value"] == 1


class TestObservabilityToggle:
    def test_disabled_keeps_counters_but_not_timings(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble,
                                           observability=False)
        serve_one(server, tiny_driving_dataset)
        assert server.stats.verdicts == 1
        assert server.scheduler.stats.batches == 1
        assert server.traces() == []
        for stage in STAGES:
            assert server._stage[stage].count == 0


class TestMetricsSnapshotMerge:
    def test_merges_server_and_process_registries(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble)
        serve_one(server, tiny_driving_dataset)
        get_registry().counter("process_side_marker_total").inc(3)
        snapshot = server.metrics_snapshot()
        assert find_metric(snapshot, "serving_verdicts_total")["value"] == 1
        assert find_metric(snapshot, "process_side_marker_total")["value"] == 3
        # The forward pass itself published workspace telemetry globally.
        assert find_metric(snapshot, "nn_workspace_hits_total")["value"] > 0

    def test_shared_registry_is_not_double_counted(
            self, serving_ensemble, tiny_driving_dataset):
        server = InferenceServer.for_model(serving_ensemble,
                                           metrics=get_registry())
        serve_one(server, tiny_driving_dataset)
        entry = find_metric(server.metrics_snapshot(),
                            "serving_verdicts_total")
        assert entry["value"] == 1

    def test_two_servers_never_mix_series(
            self, serving_ensemble, tiny_driving_dataset):
        first = InferenceServer.for_model(serving_ensemble)
        second = InferenceServer.for_model(serving_ensemble)
        serve_one(first, tiny_driving_dataset)
        serve_one(second, tiny_driving_dataset)
        assert first.stats.label != second.stats.label
        entry = find_metric(first.metrics_snapshot(),
                            "serving_verdicts_total",
                            server=first.stats.label)
        assert entry["value"] == 1


class TestReplayObservability:
    def test_replay_report_carries_metrics_and_traces(
            self, serving_ensemble):
        report = replay_concurrent_drives(
            serving_ensemble, drivers=2, duration=2.0, seed=5)
        for stage in STAGES:
            entry = find_metric(report.metrics,
                                f"serving_stage_{stage}_seconds")
            assert entry is not None, stage
            assert entry["count"] > 0
        assert any(trace["complete"] for trace in report.traces)
        complete = next(t for t in report.traces if t["complete"])
        names = {span["name"] for span in complete["spans"]}
        assert {"admission", "queue", "forward", "combine"} <= names

    def test_replay_without_observability_is_empty(self, serving_ensemble):
        report = replay_concurrent_drives(
            serving_ensemble, drivers=2, duration=2.0, seed=5,
            observability=False)
        assert report.metrics == {}
        assert report.traces == []
        assert report.verdicts > 0


def test_batch_size_distribution_recorded(
        serving_ensemble, tiny_driving_dataset):
    server = InferenceServer.for_model(serving_ensemble, max_batch=8)
    sids = [server.open_session(d) for d in range(3)]
    for index, sid in enumerate(sids):
        feed(server, sid, tiny_driving_dataset, sample=index)
    for sid in sids:
        assert server.request_verdict(sid, 0.75)
    server.drain(0.75)
    entry = find_metric(server.metrics_snapshot(), "serving_batch_size")
    assert entry["count"] == 1
    assert entry["sum"] == 3.0
    assert np.isclose(entry["max"], 3.0)
