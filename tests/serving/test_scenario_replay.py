"""Mixed-class scenario replay: golden fixture and worker parity.

The committed ``scenario_mixed_spec.json`` schedules old and new classes
side by side (NORMAL/TEXTING/TALKING next to DROWSY and CAMERA_COVERED)
plus a scheduled camera blackout.  Replaying it through the server with
extended heads must (a) deliver one verdict per grid instant per driver
— zero loss, (b) match the committed golden verdict sequence at every
worker count, and (c) actually surface both new classes in the stream.

Regenerate the golden fixture deliberately after an intended behaviour
change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/serving/test_scenario_replay.py -q
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets import DrivingBehavior, ExtendedBehavior
from repro.exceptions import ConfigurationError
from repro.scenarios import ScenarioSpec
from repro.serving import replay_concurrent_drives

GOLDEN_PATH = Path(__file__).parent.parent / "fixtures" / \
    "scenario_mixed_golden_verdicts.json"


@pytest.mark.slow
@pytest.mark.parametrize("workers", [0, 2])
def test_mixed_scenario_replay_matches_golden(extended_ensemble,
                                              mixed_scenario_spec, workers):
    """Satellite #6: the mixed-fleet replay is pinned byte for byte, and
    the parallel executor path must deliver the identical sequence."""
    report = replay_concurrent_drives(extended_ensemble,
                                      scenario=mixed_scenario_spec,
                                      workers=workers)
    if os.environ.get("REGEN_GOLDEN"):
        if workers != 0:
            pytest.skip("fixture regenerates in-process only")
        GOLDEN_PATH.write_text(json.dumps(
            {"scenario": mixed_scenario_spec.name,
             "verdicts": report.verdict_log}, indent=1) + "\n")
        pytest.skip(f"regenerated {GOLDEN_PATH.name}")
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["scenario"] == mixed_scenario_spec.name
    assert len(report.verdict_log) == len(golden["verdicts"])
    for index, (got, want) in enumerate(
            zip(report.verdict_log, golden["verdicts"])):
        assert got == want, (
            f"verdict #{index} diverged with {workers} workers")


@pytest.mark.slow
def test_mixed_scenario_has_zero_verdict_loss_and_new_classes(
        extended_ensemble, mixed_scenario_spec):
    """The tentpole acceptance: every driver gets a verdict at every grid
    instant despite the scheduled blackout, and both extended classes
    appear in the delivered stream."""
    report = replay_concurrent_drives(extended_ensemble,
                                      scenario=mixed_scenario_spec)
    assert report.scenario == "mixed-fleet"
    assert all(count == report.instants
               for count in report.verdicts_per_session.values())
    assert report.masked_frames > 0  # the blackout actually withheld frames
    assert report.degraded_verdicts > 0  # ...and the server degraded, not died
    predicted = {verdict["predicted"] for verdict in report.verdict_log}
    assert int(ExtendedBehavior.DROWSY) in predicted
    assert int(ExtendedBehavior.CAMERA_COVERED) in predicted
    assert int(DrivingBehavior.NORMAL) in predicted


@pytest.mark.slow
def test_mixed_scenario_replay_is_deterministic(extended_ensemble,
                                                mixed_scenario_spec):
    """Satellite #3: same spec + seed ⇒ the identical verdict stream."""
    first = replay_concurrent_drives(extended_ensemble,
                                     scenario=mixed_scenario_spec)
    second = replay_concurrent_drives(extended_ensemble,
                                      scenario=mixed_scenario_spec)
    assert first.verdict_log == second.verdict_log
    assert len(first.verdict_log) == first.verdicts


def test_legacy_replay_equals_explicit_paper_sweep(serving_ensemble):
    """Satellite #1: replaying with no scenario is the same world as the
    explicit paper-sweep spec — the 6-class path is unchanged."""
    implicit = replay_concurrent_drives(serving_ensemble, drivers=2,
                                        duration=3.0, seed=11)
    explicit = replay_concurrent_drives(
        serving_ensemble,
        scenario=ScenarioSpec.paper_sweep(drivers=2, duration=3.0, seed=11))
    assert implicit.verdict_log == explicit.verdict_log
    assert implicit.scenario == explicit.scenario == "paper-sweep"
    assert explicit.masked_frames == 0


def test_scenario_and_script_are_mutually_exclusive(serving_ensemble):
    from repro.core.darnet import DriveScript

    with pytest.raises(ConfigurationError):
        replay_concurrent_drives(
            serving_ensemble,
            scenario=ScenarioSpec.paper_sweep(drivers=1, duration=2.0),
            script=DriveScript.standard())
