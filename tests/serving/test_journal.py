"""Verdict journal: framing, crash-safe replay, fsync batching,
disk-full degradation, and store-and-forward delivery."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.exceptions import JournalError
from repro.serving import (
    StoreAndForwardSink,
    VerdictJournal,
    VerdictRecord,
    replay_journal,
)
from repro.serving.journal import KIND_DEFERRED, frame_record


def record(sequence, session_id="drv-0", kind="verdict"):
    return VerdictRecord(session_id=session_id, sequence=sequence,
                         timestamp=0.25 * sequence, kind=kind,
                         predicted=sequence % 5, confidence=0.9,
                         model_key="base")


def test_round_trip(tmp_path):
    path = str(tmp_path / "journal.wal")
    journal = VerdictJournal(path, fsync_every=2)
    originals = [record(i) for i in range(5)]
    for item in originals:
        journal.append(item)
    journal.close()
    replay = replay_journal(path)
    assert replay.records == originals
    assert replay.torn == 0
    assert replay.duplicates == 0
    assert replay.bytes_read == os.path.getsize(path)


def test_payload_round_trip_preserves_every_field():
    original = VerdictRecord(session_id="drv-3", sequence=17,
                             timestamp=4.25, kind=KIND_DEFERRED,
                             predicted=2, confidence=0.5, degraded=True,
                             model_key="privacy-high", reason="shard died")
    assert VerdictRecord.from_payload(original.to_payload()) == original


def test_fsync_batches(tmp_path, monkeypatch):
    syncs = []
    monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
    journal = VerdictJournal(str(tmp_path / "j.wal"), fsync_every=4)
    for i in range(10):
        journal.append(record(i))
    # 10 appends at fsync_every=4 -> barriers after records 4 and 8.
    assert len(syncs) == 2
    journal.close()
    assert len(syncs) == 3  # close syncs the tail


def test_replay_dedups_by_driver_window_id(tmp_path):
    path = str(tmp_path / "j.wal")
    journal = VerdictJournal(path)
    journal.append(record(1))
    journal.append(record(2))
    journal.append(record(1))  # retried window: same (driver, window) id
    journal.close()
    replay = replay_journal(path)
    assert [r.sequence for r in replay.records] == [1, 2]
    assert replay.duplicates == 1
    assert replay.ids == {("drv-0", 1), ("drv-0", 2)}


def test_replay_drops_torn_tail(tmp_path):
    path = str(tmp_path / "j.wal")
    journal = VerdictJournal(path)
    for i in range(3):
        journal.append(record(i))
    journal.close()
    frame = frame_record(record(3))
    with open(path, "ab") as handle:
        handle.write(frame[:len(frame) // 2])  # SIGKILL mid-write
    replay = replay_journal(path)
    assert [r.sequence for r in replay.records] == [0, 1, 2]
    assert replay.torn == 1


def test_replay_stops_at_corrupt_crc(tmp_path):
    path = str(tmp_path / "j.wal")
    journal = VerdictJournal(path)
    journal.append(record(0))
    journal.close()
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF  # flip one payload byte; CRC must catch it
    with open(path, "wb") as handle:
        handle.write(blob)
    replay = replay_journal(path)
    assert replay.records == []
    assert replay.torn == 1


def test_replay_of_missing_file_is_empty(tmp_path):
    replay = replay_journal(str(tmp_path / "never-written.wal"))
    assert replay.records == [] and replay.torn == 0


def test_unwritable_path_raises():
    with pytest.raises(JournalError):
        VerdictJournal("/nonexistent-dir/journal.wal")


def test_disk_full_overflows_to_memory_and_drains(tmp_path):
    path = str(tmp_path / "j.wal")
    journal = VerdictJournal(path, fsync_every=1)
    journal.append(record(0))
    journal.simulate_disk_full(True)
    assert not journal.append(record(1))
    assert not journal.append(record(2))
    assert journal.overflow_depth == 2
    assert journal.overflowed == 2
    on_disk = journal.size_bytes
    journal.simulate_disk_full(False)  # space returns: overflow drains
    assert journal.overflow_depth == 0
    assert journal.size_bytes > on_disk
    journal.close()
    replay = replay_journal(path)
    assert [r.sequence for r in replay.records] == [0, 1, 2]


def test_drain_tripping_disk_full_keeps_new_record_in_order(tmp_path,
                                                            monkeypatch):
    """When the overflow drain inside append() trips disk-full, the new
    record must park behind the still-buffered older records — never
    reach the disk ahead of them."""
    path = str(tmp_path / "j.wal")
    journal = VerdictJournal(path, fsync_every=100)
    journal.simulate_disk_full(True)
    assert not journal.append(record(0))  # parked in overflow
    journal._disk_full = False            # space seems to return...
    real_write = journal._write
    tripped = []

    def flaky(item):
        if not tripped:                   # ...but the drain write trips
            tripped.append(item)
            journal._disk_full = True
            return False
        return real_write(item)

    monkeypatch.setattr(journal, "_write", flaky)
    assert not journal.append(record(1))  # must park, not jump to disk
    assert journal.overflow_depth == 2
    journal.simulate_disk_full(False)     # full recovery drains in order
    journal.close()
    assert [r.sequence for r in replay_journal(path).records] == [0, 1]


def test_sync_failure_repatriates_acked_records_to_overflow(tmp_path,
                                                            monkeypatch):
    """Records append() acknowledged but the barrier never covered must
    move to the overflow buffer on fsync failure, not silently ride in a
    userspace buffer the kernel may have dropped."""
    path = str(tmp_path / "j.wal")
    journal = VerdictJournal(path, fsync_every=100)
    for i in range(3):
        assert journal.append(record(i))  # acked, barrier still pending

    def broken(fd):
        raise OSError(5, "I/O error")

    monkeypatch.setattr("repro.serving.journal.os.fsync", broken)
    journal.sync()
    assert journal.disk_full
    assert journal.overflow_depth == 3    # acked records not abandoned
    monkeypatch.undo()                    # the disk heals
    journal.simulate_disk_full(False)
    journal.close()
    replay = replay_journal(path)
    assert [r.sequence for r in replay.records] == [0, 1, 2]
    # flush() had landed the originals, so the rewrite duplicates them;
    # replay dedups by (driver, window) id exactly as documented.
    assert replay.duplicates == 3


def test_sigkill_mid_write_leaves_replayable_journal(tmp_path):
    """A shard process SIGKILLed mid-journal-write must leave a journal
    that replays without duplicates and without surfacing torn data."""
    path = str(tmp_path / "crash.wal")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    writer = (
        "import sys; sys.path.insert(0, sys.argv[2])\n"
        "from repro.serving.journal import VerdictJournal, VerdictRecord\n"
        "journal = VerdictJournal(sys.argv[1], fsync_every=4)\n"
        "i = 0\n"
        "while True:\n"
        "    journal.append(VerdictRecord(session_id='drv-0', sequence=i,\n"
        "                                 timestamp=0.1 * i, predicted=1))\n"
        "    i += 1\n"
    )
    proc = subprocess.Popen([sys.executable, "-c", writer, path,
                             os.path.abspath(src)])
    try:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(path) and os.path.getsize(path) > 4096:
                break
            time.sleep(0.01)
        else:
            pytest.fail("journal writer never produced data")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    replay = replay_journal(path)
    # Whatever survived must be a clean, gapless, duplicate-free prefix.
    assert len(replay.records) > 0
    sequences = [r.sequence for r in replay.records]
    assert sequences == list(range(len(sequences)))
    assert replay.duplicates == 0
    assert replay.torn <= 1  # at most the one frame the kill interrupted


# -- store-and-forward sink -----------------------------------------------


def test_sink_delivers_in_order(tmp_path):
    journal = VerdictJournal(str(tmp_path / "j.wal"))
    sink = StoreAndForwardSink(journal)
    for i in range(3):
        sink.offer(record(i))
    assert sink.pump(0.0) == 3
    assert [r.sequence for r in sink.delivered] == [0, 1, 2]
    assert sink.pending == 0


def test_sink_buffers_through_blackhole_and_drains(tmp_path):
    journal = VerdictJournal(str(tmp_path / "j.wal"))
    sink = StoreAndForwardSink(journal)
    sink.offer(record(0))
    sink.pump(0.0)
    sink.blackholed = True
    for i in range(1, 4):
        sink.offer(record(i))
        sink.pump(float(i))
    assert sink.pending == 3
    assert sink.delivery_failures >= 3
    assert len(sink.delivered) == 1
    sink.blackholed = False
    assert sink.pump(5.0) == 3  # backlog drains in order on reconnect
    assert [r.sequence for r in sink.delivered] == [0, 1, 2, 3]


def test_sink_never_double_delivers(tmp_path):
    journal = VerdictJournal(str(tmp_path / "j.wal"))
    downstream: list[VerdictRecord] = []
    sink = StoreAndForwardSink(journal, downstream.append)
    sink.offer(record(7))
    sink.pump(0.0)
    sink.offer(record(7))  # retried through a second shard
    sink.pump(1.0)
    assert len(downstream) == 1
    assert sink.duplicates_suppressed == 1


def test_sink_dedups_while_pending(tmp_path):
    journal = VerdictJournal(str(tmp_path / "j.wal"))
    sink = StoreAndForwardSink(journal)
    sink.blackholed = True
    sink.offer(record(7))
    sink.offer(record(7))
    assert sink.pending == 1
    sink.blackholed = False
    sink.pump(0.0)
    assert len(sink.delivered) == 1


def test_sink_failing_downstream_is_a_fault_barrier(tmp_path):
    journal = VerdictJournal(str(tmp_path / "j.wal"))
    calls = []

    def flaky(item):
        calls.append(item)
        if len(calls) == 1:
            raise ConnectionError("sink down")

    sink = StoreAndForwardSink(journal, flaky)
    sink.offer(record(0))
    assert sink.pump(0.0) == 0  # first attempt raises -> stays pending
    assert sink.pending == 1
    assert sink.pump(1.0) == 1  # retried on the next pump
    assert [r.sequence for r in sink.delivered] == [0]
