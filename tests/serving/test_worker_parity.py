"""Worker parity: the parallel path changes wall-clock, never verdicts.

Two layers of proof.  The golden-fixture tests pin the *absolute*
delivered sequence: a replay through N persistent workers must match the
committed ``replay_golden_verdicts.json`` byte for byte, under the fast
path and the compiled backend alike.  The invariance tests pin the
*relative* claim: for any worker count — including mixed privacy levels
routing sessions to different model variants, each with its own
executor — the verdict stream is identical to the in-process one.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serving import (
    InferenceServer,
    ServingModelRegistry,
    replay_concurrent_drives,
)

GOLDEN_PATH = Path(__file__).parent.parent / "fixtures" / \
    "replay_golden_verdicts.json"

#: Must stay in lockstep with test_replay_golden.REPLAY_ARGS — both files
#: compare against the same committed fixture.
REPLAY_ARGS = dict(drivers=2, duration=3.0, kill_camera=1, seed=11)


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["numpy-fast", "numpy-compiled"])
@pytest.mark.parametrize("workers", [1, 2])
def test_worker_replay_matches_golden_fixture(serving_ensemble, workers,
                                              backend):
    """N workers deliver the exact committed verdict sequence.

    This is the strongest parity statement available: not merely
    "workers agree with in-process" but "workers agree with the pinned
    fixture that every backend and every past commit agreed with".
    """
    report = replay_concurrent_drives(serving_ensemble, backend=backend,
                                      workers=workers, **REPLAY_ARGS)
    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["replay_args"] == REPLAY_ARGS
    assert len(report.verdict_log) == len(golden["verdicts"])
    for index, (got, want) in enumerate(
            zip(report.verdict_log, golden["verdicts"])):
        assert got == want, (
            f"verdict #{index} diverged with {workers} workers "
            f"under {backend}")


def test_worker_counts_deliver_identical_verdict_streams(serving_ensemble):
    """0, 1, and 2 workers: one verdict log, bit for bit."""
    reports = {
        workers: replay_concurrent_drives(
            serving_ensemble, drivers=3, duration=2.0, seed=23,
            workers=workers)
        for workers in (0, 1, 2)
    }
    baseline = reports[0]
    assert baseline.verdicts > 0
    for workers in (1, 2):
        report = reports[workers]
        assert report.workers == workers
        assert report.verdict_log == baseline.verdict_log
        assert report.degraded_verdicts == baseline.degraded_verdicts
        assert report.verdicts_per_session == baseline.verdicts_per_session


@pytest.mark.slow
def test_four_workers_match_in_process_replay(serving_ensemble):
    """More workers than drivers still shards cleanly and agrees."""
    baseline = replay_concurrent_drives(serving_ensemble, drivers=3,
                                        duration=2.0, seed=29, workers=0)
    pooled = replay_concurrent_drives(serving_ensemble, drivers=3,
                                      duration=2.0, seed=29, workers=4)
    assert pooled.verdict_log == baseline.verdict_log


def _mixed_privacy_verdicts(ensemble, dataset, *, workers: int):
    """Delivered (session, sequence, predicted) under privacy routing.

    Two registered variants (the same trained weights under two names)
    bound to different privacy rungs force the server to keep one
    executor per variant; sessions at None/"medium"/"high" then exercise
    routing and per-variant worker pools in one step loop.
    """
    registry = ServingModelRegistry()
    registry.register("full", ensemble)
    registry.register("med", ensemble)
    registry.bind(None, "full")
    registry.bind("medium", "med")
    server = InferenceServer(registry, max_batch=8, workers=workers)
    try:
        levels = [None, "medium", "high", None, "medium", "high"]
        sids = [server.open_session(d, privacy=level)
                for d, level in enumerate(levels)]
        delivered = []
        for k in range(4):
            now = 0.25 * k
            for index, sid in enumerate(sids):
                window = dataset.imu[index]
                server.ingest_imu(sid, now, window[k % window.shape[0]])
                server.ingest_frame(sid, now, dataset.images[index])
            if k == 3:
                for sid in sids:
                    assert server.request_verdict(sid, now)
                for verdict in server.drain(now):
                    delivered.append((verdict.session_id, verdict.sequence,
                                      verdict.predicted, verdict.degraded,
                                      verdict.model_key))
        return delivered
    finally:
        server.close()


def test_mixed_privacy_levels_are_worker_count_invariant(
        serving_ensemble, tiny_driving_dataset):
    """Privacy-routed sessions get identical verdicts at 0/1/2 workers."""
    baseline = _mixed_privacy_verdicts(serving_ensemble,
                                       tiny_driving_dataset, workers=0)
    assert len(baseline) == 6
    assert {key for *_, key in baseline} == {"full", "med"}
    for workers in (1, 2):
        assert _mixed_privacy_verdicts(
            serving_ensemble, tiny_driving_dataset,
            workers=workers) == baseline
