"""Worker crash chaos: kills mid-flight, requeue-once, backoff respawn.

The crash contract under test: a SIGKILLed worker surfaces as
``WorkerCrashError`` from ``collect``, the server's dispatch-failure
path requeues the stranded requests exactly once, the dead slot
respawns after its backoff with plans re-pinned, and the end-to-end
zero-loss ledger still balances when the scripted chaos schedule is
shooting workers during a full serving run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import WorkerCrashError
from repro.serving import (
    InferenceServer,
    ParallelExecutor,
    run_serving_chaos,
    standard_serving_schedule,
)

from .test_server import feed


def test_kill_mid_flight_raises_worker_crash_error(serving_ensemble,
                                                   tiny_driving_dataset):
    images = tiny_driving_dataset.images[:8]
    windows = tiny_driving_dataset.imu[:8]
    with ParallelExecutor(serving_ensemble, workers=1) as executor:
        executor.predict_degraded(images=images, imu=windows)  # spawn + pin
        executor.hold_worker(0, True)      # park after the next pickup
        ticket = executor.submit(images=images, imu=windows)
        time.sleep(0.2)                    # let the worker pop and park
        assert executor.kill_worker(0) is not None
        with pytest.raises(WorkerCrashError):
            executor.collect(ticket, timeout=10.0)
        assert executor.worker_status(0)["crashes"] == 1


def test_respawned_worker_repins_plans_and_serves(serving_ensemble,
                                                  tiny_driving_dataset):
    """After a kill + backoff the slot comes back fully warmed."""
    images = tiny_driving_dataset.images[:6]
    windows = tiny_driving_dataset.imu[:6]
    with ParallelExecutor(serving_ensemble, workers=1,
                          respawn_backoff=0.05) as executor:
        before = executor.predict_degraded(images=images, imu=windows)
        executor.kill_worker(0)
        # The silent death is declared at the next submit; that batch
        # serves in-process while the slot sits in its backoff window.
        fallback = executor.predict_degraded(images=images, imu=windows)
        assert executor.last_shards == []
        assert executor.worker_status(0)["crashes"] == 1
        time.sleep(0.15)                   # past the first backoff window
        after = executor.predict_degraded(images=images, imu=windows)
        status = executor.worker_status(0)
        assert status["alive"]
        assert status["crashes"] == 1
        assert status["plans_pinned"]
        assert executor.wait_until_pinned(0)
        assert executor.last_shards != []  # served by the respawn
        assert (after.predictions == before.predictions).all()
        assert (fallback.predictions == before.predictions).all()


def test_all_dead_falls_back_in_process(serving_ensemble,
                                        tiny_driving_dataset):
    """Backoff window with no live worker: serve in-process, count it."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    images = tiny_driving_dataset.images[:6]
    windows = tiny_driving_dataset.imu[:6]
    with ParallelExecutor(serving_ensemble, workers=1,
                          respawn_backoff=30.0,
                          metrics=registry) as executor:
        executor.predict_degraded(images=images, imu=windows)
        executor.kill_worker(0)
        result = executor.predict_degraded(images=images, imu=windows)
        assert result.predictions.shape == (6,)
        assert executor.last_shards == []  # ran in-process
        fallbacks = registry.get("serving_executor_inproc_fallbacks_total")
        assert fallbacks is not None and fallbacks.value == 1


def test_server_requeues_crashed_batch_exactly_once(serving_ensemble,
                                                    tiny_driving_dataset):
    """A mid-collect worker kill strands the batch once, never twice.

    The stranded requests ride the existing dispatch-failure path:
    requeued with a retry budget of one, then delivered by the next
    step (respawned worker or in-process fallback — either way the
    verdict arrives and the ledger shows exactly one requeue).
    """
    server = InferenceServer.for_model(serving_ensemble, max_batch=4,
                                       workers=1)
    try:
        sid = server.open_session(0)
        now = feed(server, sid, tiny_driving_dataset, sample=0)
        assert server.request_verdict(sid, now)
        assert len(server.drain(now)) == 1     # prime: spawns the worker
        executor = server._executors["base"]
        executor.hold_worker(0, True)
        now = feed(server, sid, tiny_driving_dataset, sample=1,
                   start=now + 0.25)
        assert server.request_verdict(sid, now)
        killer = threading.Timer(0.3, executor.kill_worker, args=(0,))
        killer.start()
        try:
            stranded = server.drain(now)       # collect hits the corpse
        finally:
            killer.join()
        assert stranded == []
        assert isinstance(server.last_dispatch_error, WorkerCrashError)
        assert server.stats.dispatch_failures == 1
        assert server.scheduler.stats.requeued == 1
        time.sleep(0.15)                       # past the respawn backoff
        redelivered = server.drain(now + 1.0)
        assert len(redelivered) == 1
        assert redelivered[0].session_id == sid
        assert server.scheduler.stats.requeued == 1   # exactly once
        assert server.stats.requests_failed == 0
    finally:
        server.close()


def test_standard_schedule_gains_worker_kill_fault():
    plain = standard_serving_schedule(duration=10.0)
    armed = standard_serving_schedule(duration=10.0, worker_kill=True)
    assert not any(e.kind == "worker_kill" for e in plain.events)
    kills = [e for e in armed.events if e.kind == "worker_kill"]
    assert len(kills) == 1 and kills[0].target == "shard-0"


@pytest.mark.slow
def test_serving_chaos_with_worker_kills_loses_nothing(serving_ensemble):
    """Full chaos run with persistent workers being shot: ledger holds."""
    report = run_serving_chaos(serving_ensemble, shards=3, drivers=2,
                               duration=8.0, seed=0, workers=2)
    assert report.workers == 2
    assert report.worker_kills >= 1
    assert report.lost == 0
    assert report.violations == []
