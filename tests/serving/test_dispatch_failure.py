"""Batch-execution failure recovery: counters, retry, explicit failure.

Regression tests for the PR-4 fix: a micro-batch whose forward pass
raises used to propagate out of :meth:`InferenceServer.step`, losing
every other due batch and leaving no accounting trail.  Now the failure
lands on a counter, fresh requests are re-queued for one retry, and
requests that already burned their retry are failed explicitly.
"""

import numpy as np
import pytest

from repro.serving import (
    InferenceServer,
    MicroBatchScheduler,
    ServingModelRegistry,
)
from repro.serving.scheduler import InferenceRequest
from repro.serving.server import MAX_DISPATCH_RETRIES


class FlakyModel:
    """Delegates to a real ensemble after failing the first N calls."""

    def __init__(self, inner, fail_times):
        self.inner = inner
        self.fail_times = fail_times
        self.calls = 0

    def predict_degraded(self, **kwargs):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError(f"injected fault #{self.calls}")
        return self.inner.predict_degraded(**kwargs)


def flaky_server(serving_ensemble, fail_times, **options):
    registry = ServingModelRegistry()
    registry.register("base", FlakyModel(serving_ensemble, fail_times))
    return InferenceServer(registry, **options)


def feed(server, session_id, dataset, sample, *, instants=4, period=0.25):
    window = dataset.imu[sample]
    for k in range(instants):
        now = period * k
        server.ingest_imu(session_id, now, window[k % window.shape[0]])
        server.ingest_frame(session_id, now, dataset.images[sample])
    return period * (instants - 1)


def request(priority=0.0, session="drv-0", sequence=1):
    return InferenceRequest(
        session_id=session, sequence=sequence, submitted_at=0.0,
        deadline=0.025, priority=priority, model_key="base",
        window=np.zeros((4, 12)))


class TestServerRecovery:
    def test_transient_fault_retries_and_delivers(
            self, serving_ensemble, tiny_driving_dataset):
        server = flaky_server(serving_ensemble, fail_times=1)
        sid = server.open_session(0)
        now = feed(server, sid, tiny_driving_dataset, sample=0)
        assert server.request_verdict(sid, now)

        assert server.drain(now) == []  # first flush hits the fault
        assert server.stats.dispatch_failures == 1
        assert isinstance(server.last_dispatch_error, RuntimeError)
        assert server.scheduler.stats.requeued == 1
        assert server.scheduler.depth == 1

        (verdict,) = server.drain(now)  # retry succeeds
        assert verdict.session_id == sid
        assert server.stats.verdicts == 1
        assert server.stats.requests_failed == 0

    def test_persistent_fault_fails_requests_explicitly(
            self, serving_ensemble, tiny_driving_dataset):
        server = flaky_server(serving_ensemble, fail_times=100)
        sid = server.open_session(0)
        now = feed(server, sid, tiny_driving_dataset, sample=0)
        assert server.request_verdict(sid, now)

        for _ in range(MAX_DISPATCH_RETRIES + 1):
            assert server.drain(now) == []
        assert server.stats.dispatch_failures == MAX_DISPATCH_RETRIES + 1
        assert server.stats.requests_failed == 1
        assert server.scheduler.depth == 0  # not re-queued forever
        assert server.drain(now) == []      # queue actually empty

    def test_failed_request_trace_is_discarded(
            self, serving_ensemble, tiny_driving_dataset):
        server = flaky_server(serving_ensemble, fail_times=100)
        sid = server.open_session(0)
        now = feed(server, sid, tiny_driving_dataset, sample=0)
        assert server.request_verdict(sid, now)
        assert server.tracer.active_count == 1
        for _ in range(MAX_DISPATCH_RETRIES + 1):
            server.drain(now)
        assert server.tracer.active_count == 0
        assert server.traces() == []  # discarded, not archived

    def test_one_poison_batch_does_not_kill_the_step(
            self, serving_ensemble, tiny_driving_dataset):
        # Two modality groups flush together; the IMU-only batch poisons
        # its forward pass but the full-modality batch must still land.
        registry = ServingModelRegistry()
        flaky = FlakyModel(serving_ensemble, fail_times=0)
        registry.register("base", flaky)
        server = InferenceServer(registry)
        full = server.open_session(0)
        imu_only = server.open_session(1)
        now = feed(server, full, tiny_driving_dataset, sample=0)
        window = tiny_driving_dataset.imu[1]
        for k in range(4):
            server.ingest_imu(imu_only, 0.25 * k, window[k])
        assert server.request_verdict(full, now)
        assert server.request_verdict(imu_only, now)

        def poison_imu_only(images=None, imu=None):
            if images is None:
                raise RuntimeError("imu-only path poisoned")
            return serving_ensemble.predict_degraded(images=images, imu=imu)

        flaky.predict_degraded = poison_imu_only
        verdicts = server.drain(now)
        assert [v.session_id for v in verdicts] == [full]
        assert server.stats.dispatch_failures == 1
        assert server.scheduler.stats.requeued == 1

    def test_accounting_identity_holds_through_retry(
            self, serving_ensemble, tiny_driving_dataset):
        server = flaky_server(serving_ensemble, fail_times=1)
        sid = server.open_session(0)
        now = feed(server, sid, tiny_driving_dataset, sample=0)
        assert server.request_verdict(sid, now)
        server.drain(now)  # fault + requeue
        server.drain(now)  # retry delivers
        stats = server.scheduler.stats
        assert stats.submitted == 1            # requeue not re-counted
        assert stats.requeued == 1
        assert stats.dispatched == 2           # flushed twice
        assert stats.submitted + stats.requeued == stats.dispatched
        assert stats.shed == 0 and server.scheduler.depth == 0


class TestSchedulerRequeue:
    def test_requeue_head_inserts(self):
        scheduler = MicroBatchScheduler(max_batch=8)
        assert scheduler.submit(request(session="a", sequence=1), 0.0)
        assert scheduler.submit(request(session="b", sequence=1), 0.0)
        scheduler.requeue([request(session="retry", sequence=9)])
        (batch,) = scheduler.flush(0.0, force=True)
        assert [r.session_id for r in batch.requests] == \
            ["retry", "a", "b"]

    def test_requeue_bypasses_capacity(self):
        scheduler = MicroBatchScheduler(max_batch=8, capacity=1)
        assert scheduler.submit(request(session="a"), 0.0)
        scheduler.requeue([request(session="retry")])
        assert scheduler.depth == 2  # over capacity, nothing shed
        assert scheduler.stats.shed == 0

    def test_requeue_counts_separately_from_submit(self):
        scheduler = MicroBatchScheduler(max_batch=8)
        assert scheduler.submit(request(session="a"), 0.0)
        scheduler.requeue([request(session="r1"), request(session="r2")])
        assert scheduler.stats.submitted == 1
        assert scheduler.stats.requeued == 2

    def test_requeue_restamps_enqueue_wall_clock(self):
        scheduler = MicroBatchScheduler(max_batch=8)
        stale = request(session="retry")
        stale.enqueued_wall = -1.0
        scheduler.requeue([stale])
        assert stale.enqueued_wall > 0.0

    def test_requeued_priority_order_still_wins_at_flush(self):
        # Head insertion is a fairness bump for equal priorities; a
        # strictly higher-priority submission still dispatches first.
        scheduler = MicroBatchScheduler(max_batch=8)
        assert scheduler.submit(request(priority=2.0, session="vip"), 0.0)
        scheduler.requeue([request(priority=0.0, session="retry")])
        (batch,) = scheduler.flush(0.0, force=True)
        assert [r.session_id for r in batch.requests] == ["vip", "retry"]


def test_max_retries_is_one():
    """The recovery contract documented in DESIGN.md: exactly one retry."""
    assert MAX_DISPATCH_RETRIES == 1


def test_retry_counter_rides_on_the_request():
    req = request()
    assert req.retries == 0
    req.retries += 1
    assert req.retries == 1
    assert req.retries >= MAX_DISPATCH_RETRIES
