"""Concurrency stress: every submission is accounted for exactly once.

Many driver threads hammer one :class:`InferenceServer` whose queue is
deliberately tiny, so admission rejects and priority shedding both fire
for real.  Whatever the interleaving, the books must balance:

* ``requests == unservable + rejected + accepted``
* ``accepted == verdicts + shed``   (no retries, nothing left queued)

and no request may leave an orphaned active trace behind.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.ensemble import DegradedPrediction
from repro.serving import InferenceServer


class TinySleepModel:
    """Instant math, small sleep — lets the queue actually back up."""

    def __init__(self, delay: float = 0.002) -> None:
        self.delay = delay

    def predict_degraded(self, *, images=None, imu=None):
        time.sleep(self.delay)
        n = len(images if images is not None else imu)
        probabilities = np.full((n, 6), 1.0 / 6.0)
        return DegradedPrediction(
            probabilities=probabilities,
            predictions=np.zeros(n, dtype=np.int64),
            confidence=probabilities.max(axis=1),
            degraded=False, missing=())


@pytest.mark.slow
def test_saturated_submissions_are_exactly_accounted():
    threads_n, per_thread = 8, 100
    server = InferenceServer.for_model(
        TinySleepModel(), max_batch=16, max_delay=0.0, queue_capacity=8)
    # Varied base priorities so shedding and admission rejection both
    # trigger (equal priorities would only ever reject).
    sids = [server.open_session(d, base_priority=float(d % 4))
            for d in range(threads_n)]

    accepted = [0] * threads_n
    barrier = threading.Barrier(threads_n + 1)
    done = threading.Event()

    def driver(index: int) -> None:
        sid = sids[index]
        barrier.wait()
        for k in range(per_thread):
            now = 0.25 * k
            server.ingest_imu(sid, now, np.zeros(12))
            if server.request_verdict(sid, now):
                accepted[index] += 1

    def flusher() -> None:
        barrier.wait()
        while not done.is_set() or server.scheduler.depth:
            server.step(1e9, force=True)

    workers = [threading.Thread(target=driver, args=(i,))
               for i in range(threads_n)]
    drain = threading.Thread(target=flusher)
    drain.start()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    done.set()
    drain.join(timeout=30.0)
    assert not drain.is_alive()
    server.drain(1e9)

    # Deterministic epilogue: the threaded phase makes rejection and
    # shedding *likely*, not certain — with the flusher stopped, force
    # both failure modes so the assertions below never hinge on a
    # particular interleaving.
    low, high = sids[0], sids[3]  # base priorities 0.0 and 3.0
    now = 0.25 * per_thread
    server.ingest_imu(low, now, np.zeros(12))
    server.ingest_imu(high, now, np.zeros(12))
    extra = server.scheduler.capacity + 2
    for _ in range(server.scheduler.capacity):  # fill the drained queue
        assert server.request_verdict(low, now)
        accepted[0] += 1
    # Full queue + equal priority -> rejected; higher priority -> shed.
    assert not server.request_verdict(low, now)
    assert server.request_verdict(high, now)
    accepted[3] += 1
    server.drain(1e9)

    stats, sched = server.stats, server.scheduler.stats
    total = threads_n * per_thread + extra
    assert stats.requests == total
    assert stats.unservable == 0
    assert sum(accepted) == sched.submitted
    # Book 1: every attempt either bounced at a gate or entered the queue.
    assert stats.requests == stats.rejected + sched.submitted
    # Book 2: everything queued was either served or visibly shed.
    assert server.scheduler.depth == 0
    assert sched.submitted == stats.verdicts + sched.shed
    # The tiny queue really was saturated — both failure modes fired.
    assert stats.rejected > 0
    assert sched.shed > 0
    assert stats.verdicts > 0
    # No orphaned traces: reject/shed paths all discarded theirs.
    assert server.tracer.active_count == 0


@pytest.mark.slow
def test_saturated_admission_counters_match_server_view():
    """The admission gate's own counters agree with the server's."""
    threads_n, per_thread = 4, 60
    server = InferenceServer.for_model(
        TinySleepModel(), max_batch=8, max_delay=0.0, queue_capacity=4)
    sids = [server.open_session(d, base_priority=float(d))
            for d in range(threads_n)]
    barrier = threading.Barrier(threads_n)

    def driver(index: int) -> None:
        sid = sids[index]
        barrier.wait()
        for k in range(per_thread):
            now = 0.25 * k
            server.ingest_imu(sid, now, np.zeros(12))
            server.request_verdict(sid, now)

    workers = [threading.Thread(target=driver, args=(i,))
               for i in range(threads_n)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    server.drain(1e9)

    gate = server.admission.stats
    # Server-side rejected = admission rejections + scheduler rejections;
    # with no flusher running the scheduler-side path can also fire, so
    # the gate's count bounds it from below.
    assert gate.sessions_admitted == threads_n
    assert gate.requests_admitted + gate.requests_rejected == \
        threads_n * per_thread
    assert server.stats.rejected >= gate.requests_rejected
    assert server.tracer.active_count == 0
