"""Threaded stress: concurrent session admission/eviction and ingest.

The server's session table is check-then-act (admission cap check, then
dict insert); without the session lock two racing opens could both pass
the cap check and blow the provisioned bound, or an open/close pair
could leak an outbox.  These tests hammer those paths from many threads
and assert exact accounting."""

import threading

import numpy as np
import pytest

from repro.exceptions import ServingError
from repro.serving import (
    AdmissionController,
    DriverSession,
    InferenceServer,
    ServingModelRegistry,
)


class StubResult:
    def __init__(self, count):
        self.predictions = np.zeros(count, dtype=np.int64)
        self.probabilities = np.full((count, 5), 0.2)
        self.confidence = np.full(count, 0.9)
        self.degraded = False
        self.missing = ()


class StubModel:
    def predict_degraded(self, images=None, imu=None):
        count = len(imu) if imu is not None else len(images)
        return StubResult(count)


def make_server(max_sessions):
    registry = ServingModelRegistry()
    registry.register("base", StubModel())
    return InferenceServer(
        registry, admission=AdmissionController(max_sessions=max_sessions))


def run_threads(workers):
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_concurrent_opens_never_exceed_the_cap():
    cap = 16
    server = make_server(cap)
    admitted, rejected = [], []
    lock = threading.Lock()
    barrier = threading.Barrier(8)

    def opener(base):
        barrier.wait()
        for offset in range(8):
            driver = base * 100 + offset
            try:
                sid = server.open_session(driver)
                with lock:
                    admitted.append(sid)
            except ServingError:
                with lock:
                    rejected.append(driver)

    run_threads([lambda base=b: opener(base) for b in range(8)])
    # Exact accounting: 64 attempts, exactly cap admitted, rest rejected.
    assert len(admitted) == cap
    assert len(rejected) == 64 - cap
    assert sorted(server.sessions) == sorted(admitted)
    server.close()


def test_concurrent_open_close_churn_accounts_exactly():
    cap = 8
    server = make_server(cap)
    outcomes = {"opened": 0, "closed": 0, "rejected": 0}
    lock = threading.Lock()
    barrier = threading.Barrier(6)

    def churner(base):
        barrier.wait()
        for round_index in range(40):
            sid = f"drv-{base}-{round_index}"
            try:
                server.open_session(base, session_id=sid)
            except ServingError:
                with lock:
                    outcomes["rejected"] += 1
                continue
            with lock:
                outcomes["opened"] += 1
            server.close_session(sid)
            with lock:
                outcomes["closed"] += 1

    run_threads([lambda base=b: churner(base) for b in range(6)])
    assert outcomes["opened"] == outcomes["closed"]
    assert outcomes["opened"] + outcomes["rejected"] == 6 * 40
    assert server.sessions == []  # every admitted session closed
    assert server._outboxes == {}  # no leaked outboxes
    server.close()


def test_duplicate_session_id_race_admits_exactly_one():
    server = make_server(32)
    wins, losses = [], []
    lock = threading.Lock()
    barrier = threading.Barrier(8)

    def opener(index):
        barrier.wait()
        try:
            server.open_session(0, session_id="contested")
            with lock:
                wins.append(index)
        except ServingError:
            with lock:
                losses.append(index)

    run_threads([lambda i=i: opener(i) for i in range(8)])
    assert len(wins) == 1
    assert len(losses) == 7
    assert server.sessions == ["contested"]
    server.close()


def test_adoption_races_against_opens_respect_the_cap():
    cap = 12
    server = make_server(cap)
    admitted = []
    lock = threading.Lock()
    barrier = threading.Barrier(8)

    def adopter(base):
        barrier.wait()
        for offset in range(4):
            sid = f"mig-{base}-{offset}"
            session = DriverSession(session_id=sid, driver_id=base)
            try:
                server.adopt_session(session)
                with lock:
                    admitted.append(sid)
            except ServingError:
                pass

    def opener(base):
        barrier.wait()
        for offset in range(4):
            try:
                sid = server.open_session(base * 10 + offset)
                with lock:
                    admitted.append(sid)
            except ServingError:
                pass

    run_threads([lambda b=b: adopter(b) for b in range(4)]
                + [lambda b=b: opener(b) for b in range(4)])
    assert len(admitted) == cap
    assert sorted(server.sessions) == sorted(admitted)
    server.close()


def test_dispatch_and_poll_race_close_without_keyerror():
    """step()'s outbox append and poll() both race close_session: a
    session closed mid-dispatch must simply drop its verdicts, never
    KeyError out of the serving loop."""
    server = make_server(64)
    errors = []
    done = threading.Event()
    barrier = threading.Barrier(5)

    def lifecycle(base):
        barrier.wait()
        for round_index in range(150):
            sid = f"drv-{base}-{round_index}"
            try:
                server.open_session(base, session_id=sid)
                server.ingest_imu(sid, 0.0, np.zeros(12))
                server.request_verdict(sid, 0.0)
                try:
                    server.poll(sid)
                except ServingError:
                    pass  # closed by nobody here; existence raced away
                server.close_session(sid)
            except ServingError:
                pass
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return

    def stepper():
        barrier.wait()
        now = 0.0
        while not done.is_set():
            try:
                server.step(now, force=True)
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return
            now += 0.05

    workers = [threading.Thread(target=lifecycle, args=(b,))
               for b in range(4)]
    pump = threading.Thread(target=stepper)
    for thread in workers:
        thread.start()
    pump.start()
    for thread in workers:
        thread.join()
    done.set()
    pump.join()
    assert errors == []
    assert server.sessions == []
    assert server._outboxes == {}
    server.close()


@pytest.mark.slow
def test_concurrent_ingest_during_churn_keeps_rings_intact():
    """Ingest threads racing open/close: windows stay well-formed and a
    stable session's ring is exactly its last window_steps samples."""
    server = make_server(32)
    stable = server.open_session(999, session_id="stable")
    stop = threading.Event()
    errors = []

    def churner(base):
        round_index = 0
        while not stop.is_set():
            sid = f"churn-{base}-{round_index}"
            round_index += 1
            try:
                server.open_session(base, session_id=sid)
                server.ingest_imu(sid, 0.0, np.zeros(12))
                server.close_session(sid)
            except ServingError:
                pass  # cap contention is fine; corruption is not
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return

    churners = [threading.Thread(target=churner, args=(b,))
                for b in range(4)]
    for thread in churners:
        thread.start()
    steps = server.session(stable).window_steps
    total = 5 * steps
    for k in range(total):
        server.ingest_imu(stable, 0.1 * k, np.full(12, float(k)))
    stop.set()
    for thread in churners:
        thread.join()
    assert errors == []
    window = server.session(stable).window()
    expected = np.stack([np.full(12, float(k))
                         for k in range(total - steps, total)])
    np.testing.assert_array_equal(window, expected)
    assert server.session(stable).counters.imu_samples == total
    server.close()
