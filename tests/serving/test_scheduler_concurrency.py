"""Scheduler thread safety: enqueues proceed while a batch executes.

Regression test for the flush-path lock bug: the scheduler used to be
mutated with no lock at all, and the obvious fix — holding one across
``flush`` *and* the forward pass — would block every submitting thread
behind model execution.  The contract now is pop-under-lock /
execute-unlocked: ``flush`` returns the popped batches and the (slow)
model call happens with the queues unlocked.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.ensemble import DegradedPrediction
from repro.serving import InferenceServer, InferenceRequest, MicroBatchScheduler


class SlowModel:
    """A model that blocks inside ``predict_degraded`` until released."""

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()

    def predict_degraded(self, *, images=None, imu=None):
        self.started.set()
        assert self.release.wait(timeout=10.0), "test never released the model"
        n = len(images if images is not None else imu)
        probabilities = np.full((n, 6), 1.0 / 6.0)
        return DegradedPrediction(
            probabilities=probabilities,
            predictions=np.zeros(n, dtype=np.int64),
            confidence=probabilities.max(axis=1),
            degraded=False, missing=())


def _request(sequence: int, now: float, scheduler: MicroBatchScheduler,
             priority: float = 0.0) -> InferenceRequest:
    return InferenceRequest(
        session_id=f"s{sequence}", sequence=sequence, submitted_at=now,
        deadline=now + scheduler.max_delay, priority=priority,
        model_key="base", window=np.zeros((4, 12), dtype=np.float32))


def test_submit_proceeds_while_batch_executes(tiny_driving_dataset):
    """A slow forward pass must not block other sessions' submissions."""
    model = SlowModel()
    server = InferenceServer.for_model(model, max_batch=1, max_delay=0.0)
    sid = server.open_session(0)
    window = tiny_driving_dataset.imu[0]
    for k in range(4):
        server.ingest_imu(sid, 0.25 * k, window[k])
    assert server.request_verdict(sid, 0.75)

    worker = threading.Thread(target=server.step, args=(10.0,),
                              kwargs={"force": True}, daemon=True)
    worker.start()
    assert model.started.wait(timeout=5.0)
    # The model is now blocked mid-dispatch.  Submitting from this thread
    # must return promptly — the scheduler lock is not held across the
    # forward pass.
    start = time.perf_counter()
    accepted = server.scheduler.submit(
        _request(99, 11.0, server.scheduler), now=11.0)
    elapsed = time.perf_counter() - start
    depth = server.scheduler.depth
    model.release.set()
    worker.join(timeout=10.0)
    assert not worker.is_alive()
    assert accepted
    assert depth == 1
    assert elapsed < 1.0, f"submit blocked for {elapsed:.2f}s during dispatch"


def test_concurrent_submit_and_flush_is_consistent():
    """Hammer one scheduler from submitter and flusher threads."""
    # Capacity above the total submission count so nothing is shed and
    # the exactly-once assertion below holds.
    scheduler = MicroBatchScheduler(max_batch=4, max_delay=0.0, capacity=4096)
    total = 200
    flushed: list[int] = []
    flush_lock = threading.Lock()
    done = threading.Event()

    def submitter(offset: int) -> None:
        for k in range(total):
            scheduler.submit(_request(offset + k, float(k), scheduler),
                             now=float(k))

    def flusher() -> None:
        while not done.is_set() or scheduler.depth:
            for batch in scheduler.flush(1e9):
                with flush_lock:
                    flushed.extend(r.sequence for r in batch.requests)

    threads = [threading.Thread(target=submitter, args=(i * total,))
               for i in range(3)]
    drain = threading.Thread(target=flusher)
    drain.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    done.set()
    drain.join(timeout=10.0)
    assert not drain.is_alive()
    # Every submitted request came out exactly once.
    assert sorted(flushed) == sorted(
        i * total + k for i in range(3) for k in range(total))
    assert scheduler.stats.submitted == 3 * total
    assert scheduler.stats.dispatched == 3 * total
