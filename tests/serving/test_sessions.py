"""Per-driver session state: ring buffer, liveness, scheduling signals."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import (
    ALERT_ADJACENT_BOOST,
    DEGRADED_BOOST,
    DriverSession,
    StreamState,
)


def make_session(**kwargs):
    kwargs.setdefault("session_id", "s0")
    kwargs.setdefault("driver_id", 0)
    kwargs.setdefault("window_steps", 4)
    return DriverSession(**kwargs)


def sample(value):
    return np.full(12, float(value))


def test_window_is_none_before_any_sample():
    assert make_session().window() is None


def test_window_pads_until_ring_fills():
    session = make_session()
    session.ingest_imu(0.0, sample(1))
    session.ingest_imu(0.25, sample(2))
    window = session.window()
    assert window.shape == (4, 12)
    # Front-padded with the oldest sample, chronological after.
    np.testing.assert_array_equal(window[:, 0], [1, 1, 1, 2])


def test_window_is_chronological_after_wrap():
    session = make_session()
    for step in range(7):
        session.ingest_imu(0.25 * step, sample(step))
    np.testing.assert_array_equal(session.window()[:, 0], [3, 4, 5, 6])


def test_bad_imu_shape_raises():
    with pytest.raises(ConfigurationError):
        make_session().ingest_imu(0.0, np.zeros(7))


def test_bad_frame_shape_raises():
    with pytest.raises(ConfigurationError):
        make_session().ingest_frame(0.0, np.zeros((2, 2, 2, 2)))


def test_frame_hw_promoted_to_chw():
    session = make_session()
    session.ingest_frame(0.0, np.zeros((8, 8)))
    assert session.latest_frame().shape == (1, 8, 8)


def test_stream_states_track_staleness():
    session = make_session(imu_stale_after=1.0, frame_stale_after=0.5)
    assert session.imu_state(0.0) is StreamState.DEAD
    session.ingest_imu(0.0, sample(0))
    session.ingest_frame(0.0, np.zeros((8, 8)))
    assert session.imu_state(0.5) is StreamState.LIVE
    assert session.frame_state(0.25) is StreamState.LIVE
    assert session.frame_state(2.0) is StreamState.STALE
    assert session.imu_state(2.0) is StreamState.STALE


def test_priority_boosts_for_alert_adjacent_and_degraded():
    session = make_session(base_priority=1.0)
    assert session.priority(0.0) == 1.0
    session.record_verdict(predicted=2, degraded=False)  # distraction class
    assert session.priority(0.0) == 1.0 + ALERT_ADJACENT_BOOST
    session.record_verdict(predicted=2, degraded=True)
    assert session.priority(0.0) == pytest.approx(
        1.0 + ALERT_ADJACENT_BOOST + DEGRADED_BOOST)
    session.record_verdict(predicted=0, degraded=False)  # back to normal
    assert session.priority(0.0) == 1.0


def test_counters_accumulate():
    session = make_session()
    session.ingest_imu(0.0, sample(0))
    session.ingest_frame(0.0, np.zeros((8, 8)))
    session.next_sequence()
    session.record_verdict(predicted=1, degraded=True)
    counters = session.counters
    assert (counters.imu_samples, counters.frames) == (1, 1)
    assert (counters.requests, counters.verdicts,
            counters.degraded_verdicts) == (1, 1, 1)
