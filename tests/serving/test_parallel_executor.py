"""ParallelExecutor: persistent workers, tickets, telemetry, lifecycle."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import ParallelExecutor, default_worker_count
from repro.serving.executor import RING_SLOTS, _encode_meta


def test_negative_workers_rejected(serving_ensemble):
    with pytest.raises(ConfigurationError):
        ParallelExecutor(serving_ensemble, workers=-1)


def test_zero_workers_runs_in_process(serving_ensemble,
                                      tiny_driving_dataset):
    """workers=0 is the plain path: bit-exact, no processes, no shards."""
    images = tiny_driving_dataset.images[:12]
    windows = tiny_driving_dataset.imu[:12]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=0) as executor:
        ticket = executor.submit(images=images, imu=windows)
        assert ticket.inproc is not None and ticket.jobs == []
        pooled = executor.collect(ticket)
        assert executor.last_shards == []
    np.testing.assert_array_equal(direct.probabilities, pooled.probabilities)
    np.testing.assert_array_equal(direct.predictions, pooled.predictions)


def test_single_worker_is_bit_exact(serving_ensemble, tiny_driving_dataset):
    """One worker gets the whole batch: same row count, same GEMM, bit
    for bit the same probabilities back through the response ring."""
    images = tiny_driving_dataset.images[:12]
    windows = tiny_driving_dataset.imu[:12]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=1) as executor:
        pooled = executor.predict_degraded(images=images, imu=windows)
    np.testing.assert_array_equal(direct.probabilities, pooled.probabilities)
    np.testing.assert_array_equal(direct.predictions, pooled.predictions)


def test_four_workers_match_in_process(serving_ensemble,
                                       tiny_driving_dataset):
    """Shard execution must not change verdicts, order, or metadata.

    Probabilities are compared to BLAS rounding (GEMM blocking depends
    on the row count), predictions exactly.
    """
    images = tiny_driving_dataset.images[:13]  # uneven split across 4
    windows = tiny_driving_dataset.imu[:13]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=4) as executor:
        pooled = executor.predict_degraded(images=images, imu=windows)
        again = executor.predict_degraded(images=images, imu=windows)
        imu_only = executor.predict_degraded(imu=windows)
    np.testing.assert_allclose(direct.probabilities, pooled.probabilities,
                               atol=1e-7)
    np.testing.assert_array_equal(direct.predictions, pooled.predictions)
    assert pooled.degraded == direct.degraded
    assert pooled.missing == direct.missing
    # The rings are reused across calls without corrupting results.
    np.testing.assert_array_equal(pooled.probabilities, again.probabilities)
    # Degraded metadata survives the worker round-trip, through a
    # geometry that gained the imu-only modality after spawn.
    direct_imu = serving_ensemble.predict_degraded(imu=windows)
    np.testing.assert_allclose(direct_imu.probabilities,
                               imu_only.probabilities, atol=1e-7)
    assert imu_only.degraded and "frames" in imu_only.missing


def test_submit_overlaps_batches_before_collect(serving_ensemble,
                                                tiny_driving_dataset):
    """The async front-end: several tickets in flight, collected later
    in submission order — the server's two-phase step in miniature."""
    images = tiny_driving_dataset.images
    windows = tiny_driving_dataset.imu
    direct = [serving_ensemble.predict_degraded(
        images=images[lo:lo + 6], imu=windows[lo:lo + 6])
        for lo in (0, 6, 12)]
    with ParallelExecutor(serving_ensemble, workers=2) as executor:
        tickets = [executor.submit(images=images[lo:lo + 6],
                                   imu=windows[lo:lo + 6])
                   for lo in (0, 6, 12)]
        assert all(len(t.jobs) == 2 for t in tickets)
        results = [executor.collect(t) for t in tickets]
    for want, got in zip(direct, results):
        np.testing.assert_array_equal(want.predictions, got.predictions)


def test_workers_report_shard_and_ring_telemetry(serving_ensemble,
                                                 tiny_driving_dataset):
    """Shard intervals, histograms, status blocks, occupancy gauges."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    images = tiny_driving_dataset.images[:10]
    windows = tiny_driving_dataset.imu[:10]
    with ParallelExecutor(serving_ensemble, workers=2,
                          metrics=registry) as executor:
        executor.predict_degraded(images=images, imu=windows)
        shards = list(executor.last_shards)
        occupancy = executor.ring_occupancy()
        statuses = [executor.worker_status(i) for i in range(2)]
    assert [(lo, hi) for lo, hi, _, _ in shards] == [(0, 5), (5, 10)]
    assert all(end >= start for _, _, start, end in shards)
    shard_hist = registry.get("serving_executor_shard_seconds")
    assert shard_hist is not None and shard_hist.count == 2
    handoff = registry.get("serving_executor_handoff_seconds")
    assert handoff is not None and handoff.count == 2
    # Between steps both rings are drained.
    assert occupancy == {0: (0, 0), 1: (0, 0)}
    assert registry.get("serving_ring_occupancy", worker="0",
                        ring="request").value == 0
    for status in statuses:
        assert status["alive"] and status["plans_pinned"]
        assert status["jobs_done"] == 1
        assert status["busy_seconds"] > 0


def test_worker_metrics_drain_back_to_parent(serving_ensemble,
                                             tiny_driving_dataset):
    """Telemetry recorded inside the forked workers (workspace reuse,
    backend counters) rides the response meta and merges into the
    parent registry — the fork doesn't black-hole observability."""
    from repro.obs.metrics import get_registry

    images = tiny_driving_dataset.images[:10]
    windows = tiny_driving_dataset.imu[:10]
    with ParallelExecutor(serving_ensemble, workers=2) as executor:
        executor.predict_degraded(images=images, imu=windows)
    misses = get_registry().get("nn_workspace_misses_total")
    assert misses is not None and misses.value > 0


def test_single_sample_batch_round_trips(serving_ensemble,
                                         tiny_driving_dataset):
    """count < workers: the batch collapses to one shard, one worker."""
    images = tiny_driving_dataset.images[:1]
    windows = tiny_driving_dataset.imu[:1]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=4) as executor:
        ticket = executor.submit(images=images, imu=windows)
        assert len(ticket.jobs) == 1
        pooled = executor.collect(ticket)
    np.testing.assert_array_equal(direct.probabilities, pooled.probabilities)


def test_larger_batch_rebuilds_geometry(serving_ensemble,
                                        tiny_driving_dataset):
    """A batch beyond max_rows forces a one-time ring rebuild."""
    images = tiny_driving_dataset.images
    windows = tiny_driving_dataset.imu
    with ParallelExecutor(serving_ensemble, workers=1,
                          max_rows=4) as executor:
        small = executor.predict_degraded(images=images[:3],
                                          imu=windows[:3])
        big = executor.predict_degraded(images=images[:9],
                                        imu=windows[:9])
    direct = serving_ensemble.predict_degraded(images=images[:9],
                                               imu=windows[:9])
    assert small.predictions.shape == (3,)
    np.testing.assert_array_equal(direct.predictions, big.predictions)


def test_rebuild_deferred_while_tickets_in_flight(serving_ensemble,
                                                  tiny_driving_dataset):
    """A batch needing a ring rebuild mid-step must not tear the rings
    down under earlier, uncollected tickets: it serves in-process, the
    in-flight ticket collects unharmed (no spurious crash, no timeout),
    and the rebuild lands once the step drains."""
    images = tiny_driving_dataset.images[:4]
    windows = tiny_driving_dataset.imu[:4]
    direct_imu = serving_ensemble.predict_degraded(imu=windows)
    direct_both = serving_ensemble.predict_degraded(images=images,
                                                    imu=windows)
    with ParallelExecutor(serving_ensemble, workers=1) as executor:
        first = executor.submit(imu=windows)    # spawns imu-only rings
        assert first.jobs
        second = executor.submit(images=images, imu=windows)
        assert second.inproc is not None        # rebuild deferred
        got_first = executor.collect(first, timeout=10.0)
        got_second = executor.collect(second)
        assert executor.worker_status(0)["crashes"] == 0
        third = executor.submit(images=images, imu=windows)
        assert third.jobs                       # rebuilt after the drain
        got_third = executor.collect(third, timeout=10.0)
    np.testing.assert_array_equal(direct_imu.predictions,
                                  got_first.predictions)
    np.testing.assert_array_equal(direct_both.predictions,
                                  got_second.predictions)
    np.testing.assert_array_equal(direct_both.predictions,
                                  got_third.predictions)


def test_deep_backlog_is_backpressure_not_a_crash(serving_ensemble,
                                                  tiny_driving_dataset):
    """More batches in one phase than the rings can pipeline (request
    slots + response slots + one in compute): submit drains finished
    responses to keep the worker moving instead of misreading the full
    ring as a crash and shooting a healthy process."""
    images = tiny_driving_dataset.images[:2]
    windows = tiny_driving_dataset.imu[:2]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=1) as executor:
        tickets = [executor.submit(images=images, imu=windows)
                   for _ in range(3 * RING_SLOTS)]
        assert all(t.inproc is None and t.jobs for t in tickets)
        results = [executor.collect(t, timeout=10.0) for t in tickets]
        assert executor.worker_status(0)["crashes"] == 0
    for got in results:
        np.testing.assert_array_equal(direct.predictions, got.predictions)


def test_encode_meta_truncates_instead_of_overflowing():
    """A model error whose repr exceeds the meta slab degrades to a
    truncated report — never an oversized blob that would crash the
    worker on the slab slice assignment."""
    meta_max = 1 << 16
    small = _encode_meta("ValueError('bad row')", None, meta_max)
    assert pickle.loads(small) == {"error": "ValueError('bad row')"}
    huge = _encode_meta("ValueError(" + "x" * (4 * meta_max) + ")",
                        None, meta_max)
    assert len(huge) <= meta_max
    assert pickle.loads(huge)["error"].startswith("ValueError(")


def test_close_is_idempotent(serving_ensemble, tiny_driving_dataset):
    executor = ParallelExecutor(serving_ensemble, workers=2)
    executor.predict_degraded(images=tiny_driving_dataset.images[:4],
                              imu=tiny_driving_dataset.imu[:4])
    executor.close()
    executor.close()  # second close must be a no-op, not an error


def test_close_before_first_submit(serving_ensemble):
    """No lazy spawn ever happened: nothing to tear down, no error."""
    ParallelExecutor(serving_ensemble, workers=2).close()


def test_default_worker_count_is_cores_minus_one(monkeypatch):
    import os

    monkeypatch.setattr(os, "cpu_count", lambda: 4)
    assert default_worker_count() == 3
    monkeypatch.setattr(os, "cpu_count", lambda: 1)
    assert default_worker_count() == 0
