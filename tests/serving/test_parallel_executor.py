"""ParallelExecutor: worker-count-invariant verdicts, lifecycle hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import ParallelExecutor, replay_concurrent_drives


def test_workers_must_be_positive(serving_ensemble):
    with pytest.raises(ConfigurationError):
        ParallelExecutor(serving_ensemble, workers=0)


def test_single_worker_is_bit_exact(serving_ensemble, tiny_driving_dataset):
    images = tiny_driving_dataset.images[:12]
    windows = tiny_driving_dataset.imu[:12]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=1) as executor:
        pooled = executor.predict_degraded(images=images, imu=windows)
    np.testing.assert_array_equal(direct.probabilities, pooled.probabilities)
    np.testing.assert_array_equal(direct.predictions, pooled.predictions)


def test_four_workers_match_single_worker(serving_ensemble,
                                          tiny_driving_dataset):
    """Shard execution must not change verdicts, order, or metadata.

    Probabilities are compared to BLAS rounding (GEMM blocking depends
    on the row count), predictions exactly.
    """
    images = tiny_driving_dataset.images[:13]  # uneven split across 4
    windows = tiny_driving_dataset.imu[:13]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=4) as executor:
        pooled = executor.predict_degraded(images=images, imu=windows)
        again = executor.predict_degraded(images=images, imu=windows)
        imu_only = executor.predict_degraded(imu=windows)
    np.testing.assert_allclose(direct.probabilities, pooled.probabilities,
                               atol=1e-7)
    np.testing.assert_array_equal(direct.predictions, pooled.predictions)
    assert pooled.degraded == direct.degraded
    assert pooled.missing == direct.missing
    # Shared buffers are reused across calls without corrupting results.
    np.testing.assert_array_equal(pooled.probabilities, again.probabilities)
    # Degraded metadata survives the worker round-trip.
    direct_imu = serving_ensemble.predict_degraded(imu=windows)
    np.testing.assert_allclose(direct_imu.probabilities,
                               imu_only.probabilities, atol=1e-7)
    assert imu_only.degraded and "frames" in imu_only.missing


def test_tiny_batch_avoids_the_pool(serving_ensemble, tiny_driving_dataset):
    """A 1-sample batch runs in-process even on a pooled executor."""
    images = tiny_driving_dataset.images[:1]
    windows = tiny_driving_dataset.imu[:1]
    direct = serving_ensemble.predict_degraded(images=images, imu=windows)
    with ParallelExecutor(serving_ensemble, workers=4) as executor:
        pooled = executor.predict_degraded(images=images, imu=windows)
    np.testing.assert_array_equal(direct.probabilities, pooled.probabilities)


def test_pooled_executor_reports_shard_telemetry(serving_ensemble,
                                                 tiny_driving_dataset):
    """Shard intervals, the shard histogram, and worker-registry merge."""
    from repro.obs.metrics import get_registry

    images = tiny_driving_dataset.images[:10]
    windows = tiny_driving_dataset.imu[:10]
    with ParallelExecutor(serving_ensemble, workers=2) as executor:
        executor.predict_degraded(images=images, imu=windows)
        shards = list(executor.last_shards)
    assert [(lo, hi) for lo, hi, _, _ in shards] == [(0, 5), (5, 10)]
    assert all(end >= start for _, _, start, end in shards)
    registry = get_registry()
    shard_hist = registry.get("serving_executor_shard_seconds")
    assert shard_hist is not None and shard_hist.count == 2
    # The workers' own telemetry (workspace reuse counted inside the
    # forked processes) drained back and merged into the parent registry.
    misses = registry.get("nn_workspace_misses_total")
    assert misses is not None and misses.value > 0


def test_in_process_fallback_leaves_no_shards(serving_ensemble,
                                              tiny_driving_dataset):
    with ParallelExecutor(serving_ensemble, workers=2) as executor:
        executor.predict_degraded(
            images=tiny_driving_dataset.images[:1],
            imu=tiny_driving_dataset.imu[:1])
        assert executor.last_shards == []


def test_close_is_idempotent(serving_ensemble):
    executor = ParallelExecutor(serving_ensemble, workers=2)
    executor.close()
    executor.close()  # second close must be a no-op, not an error


def test_replay_verdicts_match_across_worker_counts(serving_ensemble):
    """The full serving replay delivers the same verdict stream at 1 and
    2 workers — the parallel path changes wall-clock, never answers."""
    serial = replay_concurrent_drives(serving_ensemble, drivers=4,
                                      duration=2.0, seed=11, workers=1)
    pooled = replay_concurrent_drives(serving_ensemble, drivers=4,
                                      duration=2.0, seed=11, workers=2)
    assert pooled.workers == 2
    assert serial.verdicts == pooled.verdicts
    assert serial.degraded_verdicts == pooled.degraded_verdicts
    assert serial.verdicts_per_session == pooled.verdicts_per_session
