"""Kernels, SVM solver, and window features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.ml import (
    BinarySVM,
    FeatureScaler,
    MultiClassSVM,
    extract_window_features,
    feature_dimension,
    get_kernel,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)


# -- kernels --------------------------------------------------------------

def test_linear_kernel_values():
    a = np.array([[1.0, 2.0]])
    b = np.array([[3.0, 4.0], [0.0, 1.0]])
    np.testing.assert_allclose(linear_kernel(a, b), [[11.0, 2.0]])


def test_rbf_kernel_diagonal_is_one(rng):
    x = rng.normal(size=(5, 3))
    gram = rbf_kernel(0.5)(x, x)
    np.testing.assert_allclose(np.diag(gram), 1.0)
    assert np.all(gram <= 1.0 + 1e-12)


def test_rbf_kernel_decays_with_distance():
    kernel = rbf_kernel(1.0)
    near = kernel(np.array([[0.0]]), np.array([[0.1]]))
    far = kernel(np.array([[0.0]]), np.array([[3.0]]))
    assert near > far


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_rbf_kernel_symmetric(seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(4, 2))
    gram = rbf_kernel(0.7)(x, x)
    np.testing.assert_allclose(gram, gram.T, atol=1e-12)


def test_polynomial_kernel():
    kernel = polynomial_kernel(degree=2, coef0=1.0)
    out = kernel(np.array([[1.0]]), np.array([[2.0]]))
    np.testing.assert_allclose(out, [[9.0]])


def test_kernel_validation():
    with pytest.raises(ConfigurationError):
        rbf_kernel(0.0)
    with pytest.raises(ConfigurationError):
        polynomial_kernel(degree=0)
    with pytest.raises(ConfigurationError):
        get_kernel("sigmoid")


def test_get_kernel_resolution():
    assert get_kernel("linear") is linear_kernel
    assert callable(get_kernel("rbf", gamma=2.0))
    assert get_kernel(linear_kernel) is linear_kernel


# -- binary SVM ---------------------------------------------------------

def _separable(rng, n=60, margin=2.0):
    x = rng.normal(size=(n, 2))
    y = np.where(x[:, 0] + x[:, 1] > 0, 1.0, -1.0)
    x += margin * 0.25 * y[:, None]
    return x, y


def test_binary_svm_separable(rng):
    x, y = _separable(rng)
    svm = BinarySVM(c=10.0, kernel="linear", rng=rng).fit(x, y)
    assert np.mean(svm.predict(x) == y) > 0.95


def test_binary_svm_xor_needs_rbf(rng):
    x = rng.normal(size=(80, 2))
    y = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
    linear = BinarySVM(c=1.0, kernel="linear", rng=np.random.default_rng(0))
    rbf = BinarySVM(c=10.0, kernel="rbf", gamma=1.0,
                    rng=np.random.default_rng(0))
    linear_acc = np.mean(linear.fit(x, y).predict(x) == y)
    rbf_acc = np.mean(rbf.fit(x, y).predict(x) == y)
    assert rbf_acc > 0.9
    assert rbf_acc > linear_acc


def test_binary_svm_support_vectors_subset(rng):
    x, y = _separable(rng, n=80)
    svm = BinarySVM(c=1.0, kernel="linear", rng=rng).fit(x, y)
    assert 0 < svm.num_support_vectors <= 80


def test_binary_svm_rejects_bad_labels(rng):
    with pytest.raises(ShapeError):
        BinarySVM(rng=rng).fit(np.zeros((3, 2)), np.array([0.0, 1.0, 2.0]))


def test_binary_svm_not_fitted(rng):
    with pytest.raises(NotFittedError):
        BinarySVM(rng=rng).decision_function(np.zeros((1, 2)))
    with pytest.raises(NotFittedError):
        _ = BinarySVM(rng=rng).num_support_vectors


def test_binary_svm_validates_c():
    with pytest.raises(ConfigurationError):
        BinarySVM(c=0.0)


# -- multiclass -------------------------------------------------------------

def _blobs3(rng, n_per=30):
    centers = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
    x = np.concatenate([
        centers[i] + rng.normal(0, 0.6, size=(n_per, 2)) for i in range(3)])
    y = np.repeat(np.arange(3), n_per)
    return x, y


def test_multiclass_svm_blobs(rng):
    x, y = _blobs3(rng)
    svm = MultiClassSVM(c=5.0, kernel="rbf", gamma=0.5, rng=rng).fit(x, y)
    assert svm.evaluate(x, y) > 0.95


def test_multiclass_proba_is_distribution(rng):
    x, y = _blobs3(rng)
    svm = MultiClassSVM(rng=rng).fit(x, y)
    probs = svm.predict_proba(x)
    assert probs.shape == (len(x), 3)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(probs >= 0)


def test_multiclass_preserves_label_values(rng):
    x, y = _blobs3(rng)
    shifted = y * 10 + 5  # labels {5, 15, 25}
    svm = MultiClassSVM(rng=rng).fit(x, shifted)
    assert set(np.unique(svm.predict(x))) <= {5, 15, 25}
    np.testing.assert_array_equal(svm.classes_, [5, 15, 25])


def test_multiclass_single_class_rejected(rng):
    with pytest.raises(ShapeError):
        MultiClassSVM(rng=rng).fit(np.zeros((4, 2)), np.zeros(4))


def test_multiclass_not_fitted(rng):
    with pytest.raises(NotFittedError):
        MultiClassSVM(rng=rng).predict(np.zeros((1, 2)))


# -- features ------------------------------------------------------------

def test_feature_dimension_matches_extraction(rng):
    windows = rng.normal(size=(4, 20, 12))
    features = extract_window_features(windows)
    assert features.shape == (4, feature_dimension(12))


def test_features_capture_mean_and_std():
    window = np.zeros((1, 10, 12))
    window[0, :, 0] = [0, 2] * 5  # mean 1, std 1
    features = extract_window_features(window)
    assert features[0, 0] == pytest.approx(1.0)      # mean of channel 0
    assert features[0, 12] == pytest.approx(1.0)     # std of channel 0


def test_features_validate_shape(rng):
    with pytest.raises(ShapeError):
        extract_window_features(rng.normal(size=(4, 20)))


def test_feature_correlations_bounded(rng):
    windows = rng.normal(size=(8, 20, 12))
    features = extract_window_features(windows)
    correlations = features[:, -3:]
    assert np.all(np.abs(correlations) <= 1.0 + 1e-9)


def test_scaler_standardizes(rng):
    features = rng.normal(5.0, 3.0, size=(100, 7))
    scaler = FeatureScaler()
    scaled = scaler.fit_transform(features)
    # The scaler computes in float32 end-to-end, so standardization is
    # exact to single precision, not double.
    np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-5)
    np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-5)


def test_scaler_transform_consistent(rng):
    train = rng.normal(size=(50, 3))
    test = rng.normal(size=(10, 3))
    scaler = FeatureScaler().fit(train)
    np.testing.assert_allclose(scaler.transform(test),
                               (test - train.mean(0)) / train.std(0),
                               rtol=1e-5)


def test_scaler_requires_fit(rng):
    with pytest.raises(ShapeError):
        FeatureScaler().transform(rng.normal(size=(3, 3)))


def test_scaler_constant_feature_safe():
    features = np.ones((10, 2))
    scaled = FeatureScaler().fit_transform(features)
    assert np.isfinite(scaled).all()
