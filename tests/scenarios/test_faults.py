"""Scenario-native faults: projection into the chaos vocabulary."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    CameraFault,
    EnvironmentTrack,
    ScenarioSpec,
    scenario_fault_schedule,
)
from repro.scenarios.faults import scenario_fault_events
from repro.streaming.faults import FAULT_KINDS, FaultEvent


def _spec_with_faults(*faults) -> ScenarioSpec:
    return ScenarioSpec.paper_sweep(drivers=3, duration=6.0).with_overrides(
        environment=EnvironmentTrack(camera_faults=tuple(faults)))


def test_camera_fault_kinds_are_registered_chaos_kinds():
    assert "camera_covered" in FAULT_KINDS
    assert "camera_blackout" in FAULT_KINDS


def test_fleet_wide_fault_targets_star():
    spec = _spec_with_faults(CameraFault("covered", 1.0, 2.0))
    events = scenario_fault_events(spec)
    assert len(events) == 1
    assert (events[0].kind, events[0].target) == ("camera_covered", "*")
    assert (events[0].start, events[0].end) == (1.0, 2.0)


def test_targeted_faults_map_driver_ids_to_sessions():
    spec = _spec_with_faults(
        CameraFault("blackout", 2.0, 4.0, drivers=(0, 2)))
    placeholders = scenario_fault_events(spec)
    assert [e.target for e in placeholders] == ["driver-0", "driver-2"]
    mapped = scenario_fault_events(spec, session_ids=["s-a", "s-b", "s-c"])
    assert [e.target for e in mapped] == ["s-a", "s-c"]
    assert all(e.kind == "camera_blackout" for e in mapped)


def test_schedule_merges_scenario_and_extra_events():
    spec = _spec_with_faults(CameraFault("covered", 1.0, 2.0))
    extra = FaultEvent(3.0, 4.0, "sink_blackhole", "*")
    schedule = scenario_fault_schedule(spec, extra=[extra])
    kinds = {event.kind for event in schedule.events}
    assert kinds == {"camera_covered", "sink_blackhole"}
    assert schedule.active_for("camera_covered", "anything", 1.5) is not None
    assert schedule.active_for("camera_covered", "anything", 2.5) is None


def test_default_environment_yields_no_events():
    spec = ScenarioSpec.paper_sweep(drivers=2, duration=6.0)
    assert scenario_fault_events(spec) == []
    assert len(scenario_fault_schedule(spec).events) == 0


@pytest.mark.slow
def test_committed_mixed_spec_drives_chaos(mixed_scenario_spec,
                                           extended_ensemble):
    """Third consumer of the committed fixture: the same mixed-class spec
    that cuts training windows and pins the golden replay also drives the
    serving chaos harness — its scheduled blackout joins the standard
    shard-kill schedule, the extended heads serve every verdict, and the
    zero-loss audit holds."""
    from repro.serving import run_serving_chaos

    report = run_serving_chaos(extended_ensemble, shards=2,
                               scenario=mixed_scenario_spec)
    assert report.violations == []
    assert report.scenario == "mixed-fleet"
    assert report.lost == 0
    assert report.masked_frames == 12  # blackout 7-10 s, driver 0, 4 Hz
    kinds = {event[1] for event in report.harness_log}
    assert "shard_kill" in kinds
    assert "camera_blackout" not in kinds  # masking happens at ingestion


@pytest.mark.slow
def test_serving_chaos_audits_scenario_camera_faults(serving_ensemble):
    """A paper-class scenario with both camera-fault kinds runs through
    the serving chaos harness with zero loss, and the audit proves the
    scenario faults engaged (frames withheld, occluded frames served)."""
    from repro.serving import run_serving_chaos

    spec = ScenarioSpec.paper_sweep(
        drivers=2, duration=8.0, seed=13).with_overrides(
        name="chaos-cameras",
        environment=EnvironmentTrack(camera_faults=(
            CameraFault("blackout", 4.0, 6.0, drivers=(0,)),
            CameraFault("covered", 2.0, 4.0, drivers=(1,)))))
    report = run_serving_chaos(serving_ensemble, shards=2, scenario=spec)
    assert report.violations == []
    assert report.scenario == "chaos-cameras"
    assert report.masked_frames == 8
    assert report.covered_frames == 8
    assert report.lost == 0
    kinds = {event[1] for event in report.harness_log}
    assert "shard_kill" in kinds  # standard schedule still runs alongside
