"""Scenario compiler: determinism, legacy bit-stability, environment.

The contract under test is **spec + seed ⇒ byte-identical streams**, and
its corollary: environment effects (lighting, noise, faults, jitter)
never perturb the base per-driver RNG stream — a spec that adds an
effect changes *only* the instants the effect covers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.darnet import DriveScript
from repro.datasets import DrivingBehavior
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    BehaviorSegment,
    CameraFault,
    EnvironmentTrack,
    GpsRoute,
    LightingPhase,
    NoiseRegime,
    RoadProfile,
    ScenarioSpec,
    Timeline,
    compile_scenario,
    synthesize_trace,
)


def _sweep(**overrides) -> ScenarioSpec:
    base = ScenarioSpec.paper_sweep(drivers=2, duration=6.0, seed=9)
    return base.with_overrides(**overrides) if overrides else base


def _assert_traces_identical(a, b):
    assert np.array_equal(a.imu, b.imu)
    assert len(a.frames) == len(b.frames)
    for fa, fb in zip(a.frames, b.frames):
        assert np.array_equal(fa, fb)
    assert np.array_equal(a.labels, b.labels)


# -- determinism -------------------------------------------------------------

def test_same_spec_compiles_to_byte_identical_streams(mixed_scenario_spec):
    """Two independent compiles of the committed mixed spec agree bit
    for bit on every stream — IMU, frames, labels, masks, GPS."""
    first = compile_scenario(mixed_scenario_spec).traces()
    second = compile_scenario(mixed_scenario_spec).traces()
    for a, b in zip(first, second):
        _assert_traces_identical(a, b)
        assert (a.frame_mask is None) == (b.frame_mask is None)
        if a.frame_mask is not None:
            assert np.array_equal(a.frame_mask, b.frame_mask)
        assert np.array_equal(a.gps, b.gps)
        assert a.timeline == b.timeline


def test_round_tripped_spec_compiles_identically(mixed_scenario_spec):
    """JSON round-trip preserves the compiled world, not just equality."""
    again = type(mixed_scenario_spec).from_json(mixed_scenario_spec.to_json())
    for a, b in zip(compile_scenario(mixed_scenario_spec).traces(),
                    compile_scenario(again).traces()):
        _assert_traces_identical(a, b)


def test_default_sweep_is_bit_identical_with_legacy_synthesize():
    """Satellite #1: the paper-sweep spec reproduces the pre-DSL replay's
    hardcoded script exactly — same RNG stream, same bytes out."""
    spec = _sweep()
    compiled = compile_scenario(spec)
    segment = max(1.0, spec.duration / 6 - 0.25)
    script = DriveScript.standard(segment_seconds=segment, gap_seconds=0.25)
    for driver in range(spec.drivers):
        legacy = synthesize_trace(
            driver, compiled.instants, script=script,
            rng=np.random.default_rng(spec.seed + 1000 + driver))
        _assert_traces_identical(compiled.trace_for(driver), legacy)
        assert compiled.trace_for(driver).frame_mask is None


# -- fleet layout ------------------------------------------------------------

def test_weighted_assignment_is_exact_largest_remainder():
    seg = (BehaviorSegment(0.0, 6.0, DrivingBehavior.NORMAL),)
    spec = _sweep().with_overrides(drivers=8, timelines=(
        Timeline("heavy", seg, weight=3.0),
        Timeline("light", seg, weight=1.0)))
    assignment = compile_scenario(spec).assignment
    assert assignment.count(0) == 6 and assignment.count(1) == 2

    spec = spec.with_overrides(drivers=5, timelines=(
        Timeline("a", seg), Timeline("b", seg), Timeline("c", seg)))
    counts = [compile_scenario(spec).assignment.count(i) for i in range(3)]
    assert sorted(counts) == [1, 2, 2] and sum(counts) == 5


def test_trace_for_rejects_out_of_fleet_driver():
    compiled = compile_scenario(_sweep())
    with pytest.raises(ConfigurationError):
        compiled.trace_for(2)


# -- environment track -------------------------------------------------------

def test_lighting_phase_changes_only_covered_instants():
    dark = _sweep(environment=EnvironmentTrack(
        lighting=(LightingPhase(2.0, 4.0, 0.1, 0.2),)))
    base = compile_scenario(_sweep()).trace_for(0)
    lit = compile_scenario(dark).trace_for(0)
    instants = compile_scenario(dark).instants
    for k, t in enumerate(instants):
        inside = 2.0 <= t < 4.0
        same = np.array_equal(base.frames[k], lit.frames[k])
        assert same != inside, f"frame at t={t} {'un' if inside else ''}changed"
        if inside:
            assert lit.frames[k].mean() < base.frames[k].mean()
    assert np.array_equal(base.imu, lit.imu)  # lighting never touches IMU


def test_noise_regime_perturbs_only_covered_instants():
    noisy_spec = _sweep(environment=EnvironmentTrack(
        imu_noise=(NoiseRegime(1.0, 3.0, 0.2),)))
    base = compile_scenario(_sweep()).trace_for(1)
    noisy = compile_scenario(noisy_spec).trace_for(1)
    instants = compile_scenario(noisy_spec).instants
    inside = (instants >= 1.0) & (instants < 3.0)
    assert np.array_equal(base.imu[~inside], noisy.imu[~inside])
    assert not np.array_equal(base.imu[inside], noisy.imu[inside])
    for fa, fb in zip(base.frames, noisy.frames):  # noise never touches frames
        assert np.array_equal(fa, fb)


def test_road_profile_scales_vibration():
    rough = _sweep(environment=EnvironmentTrack(
        road=RoadProfile(name="gravel", vibration=3.0)))
    base = compile_scenario(_sweep()).trace_for(0)
    shaken = compile_scenario(rough).trace_for(0)
    assert not np.array_equal(base.imu, shaken.imu)
    for fa, fb in zip(base.frames, shaken.frames):
        assert np.array_equal(fa, fb)


def test_blackout_masks_ingestion_but_keeps_frames():
    spec = _sweep(environment=EnvironmentTrack(
        camera_faults=(CameraFault("blackout", 2.0, 4.0, drivers=(0,)),)))
    compiled = compile_scenario(spec)
    masked = compiled.trace_for(0)
    untouched = compiled.trace_for(1)
    expected = ~((compiled.instants >= 2.0) & (compiled.instants < 4.0))
    assert np.array_equal(masked.frame_mask, expected)
    assert untouched.frame_mask is None
    # The frames behind the mask still exist (the camera *recorded*;
    # ingestion was cut) and the base stream is untouched.
    base = compile_scenario(_sweep()).trace_for(0)
    _assert_traces_identical(base, masked)


def test_covered_fault_darkens_frames_without_touching_imu():
    spec = _sweep(environment=EnvironmentTrack(
        camera_faults=(CameraFault("covered", 1.0, 3.0),)))
    compiled = compile_scenario(spec)
    covered = compiled.trace_for(0)
    base = compile_scenario(_sweep()).trace_for(0)
    for k, t in enumerate(compiled.instants):
        if 1.0 <= t < 3.0:
            assert covered.frames[k].mean() < 0.2
            assert covered.frames[k].mean() < base.frames[k].mean()
        else:
            assert np.array_equal(covered.frames[k], base.frames[k])
    assert np.array_equal(covered.imu, base.imu)
    assert covered.frame_mask is None  # covered frames still flow


def test_segment_jitter_is_per_driver_and_deterministic():
    spec = _sweep(drivers=4, segment_jitter=0.5)
    compiled = compile_scenario(spec)
    scripts = [compiled.script_for(d) for d in range(4)]
    assert len({tuple(s.segments) for s in scripts}) > 1
    again = compile_scenario(spec)
    for d in range(4):
        assert again.script_for(d).segments == scripts[d].segments
        for start, end, _ in again.script_for(d).segments:
            assert 0.0 <= start < end


def test_gps_route_dead_reckons_per_driver():
    spec = _sweep(environment=EnvironmentTrack(
        gps=GpsRoute(origin=(40.0, -75.0), heading_deg=90.0, speed_mps=10.0)))
    compiled = compile_scenario(spec)
    a, b = compiled.trace_for(0).gps, compiled.trace_for(1).gps
    assert a.shape == (len(compiled.instants), 3)
    assert a[0, 0] == pytest.approx(40.0)
    assert b[0, 0] == pytest.approx(40.0001)  # per-driver origin offset
    assert np.all(np.diff(a[:, 1]) > 0)  # heading east: lon increases
    assert np.allclose(a[:, 2], 10.0)  # constant speed channel
    assert compile_scenario(_sweep()).trace_for(0).gps is None
