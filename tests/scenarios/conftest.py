"""Scenario-suite fixtures.

``mixed_scenario_spec`` and ``extended_ensemble`` live in the top-level
conftest (the serving suite shares them); here we only add a small
paper-class ensemble for the chaos test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CnnConfig, DarNetEnsemble, RnnConfig


@pytest.fixture(scope="package")
def serving_ensemble(tiny_driving_dataset):
    """A trained 6-class cnn+rnn ensemble (mirrors the serving suite's)."""
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(7))
    ensemble.fit(tiny_driving_dataset)
    return ensemble
