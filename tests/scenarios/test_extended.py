"""Extended taxonomy: new classes, their synth signatures, and the heads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CnnConfig, RnnConfig
from repro.datasets import (
    NUM_EXTENDED_CLASSES,
    NUM_EXTENDED_IMU_CLASSES,
    DriverAppearance,
    DriverProfile,
    DrivingBehavior,
    ExtendedBehavior,
    ExtendedImuClass,
    ImuTraceGenerator,
    SceneRenderer,
    as_behavior,
    resolve_behavior,
    to_extended_imu_class,
    to_paper_behavior,
)
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    extended_cnn_config,
    extended_rnn_config,
    project_probs_to_paper,
    scenario_training_set,
    train_extended_ensemble,
)


# -- taxonomy ----------------------------------------------------------------

def test_extended_space_extends_the_paper_space():
    assert NUM_EXTENDED_CLASSES == 8
    assert NUM_EXTENDED_IMU_CLASSES == 4
    for value in range(6):
        assert ExtendedBehavior(value) == DrivingBehavior(value)
        assert ExtendedBehavior(value).is_paper_class
    assert not ExtendedBehavior.DROWSY.is_paper_class
    assert ExtendedBehavior.DROWSY.display_name == "Drowsy Driving"
    assert ExtendedBehavior.TEXTING.display_name == "Texting"


def test_as_behavior_picks_the_right_space():
    assert as_behavior(2) is DrivingBehavior.TEXTING
    assert as_behavior(7) is ExtendedBehavior.CAMERA_COVERED
    with pytest.raises(ValueError):
        as_behavior(8)


def test_resolve_behavior_by_name():
    assert resolve_behavior("texting") is DrivingBehavior.TEXTING
    assert resolve_behavior("DROWSY") is ExtendedBehavior.DROWSY
    with pytest.raises(ConfigurationError):
        resolve_behavior("JUGGLING")


def test_imu_and_paper_projections():
    assert to_extended_imu_class(ExtendedBehavior.DROWSY) \
        == ExtendedImuClass.DROWSY
    assert to_extended_imu_class(ExtendedBehavior.CAMERA_COVERED) \
        == ExtendedImuClass.NORMAL
    assert to_extended_imu_class(DrivingBehavior.TALKING) \
        == ExtendedImuClass.TALKING
    assert to_paper_behavior(ExtendedBehavior.DROWSY) \
        == DrivingBehavior.NORMAL
    assert to_paper_behavior(DrivingBehavior.REACHING) \
        == DrivingBehavior.REACHING


# -- synth signatures --------------------------------------------------------

def test_drowsy_imu_has_lane_weave_signature(rng):
    profile = DriverProfile.sample(0, rng)
    drowsy = ImuTraceGenerator(ExtendedBehavior.DROWSY, profile,
                               rng=np.random.default_rng(3))
    normal = ImuTraceGenerator(DrivingBehavior.NORMAL, profile,
                               rng=np.random.default_rng(3))
    assert int(drowsy.imu_class) == int(ExtendedImuClass.DROWSY)
    t = np.arange(0.0, 20.0, 0.25)
    lat_drowsy = np.array([drowsy.sample("accelerometer", s)[0] for s in t])
    lat_normal = np.array([normal.sample("accelerometer", s)[0] for s in t])
    # The weave adds sub-Hz lateral energy well above normal driving.
    assert lat_drowsy.std() > 2.0 * lat_normal.std()
    gyro_drowsy = np.array([drowsy.sample("gyroscope", s)[2] for s in t])
    gyro_normal = np.array([normal.sample("gyroscope", s)[2] for s in t])
    assert gyro_drowsy.std() > gyro_normal.std()


def test_camera_covered_renders_near_black(rng):
    renderer = SceneRenderer(DriverAppearance.sample(0, rng))
    covered = renderer.render(ExtendedBehavior.CAMERA_COVERED, rng=rng)
    normal = renderer.render(DrivingBehavior.NORMAL, rng=rng)
    assert covered.shape == normal.shape
    assert covered.dtype == np.float32
    assert covered.mean() < 0.15
    assert covered.mean() < 0.5 * normal.mean()
    # Covered is an image-only condition: the phone rides the normal pose.
    generator = ImuTraceGenerator(
        ExtendedBehavior.CAMERA_COVERED,
        DriverProfile.sample(0, rng), rng=np.random.default_rng(4))
    assert int(generator.imu_class) == int(ExtendedImuClass.NORMAL)


# -- heads -------------------------------------------------------------------

def test_extended_head_configs_widen_the_label_spaces():
    assert extended_cnn_config().num_classes == 8
    assert extended_rnn_config().num_classes == 4
    assert extended_cnn_config(CnnConfig(width=0.5)).width == 0.5
    assert extended_rnn_config(RnnConfig(hidden_units=8)).hidden_units == 8


def test_train_extended_ensemble_rejects_paper_datasets(
        tiny_driving_dataset):
    with pytest.raises(ConfigurationError):
        train_extended_ensemble(tiny_driving_dataset)


def test_extended_ensemble_learns_both_new_classes(
        extended_ensemble, mixed_scenario_spec):
    """The acceptance bar: the 8-way CNN separates CAMERA_COVERED frames
    and the 4-way RNN separates the DROWSY weave on the scenario's own
    windows; the combiner's CPT spans the extended spaces."""
    assert extended_ensemble.cnn.config.num_classes == 8
    assert extended_ensemble.imu_model.config.num_classes == 4
    assert extended_ensemble.combiner.cpt.shape[:2] == (8, 4)
    train = scenario_training_set(mixed_scenario_spec)
    cnn_pred = extended_ensemble.cnn.predict_proba(train.images).argmax(1)
    covered = train.labels == int(ExtendedBehavior.CAMERA_COVERED)
    assert (cnn_pred[covered] == int(ExtendedBehavior.CAMERA_COVERED)
            ).mean() >= 0.9
    imu_pred = extended_ensemble.imu_model.predict_proba(train.imu).argmax(1)
    drowsy = train.imu_labels == int(ExtendedImuClass.DROWSY)
    assert (imu_pred[drowsy] == int(ExtendedImuClass.DROWSY)).mean() >= 0.9


# -- projection back to the paper space --------------------------------------

def test_project_probs_to_paper_folds_extended_mass():
    probs = np.zeros((2, 8))
    probs[0, int(ExtendedBehavior.DROWSY)] = 0.7
    probs[0, int(DrivingBehavior.NORMAL)] = 0.3
    probs[1, int(ExtendedBehavior.CAMERA_COVERED)] = 0.4
    probs[1, int(DrivingBehavior.TEXTING)] = 0.6
    out = project_probs_to_paper(probs)
    assert out.shape == (2, 6)
    assert out[0, int(DrivingBehavior.NORMAL)] == pytest.approx(1.0)
    assert out[1, int(DrivingBehavior.TEXTING)] == pytest.approx(0.6)
    assert out[1, int(DrivingBehavior.NORMAL)] == pytest.approx(0.4)
    assert np.allclose(out.sum(axis=1), probs.sum(axis=1))


def test_project_probs_passes_paper_batches_through():
    probs = np.eye(6)[:3]
    assert np.array_equal(project_probs_to_paper(probs), probs)
    with pytest.raises(ConfigurationError):
        project_probs_to_paper(np.zeros(8))
