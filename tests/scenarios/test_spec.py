"""Scenario spec: validation, JSON round-trips, legacy equivalence."""

from __future__ import annotations

import json

import pytest

from repro.core.darnet import DriveScript
from repro.datasets import DrivingBehavior, ExtendedBehavior
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    BehaviorSegment,
    CameraFault,
    EnvironmentTrack,
    GpsRoute,
    LightingPhase,
    NoiseRegime,
    RoadProfile,
    ScenarioSpec,
    Timeline,
)


def _minimal_spec(**overrides) -> ScenarioSpec:
    fields = dict(
        name="t", duration=4.0,
        timelines=(Timeline("all-normal", (
            BehaviorSegment(0.0, 4.0, DrivingBehavior.NORMAL),)),))
    fields.update(overrides)
    return ScenarioSpec(**fields)


# -- validation --------------------------------------------------------------

def test_segment_window_must_be_ordered():
    with pytest.raises(ConfigurationError):
        BehaviorSegment(2.0, 1.0, DrivingBehavior.NORMAL)
    with pytest.raises(ConfigurationError):
        BehaviorSegment(-0.5, 1.0, DrivingBehavior.NORMAL)


def test_timeline_needs_segments_and_positive_weight():
    with pytest.raises(ConfigurationError):
        Timeline("empty", ())
    with pytest.raises(ConfigurationError):
        Timeline("w", (BehaviorSegment(0, 1, DrivingBehavior.NORMAL),),
                 weight=0.0)


def test_camera_fault_kind_is_validated():
    with pytest.raises(ConfigurationError):
        CameraFault("smudged", 0.0, 1.0)
    fault = CameraFault("covered", 0.0, 1.0, drivers=(1, 3))
    assert fault.hits(1) and not fault.hits(0)
    assert CameraFault("blackout", 0.0, 1.0).hits(7)


def test_lighting_noise_road_gps_validation():
    with pytest.raises(ConfigurationError):
        LightingPhase(0.0, 1.0, low=0.8, high=0.2)
    with pytest.raises(ConfigurationError):
        NoiseRegime(0.0, 1.0, std=-0.1)
    with pytest.raises(ConfigurationError):
        RoadProfile(vibration=0.0)
    with pytest.raises(ConfigurationError):
        GpsRoute(speed_mps=-1.0)


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        _minimal_spec(duration=0.0)
    with pytest.raises(ConfigurationError):
        _minimal_spec(drivers=0)
    with pytest.raises(ConfigurationError):
        _minimal_spec(timelines=())
    with pytest.raises(ConfigurationError):
        _minimal_spec(segment_jitter=-0.1)


# -- derived properties ------------------------------------------------------

def test_behaviors_and_is_extended():
    spec = _minimal_spec()
    assert spec.behaviors() == {DrivingBehavior.NORMAL}
    assert not spec.is_extended
    extended = _minimal_spec(timelines=(Timeline("d", (
        BehaviorSegment(0.0, 4.0, ExtendedBehavior.DROWSY),)),))
    assert extended.is_extended
    assert ExtendedBehavior.DROWSY in extended.behaviors()


def test_with_overrides_replaces_top_level_fields():
    spec = _minimal_spec()
    bigger = spec.with_overrides(drivers=11, seed=42)
    assert (bigger.drivers, bigger.seed) == (11, 42)
    assert bigger.timelines == spec.timelines
    assert spec.drivers != 11  # original untouched (frozen)


def test_timeline_script_lowering():
    timeline = Timeline("t", (
        BehaviorSegment(0.0, 2.0, DrivingBehavior.TEXTING),
        BehaviorSegment(2.5, 4.0, ExtendedBehavior.CAMERA_COVERED)))
    script = timeline.script()
    assert isinstance(script, DriveScript)
    assert script.segments[0] == (0.0, 2.0, DrivingBehavior.TEXTING)
    assert script.segments[1][2] == ExtendedBehavior.CAMERA_COVERED


def test_paper_sweep_matches_legacy_standard_script():
    """The default spec encodes exactly the pre-DSL hardcoded sweep."""
    spec = ScenarioSpec.paper_sweep(drivers=3, duration=20.0, seed=5)
    segment = max(1.0, 20.0 / len(DrivingBehavior) - 0.25)
    legacy = DriveScript.standard(segment_seconds=segment, gap_seconds=0.25)
    assert len(spec.timelines) == 1
    assert spec.timelines[0].script().segments == legacy.segments
    assert (spec.drivers, spec.duration, spec.seed) == (3, 20.0, 5)
    assert not spec.is_extended
    assert spec.environment.is_default


# -- serialization -----------------------------------------------------------

def test_json_round_trip_default_sweep():
    spec = ScenarioSpec.paper_sweep(drivers=2, duration=6.0, seed=3)
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_json_round_trip_mixed_fixture(mixed_scenario_spec):
    spec = mixed_scenario_spec
    again = ScenarioSpec.from_json(spec.to_json())
    assert again == spec
    assert again.environment == spec.environment


def test_behaviours_serialize_as_enum_names(mixed_scenario_spec):
    data = json.loads(mixed_scenario_spec.to_json())
    names = {seg["behavior"] for timeline in data["timelines"]
             for seg in timeline["segments"]}
    assert "DROWSY" in names and "CAMERA_COVERED" in names
    assert all(isinstance(name, str) for name in names)


def test_unknown_behaviour_name_rejected():
    data = json.loads(ScenarioSpec.paper_sweep().to_json())
    data["timelines"][0]["segments"][0]["behavior"] = "JUGGLING"
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(data)


def test_missing_required_field_rejected():
    data = json.loads(ScenarioSpec.paper_sweep().to_json())
    del data["timelines"]
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_dict(data)


def test_invalid_json_rejected():
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_json("{not json")
    with pytest.raises(ConfigurationError):
        ScenarioSpec.from_json("[1, 2]")


def test_save_load_round_trip(tmp_path):
    spec = ScenarioSpec.paper_sweep(drivers=2, duration=6.0)
    path = str(tmp_path / "spec.json")
    spec.save(path)
    assert ScenarioSpec.load(path) == spec


def test_default_environment_omitted_from_json():
    data = ScenarioSpec.paper_sweep().to_dict()
    assert "environment" not in data
    assert "segment_jitter" not in data
    assert EnvironmentTrack().is_default
