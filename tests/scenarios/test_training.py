"""Training consumer: windows cut from the same bytes the replay streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import ScenarioSpec, compile_scenario, scenario_training_set


def test_training_set_shapes_and_label_space(mixed_scenario_spec):
    dataset = scenario_training_set(mixed_scenario_spec)
    instants = compile_scenario(mixed_scenario_spec).instants
    per_driver = len(instants) - 20 + 1
    assert len(dataset) == per_driver * mixed_scenario_spec.drivers
    assert dataset.imu.shape[1:] == (20, 12)
    assert dataset.images.ndim == 4 and dataset.images.shape[1] == 1
    assert dataset.num_classes == 8
    assert dataset.imu_labels.max() <= 3


def test_paper_sweep_training_set_stays_six_class():
    dataset = scenario_training_set(
        ScenarioSpec.paper_sweep(drivers=1, duration=6.0), window_steps=8)
    assert dataset.num_classes == 6
    assert set(np.unique(dataset.drivers)) == {0}


def test_training_windows_are_replay_bytes(mixed_scenario_spec):
    """Satellite #3 consumer equality: every training sample is literally
    a slice of the compiled trace the replay harness streams — the same
    frame bytes, and the same IMU window values modulo the dataset's
    float32 storage cast."""
    compiled = compile_scenario(mixed_scenario_spec)
    dataset = scenario_training_set(compiled)
    instants = compiled.instants
    cursor = 0
    for trace in compiled.traces():
        for k in range(19, len(instants)):
            assert np.array_equal(dataset.images[cursor][0], trace.frames[k])
            assert np.array_equal(
                dataset.imu[cursor],
                trace.imu[k - 19:k + 1].astype(np.float32))
            assert dataset.labels[cursor] == trace.labels[k]
            assert dataset.drivers[cursor] == trace.driver_id
            cursor += 1
    assert cursor == len(dataset)


def test_two_builds_are_byte_identical(mixed_scenario_spec):
    a = scenario_training_set(mixed_scenario_spec)
    b = scenario_training_set(mixed_scenario_spec)
    assert np.array_equal(a.images, b.images)
    assert np.array_equal(a.imu, b.imu)
    assert np.array_equal(a.labels, b.labels)


def test_stride_subsamples_instants(mixed_scenario_spec):
    full = scenario_training_set(mixed_scenario_spec)
    strided = scenario_training_set(mixed_scenario_spec, stride=3)
    assert len(strided) < len(full)
    assert np.array_equal(strided.images[0], full.images[0])


def test_masked_frames_can_be_dropped(mixed_scenario_spec):
    kept = scenario_training_set(mixed_scenario_spec)
    dropped = scenario_training_set(mixed_scenario_spec,
                                    include_masked_frames=False)
    masked = sum(int((~t.frame_mask).sum())
                 for t in compile_scenario(mixed_scenario_spec).traces()
                 if t.frame_mask is not None)
    assert masked > 0
    assert len(kept) - len(dropped) == masked


def test_window_and_stride_validation(mixed_scenario_spec):
    with pytest.raises(ConfigurationError):
        scenario_training_set(mixed_scenario_spec, stride=0)
    with pytest.raises(ConfigurationError):
        scenario_training_set(
            ScenarioSpec.paper_sweep(drivers=1, duration=2.0))
