"""Dataset containers, generation, splits, and the pretraining task."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DrivingBehavior,
    DrivingDataset,
    NUM_ALTERNATIVE_CLASSES,
    SHAPE_CLASSES,
    class_names,
    generate_alternative_dataset,
    generate_driving_dataset,
    generate_pretraining_dataset,
    summarize,
)
from repro.exceptions import ConfigurationError, ShapeError


def test_generated_dataset_structure(tiny_driving_dataset):
    ds = tiny_driving_dataset
    assert ds.images.shape[1:] == (1, 64, 64)
    assert ds.imu.shape[1:] == (20, 12)
    assert ds.labels.shape == ds.drivers.shape
    assert len(ds) == ds.images.shape[0]


def test_dataset_class_imbalance(tiny_driving_dataset):
    counts = tiny_driving_dataset.class_counts()
    assert counts[DrivingBehavior.REACHING] == max(counts.values())
    assert all(count >= 1 for count in counts.values())


def test_imu_labels_mapping(tiny_driving_dataset):
    ds = tiny_driving_dataset
    imu = ds.imu_labels
    assert set(np.unique(imu)) <= {0, 1, 2}
    # Non-phone behaviours all map to IMU normal.
    eating = ds.labels == int(DrivingBehavior.EATING_DRINKING)
    assert np.all(imu[eating] == 0)
    talking = ds.labels == int(DrivingBehavior.TALKING)
    assert np.all(imu[talking] == 1)


def test_split_disjoint_and_complete(tiny_driving_dataset):
    ds = tiny_driving_dataset
    train, evaluation = ds.train_eval_split(
        rng=np.random.default_rng(0))
    assert len(train) + len(evaluation) == len(ds)
    ratio = len(train) / len(ds)
    assert 0.75 < ratio < 0.85


@settings(max_examples=10, deadline=None)
@given(st.floats(0.5, 0.9))
def test_split_fraction_respected(fraction):
    ds = generate_driving_dataset(60, num_drivers=1,
                                  rng=np.random.default_rng(3))
    train, evaluation = ds.train_eval_split(
        fraction, rng=np.random.default_rng(0))
    assert abs(len(train) / len(ds) - fraction) < 0.15


def test_split_stratified_keeps_all_classes():
    ds = generate_driving_dataset(200, num_drivers=2,
                                  rng=np.random.default_rng(4))
    train, evaluation = ds.train_eval_split(rng=np.random.default_rng(0))
    for behavior in DrivingBehavior:
        assert np.sum(train.labels == int(behavior)) > 0
        assert np.sum(evaluation.labels == int(behavior)) > 0


def test_split_validates_fraction(tiny_driving_dataset):
    with pytest.raises(ConfigurationError):
        tiny_driving_dataset.train_eval_split(1.0)


def test_dataset_shape_validation(rng):
    with pytest.raises(ShapeError):
        DrivingDataset(images=np.zeros((3, 1, 8, 8), dtype=np.float32),
                       imu=np.zeros((2, 20, 12), dtype=np.float32),
                       labels=np.zeros(3, dtype=np.int64),
                       drivers=np.zeros(3, dtype=np.int64))


def test_subset(tiny_driving_dataset):
    sub = tiny_driving_dataset.subset(np.array([0, 2, 4]))
    assert len(sub) == 3
    np.testing.assert_array_equal(sub.labels,
                                  tiny_driving_dataset.labels[[0, 2, 4]])


def test_generation_validates_drivers(rng):
    with pytest.raises(ConfigurationError):
        generate_driving_dataset(10, num_drivers=0, rng=rng)


def test_summarize_renders_table(tiny_driving_dataset):
    text = summarize(tiny_driving_dataset)
    assert "Eating/Drinking" in text
    assert "Image, IMU" in text and "Image, --" in text


def test_generation_deterministic_given_seed():
    a = generate_driving_dataset(30, rng=np.random.default_rng(9))
    b = generate_driving_dataset(30, rng=np.random.default_rng(9))
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_allclose(a.images, b.images)
    np.testing.assert_allclose(a.imu, b.imu)


# -- alternative dataset -----------------------------------------------------

def test_alternative_dataset_structure(tiny_alternative_dataset):
    ds = tiny_alternative_dataset
    assert set(np.unique(ds.labels)) == set(range(NUM_ALTERNATIVE_CLASSES))
    assert ds.images.shape[1:] == (1, 64, 64)


def test_alternative_class_names():
    names = class_names()
    assert len(names) == 18
    assert len(set(names)) == 18


def test_alternative_split(tiny_alternative_dataset):
    train, evaluation = tiny_alternative_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    assert len(train) + len(evaluation) == len(tiny_alternative_dataset)


def test_alternative_validates(rng):
    with pytest.raises(ConfigurationError):
        generate_alternative_dataset(0, rng=rng)


# -- pretraining -------------------------------------------------------------

def test_pretraining_dataset(rng):
    images, labels = generate_pretraining_dataset(5, size=32, rng=rng)
    assert images.shape == (5 * len(SHAPE_CLASSES), 1, 32, 32)
    assert set(np.unique(labels)) == set(range(len(SHAPE_CLASSES)))
    assert images.min() >= 0.0 and images.max() <= 1.0


def test_pretraining_validates(rng):
    with pytest.raises(ConfigurationError):
        generate_pretraining_dataset(0, rng=rng)


def test_pretraining_shapes_distinct(rng):
    """Different shape classes have visibly different mean images."""
    images, labels = generate_pretraining_dataset(20, size=32, rng=rng)
    mean_disk = images[labels == 0].mean(axis=0)
    mean_vbar = images[labels == 5].mean(axis=0)
    assert np.abs(mean_disk - mean_vbar).max() > 0.1
