"""IMU and image synthesizers."""

import numpy as np
import pytest

from repro.datasets import (
    DEFAULT_WINDOW_STEPS,
    DriverAppearance,
    DriverProfile,
    DrivingBehavior,
    GRAVITY,
    ImuTraceGenerator,
    SceneRenderer,
    generate_imu_windows,
    render_batch,
    standardize_windows,
)
from repro.datasets.alternative import ALTERNATIVE_POSES
from repro.exceptions import ConfigurationError


# -- IMU -----------------------------------------------------------------

def test_gravity_magnitude_preserved(rng):
    generator = ImuTraceGenerator(DrivingBehavior.NORMAL, rng=rng)
    samples = generator.sample("gravity", np.linspace(0, 10, 50))
    norms = np.linalg.norm(samples, axis=1)
    # Bias adds a small offset; magnitude stays near g.
    assert np.all(np.abs(norms - GRAVITY) < 1.5)


def test_orientations_differ_between_classes(rng):
    """Talking and pocket holds point gravity at different device axes."""
    normal = ImuTraceGenerator(DrivingBehavior.NORMAL,
                               rng=np.random.default_rng(0))
    talking = ImuTraceGenerator(DrivingBehavior.TALKING,
                                rng=np.random.default_rng(0))
    g_normal = normal.sample("gravity", 0.0)
    g_talking = talking.sample("gravity", 0.0)
    cos = np.dot(g_normal, g_talking) / (
        np.linalg.norm(g_normal) * np.linalg.norm(g_talking))
    assert cos < 0.9  # clearly different directions


def test_sample_is_deterministic_in_time(rng):
    generator = ImuTraceGenerator(DrivingBehavior.TEXTING, rng=rng)
    a = generator.sample("accelerometer", 1.5)
    b = generator.sample("accelerometer", 1.5)
    np.testing.assert_array_equal(a, b)


def test_sample_vector_and_scalar_agree(rng):
    generator = ImuTraceGenerator(DrivingBehavior.TALKING, rng=rng)
    batch = generator.sample("gyroscope", np.array([0.5, 1.0]))
    single = generator.sample("gyroscope", 1.0)
    np.testing.assert_allclose(batch[1], single)


def test_unknown_sensor_rejected(rng):
    generator = ImuTraceGenerator(DrivingBehavior.NORMAL, rng=rng)
    with pytest.raises(ConfigurationError):
        generator.sample("magnetometer", 0.0)


def test_window_shape_and_dtype(rng):
    generator = ImuTraceGenerator(DrivingBehavior.TEXTING, rng=rng)
    window = generator.window(rng=rng)
    assert window.shape == (DEFAULT_WINDOW_STEPS, 12)
    assert window.dtype == np.float32


def test_generate_imu_windows(rng):
    windows = generate_imu_windows(DrivingBehavior.TALKING, 7, rng=rng)
    assert windows.shape == (7, 20, 12)
    # Independent episodes -> windows differ.
    assert not np.allclose(windows[0], windows[1])


def test_generate_imu_windows_validates(rng):
    with pytest.raises(ConfigurationError):
        generate_imu_windows(DrivingBehavior.NORMAL, 0, rng=rng)


def test_reaching_has_more_motion_than_pocket(rng):
    """Reaching adds arm sway to the pocket signature (paper §5.2)."""
    def motion(behavior):
        energy = []
        for seed in range(8):
            gen = ImuTraceGenerator(behavior, rng=np.random.default_rng(seed))
            window = gen.window(noise_std=0.0, rng=np.random.default_rng(0))
            accel = window[:, :3]
            energy.append(np.std(accel - accel.mean(axis=0), axis=0).mean())
        return float(np.mean(energy))

    assert motion(DrivingBehavior.REACHING) > 1.5 * motion(
        DrivingBehavior.NORMAL)


def test_standardize_windows_roundtrip(rng):
    windows = rng.normal(3.0, 2.0, size=(10, 20, 12)).astype(np.float32)
    scaled, stats = standardize_windows(windows)
    assert abs(scaled.mean()) < 1e-4
    assert abs(scaled.std() - 1.0) < 1e-2
    rescaled, _ = standardize_windows(windows, stats)
    np.testing.assert_allclose(scaled, rescaled)


def test_driver_profile_sampling(rng):
    profiles = [DriverProfile.sample(i, rng) for i in range(5)]
    offsets = {p.pitch_offset for p in profiles}
    assert len(offsets) == 5  # all distinct


def test_signal_fn_adapter(rng):
    generator = ImuTraceGenerator(DrivingBehavior.NORMAL, rng=rng)
    fn = generator.signal_fn()
    np.testing.assert_allclose(fn("gravity", 1.0),
                               generator.sample("gravity", 1.0))


# -- images ----------------------------------------------------------------

def test_render_in_unit_range(rng):
    renderer = SceneRenderer(DriverAppearance.sample(0, rng))
    for behavior in DrivingBehavior:
        frame = renderer.render(behavior, rng=rng)
        assert frame.dtype == np.float32
        assert frame.min() >= 0.0 and frame.max() <= 1.0
        assert frame.shape == (64, 64)


def test_render_custom_size(rng):
    renderer = SceneRenderer(size=32)
    assert renderer.render(DrivingBehavior.NORMAL, rng=rng).shape == (32, 32)


def test_render_rejects_tiny_canvas():
    with pytest.raises(ConfigurationError):
        SceneRenderer(size=8)


def test_distinct_classes_render_differently(rng):
    """Mean frames of eating vs normal differ far more than noise."""
    renderer = SceneRenderer(DriverAppearance.sample(0, rng),
                             noise_std=0.0, lighting_range=(1.0, 1.0))
    def mean_frame(behavior):
        return np.mean([renderer.render(behavior, rng=rng, pose_jitter=0.0)
                        for _ in range(5)], axis=0)
    eating = mean_frame(DrivingBehavior.EATING_DRINKING)
    hair = mean_frame(DrivingBehavior.HAIR_MAKEUP)
    assert np.abs(eating - hair).max() > 0.2


def test_explicit_pose_bypasses_mimic(rng):
    """The 18-class dataset path always renders the requested pose."""
    renderer = SceneRenderer(noise_std=0.0, lighting_range=(1.0, 1.0))
    pose = ALTERNATIVE_POSES[8][2]  # drinking cup — large bright object
    frames = [renderer.render(DrivingBehavior.EATING_DRINKING, rng=rng,
                              pose=pose, pose_jitter=0.0)
              for _ in range(4)]
    # All frames show the object (bright pixels near the head).
    for frame in frames:
        assert frame[18:30, 25:36].max() > 0.7


def test_render_batch_shapes(rng):
    behaviors = np.array([0, 1, 2, 3])
    batch = render_batch(behaviors, size=32, rng=rng)
    assert batch.shape == (4, 1, 32, 32)


def test_render_batch_multi_driver(rng):
    appearances = [DriverAppearance.sample(i, rng) for i in range(2)]
    batch = render_batch(np.array([0, 0]), appearances=appearances,
                         driver_ids=np.array([0, 1]), rng=rng)
    assert not np.allclose(batch[0], batch[1])


def test_frame_fn_schedule(rng):
    renderer = SceneRenderer(DriverAppearance.sample(0, rng))
    fn = renderer.frame_fn(lambda t: 2 if t > 1.0 else 0, rng=rng)
    assert fn(0.0).shape == (64, 64)
    assert fn(2.0).shape == (64, 64)
