"""Behaviour taxonomy and sliding-window extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    DrivingBehavior,
    ImuClass,
    PAPER_FRAME_COUNTS,
    behavior_names,
    imu_class_names,
    scaled_frame_counts,
    sliding_windows,
    to_imu_class,
    window_labels,
    windows_from_stream,
)
from repro.exceptions import ConfigurationError, ShapeError


def test_six_behavior_classes():
    assert len(DrivingBehavior) == 6
    assert DrivingBehavior.NORMAL.paper_id == 1
    assert DrivingBehavior.REACHING.paper_id == 6


def test_display_names_match_table1():
    assert DrivingBehavior.EATING_DRINKING.display_name == "Eating/Drinking"
    assert behavior_names()[0] == "Normal Driving"


def test_paper_frame_counts_table1():
    assert PAPER_FRAME_COUNTS[DrivingBehavior.REACHING] == 17_709
    assert sum(PAPER_FRAME_COUNTS.values()) == 57_080


def test_imu_mapping():
    assert to_imu_class(DrivingBehavior.TALKING) is ImuClass.TALKING
    assert to_imu_class(DrivingBehavior.TEXTING) is ImuClass.TEXTING
    for behavior in (DrivingBehavior.NORMAL, DrivingBehavior.EATING_DRINKING,
                     DrivingBehavior.HAIR_MAKEUP, DrivingBehavior.REACHING):
        assert to_imu_class(behavior) is ImuClass.NORMAL


def test_imu_mapping_accepts_ints():
    assert to_imu_class(2) is ImuClass.TEXTING


def test_imu_class_names():
    assert imu_class_names() == ["Normal", "Talking", "Texting"]


@settings(max_examples=30, deadline=None)
@given(st.integers(6, 5000))
def test_scaled_frame_counts_properties(total):
    counts = scaled_frame_counts(total)
    assert all(count >= 1 for count in counts.values())
    assert abs(sum(counts.values()) - total) <= len(counts)
    # Imbalance preserved: reaching is the largest class.
    assert counts[DrivingBehavior.REACHING] == max(counts.values())


def test_scaled_frame_counts_validates():
    with pytest.raises(ConfigurationError):
        scaled_frame_counts(0)


# -- sliding windows -------------------------------------------------------

def test_sliding_windows_count_and_content():
    stream = np.arange(10, dtype=np.float32).reshape(10, 1)
    windows = sliding_windows(stream, steps=4, stride=2)
    assert windows.shape == (4, 4, 1)
    np.testing.assert_array_equal(windows[0].ravel(), [0, 1, 2, 3])
    np.testing.assert_array_equal(windows[1].ravel(), [2, 3, 4, 5])


def test_sliding_windows_too_short_stream():
    stream = np.zeros((3, 2), dtype=np.float32)
    assert sliding_windows(stream, steps=5).shape == (0, 5, 2)


def test_sliding_windows_validation():
    with pytest.raises(ShapeError):
        sliding_windows(np.zeros(5), steps=2)
    with pytest.raises(ConfigurationError):
        sliding_windows(np.zeros((5, 1)), steps=0)


def test_window_labels_majority():
    labels = np.array([0, 0, 1, 1, 1])
    assert window_labels(labels, steps=5).tolist() == [1]


def test_window_labels_reject_mixed():
    labels = np.array([0, 0, 1, 1])
    assert window_labels(labels, steps=4, reject_mixed=True).tolist() == [-1]
    assert window_labels(np.array([2, 2, 2]), steps=3,
                         reject_mixed=True).tolist() == [2]


def test_windows_from_stream_drops_unlabelled():
    values = np.arange(12, dtype=np.float32).reshape(6, 2)
    labels = np.array([0, 0, 1, 1, 1, 1])
    windows, marks = windows_from_stream(values, labels, steps=4, stride=1,
                                         drop_unlabelled=True)
    assert windows.shape[0] == marks.shape[0] == 3


def test_windows_from_stream_length_mismatch():
    with pytest.raises(ShapeError):
        windows_from_stream(np.zeros((5, 1), dtype=np.float32),
                            np.zeros(4, dtype=np.int64))


@settings(max_examples=25, deadline=None)
@given(st.integers(5, 40), st.integers(1, 5), st.integers(2, 6))
def test_sliding_windows_count_formula(length, stride, steps):
    stream = np.zeros((length, 3), dtype=np.float32)
    windows = sliding_windows(stream, steps=steps, stride=stride)
    expected = max(0, (length - steps) // stride + 1)
    assert windows.shape[0] == expected
