"""Edge spool: CRC framing, ack cursor, torn-tail truncation, SIGKILL."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.edge import EdgeSpool, SpoolRecord, replay_spool
from repro.edge.spool import frame_spool_record
from repro.exceptions import ConfigurationError, SpoolError


def record(sequence, kind="verdict", payload=""):
    return SpoolRecord(agent_id="edge-0", sequence=sequence,
                       timestamp=0.25 * sequence, kind=kind,
                       predicted=sequence % 5, confidence=0.8,
                       model_version=1, payload=payload)


def test_payload_round_trip_preserves_every_field():
    original = SpoolRecord(agent_id="edge-3", sequence=17, timestamp=4.25,
                           kind="clip", predicted=2, confidence=0.5,
                           degraded=True, model_version=4,
                           payload="deadbeef")
    assert SpoolRecord.from_payload(original.to_payload()) == original


def test_clip_wire_size_scales_with_evidence():
    small = record(1, kind="clip", payload="00" * 8)
    large = record(2, kind="clip", payload="00" * 4096)
    assert large.wire_size > small.wire_size + 4000


def test_append_ack_and_depth(tmp_path):
    spool = EdgeSpool.open(str(tmp_path / "s.wal"))
    for i in range(1, 5):
        spool.append(record(i))
    assert spool.depth == 4
    assert [r.sequence for r in spool.pending(2)] == [1, 2]
    spool.ack(2)
    spool.ack(1)
    assert [r.sequence for r in spool.pending()] == [3, 4]
    spool.ack(2)  # idempotent
    assert spool.acked == 2
    spool.close()


def test_reopen_resumes_only_unacked(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    for i in range(1, 6):
        spool.append(record(i))
    spool.ack(1)
    spool.ack(3)  # out-of-order ack lands in the cursor's extra set
    spool.sync()
    del spool  # simulate a crash: no close(), no compaction
    reopened = EdgeSpool.open(path)
    assert [r.sequence for r in reopened.pending()] == [2, 4, 5]
    reopened.close()


def test_torn_tail_is_truncated_in_place(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    for i in range(1, 4):
        spool.append(record(i))
    spool.close()
    clean_size = os.path.getsize(path)
    frame = frame_spool_record(record(4))
    with open(path, "ab") as handle:
        handle.write(frame[: len(frame) // 2])  # SIGKILL mid-write
    reopened = EdgeSpool.open(path)
    assert reopened.torn_truncated == 1
    assert os.path.getsize(path) == clean_size
    # Appends resume on a clean frame boundary after the cut.
    reopened.append(record(4))
    reopened.sync()
    replay = replay_spool(path)
    assert [r.sequence for r in replay.records] == [1, 2, 3, 4]
    assert replay.torn == 0
    reopened.close()


def test_replay_dedups_by_record_id(tmp_path):
    path = str(tmp_path / "s.wal")
    with open(path, "wb") as handle:
        handle.write(frame_spool_record(record(1)))
        handle.write(frame_spool_record(record(2)))
        handle.write(frame_spool_record(record(1)))  # crash-replayed
    replay = replay_spool(path)
    assert [r.sequence for r in replay.records] == [1, 2]
    assert replay.duplicates == 1


def test_replay_rejects_corrupt_crc(tmp_path):
    path = str(tmp_path / "s.wal")
    with open(path, "wb") as handle:
        handle.write(frame_spool_record(record(1)))
    blob = bytearray(open(path, "rb").read())
    blob[-1] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(blob)
    replay = replay_spool(path)
    assert replay.records == [] and replay.torn == 1


def test_last_sequence_recovers_across_reopen(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    assert spool.last_sequence == 0
    for i in range(1, 6):
        spool.append(record(i))
    spool.ack(5)  # out-of-order: the high-water ack sits in the extra set
    assert spool.last_sequence == 5
    spool.sync()
    del spool  # crash: no close(), no compaction
    reopened = EdgeSpool.open(path)
    assert reopened.last_sequence == 5
    reopened.close()


def test_last_sequence_survives_compaction_of_fully_acked_spool(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    for i in range(1, 4):
        spool.append(record(i))
    for i in range(1, 4):
        spool.ack(i)
    spool.close()  # compacts: the WAL itself is now empty
    reopened = EdgeSpool.open(path)
    # Only the preserved ack cursor knows sequences 1-3 ever existed.
    assert reopened.last_sequence == 3
    assert reopened.pending() == []
    reopened.close()


def test_compact_drops_acked_history(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    for i in range(1, 9):
        spool.append(record(i))
    for i in range(1, 7):
        spool.ack(i)
    spool.compact()
    replay = replay_spool(path)
    assert [r.sequence for r in replay.records] == [7, 8]
    assert spool.depth == 2
    spool.close()


def test_compact_preserves_ack_cursor(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    for i in range(1, 9):
        spool.append(record(i))
    for i in range(1, 7):
        spool.ack(i)
    spool.compact()
    spool.ack(7)
    spool.ack(8)
    # Surviving records keep their original sequences, so post-compaction
    # acks must still collapse into the contiguous cursor instead of
    # accreting in the extra set forever.
    with open(path + ".cursor", encoding="utf-8") as handle:
        cursor = json.load(handle)
    assert cursor == {"acked_through": 8, "extra": []}
    spool.close()


def test_torn_cursor_degrades_to_reupload(tmp_path):
    path = str(tmp_path / "s.wal")
    spool = EdgeSpool.open(path)
    spool.append(record(1))
    spool.ack(1)
    spool.sync()
    with open(path + ".cursor", "w", encoding="utf-8") as handle:
        handle.write("{torn json")
    del spool
    reopened = EdgeSpool.open(path)
    # A broken cursor costs a deduplicated re-upload, never a lost record.
    assert [r.sequence for r in reopened.pending()] == [1]
    reopened.close()


def test_invalid_config_and_unwritable_path():
    with pytest.raises(ConfigurationError):
        EdgeSpool.open("/tmp/x.wal", fsync_every=0)
    with pytest.raises(SpoolError):
        EdgeSpool.open("/nonexistent-dir/spool.wal")


def test_sigkill_mid_append_truncates_and_resumes(tmp_path):
    """An agent SIGKILLed mid-append must leave a spool whose torn tail
    is both detected and truncated on the next open, with the surviving
    prefix gapless and duplicate-free."""
    path = str(tmp_path / "crash.wal")
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    writer = (
        "import sys; sys.path.insert(0, sys.argv[2])\n"
        "from repro.edge.spool import EdgeSpool, SpoolRecord\n"
        "spool = EdgeSpool.open(sys.argv[1], fsync_every=4)\n"
        "i = 0\n"
        "while True:\n"
        "    i += 1\n"
        "    spool.append(SpoolRecord(agent_id='edge-0', sequence=i,\n"
        "                             timestamp=0.1 * i, predicted=1))\n"
    )
    proc = subprocess.Popen([sys.executable, "-c", writer, path,
                             os.path.abspath(src)])
    try:
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if os.path.exists(path) and os.path.getsize(path) > 4096:
                break
            time.sleep(0.01)
        else:
            pytest.fail("spool writer never produced data")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    raw = replay_spool(path)
    assert raw.torn <= 1  # at most the one frame the kill interrupted
    spool = EdgeSpool.open(path)
    # Recovery truncated exactly the torn frame (if any) and queued the
    # gapless surviving prefix for upload.
    assert spool.torn_truncated == raw.torn
    assert os.path.getsize(path) == raw.bytes_read
    sequences = [r.sequence for r in spool.pending()]
    assert len(sequences) > 0
    assert sequences == list(range(1, len(sequences) + 1))
    clean = replay_spool(path)
    assert clean.torn == 0 and clean.duplicates == 0
    spool.close()
