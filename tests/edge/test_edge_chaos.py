"""The deterministic edge chaos drive holds its invariants."""

import numpy as np
import pytest

from repro.edge import run_edge_chaos, standard_edge_schedule
from repro.edge.chaos import minimal_canary_percent
from repro.exceptions import ConfigurationError
from repro.streaming.faults import FaultSchedule


def test_invalid_drive_shape_raises(edge_ensemble):
    with pytest.raises(ConfigurationError):
        run_edge_chaos(edge_ensemble, agents=0)
    with pytest.raises(ConfigurationError):
        run_edge_chaos(edge_ensemble, duration=0.0)


def test_minimal_canary_percent_is_smallest_nonempty_step():
    agents = [f"edge-{i}" for i in range(3)]
    percent = minimal_canary_percent(3, agents)
    assert percent in {float(p) for p in range(5, 105, 5)}
    assert minimal_canary_percent(3, []) == 100.0


def test_standard_schedule_covers_all_three_fault_kinds():
    schedule = standard_edge_schedule(24.0)
    kinds = {event.kind for event in schedule.events}
    assert kinds == {"uplink_blackhole", "ota_corrupt_artifact",
                     "ota_download_kill"}


def test_chaos_drive_holds_every_invariant(edge_ensemble, tmp_path):
    report = run_edge_chaos(edge_ensemble, agents=2, duration=12.0,
                            seed=0, workdir=str(tmp_path))
    assert report.violations == [], report.format_report()
    # Zero verdict loss across the blackhole, exactly once.
    assert report.produced == report.delivered > 0
    assert report.duplicates == 0 and report.lost == 0
    assert report.spool_residue == 0
    assert report.uplink_blackholes == 2  # one per agent
    # The in-transit corruption of v2 was digest-rejected, never pinned.
    assert report.integrity_rejections >= 1
    assert all(version != 2 for version in report.final_versions.values())
    # The sabotaged v3 canary rolled back and was withdrawn fleet-wide.
    assert report.ota_rollbacks >= 1
    assert 3 in report.bad_versions
    assert all(version != 3 for version in report.final_versions.values())
    # The killed download resumed rather than restarting.
    assert report.ota_kills == 1
    assert report.bytes_resumed > 0
    # Nobody ended the drive on a regressed model.
    for accuracy in report.final_accuracy.values():
        assert accuracy >= report.baseline_accuracy - 0.10
    assert "invariants: all hold" in report.format_report()


def test_chaos_without_faults_is_a_clean_drive(edge_ensemble, tmp_path):
    report = run_edge_chaos(edge_ensemble, agents=1, duration=6.0,
                            seed=3, workdir=str(tmp_path),
                            schedule=FaultSchedule([]))
    assert report.violations == [], report.format_report()
    assert report.uplink_blackholes == 0
    assert report.ota_kills == 0
    assert report.lost == 0 and report.spool_residue == 0
    assert report.ota_installs >= 1


def test_chaos_drive_is_deterministic(edge_ensemble, tmp_path):
    kwargs = dict(agents=1, duration=6.0, seed=7,
                  schedule=FaultSchedule([]))
    first = run_edge_chaos(edge_ensemble,
                           workdir=str(tmp_path / "a"), **kwargs)
    second = run_edge_chaos(edge_ensemble,
                            workdir=str(tmp_path / "b"), **kwargs)
    assert first.produced == second.produced
    assert first.delivered == second.delivered
    assert first.final_versions == second.final_versions
    assert np.isclose(first.baseline_accuracy, second.baseline_accuracy)
