"""Edge agent: local inference, spooled verdicts, end-to-end drain."""

import numpy as np

from repro.core.darnet import DriveScript
from repro.datasets.classes import DrivingBehavior
from repro.edge import EdgeAgent, EdgeSpool, EdgeUplinkReceiver, EdgeUploader
from repro.serving import (
    ServingModelRegistry,
    StoreAndForwardSink,
    VerdictJournal,
)
from repro.serving.replay import synthesize_trace
from repro.streaming.reliability import reliable_link


def build_agent(tmp_path, model, *, duration=4.0, grid=0.25,
                drop_probability=0.0, sink=None):
    instants = np.arange(0.0, duration, grid)
    script = DriveScript.standard(segment_seconds=1.0, gap_seconds=0.25)
    trace = synthesize_trace(0, instants, script=script,
                             rng=np.random.default_rng(42))
    sender, receiver = reliable_link(
        "uplink", base_latency=0.01, drop_probability=drop_probability,
        rng=np.random.default_rng(9), max_attempts=100)
    registry = ServingModelRegistry()
    registry.register("edge", model)
    spool = EdgeSpool.open(str(tmp_path / "spool.wal"))
    uploader = EdgeUploader(spool, sender, agent_id="edge-0", window=8)
    agent = EdgeAgent("edge-0", registry=registry, spool=spool,
                      uploader=uploader, trace=trace, instants=instants,
                      intervals=(grid, grid, grid, 2 * grid))
    if sink is None:
        journal = VerdictJournal(str(tmp_path / "controller.wal"))
        sink = StoreAndForwardSink(journal)
    uplink = EdgeUplinkReceiver(receiver, sink)
    return agent, uplink, sink, instants, grid


def run_drive(agent, uplink, instants, grid, settle=20):
    for instant in instants:
        agent.step(float(instant))
        uplink.poll(float(instant))
    now = float(instants[-1]) + grid
    for _ in range(settle):
        agent.step(now)
        uplink.poll(now)
        now += grid


def test_one_verdict_per_sensor_batch_and_full_drain(tmp_path,
                                                     edge_ensemble):
    agent, uplink, sink, instants, grid = build_agent(tmp_path,
                                                      edge_ensemble)
    run_drive(agent, uplink, instants, grid)
    assert agent.verdicts == len(instants)
    # No new sensor data after the drive: the infer loop stays quiet and
    # the spool drains completely.
    assert agent.spool.depth == 0
    produced = agent.verdicts + agent.clips
    assert len(sink.delivered) == produced
    assert len({(r.session_id, r.sequence)
                for r in sink.delivered}) == produced
    agent.close()


def test_clips_ride_along_for_non_normal_verdicts(tmp_path, edge_ensemble):
    agent, uplink, sink, instants, grid = build_agent(tmp_path,
                                                      edge_ensemble)
    run_drive(agent, uplink, instants, grid)
    abnormal = sum(1 for r in sink.delivered if r.kind == "verdict"
                   and r.predicted != int(DrivingBehavior.NORMAL))
    clips = [r for r in sink.delivered if r.kind == "clip"]
    assert len(clips) == agent.clips == abnormal
    for clip in clips:
        assert clip.reason == "evidence-clip"
    agent.close()


def test_flaky_uplink_still_delivers_exactly_once(tmp_path, edge_ensemble):
    agent, uplink, sink, instants, grid = build_agent(
        tmp_path, edge_ensemble, drop_probability=0.3)
    run_drive(agent, uplink, instants, grid, settle=80)
    produced = agent.verdicts + agent.clips
    ids = [(r.session_id, r.sequence) for r in sink.delivered]
    assert len(ids) == len(set(ids)) == produced
    assert agent.spool.depth == 0
    agent.close()


def test_restart_resumes_sequence_and_loses_no_verdicts(tmp_path,
                                                        edge_ensemble):
    """A restarted agent on an existing spool must continue numbering
    where the previous incarnation stopped: a reused sequence is either
    dropped at append (already acked) or deduped by the controller —
    either way a verdict silently lost."""
    agent, uplink, sink, instants, grid = build_agent(tmp_path,
                                                      edge_ensemble)
    half = len(instants) // 2
    for instant in instants[:half]:
        agent.step(float(instant))
        uplink.poll(float(instant))
    first_produced = agent.verdicts + agent.clips
    assert first_produced > 0
    assert agent.spool.acked > 0  # some uploads already acknowledged
    agent.spool.sync()
    del agent, uplink  # SIGKILL: no close(), no compaction

    # The successor reopens the same spool and uploads into the same
    # controller sink (which dedups by (agent_id, sequence)).
    successor, uplink, sink, instants, grid = build_agent(
        tmp_path, edge_ensemble, sink=sink)
    assert successor.spool.last_sequence == first_produced
    run_drive(successor, uplink, instants, grid, settle=40)
    produced = first_produced + successor.verdicts + successor.clips
    ids = [(r.session_id, r.sequence) for r in sink.delivered]
    # Nothing reused, nothing lost: both incarnations' records reach the
    # controller exactly once, in one gapless sequence space.
    assert len(ids) == len(set(ids)) == produced
    assert max(sequence for _, sequence in ids) == produced
    assert successor.spool.depth == 0
    successor.close()


def test_report_shape(tmp_path, edge_ensemble):
    agent, uplink, _, instants, grid = build_agent(tmp_path, edge_ensemble)
    run_drive(agent, uplink, instants, grid, settle=5)
    report = agent.report()
    assert report["agent_id"] == "edge-0"
    assert report["verdicts"] == agent.verdicts
    assert set(report["tasks"]) == {"sensor", "infer", "upload"}
    assert all(entry["failures"] == 0 for entry in report["tasks"].values())
    agent.close()
