"""Release manifests: signing, digest gates, canary cohorts."""

import hashlib
from dataclasses import replace

import pytest

from repro.edge import ReleaseManifest
from repro.exceptions import OtaError

KEY = b"fleet-key"


def manifest(**overrides):
    blob = b"weights"
    base = ReleaseManifest(
        name="edge", version=3,
        artifacts={"cnn.npz": hashlib.sha256(blob).hexdigest()},
        canary_percent=25.0)
    return replace(base, **overrides) if overrides else base


def test_sign_verify_round_trip():
    signed = manifest().signed(KEY)
    signed.verify_signature(KEY)  # does not raise
    payload = signed.to_json()
    ReleaseManifest.from_json(payload).verify_signature(KEY)


def test_unsigned_and_tampered_manifests_are_refused():
    with pytest.raises(OtaError, match="unsigned"):
        manifest().verify_signature(KEY)
    signed = manifest().signed(KEY)
    with pytest.raises(OtaError, match="signature"):
        replace(signed, canary_percent=100.0).verify_signature(KEY)
    with pytest.raises(OtaError, match="signature"):
        signed.verify_signature(b"wrong-key")


def test_artifact_digest_gate():
    signed = manifest().signed(KEY)
    signed.verify_artifact("cnn.npz", b"weights")  # does not raise
    with pytest.raises(OtaError, match="corrupt"):
        signed.verify_artifact("cnn.npz", b"weightz")
    with pytest.raises(OtaError, match="no artifact"):
        signed.verify_artifact("rnn.npz", b"weights")


def test_canary_cohort_is_deterministic_and_bounded():
    release = manifest(canary_percent=30.0)
    agents = [f"edge-{i}" for i in range(400)]
    cohort = {a for a in agents if release.in_canary(a)}
    again = {a for a in agents if release.in_canary(a)}
    assert cohort == again  # same agents every check
    assert 0 < len(cohort) < len(agents)
    assert abs(len(cohort) / len(agents) - 0.30) < 0.10
    # A new version rolls fresh buckets: no permanent guinea pigs.
    next_release = manifest(version=4, canary_percent=30.0)
    assert {a for a in agents if next_release.in_canary(a)} != cohort


def test_full_rollout_includes_everyone():
    release = manifest(canary_percent=100.0)
    assert all(release.in_canary(f"edge-{i}") for i in range(50))


def test_invalid_fields_raise():
    with pytest.raises(OtaError):
        manifest(version=0)
    with pytest.raises(OtaError):
        manifest(canary_percent=101.0)
    with pytest.raises(OtaError):
        manifest(max_latency_factor=0.0)
    with pytest.raises(OtaError):
        ReleaseManifest.from_json("{not json")
