"""Edge-suite fixtures: one small trained ensemble plus a probe set."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CnnConfig, DarNetEnsemble, RnnConfig


@pytest.fixture(scope="package")
def edge_ensemble(tiny_driving_dataset):
    """A trained cnn+rnn ensemble cheap enough to share across tests.

    Trained well enough that its probe accuracy sits clearly above a
    weight-scrambled sabotage — the OTA rollback trigger needs that gap.
    """
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=2, width=1.0),
        rnn_config=RnnConfig(hidden_units=8, epochs=2),
        rng=np.random.default_rng(7))
    ensemble.fit(tiny_driving_dataset)
    return ensemble


@pytest.fixture(scope="package")
def probe_set(tiny_driving_dataset):
    """Class-balanced held-out probe arrays for OTA rollback triggers.

    A random subset (the dataset is generated class-by-class, so a
    prefix slice would be single-class and blind to regressions).
    """
    subset = tiny_driving_dataset
    index = np.random.default_rng(1234).choice(
        len(subset.labels), size=30, replace=False)
    return subset.images[index], subset.imu[index], subset.labels[index]
