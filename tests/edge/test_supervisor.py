"""Task supervisor: intervals, crash isolation, backoff, heartbeats."""

import pytest

from repro.edge import TaskSupervisor
from repro.exceptions import ConfigurationError
from repro.streaming.health import HealthRegistry


def test_tasks_run_on_their_own_intervals():
    supervisor = TaskSupervisor("edge-0")
    runs = {"fast": 0, "slow": 0}
    supervisor.add_task("fast", lambda now: runs.__setitem__(
        "fast", runs["fast"] + 1), 1.0)
    supervisor.add_task("slow", lambda now: runs.__setitem__(
        "slow", runs["slow"] + 1), 5.0)
    for now in range(10):
        supervisor.step(float(now))
    assert runs["fast"] == 10
    assert runs["slow"] == 2  # t=0 and t=5


def test_crash_is_isolated_and_backs_off_exponentially():
    supervisor = TaskSupervisor("edge-0", backoff_base=5.0,
                                backoff_max=80.0)
    healthy_runs = []
    supervisor.add_task("healthy", healthy_runs.append, 1.0)

    def crash(now):
        raise RuntimeError("loop wedged")

    supervisor.add_task("crashy", crash, 1.0)
    for now in range(20):
        supervisor.step(float(now))
    crashy = supervisor.task("crashy")
    # t=0 fails -> retry at 5 -> 15 -> (35 beyond horizon): 3 tries.
    assert crashy.failures == 3
    assert crashy.restarts == 2
    assert "RuntimeError" in crashy.last_error
    assert len(healthy_runs) == 20  # the healthy loop never missed a beat


def test_recovery_resets_the_backoff():
    supervisor = TaskSupervisor("edge-0", backoff_base=0.5)
    state = {"broken": True}

    def flaky(now):
        if state["broken"]:
            raise ValueError("transient")

    supervisor.add_task("flaky", flaky, 0.1)
    supervisor.step(0.0)   # fails; next attempt at 0.5
    state["broken"] = False
    supervisor.step(0.5)   # restart succeeds
    task = supervisor.task("flaky")
    assert (task.failures, task.restarts, task.runs) == (1, 1, 1)
    assert task.consecutive_failures == 0
    assert task.next_run == pytest.approx(0.6)  # back on its interval


def test_heartbeats_land_per_task_in_health_registry():
    health = HealthRegistry(degraded_after=0.5, silent_after=2.0,
                            detector_factory=None)
    supervisor = TaskSupervisor("edge-0", health=health)
    supervisor.add_task("sensor", lambda now: None, 0.1)
    supervisor.add_task("infer", lambda now: None, 0.1)
    supervisor.step(0.0)
    health.step(0.1)
    states = health.states()
    assert set(states) == {"edge-0/sensor", "edge-0/infer"}
    assert all(state.value == "healthy" for state in states.values())


def test_invalid_configuration_raises():
    with pytest.raises(ConfigurationError):
        TaskSupervisor("edge-0", backoff_base=0.0)
    supervisor = TaskSupervisor("edge-0")
    with pytest.raises(ConfigurationError):
        supervisor.add_task("t", lambda now: None, 0.0)
    supervisor.add_task("t", lambda now: None, 1.0)
    with pytest.raises(ConfigurationError):
        supervisor.add_task("t", lambda now: None, 1.0)
    with pytest.raises(ConfigurationError):
        supervisor.task("missing")
