"""OTA rollout: install flow, digest gates, resume, canary rollback."""

import os

import numpy as np
import pytest

from repro.core import save_ensemble
from repro.edge import OtaClient, OtaServer
from repro.edge.chaos import sabotage_release
from repro.edge.ota import DOWNLOADING, IDLE
from repro.exceptions import OtaError
from repro.serving import ServingModelRegistry

KEY = b"fleet-key"
ZERO_LATENCY = (lambda model, images, imu: 0.0)


@pytest.fixture(scope="module")
def release_dir(edge_ensemble, tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("releases") / "v1")
    save_ensemble(edge_ensemble, directory)
    return directory


def make_client(server, model, probe_set, state_dir, agent_id="edge-0",
                **options):
    probe_images, probe_imu, probe_labels = probe_set
    registry = ServingModelRegistry()
    registry.register("edge", model)
    client = OtaClient(
        server, registry, name="edge", agent_id=agent_id, key=KEY,
        state_dir=str(state_dir), probe_images=probe_images,
        probe_labels=probe_labels, probe_imu=probe_imu,
        latency_fn=ZERO_LATENCY, **options)
    return client, registry


def run_until_idle(client, limit=200):
    for _ in range(limit):
        if client.step(0.0) == IDLE:
            return
    raise AssertionError(f"updater stuck in phase {client.phase!r}")


def test_publish_requires_model_store_directory(tmp_path):
    server = OtaServer(KEY)
    os.makedirs(tmp_path / "not-a-release" / "sub")
    with pytest.raises(OtaError, match="manifest.json"):
        server.publish("edge", str(tmp_path / "not-a-release"))


def test_install_flow_and_pin_persistence(edge_ensemble, probe_set,
                                          release_dir, tmp_path):
    server = OtaServer(KEY)
    server.publish("edge", release_dir)
    client, registry = make_client(server, edge_ensemble, probe_set,
                                   tmp_path / "state")
    assert client.pinned_version == 0
    run_until_idle(client)
    assert client.installs == 1
    assert client.pinned_version == 1
    assert registry.get("edge") is not edge_ensemble  # hot-swapped
    # A committed install purges its staged artifacts — otherwise every
    # release leaves a full model copy behind in state_dir.
    assert not os.path.isdir(client._stage_dir(1))
    # The pin survives a process restart on the same state directory.
    successor, _ = make_client(server, edge_ensemble, probe_set,
                               tmp_path / "state")
    assert successor.pinned_version == 1
    successor.step(0.0)
    assert successor.phase == IDLE  # nothing newer to install


def test_corrupt_download_is_rejected_before_swap(edge_ensemble, probe_set,
                                                  release_dir, tmp_path):
    server = OtaServer(KEY)
    server.publish("edge", release_dir)
    server.corrupt_artifacts = True
    client, registry = make_client(server, edge_ensemble, probe_set,
                                   tmp_path / "state")
    run_until_idle(client)
    assert client.integrity_rejections == 1
    assert client.installs == 0
    assert registry.get("edge") is edge_ensemble  # never swapped
    assert 1 in client.rejected
    assert not os.path.isdir(client._stage_dir(1))  # stage purged
    # Even once the corruption clears, the rejected release stays out.
    server.corrupt_artifacts = False
    client.step(0.0)
    assert client.phase == IDLE and client.installs == 0
    # The refusal is durable: a restarted device on the same state
    # directory remembers it instead of re-downloading and re-rejecting
    # the same bad release forever.
    successor, _ = make_client(server, edge_ensemble, probe_set,
                               tmp_path / "state")
    assert successor.rejected == {1}
    successor.step(0.0)
    assert successor.phase == IDLE
    assert successor.integrity_rejections == 0


def test_kill_mid_download_resumes_from_staged_bytes(
        edge_ensemble, probe_set, release_dir, tmp_path):
    server = OtaServer(KEY)
    server.publish("edge", release_dir)
    client, _ = make_client(server, edge_ensemble, probe_set,
                            tmp_path / "state", chunk_size=1024,
                            chunks_per_step=2)
    client.step(0.0)  # check -> DOWNLOADING
    for _ in range(5):
        client.step(0.0)
    assert client.phase == DOWNLOADING
    # "SIGKILL": a fresh incarnation on the same durable state directory.
    successor, registry = make_client(server, edge_ensemble, probe_set,
                                      tmp_path / "state", chunk_size=1024,
                                      chunks_per_step=2)
    run_until_idle(successor, limit=2000)
    assert successor.bytes_resumed >= 5 * 1024
    assert successor.installs == 1
    assert registry.get("edge") is not edge_ensemble


def test_sabotaged_canary_rolls_back_and_is_marked_bad(
        edge_ensemble, probe_set, release_dir, tmp_path):
    sabotaged_dir = str(tmp_path / "sabotaged")
    sabotage_release(release_dir, sabotaged_dir,
                     rng=np.random.default_rng(5))
    server = OtaServer(KEY)
    server.publish("edge", release_dir)
    client, registry = make_client(server, edge_ensemble, probe_set,
                                   tmp_path / "state")
    run_until_idle(client)
    installed = registry.get("edge")
    # v2 frames and verifies perfectly — only the probe can catch it.
    server.publish("edge", sabotaged_dir)
    run_until_idle(client)
    assert client.rollbacks == 1
    assert client.integrity_rejections == 0  # digests were all valid
    assert client.pinned_version == 1
    assert registry.get("edge") is installed  # previous model restored
    assert server.bad_versions == {2}
    assert "v2" in client.last_rollback
    # The rolled-back stage is purged and the refusal persisted.
    assert not os.path.isdir(client._stage_dir(2))
    assert make_client(server, edge_ensemble, probe_set,
                       tmp_path / "state")[0].rejected == {2}
    # The server stops advertising the bad release fleet-wide.
    assert server.latest("edge-99").version == 1


def test_canary_gating_limits_who_sees_the_release(edge_ensemble,
                                                   probe_set, release_dir):
    server = OtaServer(KEY)
    server.publish("edge", release_dir, canary_percent=100.0)
    manifest = server.publish("edge", release_dir, canary_percent=20.0)
    agents = [f"edge-{i}" for i in range(60)]
    inside = [a for a in agents if manifest.in_canary(a)]
    outside = [a for a in agents if not manifest.in_canary(a)]
    assert inside and outside
    assert server.latest(inside[0]).version == 2
    assert server.latest(outside[0]).version == 1


def test_resigned_manifest_under_wrong_key_is_refused(
        edge_ensemble, probe_set, release_dir, tmp_path):
    server = OtaServer(b"attacker-key")
    server.publish("edge", release_dir)
    client, registry = make_client(server, edge_ensemble, probe_set,
                                   tmp_path / "state")
    client.step(0.0)
    assert client.phase == IDLE
    assert client.integrity_rejections == 1
    assert registry.get("edge") is edge_ensemble
