"""Uplink uploader: exactly-once drain over the reliable transport."""

import numpy as np

from repro.edge import (
    EdgeSpool,
    EdgeUplinkReceiver,
    EdgeUploader,
    SpoolRecord,
    verdict_from_spool,
)
from repro.serving import StoreAndForwardSink, VerdictJournal
from repro.streaming.reliability import reliable_link


def record(sequence, kind="verdict"):
    return SpoolRecord(agent_id="edge-0", sequence=sequence,
                       timestamp=0.1 * sequence, kind=kind,
                       predicted=3, confidence=0.7, model_version=2,
                       payload="ab" * 16 if kind == "clip" else "")


def pipeline(tmp_path, **link_options):
    sender, receiver = reliable_link(
        "uplink", base_latency=0.01,
        rng=np.random.default_rng(4), **link_options)
    spool = EdgeSpool.open(str(tmp_path / "s.wal"))
    uploader = EdgeUploader(spool, sender, agent_id="edge-0", window=4)
    journal = VerdictJournal(str(tmp_path / "controller.wal"))
    sink = StoreAndForwardSink(journal)
    uplink = EdgeUplinkReceiver(receiver, sink)
    return spool, uploader, uplink, sink, sender


def drive(uploader, uplink, steps, start=0.0, dt=0.05):
    now = start
    for _ in range(steps):
        uploader.step(now)
        uplink.poll(now)
        now += dt
    return now


def test_clean_link_drains_spool_exactly_once(tmp_path):
    spool, uploader, uplink, sink, _ = pipeline(tmp_path)
    for i in range(1, 11):
        spool.append(record(i, kind="clip" if i % 3 == 0 else "verdict"))
    drive(uploader, uplink, 30)
    assert spool.depth == 0
    delivered = [(r.session_id, r.sequence) for r in sink.delivered]
    assert delivered == [("edge-0", i) for i in range(1, 11)]
    assert uplink.received == 10


def test_window_bounds_inflight(tmp_path):
    spool, uploader, _, _, sender = pipeline(tmp_path)
    sender.data.drop_probability = 1.0  # nothing ever acks
    for i in range(1, 20):
        spool.append(record(i))
    uploader.step(0.0)
    assert uploader.inflight == 4  # window=4 caps the launch burst


def test_blackhole_backlog_drains_on_reconnect(tmp_path):
    spool, uploader, uplink, sink, sender = pipeline(
        tmp_path, max_attempts=500)
    sender.data.drop_probability = 1.0
    sender.ack.drop_probability = 1.0
    for i in range(1, 13):
        spool.append(record(i))
    now = drive(uploader, uplink, 40)
    assert spool.depth == 12  # nothing lost, nothing acked
    assert len(sink.delivered) == 0
    sender.data.drop_probability = 0.0
    sender.ack.drop_probability = 0.0
    drive(uploader, uplink, 60, start=now)
    assert spool.depth == 0
    # Exactly once: every record, no duplicates (retransmission timing
    # may reorder deliveries across the reconnect).
    ids = [(r.session_id, r.sequence) for r in sink.delivered]
    assert len(ids) == len(set(ids))
    assert set(ids) == {("edge-0", i) for i in range(1, 13)}


def test_abandoned_packet_requeues_the_record(tmp_path):
    spool, uploader, uplink, sink, sender = pipeline(
        tmp_path, max_attempts=2)
    sender.data.drop_probability = 1.0
    spool.append(record(1))
    now = drive(uploader, uplink, 30)
    assert uploader.drops >= 1  # transport gave up at least once
    assert spool.depth == 1     # but the record survived in the spool
    sender.data.drop_probability = 0.0
    drive(uploader, uplink, 30, start=now)
    assert spool.depth == 0
    assert [r.sequence for r in sink.delivered] == [1]


def test_verdict_mapping_keeps_dedup_identity_and_model_key():
    verdict = verdict_from_spool(record(7))
    assert (verdict.session_id, verdict.sequence) == ("edge-0", 7)
    assert verdict.model_key == "ota-v2"
    assert verdict.reason == ""
    clip = verdict_from_spool(record(8, kind="clip"))
    assert clip.kind == "clip" and clip.reason == "evidence-clip"
