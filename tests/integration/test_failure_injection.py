"""Failure injection: the pipeline under degraded conditions.

The collection framework must degrade gracefully, not collapse: bursts of
total packet loss, an agent going silent mid-drive, extreme clock drift,
and sensor spikes are all injected here and the controller's recovery
behaviour asserted.
"""

import numpy as np

from repro.streaming import (
    CentralizedController,
    Channel,
    CollectionAgent,
    DriftingClock,
    SlidingMovingAverage,
    VirtualClock,
)
from repro.streaming.sensors import SyntheticSensor


def _build(rng, drift_ppm=50.0, drop=0.0):
    true = VirtualClock()
    uplink = Channel(base_latency=0.005, jitter=0.001,
                     drop_probability=drop, rng=rng)
    downlink = Channel(base_latency=0.005, jitter=0.001, rng=rng)
    sensor = SyntheticSensor("accelerometer", 3,
                             lambda t: np.array([np.sin(t), 0.0, 9.81]),
                             noise_std=0.02, rng=rng)
    agent = CollectionAgent("phone", [sensor],
                            DriftingClock(true, drift_ppm=drift_ppm),
                            uplink, poll_interval=0.05,
                            transmit_interval=0.2)
    controller = CentralizedController(true, grid_period=0.25)
    controller.register_agent(agent, uplink, downlink)
    return true, agent, controller, uplink


def _run(true, agent, controller, seconds, on_step=None):
    steps = int(seconds / 0.01)
    for _ in range(steps):
        now = true.advance(0.01)
        if on_step is not None:
            on_step(now)
        agent.step(now)
        controller.step(now)


def test_total_loss_burst_recovers(rng):
    """A 3-second complete blackout: alignment still succeeds afterwards."""
    true, agent, controller, uplink = _build(rng)

    def blackout(now):
        uplink.drop_probability = 1.0 if 3.0 <= now < 6.0 else 0.0

    _run(true, agent, controller, 12.0, on_step=blackout)
    grid, aligned = controller.normalize()
    # Interpolation bridges the gap: the grid is continuous and the
    # signal values stay within physical range throughout.
    assert grid.shape[0] > 20
    accel = aligned["phone/accelerometer"]
    assert np.all(np.isfinite(accel))
    assert np.all(np.abs(accel[:, 2] - 9.81) < 2.0)
    assert uplink.stats.dropped > 0


def test_agent_silence_mid_drive(rng):
    """The agent stops polling halfway; data before the stop survives."""
    true, agent, controller, _ = _build(rng)

    silenced = {"done": False}

    def kill_agent(now):
        if now >= 5.0 and not silenced["done"]:
            # Simulate process death: the agent never polls again.
            agent.poll_interval = 1e9
            agent._next_poll = 1e18
            silenced["done"] = True

    _run(true, agent, controller, 10.0, on_step=kill_agent)
    grid, _ = controller.normalize()
    # The grid covers only the observed span (no fabricated data).
    assert grid[-1] < 7.0
    assert controller.readings_received > 50


def test_extreme_clock_drift_still_bounded(rng):
    """1000 ppm drift (10x a bad oscillator): sync keeps error < 50 ms."""
    true, agent, controller, _ = _build(rng, drift_ppm=1000.0)
    _run(true, agent, controller, 20.0)
    report = controller.sync_report()
    assert report["phone"] < 0.05


def test_sensor_spike_smoothed(rng):
    """A 100x sensor spike is attenuated by the controller's smoothing."""
    true = VirtualClock()
    spike_at = 5.0

    def spiky(t):
        if abs(t - spike_at) < 0.05:
            return np.array([500.0, 500.0, 500.0])
        return np.array([0.0, 0.0, 9.81])

    uplink = Channel(base_latency=0.005, rng=rng)
    sensor = SyntheticSensor("accelerometer", 3, spiky, rng=rng)
    agent = CollectionAgent("phone", [sensor], DriftingClock(true), uplink,
                            poll_interval=0.05, transmit_interval=0.2)
    controller = CentralizedController(true, grid_period=0.25,
                                       smoothing_window=5)
    controller.register_agent(agent, uplink)
    for _ in range(1000):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    _, aligned = controller.normalize()
    accel = aligned["phone/accelerometer"]
    # The raw spike is 500; after 5-point smoothing it must be well cut.
    assert accel[:, 0].max() < 500.0 / 2


def test_smoothing_never_amplifies(rng):
    """Moving-average output is always within the raw signal's envelope."""
    sma = SlidingMovingAverage(4)
    values = rng.normal(0, 10, size=200)
    smoothed = sma.smooth_series(values)
    assert smoothed.max() <= values.max() + 1e-9
    assert smoothed.min() >= values.min() - 1e-9


def test_out_of_order_heavy_jitter_alignment():
    """Jitter 10x the base latency scrambles arrival order massively;
    timestamp-based ordering still produces a monotone stream."""
    rng = np.random.default_rng(9)
    true = VirtualClock()
    uplink = Channel(base_latency=0.005, jitter=0.05, rng=rng)
    sensor = SyntheticSensor("accelerometer", 3,
                             lambda t: np.array([t, 0.0, 9.81]), rng=rng)
    agent = CollectionAgent("phone", [sensor], DriftingClock(true), uplink,
                            poll_interval=0.02, transmit_interval=0.05)
    controller = CentralizedController(true, grid_period=0.25)
    controller.register_agent(agent, uplink)
    for _ in range(800):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    timestamps, values = controller.raw_streams()["phone/accelerometer"]
    assert np.all(np.diff(timestamps) >= 0)
    # The linear x-channel must be monotone after ordering.
    assert np.all(np.diff(values[:, 0]) > -0.5)


def test_dashcam_goes_silent_mid_drive(rng, tiny_driving_dataset):
    """The dashcam dies at t=5: the controller must mark it SILENT, keep
    aligning the surviving phone stream, and the ensemble must still
    deliver verdicts — flagged degraded — from the IMU modality alone."""
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
    from repro.streaming import CameraSensor, HealthRegistry, HealthState

    true = VirtualClock()
    phone_uplink = Channel("phone-up", base_latency=0.005, rng=rng)
    dashcam_uplink = Channel("dashcam-up", base_latency=0.005, rng=rng)
    phone = CollectionAgent(
        "phone",
        [SyntheticSensor("accelerometer", 3,
                         lambda t: np.array([np.sin(t), 0.0, 9.81]),
                         noise_std=0.02, rng=rng)],
        DriftingClock(true, drift_ppm=40.0), phone_uplink,
        poll_interval=0.05, transmit_interval=0.2, heartbeats=True)
    dashcam = CollectionAgent(
        "dashcam",
        [CameraSensor(lambda t: np.full((8, 8), 0.5, dtype=np.float32))],
        DriftingClock(true, drift_ppm=-40.0), dashcam_uplink,
        poll_interval=0.2, transmit_interval=0.4, heartbeats=True)
    health = HealthRegistry(degraded_after=1.0, silent_after=3.0)
    controller = CentralizedController(true, grid_period=0.25, health=health)
    controller.register_agent(phone, phone_uplink)
    controller.register_agent(dashcam, dashcam_uplink)

    for _ in range(1200):
        now = true.advance(0.01)
        if now >= 5.0:
            dashcam.suspended = True  # process death, never resumes
        phone.step(now)
        dashcam.step(now)
        controller.step(now)

    # Supervision: the dead agent is SILENT, the survivor is not.
    assert health.state("dashcam") is HealthState.SILENT
    assert health.state("phone") is HealthState.HEALTHY
    silent_states = [s for _, s in health.transitions("dashcam")]
    assert silent_states[-1] is HealthState.SILENT
    assert controller.health_report()["states"]["dashcam"] == "silent"

    # The surviving stream still aligns over the full drive.
    grid, aligned = controller.normalize()
    assert grid[-1] > 10.0
    assert np.all(np.isfinite(aligned["phone/accelerometer"]))
    # Frames stop at the death, confirming the missing modality.
    assert max(f.timestamp for f in controller.frames) < 6.0

    # Analytics continue on the surviving modality, honestly flagged.
    train, evaluation = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(1))
    ensemble.fit(train)
    verdict = ensemble.predict_degraded(imu=evaluation.imu[:4])
    assert verdict.degraded
    assert verdict.missing == ("frames",)
    assert np.isfinite(verdict.probabilities).all()
    np.testing.assert_allclose(verdict.probabilities.sum(axis=1), 1.0,
                               atol=1e-9)


def test_ensemble_survives_constant_imu(rng, tiny_driving_dataset):
    """A dead IMU (all zeros) at inference must not crash or emit NaNs."""
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
    train, evaluation = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(1))
    ensemble.fit(train)
    dead = evaluation.subset(np.arange(min(8, len(evaluation))))
    dead.imu[:] = 0.0
    probs = ensemble.predict_proba(dead)
    assert np.isfinite(probs).all()
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)
