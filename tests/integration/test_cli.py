"""Command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["reproduce", "table9"])


def test_cli_collect(tmp_path, capsys):
    out = os.path.join(tmp_path, "collected")
    os.makedirs(out)
    code = main(["collect", "--drives", "1", "--segment-seconds", "2",
                 "--output", out])
    assert code == 0
    captured = capsys.readouterr().out
    assert "readings" in captured
    assert os.path.exists(os.path.join(out, "drive_00.npz"))


def test_cli_collect_creates_missing_output_dir(tmp_path, capsys):
    # Regression: a missing (nested) output directory used to crash the
    # drive loop at save time; it must be created with parents instead.
    out = os.path.join(tmp_path, "deep", "nested", "collected")
    code = main(["collect", "--drives", "1", "--segment-seconds", "2",
                 "--output", out])
    assert code == 0
    assert os.path.exists(os.path.join(out, "drive_00.npz"))
    assert "readings" in capsys.readouterr().out


def test_cli_train_and_evaluate(tmp_path, capsys):
    model_dir = os.path.join(tmp_path, "model")
    code = main(["train", "--architecture", "cnn", "--samples", "60",
                 "--epochs", "1", "--output", model_dir, "--seed", "3"])
    assert code == 0
    assert os.path.exists(os.path.join(model_dir, "manifest.json"))
    code = main(["evaluate", "--model", model_dir, "--samples", "30"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Top-1" in captured


@pytest.mark.parametrize("experiment", ["fig2", "fig3", "fig4"])
def test_cli_reproduce_light_experiments(experiment, capsys):
    assert main(["reproduce", experiment, "--scale", "smoke"]) == 0
    assert capsys.readouterr().out.strip()


def test_cli_reproduce_table1(capsys):
    assert main(["reproduce", "table1", "--scale", "smoke"]) == 0
    assert "Normal Driving" in capsys.readouterr().out


def test_cli_serve_requires_replay_flag(capsys):
    assert main(["serve"]) == 2
    assert "--replay" in capsys.readouterr().out


def test_cli_serve_replay(capsys):
    code = main(["serve", "--replay", "--drivers", "2", "--duration", "4",
                 "--kill-camera", "1", "--train-samples", "60",
                 "--train-epochs", "1", "--seed", "2"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Serving replay" in captured
    assert "camera killed mid-replay" in captured
    assert "One verdict per grid instant per driver: yes" in captured


def test_cli_chaos(capsys):
    assert main(["chaos", "--duration", "8", "--seed", "1"]) == 0
    captured = capsys.readouterr().out
    assert "IMU tuples" in captured
    assert "== Health ==" in captured
    assert "windows" in captured


def test_cli_chaos_exits_nonzero_on_violations(capsys, monkeypatch):
    # Regression: invariant violations used to print but still exit 0,
    # so CI could never gate on the chaos drive.
    from repro.streaming.faults import ChaosDriveReport

    monkeypatch.setattr(
        ChaosDriveReport, "violations",
        property(lambda self: ["window [0.0, 5.0) fully dark: "
                               "no modality was delivered"]))
    assert main(["chaos", "--duration", "8", "--seed", "1"]) == 1
    captured = capsys.readouterr()
    assert "CHAOS FAILED" in captured.err
    assert "fully dark" in captured.err


def test_cli_serving_chaos(tmp_path, capsys):
    snapshot = os.path.join(tmp_path, "chaos-metrics.json")
    code = main(["chaos", "--serving", "--shards", "3", "--drivers", "2",
                 "--duration", "8", "--train-samples", "60",
                 "--train-epochs", "1", "--seed", "0",
                 "--metrics-out", snapshot])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Serving chaos" in captured
    assert "invariants: all hold" in captured
    assert os.path.exists(snapshot)
    # The resilience gauges flow through to `repro stats`.
    assert main(["stats", snapshot]) == 0
    stats_out = capsys.readouterr().out
    assert "serving_supervisor_restarts_total" in stats_out
    assert "serving_journal_disk_bytes" in stats_out


def test_cli_edge_chaos(tmp_path, capsys):
    snapshot = os.path.join(tmp_path, "edge-metrics.json")
    code = main(["chaos", "--edge", "--agents", "1", "--duration", "6",
                 "--train-samples", "60", "--train-epochs", "1",
                 "--seed", "0", "--metrics-out", snapshot])
    assert code == 0
    captured = capsys.readouterr().out
    assert "Edge chaos" in captured
    assert "invariants: all hold" in captured
    assert os.path.exists(snapshot)
    assert main(["stats", snapshot]) == 0
    stats_out = capsys.readouterr().out
    assert "edge_spool_appends_total" in stats_out
    assert "edge_ota_installs_total" in stats_out


def test_cli_edge_drive_requires_flag(capsys):
    assert main(["edge"]) == 2
    assert "--drive" in capsys.readouterr().out


def test_cli_stats_fleet_merges_snapshots(tmp_path, capsys):
    import json

    def snapshot_file(name, count):
        return {
            "metrics": [{
                "kind": "counter", "name": "edge_verdicts_total",
                "labels": {"agent": name}, "help": "", "value": count,
            }],
            "traces": [],
        }

    paths = []
    for index, count in enumerate([3, 4]):
        path = os.path.join(tmp_path, f"agent-{index}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot_file(f"edge-{index}", count), handle)
        paths.append(path)
    # Multiple snapshots without --fleet is an explicit usage error.
    assert main(["stats", *paths]) == 2
    assert "--fleet" in capsys.readouterr().err
    assert main(["stats", "--fleet", *paths]) == 0
    merged = capsys.readouterr().out
    assert "Fleet view over 2 snapshot(s)" in merged
    assert "edge_verdicts_total" in merged
