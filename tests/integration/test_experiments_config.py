"""Experiment configuration, scales, and reporting plumbing."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    DEFAULT,
    FULL,
    PAPER_IMU_ONLY,
    PAPER_TABLE2,
    PAPER_TABLE3,
    SMOKE,
    ascii_frame,
    get_scale,
)


def test_scale_lookup():
    assert get_scale("smoke") is SMOKE
    assert get_scale("default") is DEFAULT
    assert get_scale("full") is FULL


def test_scale_lookup_unknown():
    with pytest.raises(ConfigurationError):
        get_scale("gigantic")


def test_scales_are_ordered_by_cost():
    assert SMOKE.dataset_samples < DEFAULT.dataset_samples \
        < FULL.dataset_samples
    assert SMOKE.cnn_epochs < DEFAULT.cnn_epochs <= FULL.cnn_epochs


def test_paper_numbers_match_publication():
    # Table 2 of the paper, exactly.
    assert PAPER_TABLE2 == {"cnn+rnn": 0.8702, "cnn+svm": 0.8623,
                            "cnn": 0.7388}
    # §5.2 IMU-only numbers.
    assert PAPER_IMU_ONLY == {"rnn": 0.9744, "svm": 0.9537}
    # Table 3.
    assert PAPER_TABLE3["dCNN-L"] == 0.8000
    assert PAPER_TABLE3["dCNN-H"] == 0.6313


def test_paper_orderings_hold_in_reference_numbers():
    """The shape criteria are consistent with the paper's own numbers."""
    assert PAPER_TABLE2["cnn+rnn"] > PAPER_TABLE2["cnn+svm"] \
        > PAPER_TABLE2["cnn"]
    assert PAPER_IMU_ONLY["rnn"] > PAPER_IMU_ONLY["svm"]
    assert PAPER_TABLE3["dCNN-L"] > PAPER_TABLE3["cnn"] \
        > PAPER_TABLE3["dCNN-M"] > PAPER_TABLE3["dCNN-H"]


def test_ascii_frame_renders(rng):
    art = ascii_frame(rng.random((32, 32)))
    lines = art.splitlines()
    assert len(lines) > 4
    assert all(len(line) == len(lines[0]) for line in lines)


def test_ascii_frame_intensity_mapping():
    dark = ascii_frame(np.zeros((8, 8)))
    bright = ascii_frame(np.ones((8, 8)))
    assert set(dark) <= {" ", "\n"}
    assert "@" in bright
