"""Smoke tests for the examples/ scripts.

Each example is imported from the repository's ``examples/`` directory
and its ``main()`` run with tiny argv overrides (one drive, one epoch,
a handful of samples) so the scripts cannot silently rot as the library
evolves.  The overrides are calibrated to keep each script to a few
seconds; these tests assert "runs to completion", not model quality.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script name -> tiny argv making it finish in a few seconds.
EXAMPLE_ARGS = {
    "quickstart.py": ["--samples", "40", "--epochs", "1"],
    "realtime_inference.py": ["--drives", "1", "--epochs", "1"],
    "fleet_monitoring.py": ["--drivers", "1", "--epochs", "1"],
    # samples-per-class must leave the eval split non-empty.
    "privacy_tradeoff.py": ["--samples-per-class", "3", "--epochs", "1",
                            "--distill-epochs", "1"],
    "streaming_collection.py": ["--segment-seconds", "1"],
    "serving_replay.py": ["--drivers", "2", "--duration", "5",
                          "--samples", "60", "--epochs", "1"],
}


def load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"examples_smoke_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_every_example_has_smoke_args():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert scripts == sorted(EXAMPLE_ARGS)


@pytest.mark.parametrize("script", sorted(EXAMPLE_ARGS))
def test_example_runs(script, monkeypatch, capsys):
    module = load_example(script)
    assert hasattr(module, "main"), f"{script} has no main()"
    monkeypatch.setattr(sys, "argv", [script, *EXAMPLE_ARGS[script]])
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
