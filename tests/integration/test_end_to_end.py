"""End-to-end integration: collect -> train -> classify, and the runners."""

import numpy as np
import pytest

from repro.core import (
    CnnConfig,
    DarNetEnsemble,
    DarNetSystem,
    DriveScript,
    RnnConfig,
    run_collection_drive,
)
from repro.datasets import DrivingBehavior
from repro.experiments import (
    SMOKE,
    format_fig5,
    format_table1,
    format_table2,
    format_table3,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
    run_table3,
)


def test_collect_train_classify_roundtrip(tiny_driving_dataset):
    """The full paper pipeline at toy scale: a scripted drive is collected
    through the streaming stack, an ensemble trained on synthetic data
    classifies it per timestep, and the distraction segment is detected."""
    train, _ = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=2, width=0.5),
        rnn_config=RnnConfig(hidden_units=16, epochs=4),
        rng=np.random.default_rng(1))
    ensemble.fit(train)
    script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TALKING],
        segment_seconds=8.0, gap_seconds=1.0)
    drive = run_collection_drive(script, rng=np.random.default_rng(2))
    system = DarNetSystem(ensemble)
    verdicts = system.classify_session(drive)
    assert len(verdicts) > 10
    # Ground truth must be attached for in-segment instants.
    labelled = [v for v in verdicts if v.true_label is not None]
    assert labelled
    agreement = np.mean([v.predicted == v.true_label for v in labelled])
    assert agreement > 0.3  # far above the 1/6 random baseline


def test_run_table1_smoke():
    result = run_table1(SMOKE, seed=0)
    assert sum(result.frame_counts.values()) > 0
    assert result.worst_clock_error < 0.1
    assert result.total_readings > 100
    text = format_table1(result)
    assert "Normal Driving" in text


def test_run_table2_smoke():
    result = run_table2(SMOKE, seed=0)
    assert set(result.results) == {"cnn+rnn", "cnn+svm", "cnn"}
    for outcome in result.results.values():
        assert 0.0 <= outcome.top1 <= 1.0
        assert outcome.confusion.shape == (6, 6)
    assert set(result.imu_only) == {"rnn", "svm"}
    report = format_table2(result)
    assert "paper= 87.02%" in report
    fig5 = format_fig5(result)
    assert "CNN+RNN" in fig5 and "confusion" in fig5


def test_run_table3_smoke():
    result = run_table3(SMOKE, seed=0)
    assert 0.0 <= result.cnn_top1 <= 1.0
    assert len(result.dcnn_top1) == 3
    report = format_table3(result)
    assert "dCNN-L" in report


def test_run_fig2():
    result = run_fig2(segment_seconds=3.0)
    assert result.delivery_ratio == pytest.approx(1.0)
    assert result.readings_received > 100
    assert result.worst_clock_error < 0.05
    assert result.grid_steps > 0


def test_run_fig2_with_loss():
    result = run_fig2(segment_seconds=3.0, drop_probability=0.3)
    assert result.delivery_ratio < 0.95


def test_run_fig3_bandwidth_ordering():
    result = run_fig3()
    assert (result.bytes_per_frame["full"] > result.bytes_per_frame["low"]
            > result.bytes_per_frame["medium"]
            > result.bytes_per_frame["high"])
    assert result.transfer_seconds["high"] < result.transfer_seconds["full"]
    assert result.paper_reduction["high"] == pytest.approx(144.0)


def test_run_fig4_distortion_monotone():
    result = run_fig4()
    assert result.edges["full"] == 64
    assert result.edges["low"] > result.edges["medium"] > result.edges["high"]
    # Heavier distortion cannot *increase* fidelity by much.
    assert result.psnr["high"] < result.psnr["low"] + 1.0
    for frame in result.frames.values():
        assert frame.shape == (64, 64)
