"""Integration: the privacy path through the full streaming stack.

Exercises Figure 3's flow end to end: the distortion module plugs into
the controller's frame hook, downsampled frames ship over the channel
(cheaper), and the server-side dCNN classifies what actually arrived.
"""

import numpy as np
import pytest

from repro.core import (
    CnnConfig,
    DenoisingCNN,
    DistillationConfig,
    DriveScript,
    DriverFrameCNN,
    PrivacyLevel,
    restore_size,
    run_collection_drive,
)
from repro.datasets import DrivingBehavior


@pytest.fixture(scope="module")
def private_drive():
    script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TALKING],
        segment_seconds=4.0)
    return run_collection_drive(script, privacy=PrivacyLevel.MEDIUM,
                                rng=np.random.default_rng(60))


def test_private_drive_ships_small_frames(private_drive):
    edge = PrivacyLevel.MEDIUM.target_edge(64)
    for frame in private_drive.frames:
        assert frame.image.shape == (edge, edge)
        assert frame.privacy_level == "medium"


def test_private_drive_saves_bandwidth(private_drive):
    """Bytes delivered for the distorted drive << a clean drive's."""
    script = DriveScript.standard([DrivingBehavior.NORMAL],
                                  segment_seconds=4.0)
    clean = run_collection_drive(script, rng=np.random.default_rng(61))

    def camera_bytes(result):
        return result.controller._agents["dashcam"].uplink.stats \
            .bytes_delivered

    # Same per-second frame rate; distorted payloads are ~9x smaller.
    private_rate = camera_bytes(private_drive) / private_drive.duration
    clean_rate = camera_bytes(clean) / clean.duration
    assert private_rate < clean_rate / 4


def test_server_side_dcnn_classifies_received_frames(private_drive,
                                                     tiny_driving_dataset):
    """A distilled dCNN consumes the frames exactly as delivered."""
    train, _ = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    teacher = DriverFrameCNN(CnnConfig(epochs=1, width=0.5),
                             rng=np.random.default_rng(1))
    teacher.fit(train.images, train.labels)
    student = DenoisingCNN(teacher, PrivacyLevel.MEDIUM,
                           config=DistillationConfig(epochs=1),
                           rng=np.random.default_rng(2))
    student.distill(train.images[:40])
    # Server path: upsample the received small frames to the input size.
    received = np.stack([np.asarray(f.image, dtype=np.float32)
                         for f in private_drive.frames[:8]])[:, None]
    restored = restore_size(received, 64)
    logits = student.model.predict_logits(restored)
    assert logits.shape == (8, 6)
    assert np.isfinite(logits).all()
