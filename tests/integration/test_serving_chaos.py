"""Serving-tier chaos: the zero-loss audit under scripted shard faults."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving import (
    run_serving_chaos,
    standard_serving_schedule,
)
from repro.streaming.faults import FaultEvent, FaultSchedule


class StubResult:
    def __init__(self, count, degraded):
        self.predictions = np.full(count, 1, dtype=np.int64)
        self.probabilities = np.full((count, 5), 0.2)
        self.confidence = np.full(count, 0.8)
        self.degraded = degraded
        self.missing = ("frames",) if degraded else ()


class StubModel:
    def predict_degraded(self, images=None, imu=None):
        count = len(imu) if imu is not None else len(images)
        return StubResult(count, images is None)


@pytest.fixture(scope="module")
def chaos_report():
    """One fixed-seed serving chaos run shared by the assertions below."""
    return run_serving_chaos(StubModel(), shards=3, drivers=4,
                             duration=12.0, grid_period=0.25, seed=0)


def test_chaos_kills_at_least_one_shard(chaos_report):
    assert chaos_report.shard_kills >= 1
    assert chaos_report.shard_deaths >= 1
    assert chaos_report.restarts >= 1
    assert chaos_report.shard_hangs >= 1


def test_chaos_loses_zero_verdicts(chaos_report):
    assert chaos_report.requested == 4 * 48
    assert chaos_report.lost == 0
    assert (chaos_report.delivered + chaos_report.deferred
            == chaos_report.requested)
    assert chaos_report.violations == []


def test_chaos_journal_is_clean_and_complete(chaos_report):
    assert chaos_report.journal_torn == 0
    assert chaos_report.unjournaled == 0
    assert chaos_report.journal_records >= chaos_report.requested
    # The disk-full window forced overflow, and it drained fully.
    assert chaos_report.journal_overflowed > 0


def test_chaos_downstream_is_exactly_once(chaos_report):
    assert chaos_report.downstream_duplicates == 0
    assert chaos_report.downstream_delivered == chaos_report.requested


def test_chaos_recovery_is_measured_and_bounded(chaos_report):
    assert chaos_report.recovery_times  # every death has a recovery time
    assert chaos_report.recovery_max <= chaos_report.recovery_bound
    assert "recovery" in chaos_report.format_report()


def test_chaos_run_is_deterministic(chaos_report):
    again = run_serving_chaos(StubModel(), shards=3, drivers=4,
                              duration=12.0, grid_period=0.25, seed=0)
    assert again.requested == chaos_report.requested
    assert again.delivered == chaos_report.delivered
    assert again.deferred == chaos_report.deferred
    assert again.recovery_times == chaos_report.recovery_times
    assert again.harness_log == chaos_report.harness_log


def test_chaos_metrics_include_resilience_series(chaos_report):
    names = {entry["name"] for entry in chaos_report.metrics["metrics"]}
    assert {"serving_supervisor_restarts_total",
            "serving_journal_disk_bytes",
            "serving_supervisor_recovery_seconds"} <= names


def test_impossible_recovery_bound_is_a_violation():
    report = run_serving_chaos(StubModel(), shards=2, drivers=2,
                               duration=8.0, seed=0,
                               recovery_bound=1e-6)
    assert any("recovery" in violation for violation in report.violations)
    assert "VIOLATIONS" in report.format_report()


def test_schedule_without_kills_flags_unengaged_chaos():
    schedule = FaultSchedule([
        FaultEvent(100.0, 101.0, "shard_kill", "shard-0"),  # never fires
    ])
    report = run_serving_chaos(StubModel(), shards=2, drivers=2,
                               duration=4.0, seed=0, schedule=schedule)
    assert any("did not engage" in violation
               for violation in report.violations)


def test_invalid_configuration_raises():
    with pytest.raises(ConfigurationError):
        run_serving_chaos(StubModel(), shards=1)
    with pytest.raises(ConfigurationError):
        run_serving_chaos(StubModel(), drivers=0)


def test_standard_schedule_covers_all_serving_fault_kinds():
    kinds = {event.kind for event in standard_serving_schedule(20.0).events}
    assert kinds == {"shard_kill", "executor_hang", "sink_blackhole",
                     "journal_disk_full"}
