"""Acceptance scenario: the scripted chaos drive end to end.

One 30-second drive carries all three fault classes — a 3 s total
blackout, the dashcam dying at t=15, and a stuck gyroscope — and the
fault-tolerance layer must hold: near-lossless IMU delivery, a clean
REMOTE -> LOCAL -> REMOTE failover without flapping, quarantine of the
stuck sensor, and a (degraded, flagged) verdict for every window.
"""

import math

import numpy as np
import pytest

from repro.streaming import (
    ChaosHarness,
    Channel,
    FaultEvent,
    FaultSchedule,
    FaultableSensor,
    HealthState,
    ProcessingLocation,
    run_chaos_drive,
    standard_chaos_schedule,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def chaos_report():
    return run_chaos_drive(seed=0)


# -- schedule / harness plumbing ---------------------------------------------

def test_fault_event_validation():
    with pytest.raises(ConfigurationError):
        FaultEvent(0.0, 1.0, "meteor_strike", "*")
    with pytest.raises(ConfigurationError):
        FaultEvent(2.0, 1.0, "blackout", "*")
    event = FaultEvent(1.0, 2.0, "blackout", "uplink")
    assert event.active(1.5) and not event.active(2.0)
    assert event.matches("uplink") and not event.matches("other")
    assert FaultEvent(0.0, 1.0, "blackout", "*").matches("anything")


def test_schedule_queries():
    schedule = standard_chaos_schedule(30.0)
    assert schedule.active_for("blackout", "any-channel", 9.0) is not None
    assert schedule.active_for("blackout", "any-channel", 12.0) is None
    assert schedule.active_for("agent_silence", "dashcam", 20.0) is not None
    assert schedule.active_for("agent_silence", "phone", 20.0) is None
    assert schedule.horizon == 20.0  # the infinite silence is excluded


def test_faultable_sensor_modes(rng):
    inner_calls = []

    class Probe:
        name, dimension = "probe", 3

        def sample(self, t):
            inner_calls.append(t)
            return np.array([t, 0.0, 0.0])

    sensor = FaultableSensor(Probe())
    assert sensor.sample(1.0)[0] == 1.0
    sensor.set_mode("dropout")
    assert sensor.sample(2.0) is None
    sensor.set_mode("stuck")
    first = sensor.sample(3.0)
    assert np.array_equal(sensor.sample(4.0), first)
    sensor.set_mode("spike", magnitude=100.0)
    assert sensor.sample(5.0)[0] == pytest.approx(105.0)
    sensor.set_mode(None)
    assert sensor.sample(6.0)[0] == pytest.approx(6.0)
    with pytest.raises(ConfigurationError):
        sensor.set_mode("gremlins")


def test_harness_blackout_restores_drop_probability(rng):
    channel = Channel("uplink", drop_probability=0.05, rng=rng)
    harness = ChaosHarness(
        FaultSchedule([FaultEvent(1.0, 2.0, "blackout", "uplink")]),
        channels={"uplink": channel})
    harness.apply(0.5)
    assert channel.drop_probability == pytest.approx(0.05)
    harness.apply(1.5)
    assert channel.drop_probability == pytest.approx(1.0)
    harness.apply(2.5)
    assert channel.drop_probability == pytest.approx(0.05)
    kinds = [(kind, state) for _, kind, _, state in harness.log]
    assert kinds == [("blackout", "on"), ("blackout", "off")]


# -- the acceptance criteria -------------------------------------------------

def test_imu_recovery_meets_sla(chaos_report):
    """≥ 99% of polled IMU tuples reach the controller despite the 3 s
    blackout and 2% steady-state loss: the ARQ layer recovers the rest."""
    assert chaos_report.imu_taken > 3000
    assert chaos_report.imu_delivery_ratio >= 0.99
    assert chaos_report.phone_sender_stats.retransmissions > 0
    assert chaos_report.phone_sender_stats.shed_data == 0
    assert chaos_report.phone_sender_stats.abandoned == 0


def test_breaker_fails_over_and_recovers_without_flapping(chaos_report):
    transitions = chaos_report.breaker_transitions
    assert len(transitions) <= 2
    locations = [location for _, location in transitions]
    assert locations == [ProcessingLocation.LOCAL, ProcessingLocation.REMOTE]
    trip_time, recovery_time = (t for t, _ in transitions)
    # Tripped during the 8-11 s blackout, recovered after it cleared.
    assert 8.0 <= trip_time <= 11.5
    assert recovery_time > 11.0
    assert chaos_report.breaker_location == "remote"


def test_dashcam_declared_silent_phone_survives(chaos_report):
    assert chaos_report.agent_states["dashcam"] is HealthState.SILENT
    assert chaos_report.agent_states["phone"] is HealthState.HEALTHY
    # The dashcam died at t=15 and was declared silent within the
    # configured 3 s silence threshold (plus in-flight drain).
    silent_at = next(t for t, s in chaos_report.agent_transitions["dashcam"]
                     if s is HealthState.SILENT and t > 15.0)
    assert silent_at <= 20.0


def test_stuck_gyroscope_is_quarantined(chaos_report):
    assert "phone/gyroscope" in chaos_report.health["ever_quarantined"]
    assert chaos_report.health["fault_counts"]["stuck"] >= 1
    assert chaos_report.readings_quarantined > 0
    # Arrival accounting includes quarantined readings (they arrived).
    assert chaos_report.readings_quarantined < chaos_report.imu_arrived


def test_privacy_escalates_before_shedding(chaos_report):
    assert chaos_report.privacy_escalations >= 1
    if chaos_report.first_shed_at is not None:
        assert chaos_report.first_escalation_at is not None
        assert chaos_report.first_escalation_at < chaos_report.first_shed_at


def test_every_window_gets_a_verdict(chaos_report, tiny_driving_dataset):
    """A verdict per analysis window, degraded ones honestly flagged."""
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig

    windows = chaos_report.windows
    assert len(windows) == 30
    # Post-death windows lose the frame stream but never the IMU stream.
    assert all(w.has_imu for w in windows)
    degraded = [w for w in windows if w.degraded]
    assert degraded and all(w.missing == ("frames",) for w in degraded)
    assert all(w.start >= 15.0 for w in degraded)

    train, evaluation = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(1))
    ensemble.fit(train)
    verdicts = []
    for window in windows:
        images = evaluation.images[:1] if window.has_frames else None
        imu = evaluation.imu[:1] if window.has_imu else None
        verdicts.append(ensemble.predict_degraded(images=images, imu=imu))
    assert len(verdicts) == len(windows)
    for window, verdict in zip(windows, verdicts):
        assert np.isfinite(verdict.probabilities).all()
        assert verdict.degraded == window.degraded
        assert verdict.missing == window.missing
    full = [v.confidence.mean() for w, v in zip(windows, verdicts)
            if not w.degraded]
    assert full, "some windows must have run at full fidelity"


def test_chaos_drive_is_deterministic():
    first = run_chaos_drive(seed=3, duration=6.0, settle=1.0,
                            schedule=FaultSchedule(
                                [FaultEvent(2.0, 3.0, "blackout", "*")]))
    second = run_chaos_drive(seed=3, duration=6.0, settle=1.0,
                             schedule=FaultSchedule(
                                 [FaultEvent(2.0, 3.0, "blackout", "*")]))
    assert first.imu_taken == second.imu_taken
    assert first.imu_arrived == second.imu_arrived
    assert first.harness_log == second.harness_log
    assert math.isclose(first.imu_delivery_ratio, second.imu_delivery_ratio)


def test_run_chaos_drive_validates_arguments():
    with pytest.raises(ConfigurationError):
        run_chaos_drive(duration=-1.0)
    with pytest.raises(ConfigurationError):
        run_chaos_drive(step=0.0)
