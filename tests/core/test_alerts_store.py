"""Alerting/fleet monitoring and whole-ensemble persistence."""

import os

import numpy as np
import pytest

from repro.core import (
    AlertPolicy,
    CnnConfig,
    DarNetEnsemble,
    DistractionAlerter,
    FleetMonitor,
    RnnConfig,
    load_ensemble,
    save_ensemble,
)
from repro.core.darnet import TimestepClassification
from repro.datasets import DrivingBehavior
from repro.exceptions import ConfigurationError, SerializationError


def _verdict(t: float, behavior: DrivingBehavior,
             confidence: float = 0.8) -> TimestepClassification:
    probs = np.full(6, (1.0 - confidence) / 5)
    probs[int(behavior)] = confidence
    return TimestepClassification(timestamp=t, predicted=behavior,
                                  probabilities=probs, true_label=None)


def _stream(spec):
    """spec: list of (behavior, count) run-length encoded at 4 Hz."""
    verdicts = []
    t = 0.0
    for behavior, count in spec:
        for _ in range(count):
            verdicts.append(_verdict(t, behavior))
            t += 0.25
    return verdicts


# -- alerter -----------------------------------------------------------------

def test_alert_raised_after_consecutive_distraction():
    alerter = DistractionAlerter(AlertPolicy(consecutive_to_raise=3,
                                             consecutive_to_clear=2))
    raised = [alerter.observe(v) for v in _stream(
        [(DrivingBehavior.NORMAL, 4), (DrivingBehavior.TEXTING, 5)])]
    alerts = [a for a in raised if a is not None]
    assert len(alerts) == 1
    assert alerts[0].behavior == DrivingBehavior.TEXTING
    assert alerter.active_alert is not None


def test_alert_not_raised_for_blips():
    """Isolated single distracted verdicts never alert (debouncing)."""
    alerter = DistractionAlerter(AlertPolicy(consecutive_to_raise=3))
    stream = _stream([(DrivingBehavior.NORMAL, 3),
                      (DrivingBehavior.TALKING, 1),
                      (DrivingBehavior.NORMAL, 3),
                      (DrivingBehavior.TALKING, 2),
                      (DrivingBehavior.NORMAL, 3)])
    raised = [alerter.observe(v) for v in stream]
    assert all(a is None for a in raised)
    assert alerter.finish() == []


def test_alert_clears_after_normal_run():
    policy = AlertPolicy(consecutive_to_raise=2, consecutive_to_clear=3)
    alerter = DistractionAlerter(policy)
    for verdict in _stream([(DrivingBehavior.TEXTING, 4),
                            (DrivingBehavior.NORMAL, 3)]):
        alerter.observe(verdict)
    assert alerter.active_alert is None
    assert len(alerter.alerts) == 1
    alert = alerter.alerts[0]
    assert alert.duration is not None and alert.duration > 0


def test_alert_low_confidence_ignored():
    alerter = DistractionAlerter(AlertPolicy(consecutive_to_raise=2,
                                             min_confidence=0.9))
    stream = [_verdict(i * 0.25, DrivingBehavior.TEXTING, confidence=0.5)
              for i in range(10)]
    assert all(alerter.observe(v) is None for v in stream)


def test_alert_majority_behavior():
    alerter = DistractionAlerter(AlertPolicy(consecutive_to_raise=4))
    stream = _stream([(DrivingBehavior.TALKING, 1),
                      (DrivingBehavior.TEXTING, 3)])
    raised = [a for a in (alerter.observe(v) for v in stream) if a]
    assert raised[0].behavior == DrivingBehavior.TEXTING


def test_alert_policy_validation():
    with pytest.raises(ConfigurationError):
        AlertPolicy(consecutive_to_raise=0)
    with pytest.raises(ConfigurationError):
        AlertPolicy(min_confidence=1.5)


def test_finish_closes_open_alert():
    alerter = DistractionAlerter(AlertPolicy(consecutive_to_raise=2))
    for verdict in _stream([(DrivingBehavior.REACHING, 5)]):
        alerter.observe(verdict)
    alerts = alerter.finish(end_time=1.0)
    assert len(alerts) == 1
    assert alerts[0].end_time == 1.0


# -- fleet monitor ---------------------------------------------------------

def test_fleet_monitor_aggregates_and_ranks():
    monitor = FleetMonitor(AlertPolicy(consecutive_to_raise=2,
                                       consecutive_to_clear=2))
    risky = _stream([(DrivingBehavior.TEXTING, 8),
                     (DrivingBehavior.NORMAL, 4)])
    safe = _stream([(DrivingBehavior.NORMAL, 12)])
    monitor.ingest_session(1, risky)
    monitor.ingest_session(2, safe)
    assert monitor.report(1).alerts == 1
    assert monitor.report(1).distraction_rate > 0.5
    assert monitor.report(2).distraction_rate == 0.0
    ranking = monitor.ranking()
    assert ranking[0].driver_id == 1


def test_fleet_monitor_accumulates_across_sessions():
    monitor = FleetMonitor()
    stream = _stream([(DrivingBehavior.TALKING, 6)])
    monitor.ingest_session(7, stream)
    monitor.ingest_session(7, stream)
    assert monitor.report(7).verdicts == 12
    assert monitor.report(7).by_behavior["Talking"] == 12


# -- ensemble persistence ------------------------------------------------------

FAST_CNN = CnnConfig(epochs=1, width=0.5)
FAST_RNN = RnnConfig(hidden_units=8, epochs=1)


@pytest.mark.parametrize("architecture", ["cnn", "cnn+rnn", "cnn+svm"])
def test_ensemble_save_load_roundtrip(tmp_path, tiny_driving_dataset,
                                      architecture):
    train, evaluation = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble(architecture, cnn_config=FAST_CNN,
                              rnn_config=FAST_RNN,
                              rng=np.random.default_rng(1))
    ensemble.fit(train)
    expected = ensemble.predict_proba(evaluation)
    directory = os.path.join(tmp_path, architecture)
    save_ensemble(ensemble, directory)
    restored = load_ensemble(directory, rng=np.random.default_rng(2))
    actual = restored.predict_proba(evaluation)
    np.testing.assert_allclose(actual, expected, atol=1e-5)


def test_save_untrained_ensemble_rejected(tmp_path):
    ensemble = DarNetEnsemble("cnn", cnn_config=FAST_CNN,
                              rng=np.random.default_rng(0))
    with pytest.raises(SerializationError):
        save_ensemble(ensemble, os.path.join(tmp_path, "x"))


def test_load_missing_manifest(tmp_path):
    with pytest.raises(SerializationError):
        load_ensemble(os.path.join(tmp_path, "nothing"))
