"""Model store integrity: digests stamped on save, verified on load."""

import json
import os

import numpy as np
import pytest

from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
from repro.core.model_store import (
    artifact_digests,
    file_digest,
    load_ensemble,
    save_ensemble,
    verify_artifacts,
)
from repro.exceptions import ModelIntegrityError, SerializationError


@pytest.fixture(scope="module")
def saved_model(tiny_driving_dataset, tmp_path_factory):
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(11))
    ensemble.fit(tiny_driving_dataset)
    directory = str(tmp_path_factory.mktemp("store") / "model")
    save_ensemble(ensemble, directory)
    return directory


def _copy_tree(source, destination):
    os.makedirs(destination, exist_ok=True)
    for name in os.listdir(source):
        with open(os.path.join(source, name), "rb") as handle:
            blob = handle.read()
        with open(os.path.join(destination, name), "wb") as handle:
            handle.write(blob)


def test_save_stamps_digests_for_every_artifact(saved_model):
    with open(os.path.join(saved_model, "manifest.json"),
              encoding="utf-8") as handle:
        manifest = json.load(handle)
    digests = manifest["digests"]
    npz_files = sorted(name for name in os.listdir(saved_model)
                       if name.endswith(".npz"))
    assert sorted(digests) == npz_files
    for name, digest in digests.items():
        assert digest == file_digest(os.path.join(saved_model, name))


def test_load_verifies_and_accepts_untampered_store(saved_model):
    model = load_ensemble(saved_model)
    assert hasattr(model, "predict_degraded")


def test_tampered_weights_raise_typed_integrity_error(saved_model,
                                                      tmp_path):
    tampered = str(tmp_path / "tampered")
    _copy_tree(saved_model, tampered)
    path = os.path.join(tampered, "cnn.npz")
    with open(path, "r+b") as handle:
        handle.seek(-1, os.SEEK_END)
        last = handle.read(1)
        handle.seek(-1, os.SEEK_END)
        handle.write(bytes([last[0] ^ 0xFF]))
    with pytest.raises(ModelIntegrityError, match="cnn.npz"):
        load_ensemble(tampered)
    # The typed error is still a SerializationError for broad handlers.
    assert issubclass(ModelIntegrityError, SerializationError)


def test_missing_artifact_raises(saved_model, tmp_path):
    gutted = str(tmp_path / "gutted")
    _copy_tree(saved_model, gutted)
    digests = artifact_digests(gutted)
    os.unlink(os.path.join(gutted, "rnn.npz"))
    with pytest.raises(ModelIntegrityError, match="rnn.npz"):
        verify_artifacts(gutted, digests)


def test_legacy_store_without_digests_still_loads(saved_model, tmp_path):
    legacy = str(tmp_path / "legacy")
    _copy_tree(saved_model, legacy)
    manifest_path = os.path.join(legacy, "manifest.json")
    with open(manifest_path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    manifest.pop("digests")
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    model = load_ensemble(legacy)  # pre-digest saves stay loadable
    assert hasattr(model, "predict_degraded")
