"""Drive scripts, the full collection drive, and per-timestep classification."""

import numpy as np
import pytest

from repro.core import (
    CnnConfig,
    DarNetEnsemble,
    DarNetSystem,
    DriveScript,
    PrivacyLevel,
    RnnConfig,
    run_collection_drive,
)
from repro.datasets import DrivingBehavior
from repro.exceptions import ConfigurationError
from repro.streaming import SessionConfig


def test_drive_script_standard_layout():
    script = DriveScript.standard(segment_seconds=15.0, gap_seconds=2.0)
    assert len(script.segments) == 6
    starts = [s for s, _, _ in script.segments]
    assert starts == sorted(starts)
    assert script.duration == pytest.approx(6 * 15.0 + 5 * 2.0)


def test_drive_script_repetitions():
    script = DriveScript.standard([DrivingBehavior.TALKING],
                                  segment_seconds=5.0, repetitions=3)
    assert len(script.segments) == 3
    assert all(behavior == DrivingBehavior.TALKING
               for _, _, behavior in script.segments)


def test_empty_script_rejected(rng):
    with pytest.raises(ConfigurationError):
        run_collection_drive(DriveScript([]), rng=rng)


@pytest.fixture(scope="module")
def short_drive():
    script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TEXTING],
        segment_seconds=6.0, gap_seconds=1.0)
    return run_collection_drive(script, rng=np.random.default_rng(21))


def test_drive_produces_labelled_data(short_drive):
    labels = set(short_drive.imu_labels.tolist())
    assert int(DrivingBehavior.TEXTING) in labels
    assert int(DrivingBehavior.NORMAL) in labels


def test_drive_frames_match_script(short_drive):
    frame_labels = {frame.label for frame in short_drive.frames}
    assert int(DrivingBehavior.TEXTING) in frame_labels


def test_drive_with_privacy_distorts_frames():
    script = DriveScript.standard([DrivingBehavior.NORMAL],
                                  segment_seconds=3.0)
    result = run_collection_drive(script, privacy=PrivacyLevel.HIGH,
                                  rng=np.random.default_rng(22))
    assert result.frames
    for frame in result.frames:
        assert frame.image.shape == (16, 16)
        assert frame.privacy_level == "high"


def test_darnet_system_classifies_session(short_drive, tiny_driving_dataset):
    train, _ = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble("cnn+rnn", cnn_config=CnnConfig(epochs=1,
                                                              width=0.5),
                              rnn_config=RnnConfig(hidden_units=8, epochs=1),
                              rng=np.random.default_rng(30))
    ensemble.fit(train)
    system = DarNetSystem(ensemble)
    verdicts = system.classify_session(short_drive)
    assert len(verdicts) == short_drive.imu.shape[0] - 20 + 1
    for verdict in verdicts[:5]:
        assert isinstance(verdict.predicted, DrivingBehavior)
        assert verdict.probabilities.shape == (6,)
        assert abs(float(verdict.probabilities.sum()) - 1.0) < 1e-5
    # Timestamps are ordered grid instants.
    times = [v.timestamp for v in verdicts]
    assert times == sorted(times)


def test_darnet_system_empty_session(tiny_driving_dataset):
    """A session shorter than one window yields no verdicts."""
    train, _ = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble("cnn", cnn_config=CnnConfig(epochs=1,
                                                          width=0.5),
                              rng=np.random.default_rng(31))
    ensemble.fit(train)
    script = DriveScript.standard([DrivingBehavior.NORMAL],
                                  segment_seconds=2.0)
    result = run_collection_drive(
        script, config=SessionConfig(), rng=np.random.default_rng(32))
    system = DarNetSystem(ensemble, window_steps=200)
    assert system.classify_session(result) == []
