"""MicroInceptionV3 architecture and the frame classifier."""

import numpy as np
import pytest

from repro.core import (
    CnnConfig,
    DriverFrameCNN,
    build_micro_inception,
    inception_a,
    inception_b,
    replace_classifier,
)
from repro.core.inception import (
    conv_bn_relu,
    inception_a_channels,
    inception_b_channels,
)
from repro.exceptions import ConfigurationError
from repro.nn import Dense, Sequential


def test_micro_inception_forward_shape(rng):
    net = build_micro_inception(6, width=0.5, rng=rng)
    out = net.forward(rng.normal(size=(2, 1, 64, 64)).astype(np.float32))
    assert out.shape == (2, 6)


def test_micro_inception_resolution_agnostic(rng):
    """Global average pooling makes the head size-independent."""
    net = build_micro_inception(4, width=0.5, rng=rng)
    for edge in (32, 48, 64):
        out = net.forward(rng.normal(size=(1, 1, edge, edge)).astype(np.float32))
        assert out.shape == (1, 4)


def test_micro_inception_width_scales_params(rng):
    small = build_micro_inception(6, width=0.5, rng=rng)
    large = build_micro_inception(6, width=1.0, rng=rng)
    assert large.num_parameters() > 2 * small.num_parameters()


def test_micro_inception_rejects_one_class(rng):
    with pytest.raises(ConfigurationError):
        build_micro_inception(1, rng=rng)


def test_inception_a_channel_arithmetic(rng):
    width = 1.0
    block = inception_a(24, width, rng, "a")
    out = block.forward(rng.normal(size=(1, 24, 8, 8)).astype(np.float32))
    assert out.shape[1] == inception_a_channels(width)


def test_inception_b_channel_arithmetic(rng):
    width = 1.0
    block = inception_b(48, width, rng, "b")
    out = block.forward(rng.normal(size=(1, 48, 4, 4)).astype(np.float32))
    assert out.shape[1] == inception_b_channels(width)


def test_inception_block_backward_runs(rng):
    block = inception_a(8, 0.5, rng, "a")
    x = rng.normal(size=(2, 8, 8, 8)).astype(np.float32)
    out = block.forward(x)
    dx = block.backward(np.ones_like(out))
    assert dx.shape == x.shape


def test_conv_bn_relu_unit(rng):
    unit = conv_bn_relu(3, 8, 3, rng=rng, name="u")
    out = unit.forward(rng.normal(size=(2, 3, 8, 8)).astype(np.float32))
    assert out.shape == (2, 8, 8, 8)
    assert out.min() >= 0.0  # ReLU output
    # Conv inside is bias-free (batch-norm supplies the shift).
    assert unit.layers[0].bias is None


def test_replace_classifier_swaps_head(rng):
    net = build_micro_inception(8, width=0.5, rng=rng)
    before = [p.value.copy() for p in net.parameters()]
    replace_classifier(net, 3, rng=rng)
    out = net.forward(rng.normal(size=(1, 1, 32, 32)).astype(np.float32))
    assert out.shape == (1, 3)
    after = list(net.parameters())
    # Every non-head parameter is untouched.
    for old, new in zip(before[:-2], after[:-2]):
        np.testing.assert_array_equal(old, new.value)


def test_replace_classifier_requires_dense(rng):
    with pytest.raises(ConfigurationError):
        replace_classifier(Sequential([]), 3, rng=rng)


def test_cnn_trains_and_predicts(rng, tiny_driving_dataset):
    train, evaluation = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    cnn = DriverFrameCNN(CnnConfig(epochs=2, width=0.5), rng=rng)
    cnn.fit(train.images, train.labels)
    probs = cnn.predict_proba(evaluation.images)
    assert probs.shape == (len(evaluation), 6)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)
    assert 0.0 <= cnn.evaluate(evaluation.images, evaluation.labels) <= 1.0


def test_cnn_pretrain_swaps_head_back(rng):
    cnn = DriverFrameCNN(
        CnnConfig(epochs=1, width=0.5, pretrain_epochs=1,
                  pretrain_samples_per_class=4, image_size=32),
        rng=rng)
    cnn.pretrain()
    assert cnn.pretrained
    head = cnn.network.layers[-1]
    assert isinstance(head, Dense)
    assert head.out_features == 6


def test_cnn_pretraining_improves_start(rng):
    """Pretrained features beat random init after one fine-tune epoch."""
    from repro.datasets import generate_driving_dataset
    ds = generate_driving_dataset(80, num_drivers=1,
                                  rng=np.random.default_rng(2))
    def one_epoch_loss(pretrain):
        cnn = DriverFrameCNN(
            CnnConfig(epochs=1, width=0.5, pretrain_epochs=2,
                      pretrain_samples_per_class=10),
            rng=np.random.default_rng(0))
        if pretrain:
            cnn.pretrain()
        cnn.fit(ds.images, ds.labels)
        return cnn.model.history.loss[-1]
    # Not a strict inequality in every seed, so allow generous slack:
    assert one_epoch_loss(True) < one_epoch_loss(False) + 0.5
