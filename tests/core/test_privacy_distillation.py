"""Distortion module and dCNN distillation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CnnConfig,
    DenoisingCNN,
    DistillationConfig,
    DistortionModule,
    DriverFrameCNN,
    PrivacyLevel,
    distort_restore,
    nearest_neighbor_resize,
    restore_size,
    train_privacy_suite,
)
from repro.core.privacy import PAPER_EDGE_DIVISORS
from repro.exceptions import ConfigurationError, ShapeError
from repro.streaming.records import FrameRecord


def test_levels_ordered_by_severity():
    edges = [level.target_edge(64) for level in PrivacyLevel]
    assert edges == sorted(edges, reverse=True)
    assert PrivacyLevel.LOW.target_edge(64) == 32
    assert PrivacyLevel.MEDIUM.target_edge(64) == 21
    assert PrivacyLevel.HIGH.target_edge(64) == 16


def test_paper_divisors_preserved():
    assert PAPER_EDGE_DIVISORS[PrivacyLevel.LOW] == 3
    assert PAPER_EDGE_DIVISORS[PrivacyLevel.HIGH] == 12
    # Paper: 300 -> 100 / 50 / 25.
    for level in PrivacyLevel:
        assert 300 // PAPER_EDGE_DIVISORS[level] in (100, 50, 25)


def test_data_reduction_factors():
    assert PrivacyLevel.LOW.data_reduction(64) == pytest.approx(4.0)
    assert PrivacyLevel.HIGH.data_reduction(64) == pytest.approx(16.0)


def test_model_names():
    assert PrivacyLevel.LOW.model_name == "dCNN-L"
    assert PrivacyLevel.HIGH.model_name == "dCNN-H"


def test_nearest_neighbor_downsample_exact():
    image = np.arange(16, dtype=np.float32).reshape(4, 4)
    small = nearest_neighbor_resize(image, 2)
    np.testing.assert_array_equal(small, [[0, 2], [8, 10]])


def test_nearest_neighbor_upsample_repeats():
    image = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
    big = nearest_neighbor_resize(image, 4)
    np.testing.assert_array_equal(big[0], [1, 1, 2, 2])
    np.testing.assert_array_equal(big[3], [3, 3, 4, 4])


def test_nearest_neighbor_validates():
    with pytest.raises(ConfigurationError):
        nearest_neighbor_resize(np.zeros((4, 4)), 0)
    with pytest.raises(ShapeError):
        nearest_neighbor_resize(np.zeros((2, 4, 6)), 2)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 32), st.integers(2, 32))
def test_resize_roundtrip_shape(in_edge, out_edge):
    image = np.random.default_rng(0).random((in_edge, in_edge)).astype(np.float32)
    resized = nearest_neighbor_resize(image, out_edge)
    assert resized.shape == (out_edge, out_edge)
    # Every output pixel is an input pixel (nearest neighbour property).
    assert set(np.unique(resized)) <= set(np.unique(image))


def test_distortion_module_passthrough(rng):
    module = DistortionModule(None)
    image = rng.random((8, 8)).astype(np.float32)
    np.testing.assert_array_equal(module.distort(image), image)


def test_distortion_module_batch(rng):
    module = DistortionModule(PrivacyLevel.HIGH)
    batch = rng.random((3, 1, 64, 64)).astype(np.float32)
    out = module.distort_batch(batch)
    assert out.shape == (3, 1, 16, 16)


def test_distort_frame_tags_level(rng):
    module = DistortionModule(PrivacyLevel.MEDIUM)
    frame = FrameRecord("cam", 1.0, rng.random((64, 64)).astype(np.float32),
                        label=3)
    distorted = module.distort_frame(frame)
    assert distorted.privacy_level == "medium"
    assert distorted.label == 3
    assert distorted.image.shape == (21, 21)
    assert distorted.nbytes < frame.nbytes


def test_restore_size_batch(rng):
    small = rng.random((2, 1, 16, 16)).astype(np.float32)
    restored = restore_size(small, 64)
    assert restored.shape == (2, 1, 64, 64)


def test_distort_restore_loses_information(rng):
    images = rng.random((2, 1, 64, 64)).astype(np.float32)
    out = distort_restore(images, PrivacyLevel.HIGH)
    assert out.shape == images.shape
    # Restored image has at most 16x16 distinct values per channel.
    assert len(np.unique(out[0, 0])) <= 16 * 16
    assert not np.allclose(out, images)


def test_distort_restore_none_level(rng):
    images = rng.random((1, 1, 32, 32)).astype(np.float32)
    np.testing.assert_array_equal(distort_restore(images, None), images)


# -- distillation -----------------------------------------------------------

@pytest.fixture(scope="module")
def tiny_teacher():
    from repro.datasets import generate_alternative_dataset
    rng = np.random.default_rng(50)
    ds = generate_alternative_dataset(3, num_drivers=2, rng=rng)
    teacher = DriverFrameCNN(CnnConfig(num_classes=18, epochs=2, width=0.5),
                             rng=rng)
    teacher.fit(ds.images, ds.labels)
    return teacher, ds


def test_student_initialized_from_teacher(tiny_teacher):
    teacher, _ = tiny_teacher
    student = DenoisingCNN(teacher, PrivacyLevel.LOW,
                           rng=np.random.default_rng(0))
    for t_param, s_param in zip(teacher.network.parameters(),
                                student.network.parameters()):
        np.testing.assert_array_equal(t_param.value, s_param.value)


def test_student_random_init_differs(tiny_teacher):
    teacher, _ = tiny_teacher
    config = DistillationConfig(init_from_teacher=False)
    student = DenoisingCNN(teacher, PrivacyLevel.LOW, config=config,
                           rng=np.random.default_rng(0))
    t_first = next(iter(teacher.network.parameters())).value
    s_first = next(iter(student.network.parameters())).value
    assert not np.allclose(t_first, s_first)


def test_distillation_reduces_l2_loss(tiny_teacher):
    teacher, ds = tiny_teacher
    config = DistillationConfig(epochs=4)
    student = DenoisingCNN(teacher, PrivacyLevel.LOW, config=config,
                           rng=np.random.default_rng(1))
    student.distill(ds.images)
    history = student.model.history
    assert history.loss[-1] < history.loss[0]


def test_distillation_is_unsupervised(tiny_teacher):
    """Distillation touches only images — labels never enter the loop."""
    teacher, ds = tiny_teacher
    student = DenoisingCNN(teacher, PrivacyLevel.MEDIUM,
                           config=DistillationConfig(epochs=1),
                           rng=np.random.default_rng(2))
    student.distill(ds.images)  # no labels argument exists
    preds = student.predict(ds.images)
    assert preds.shape == (len(ds.images),)


def test_distill_validates_input(tiny_teacher):
    teacher, _ = tiny_teacher
    student = DenoisingCNN(teacher, PrivacyLevel.LOW,
                           rng=np.random.default_rng(3))
    with pytest.raises(ConfigurationError):
        student.distill(np.zeros((4, 64, 64), dtype=np.float32))


def test_train_privacy_suite_covers_levels(tiny_teacher):
    teacher, ds = tiny_teacher
    suite = train_privacy_suite(teacher, ds.images[:20],
                                config=DistillationConfig(epochs=1),
                                rng=np.random.default_rng(4))
    assert set(suite) == set(PrivacyLevel)
    for level, student in suite.items():
        assert student.level is level
