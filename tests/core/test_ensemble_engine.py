"""DarNet ensemble, the SVM IMU pipeline, and the analytics engine."""

import numpy as np
import pytest

from repro.core import (
    AnalyticsEngine,
    CnnConfig,
    DarNetEnsemble,
    RnnConfig,
    SvmImuClassifier,
)
from repro.exceptions import ConfigurationError, NotFittedError


FAST_CNN = CnnConfig(epochs=2, width=0.5)
FAST_RNN = RnnConfig(hidden_units=16, epochs=3)


@pytest.fixture(scope="module")
def split_dataset():
    from repro.datasets import generate_driving_dataset
    ds = generate_driving_dataset(90, num_drivers=2,
                                  rng=np.random.default_rng(777))
    return ds.train_eval_split(rng=np.random.default_rng(0))


def test_svm_imu_classifier_pipeline(split_dataset):
    train, evaluation = split_dataset
    svm = SvmImuClassifier(rng=np.random.default_rng(1))
    svm.fit(train.imu, train.imu_labels)
    probs = svm.predict_proba(evaluation.imu)
    assert probs.shape == (len(evaluation), 3)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
    assert svm.evaluate(evaluation.imu, evaluation.imu_labels) > 0.5


def test_svm_imu_not_fitted(rng):
    with pytest.raises(NotFittedError):
        SvmImuClassifier(rng=rng).predict_proba(
            np.zeros((2, 20, 12), dtype=np.float32))


def test_ensemble_rejects_unknown_architecture(rng):
    with pytest.raises(ConfigurationError):
        DarNetEnsemble("cnn+tree", rng=rng)


def test_ensemble_not_fitted(rng, split_dataset):
    _, evaluation = split_dataset
    ensemble = DarNetEnsemble("cnn", cnn_config=FAST_CNN, rng=rng)
    with pytest.raises(NotFittedError):
        ensemble.predict(evaluation)


@pytest.fixture(scope="module")
def trained_ensembles(split_dataset):
    train, _ = split_dataset
    rng = np.random.default_rng(5)
    cnn_only = DarNetEnsemble("cnn", cnn_config=FAST_CNN, rng=rng)
    cnn_only.fit(train)
    with_rnn = DarNetEnsemble("cnn+rnn", cnn=cnn_only.cnn,
                              rnn_config=FAST_RNN, rng=rng)
    with_rnn.fit(train, train_cnn=False)
    with_svm = DarNetEnsemble("cnn+svm", cnn=cnn_only.cnn, rng=rng)
    with_svm.fit(train, train_cnn=False)
    return {"cnn": cnn_only, "cnn+rnn": with_rnn, "cnn+svm": with_svm}


def test_ensemble_evaluate_structure(trained_ensembles, split_dataset):
    _, evaluation = split_dataset
    for arch, ensemble in trained_ensembles.items():
        result = ensemble.evaluate(evaluation)
        assert result.architecture == arch
        assert 0.0 <= result.top1 <= 1.0
        assert result.confusion.shape == (6, 6)
        assert result.confusion.sum() == len(evaluation)
        assert result.probabilities.shape == (len(evaluation), 6)
        if arch == "cnn":
            assert result.imu_top1 is None
        else:
            assert result.imu_top1 is not None


def test_ensemble_probabilities_normalized(trained_ensembles, split_dataset):
    _, evaluation = split_dataset
    probs = trained_ensembles["cnn+rnn"].predict_proba(evaluation)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-6)


def test_cnn_shared_across_architectures(trained_ensembles):
    assert trained_ensembles["cnn+rnn"].cnn is trained_ensembles["cnn"].cnn


# -- analytics engine ----------------------------------------------------------

class _StaticModel:
    """A deterministic stand-in modality model."""

    def __init__(self, probs: np.ndarray) -> None:
        self.probs = probs

    def predict_proba(self, data):
        return np.tile(self.probs, (len(data), 1))

    def predict(self, data):
        return np.full(len(data), int(np.argmax(self.probs)))


def test_engine_single_stream_passthrough():
    engine = AnalyticsEngine()
    engine.register("frames", _StaticModel(np.array([0.1, 0.9])), 2)
    out = engine.predict_proba({"frames": np.zeros((3, 1))})
    np.testing.assert_allclose(out, [[0.1, 0.9]] * 3)


def test_engine_two_streams_with_calibration(rng):
    engine = AnalyticsEngine()
    engine.register("frames", _StaticModel(np.array([0.2, 0.8])), 2)
    engine.register("imu", _StaticModel(np.array([0.7, 0.3])), 2)
    data = {"frames": np.zeros((50, 1)), "imu": np.zeros((50, 1))}
    labels = rng.integers(0, 2, 50)
    engine.calibrate(data, labels)
    out = engine.predict_proba(data)
    assert out.shape == (50, 2)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)


def test_engine_rejects_duplicate_stream():
    engine = AnalyticsEngine()
    engine.register("a", _StaticModel(np.ones(2) / 2), 2)
    with pytest.raises(ConfigurationError):
        engine.register("a", _StaticModel(np.ones(2) / 2), 2)


def test_engine_limits_to_two_streams():
    engine = AnalyticsEngine()
    engine.register("a", _StaticModel(np.ones(2) / 2), 2)
    engine.register("b", _StaticModel(np.ones(2) / 2), 2)
    with pytest.raises(ConfigurationError):
        engine.register("c", _StaticModel(np.ones(2) / 2), 2)


def test_engine_unregister_allows_replacement():
    engine = AnalyticsEngine()
    engine.register("a", _StaticModel(np.ones(2) / 2), 2)
    engine.unregister("a")
    assert engine.streams == []
    engine.register("a2", _StaticModel(np.ones(2) / 2), 2)
    assert engine.streams == ["a2"]


def test_engine_requires_calibration_for_two_streams():
    engine = AnalyticsEngine()
    engine.register("a", _StaticModel(np.ones(2) / 2), 2)
    engine.register("b", _StaticModel(np.ones(2) / 2), 2)
    with pytest.raises(NotFittedError):
        engine.predict_proba({"a": np.zeros((1, 1)), "b": np.zeros((1, 1))})


def test_engine_missing_stream_data():
    engine = AnalyticsEngine()
    engine.register("a", _StaticModel(np.ones(2) / 2), 2)
    with pytest.raises(ConfigurationError):
        engine.predict_proba({"other": np.zeros((1, 1))})


def test_engine_no_streams():
    with pytest.raises(ConfigurationError):
        AnalyticsEngine().predict_proba({})
