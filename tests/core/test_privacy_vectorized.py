"""Vectorized distortion: byte-identical to the per-image loop it replaced."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.privacy import (
    _INDEX_CACHE,
    DistortionModule,
    PrivacyLevel,
    _resize_indices,
    nearest_neighbor_resize,
    restore_size,
)


def _loop_resize(images: np.ndarray, out_edge: int) -> np.ndarray:
    """The old per-image implementation, kept as the oracle."""
    return np.stack([nearest_neighbor_resize(image, out_edge)
                     for image in images])


@pytest.mark.parametrize("level", list(PrivacyLevel))
def test_distort_batch_matches_per_image_loop(rng, level):
    images = rng.random((7, 1, 64, 64)).astype(np.float32)
    module = DistortionModule(level)
    batched = module.distort_batch(images)
    looped = _loop_resize(images, level.target_edge(64))
    np.testing.assert_array_equal(batched, looped)  # byte-identical
    assert batched.dtype == images.dtype


@pytest.mark.parametrize("level", list(PrivacyLevel))
def test_restore_size_matches_per_image_loop(rng, level):
    small_edge = level.target_edge(64)
    small = rng.random((5, 1, small_edge, small_edge)).astype(np.float32)
    batched = restore_size(small, 64)
    looped = _loop_resize(small, 64)
    np.testing.assert_array_equal(batched, looped)
    assert batched.shape == (5, 1, 64, 64)


def test_index_map_is_cached_per_edge_pair():
    _INDEX_CACHE.clear()
    first = _resize_indices(64, 21)
    assert _resize_indices(64, 21) is first  # same array object, no rebuild
    assert (64, 21) in _INDEX_CACHE
    _resize_indices(64, 16)
    assert set(_INDEX_CACHE) >= {(64, 21), (64, 16)}


def test_single_image_path_still_works(rng):
    image = rng.random((1, 64, 64)).astype(np.float32)
    small = nearest_neighbor_resize(image, 16)
    assert small.shape == (1, 16, 16)
    # 2-d input round-trips through the squeeze path.
    flat = nearest_neighbor_resize(image[0], 16)
    np.testing.assert_array_equal(small[0], flat)
