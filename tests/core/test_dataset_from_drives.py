"""Building training datasets from streamed collection drives."""

import numpy as np
import pytest

from repro.core import DriveScript, dataset_from_drives, run_collection_drive
from repro.datasets import DrivingBehavior
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def two_drives():
    script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TALKING],
        segment_seconds=7.0, gap_seconds=1.0)
    return [
        run_collection_drive(script, driver_id=d,
                             rng=np.random.default_rng(40 + d))
        for d in range(2)
    ]


def test_dataset_pairs_windows_with_frames(two_drives):
    dataset = dataset_from_drives(two_drives)
    assert len(dataset) > 10
    assert dataset.images.shape[1:] == (1, 64, 64)
    assert dataset.imu.shape[1:] == (20, 12)
    assert set(np.unique(dataset.drivers)) == {0, 1}


def test_dataset_labels_come_from_script(two_drives):
    dataset = dataset_from_drives(two_drives)
    labels = set(np.unique(dataset.labels))
    assert labels <= {int(DrivingBehavior.NORMAL),
                      int(DrivingBehavior.TALKING)}
    assert int(DrivingBehavior.TALKING) in labels


def test_dataset_stride_controls_density(two_drives):
    dense = dataset_from_drives(two_drives, stride=1)
    sparse = dataset_from_drives(two_drives, stride=4)
    assert len(dense) > 2 * len(sparse)


def test_dataset_from_no_drives():
    with pytest.raises(ConfigurationError):
        dataset_from_drives([])


def test_dataset_window_frames_are_near_window_end(two_drives):
    """The paired frame timestamp must be close to the window end time."""
    result = two_drives[0]
    dataset = dataset_from_drives([result], stride=2)
    window_times = result.grid[19::2][:np.sum(dataset.drivers == 0)]
    frame_times = np.array([f.timestamp for f in result.frames])
    for t in window_times[:5]:
        gap = np.min(np.abs(frame_times - t))
        assert gap < 0.5  # frames arrive at 5 fps
