"""Privacy adversary study and image augmentation."""

import numpy as np
import pytest

from repro.core import (
    CnnConfig,
    DriverIdentificationAdversary,
    PrivacyLevel,
    run_privacy_adversary_study,
)
from repro.core.adversary import AdversaryResult
from repro.datasets import AugmentConfig, augment_batch, augmented_copies
from repro.exceptions import ConfigurationError, ShapeError


FAST = CnnConfig(epochs=2, width=0.5)


def test_adversary_requires_two_drivers():
    with pytest.raises(ConfigurationError):
        DriverIdentificationAdversary(1, None)


def test_adversary_result_privacy_margin():
    private = AdversaryResult(level=PrivacyLevel.HIGH, accuracy=0.5,
                              chance=0.5)
    assert private.privacy_margin == pytest.approx(1.0)
    leaky = AdversaryResult(level=None, accuracy=1.0, chance=0.5)
    assert leaky.privacy_margin == pytest.approx(0.0)
    below_chance = AdversaryResult(level=PrivacyLevel.HIGH, accuracy=0.3,
                                   chance=0.5)
    assert below_chance.privacy_margin == 1.0  # clipped


def test_adversary_identifies_drivers_on_clean_frames(
        tiny_alternative_dataset):
    """On clean frames, driver identity is learnable above chance."""
    ds = tiny_alternative_dataset
    adversary = DriverIdentificationAdversary(
        2, None, config=CnnConfig(epochs=4, width=0.5),
        rng=np.random.default_rng(0))
    adversary.fit(ds.images, ds.drivers)
    result = adversary.evaluate(ds.images, ds.drivers)
    # At toy scale the adversary must at least match the majority-class
    # floor; the strong separation check runs at bench scale.
    assert result.accuracy >= result.chance - 1e-9


def test_adversary_study_covers_levels(tiny_alternative_dataset):
    ds = tiny_alternative_dataset
    results = run_privacy_adversary_study(
        ds.images, ds.drivers, config=FAST,
        levels=(None, PrivacyLevel.HIGH), rng=np.random.default_rng(1))
    assert set(results) == {"clean", "high"}
    for result in results.values():
        assert 0.0 <= result.accuracy <= 1.0
        assert 0.0 < result.chance < 1.0


def test_adversary_observes_distorted_frames(tiny_alternative_dataset):
    ds = tiny_alternative_dataset
    adversary = DriverIdentificationAdversary(
        2, PrivacyLevel.HIGH, config=FAST, rng=np.random.default_rng(2))
    observed = adversary._observed(ds.images[:2])
    # Restored frames keep NCHW shape but carry only 16x16 information.
    assert observed.shape == ds.images[:2].shape
    assert len(np.unique(observed[0, 0])) <= 16 * 16


# -- augmentation ------------------------------------------------------------

def test_augment_batch_preserves_shape_and_range(rng):
    images = rng.random((5, 1, 16, 16)).astype(np.float32)
    out = augment_batch(images, rng=rng)
    assert out.shape == images.shape
    assert out.min() >= 0.0 and out.max() <= 1.0
    assert not np.allclose(out, images)


def test_augment_batch_rejects_non_nchw(rng):
    with pytest.raises(ShapeError):
        augment_batch(rng.random((5, 16, 16)), rng=rng)


def test_augment_identity_config(rng):
    """Zero-strength augmentation is a no-op."""
    images = rng.random((3, 1, 8, 8)).astype(np.float32)
    config = AugmentConfig(brightness=0.0, contrast=0.0, max_shift=0,
                           noise_std=0.0)
    np.testing.assert_allclose(augment_batch(images, config=config, rng=rng),
                               images, atol=1e-6)


def test_augment_config_validation():
    with pytest.raises(ConfigurationError):
        AugmentConfig(max_shift=-1)
    with pytest.raises(ConfigurationError):
        AugmentConfig(noise_std=-0.1)


def test_augmented_copies_expands_dataset(rng):
    images = rng.random((4, 1, 8, 8)).astype(np.float32)
    labels = np.array([0, 1, 2, 3])
    out_images, out_labels = augmented_copies(images, labels, 2, rng=rng)
    assert out_images.shape[0] == 12
    np.testing.assert_array_equal(np.sort(np.unique(out_labels)),
                                  [0, 1, 2, 3])
    # Label multiset preserved: each label appears 3x.
    assert all(np.sum(out_labels == v) == 3 for v in range(4))


def test_augmented_copies_zero(rng):
    images = rng.random((3, 1, 8, 8)).astype(np.float32)
    labels = np.arange(3)
    out_images, out_labels = augmented_copies(images, labels, 0, rng=rng)
    assert out_images.shape[0] == 3


def test_augmented_copies_validates(rng):
    with pytest.raises(ConfigurationError):
        augmented_copies(rng.random((2, 1, 4, 4)), np.arange(2), -1, rng=rng)


def test_shift_replicates_edges(rng):
    from repro.datasets.augment import _shift
    image = np.arange(16, dtype=np.float32).reshape(1, 4, 4)
    shifted = _shift(image.copy(), 1, 0)
    # Top row replicated after shifting down by one.
    np.testing.assert_array_equal(shifted[0, 0], shifted[0, 1])
