"""Degraded-mode verdicts: BN marginalization over a missing modality."""

import json

import numpy as np
import pytest

from repro.core import (
    BayesianNetworkCombiner,
    CnnConfig,
    DarNetEnsemble,
    DegradedPrediction,
    RnnConfig,
    load_ensemble,
    save_ensemble,
)
from repro.exceptions import ConfigurationError, NotFittedError

FAST_CNN = CnnConfig(epochs=1, width=0.5)
FAST_RNN = RnnConfig(hidden_units=8, epochs=1)


@pytest.fixture(scope="module")
def fitted_combiner():
    rng = np.random.default_rng(0)
    combiner = BayesianNetworkCombiner(6, 3)
    cnn_verdicts = rng.integers(0, 6, size=400)
    imu_verdicts = rng.integers(0, 3, size=400)
    labels = rng.integers(0, 6, size=400)
    return combiner.fit(cnn_verdicts, imu_verdicts, labels)


@pytest.fixture(scope="module")
def tiny_trained_ensemble(tiny_driving_dataset):
    train, _ = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(0))
    ensemble = DarNetEnsemble("cnn+rnn", cnn_config=FAST_CNN,
                              rnn_config=FAST_RNN,
                              rng=np.random.default_rng(7))
    ensemble.fit(train)
    return ensemble, train


# -- combiner marginalization ------------------------------------------------

def test_parent_priors_are_distributions(fitted_combiner):
    assert fitted_combiner.cnn_prior().sum() == pytest.approx(1.0)
    assert fitted_combiner.imu_prior().sum() == pytest.approx(1.0)
    assert np.all(fitted_combiner.cnn_prior() > 0)
    assert np.all(fitted_combiner.imu_prior() > 0)


def test_unfitted_combiner_priors_are_uniform():
    combiner = BayesianNetworkCombiner(6, 3)
    np.testing.assert_allclose(combiner.cnn_prior(), np.full(6, 1 / 6))
    np.testing.assert_allclose(combiner.imu_prior(), np.full(3, 1 / 3))


def test_cnn_only_posterior_is_normalized(fitted_combiner):
    rng = np.random.default_rng(1)
    cnn_probs = rng.dirichlet(np.ones(6), size=10)
    posterior = fitted_combiner.predict_proba_cnn_only(cnn_probs)
    assert posterior.shape == (10, 6)
    assert np.all(np.isfinite(posterior))
    np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-9)


def test_imu_only_posterior_is_normalized(fitted_combiner):
    rng = np.random.default_rng(2)
    imu_probs = rng.dirichlet(np.ones(3), size=10)
    posterior = fitted_combiner.predict_proba_imu_only(imu_probs)
    assert posterior.shape == (10, 6)
    np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-9)


def test_marginalization_consistent_with_prior_as_parent(fitted_combiner):
    """CNN-only inference == full inference fed the IMU training prior."""
    rng = np.random.default_rng(3)
    cnn_probs = rng.dirichlet(np.ones(6), size=8)
    prior = np.tile(fitted_combiner.imu_prior(), (8, 1))
    np.testing.assert_allclose(
        fitted_combiner.predict_proba_cnn_only(cnn_probs),
        fitted_combiner.predict_proba(cnn_probs, prior), atol=1e-12)


def test_both_streams_missing_is_an_error(fitted_combiner):
    with pytest.raises(ConfigurationError):
        fitted_combiner.predict_proba(None, None)


def test_predict_accepts_missing_parent(fitted_combiner):
    rng = np.random.default_rng(4)
    verdicts = fitted_combiner.predict(rng.dirichlet(np.ones(6), size=5), None)
    assert verdicts.shape == (5,)
    assert np.all((verdicts >= 0) & (verdicts < 6))


# -- ensemble degraded path --------------------------------------------------

def test_predict_degraded_full_fidelity(tiny_trained_ensemble):
    ensemble, train = tiny_trained_ensemble
    result = ensemble.predict_degraded(images=train.images[:6],
                                       imu=train.imu[:6])
    assert isinstance(result, DegradedPrediction)
    assert not result.degraded
    assert result.missing == ()
    np.testing.assert_allclose(result.probabilities.sum(axis=1), 1.0,
                               atol=1e-9)
    np.testing.assert_array_equal(result.predictions,
                                  result.probabilities.argmax(axis=1))
    np.testing.assert_allclose(result.confidence,
                               result.probabilities.max(axis=1))


def test_predict_degraded_without_imu(tiny_trained_ensemble):
    ensemble, train = tiny_trained_ensemble
    result = ensemble.predict_degraded(images=train.images[:6])
    assert result.degraded
    assert result.missing == ("imu",)
    assert result.probabilities.shape == (6, 6)
    np.testing.assert_allclose(result.probabilities.sum(axis=1), 1.0,
                               atol=1e-9)


def test_predict_degraded_without_frames(tiny_trained_ensemble):
    ensemble, train = tiny_trained_ensemble
    result = ensemble.predict_degraded(imu=train.imu[:6])
    assert result.degraded
    assert result.missing == ("frames",)
    assert result.probabilities.shape == (6, 6)
    np.testing.assert_allclose(result.probabilities.sum(axis=1), 1.0,
                               atol=1e-9)


def test_predict_degraded_rejects_nothing_at_all(tiny_trained_ensemble):
    ensemble, _ = tiny_trained_ensemble
    with pytest.raises(ConfigurationError):
        ensemble.predict_degraded()


def test_predict_degraded_before_fit(rng):
    ensemble = DarNetEnsemble("cnn+rnn", cnn_config=FAST_CNN,
                              rnn_config=FAST_RNN, rng=rng)
    with pytest.raises(NotFittedError):
        ensemble.predict_degraded(images=np.zeros((1, 1, 8, 8),
                                                  dtype=np.float32))


def test_cnn_only_architecture_cannot_drop_frames(tiny_driving_dataset, rng):
    train, _ = tiny_driving_dataset.train_eval_split(
        rng=np.random.default_rng(1))
    ensemble = DarNetEnsemble("cnn", cnn_config=FAST_CNN, rng=rng)
    ensemble.fit(train)
    with pytest.raises(ConfigurationError):
        ensemble.predict_degraded(imu=train.imu[:2])
    # But frames alone are this architecture's full-fidelity path.
    result = ensemble.predict_degraded(images=train.images[:2])
    assert not result.degraded


# -- input-shape validation ---------------------------------------------------

def test_predict_degraded_rejects_non_nchw_images(tiny_trained_ensemble):
    ensemble, train = tiny_trained_ensemble
    with pytest.raises(ConfigurationError, match="4-d NCHW"):
        ensemble.predict_degraded(images=train.images[0])  # missing batch dim


def test_predict_degraded_rejects_wrong_image_geometry(tiny_trained_ensemble):
    ensemble, _ = tiny_trained_ensemble
    bad = np.zeros((2, 1, 8, 8), dtype=np.float32)
    with pytest.raises(ConfigurationError, match="for this CNN"):
        ensemble.predict_degraded(images=bad)


def test_predict_degraded_rejects_flat_windows(tiny_trained_ensemble):
    ensemble, train = tiny_trained_ensemble
    with pytest.raises(ConfigurationError, match="3-d"):
        ensemble.predict_degraded(imu=train.imu[0])  # missing batch dim


def test_predict_degraded_rejects_wrong_window_geometry(
        tiny_trained_ensemble):
    ensemble, _ = tiny_trained_ensemble
    bad = np.zeros((2, 5, 12), dtype=np.float32)
    with pytest.raises(ConfigurationError, match="for this RNN"):
        ensemble.predict_degraded(imu=bad)


def test_predict_proba_validates_dataset_shapes(tiny_trained_ensemble):
    import dataclasses

    ensemble, train = tiny_trained_ensemble
    n = train.labels.shape[0]
    squashed = dataclasses.replace(
        train, images=np.zeros((n, 1, 8, 8), dtype=np.float32))
    with pytest.raises(ConfigurationError, match="for this CNN"):
        ensemble.predict_proba(squashed)
    truncated = dataclasses.replace(
        train, imu=train.imu[:, :5, :])
    with pytest.raises(ConfigurationError, match="for this RNN"):
        ensemble.predict(truncated)


# -- persistence of degraded-mode state --------------------------------------

def test_model_store_round_trips_parent_priors(tiny_trained_ensemble,
                                               tmp_path):
    ensemble, train = tiny_trained_ensemble
    save_ensemble(ensemble, str(tmp_path / "model"))
    reloaded = load_ensemble(str(tmp_path / "model"),
                             rng=np.random.default_rng(9))
    np.testing.assert_allclose(reloaded.combiner.cnn_prior(),
                               ensemble.combiner.cnn_prior())
    np.testing.assert_allclose(reloaded.combiner.imu_prior(),
                               ensemble.combiner.imu_prior())
    original = ensemble.predict_degraded(images=train.images[:4])
    restored = reloaded.predict_degraded(images=train.images[:4])
    np.testing.assert_allclose(restored.probabilities,
                               original.probabilities, atol=1e-9)


def test_load_without_saved_priors_falls_back_to_uniform(
        tiny_trained_ensemble, tmp_path):
    ensemble, _ = tiny_trained_ensemble
    directory = tmp_path / "legacy"
    save_ensemble(ensemble, str(directory))
    # Rewrite combiner.npz the way a pre-degraded-mode save looked.  A
    # store that old also predates artifact digests, so drop them from
    # the manifest too — otherwise the tamper gate (correctly) rejects
    # the rewritten file.
    combiner_path = directory / "combiner.npz"
    with np.load(combiner_path) as data:
        np.savez(combiner_path, cpt=data["cpt"], laplace=data["laplace"])
    manifest_path = directory / "manifest.json"
    manifest = json.loads(manifest_path.read_text())
    manifest.pop("digests", None)
    manifest_path.write_text(json.dumps(manifest))
    reloaded = load_ensemble(str(directory), rng=np.random.default_rng(9))
    np.testing.assert_allclose(reloaded.combiner.cnn_prior(),
                               np.full(6, 1 / 6))
    np.testing.assert_allclose(reloaded.combiner.imu_prior(),
                               np.full(3, 1 / 3))
