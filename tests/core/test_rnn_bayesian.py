"""IMU RNN and the Bayesian-network combiner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AveragingCombiner,
    BayesianNetworkCombiner,
    ImuSequenceRNN,
    MaxConfidenceCombiner,
    ProductCombiner,
    RnnConfig,
    build_imu_rnn,
    expand_imu_probs,
)
from repro.datasets import DrivingBehavior, generate_imu_windows
from repro.exceptions import NotFittedError, ShapeError


def _imu_set(n_per=25, seed=0):
    rng = np.random.default_rng(seed)
    windows = []
    labels = []
    for cls, behavior in [(0, DrivingBehavior.NORMAL),
                          (1, DrivingBehavior.TALKING),
                          (2, DrivingBehavior.TEXTING)]:
        windows.append(generate_imu_windows(behavior, n_per, rng=rng))
        labels.append(np.full(n_per, cls))
    x = np.concatenate(windows)
    y = np.concatenate(labels)
    order = rng.permutation(len(y))
    return x[order], y[order]


def test_build_imu_rnn_structure(rng):
    config = RnnConfig(hidden_units=16, num_layers=2)
    net = build_imu_rnn(config, rng=rng)
    out = net.forward(rng.normal(size=(3, 20, 12)).astype(np.float32))
    assert out.shape == (3, 3)


def test_rnn_learns_imu_classes():
    x, y = _imu_set()
    rnn = ImuSequenceRNN(RnnConfig(hidden_units=16, epochs=8),
                         rng=np.random.default_rng(1))
    rnn.fit(x, y)
    assert rnn.evaluate(x, y) > 0.7


def test_rnn_standardization_applied_at_inference():
    x, y = _imu_set(n_per=10)
    rnn = ImuSequenceRNN(RnnConfig(hidden_units=8, epochs=2),
                         rng=np.random.default_rng(1))
    rnn.fit(x, y)
    probs = rnn.predict_proba(x)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)


def test_rnn_not_fitted(rng):
    rnn = ImuSequenceRNN(rng=rng)
    with pytest.raises(NotFittedError):
        rnn.predict(np.zeros((2, 20, 12), dtype=np.float32))


# -- BN combiner -----------------------------------------------------------

def test_cpt_rows_are_distributions(rng):
    combiner = BayesianNetworkCombiner()
    n = 200
    combiner.fit(rng.integers(0, 6, n), rng.integers(0, 3, n),
                 rng.integers(0, 6, n))
    sums = combiner.cpt.sum(axis=2)
    np.testing.assert_allclose(sums, 1.0, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 100_000))
def test_combiner_outputs_distributions(seed):
    rng = np.random.default_rng(seed)
    combiner = BayesianNetworkCombiner()
    combiner.fit(rng.integers(0, 6, 100), rng.integers(0, 3, 100),
                 rng.integers(0, 6, 100))
    cnn_probs = rng.dirichlet(np.ones(6), size=10)
    imu_probs = rng.dirichlet(np.ones(3), size=10)
    out = combiner.predict_proba(cnn_probs, imu_probs)
    assert out.shape == (10, 6)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)
    assert np.all(out >= 0)


def test_combiner_learns_correction(rng):
    """If the CNN always confuses texting->normal but the IMU flags
    texting, the BN must recover the texting label."""
    n = 600
    true = rng.integers(0, 6, n)
    cnn_verdicts = true.copy()
    texting = true == 2
    cnn_verdicts[texting] = 0  # CNN systematically wrong on texting
    imu_verdicts = np.zeros(n, dtype=np.int64)
    imu_verdicts[true == 1] = 1
    imu_verdicts[texting] = 2
    combiner = BayesianNetworkCombiner(laplace=0.5)
    combiner.fit(cnn_verdicts, imu_verdicts, true)
    # Evidence: CNN says normal (one-hot), IMU says texting.
    cnn_probs = np.zeros((1, 6))
    cnn_probs[0, 0] = 1.0
    imu_probs = np.zeros((1, 3))
    imu_probs[0, 2] = 1.0
    assert combiner.predict(cnn_probs, imu_probs)[0] == 2


def test_combiner_validates_shapes(rng):
    combiner = BayesianNetworkCombiner()
    combiner.fit(rng.integers(0, 6, 50), rng.integers(0, 3, 50),
                 rng.integers(0, 6, 50))
    with pytest.raises(ShapeError):
        combiner.predict_proba(np.ones((2, 5)) / 5, np.ones((2, 3)) / 3)
    with pytest.raises(ShapeError):
        combiner.predict_proba(np.ones((2, 6)) / 6, np.ones((3, 3)) / 3)


def test_combiner_not_fitted():
    with pytest.raises(NotFittedError):
        BayesianNetworkCombiner().predict_proba(np.ones((1, 6)) / 6,
                                                np.ones((1, 3)) / 3)


def test_combiner_fit_validates_lengths(rng):
    with pytest.raises(ShapeError):
        BayesianNetworkCombiner().fit(np.zeros(3, dtype=int),
                                      np.zeros(4, dtype=int),
                                      np.zeros(3, dtype=int))


# -- expansion + baseline combiners -----------------------------------------

def test_expand_imu_probs_preserves_mass(rng):
    imu_probs = rng.dirichlet(np.ones(3), size=5)
    expanded = expand_imu_probs(imu_probs)
    assert expanded.shape == (5, 6)
    np.testing.assert_allclose(expanded.sum(axis=1), 1.0, atol=1e-9)
    # Talking mass goes entirely to behaviour class 1.
    np.testing.assert_allclose(expanded[:, 1], imu_probs[:, 1])
    np.testing.assert_allclose(expanded[:, 2], imu_probs[:, 2])


@pytest.mark.parametrize("combiner_cls", [AveragingCombiner, ProductCombiner,
                                          MaxConfidenceCombiner])
def test_baseline_combiners_output_shapes(rng, combiner_cls):
    combiner = combiner_cls()
    cnn_probs = rng.dirichlet(np.ones(6), size=7)
    imu_probs = rng.dirichlet(np.ones(3), size=7)
    out = combiner.predict_proba(cnn_probs, imu_probs)
    assert out.shape == (7, 6)
    preds = combiner.predict(cnn_probs, imu_probs)
    assert preds.shape == (7,)


def test_product_combiner_normalized(rng):
    combiner = ProductCombiner()
    out = combiner.predict_proba(rng.dirichlet(np.ones(6), size=4),
                                 rng.dirichlet(np.ones(3), size=4))
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)


def test_max_confidence_prefers_confident_imu():
    combiner = MaxConfidenceCombiner()
    cnn_probs = np.full((1, 6), 1 / 6)          # maximally unsure
    imu_probs = np.array([[0.0, 1.0, 0.0]])     # certain: talking
    assert combiner.predict(cnn_probs, imu_probs)[0] == 1
