"""Property-based invariants of the core components (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BayesianNetworkCombiner,
    PrivacyLevel,
    expand_imu_probs,
    nearest_neighbor_resize,
)
from repro.datasets.classes import DrivingBehavior, to_imu_class
from repro.nn.layers.activations import softmax


def _dirichlet(rng, classes, n):
    return rng.dirichlet(np.ones(classes), size=n)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_bn_combiner_one_hot_parents_reads_cpt(seed):
    """With certain (one-hot) parent verdicts the combiner output equals
    the corresponding (normalized) CPT row — the BN semantics."""
    rng = np.random.default_rng(seed)
    combiner = BayesianNetworkCombiner(laplace=1.0)
    combiner.fit(rng.integers(0, 6, 300), rng.integers(0, 3, 300),
                 rng.integers(0, 6, 300))
    i = int(rng.integers(0, 6))
    j = int(rng.integers(0, 3))
    cnn_probs = np.zeros((1, 6))
    cnn_probs[0, i] = 1.0
    imu_probs = np.zeros((1, 3))
    imu_probs[0, j] = 1.0
    out = combiner.predict_proba(cnn_probs, imu_probs)[0]
    expected = combiner.cpt[i, j]
    np.testing.assert_allclose(out, expected / expected.sum(), atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_bn_combiner_is_linear_in_parents(seed):
    """Mixing parent distributions mixes outputs before normalization.

    P(c | alpha p1 + (1-alpha) p2, q) is proportional to the same mix of
    the unnormalized outputs — einsum linearity, checked numerically.
    """
    rng = np.random.default_rng(seed)
    combiner = BayesianNetworkCombiner()
    combiner.fit(rng.integers(0, 6, 200), rng.integers(0, 3, 200),
                 rng.integers(0, 6, 200))
    p1, p2 = _dirichlet(rng, 6, 2)
    q = _dirichlet(rng, 3, 1)
    alpha = float(rng.uniform(0, 1))
    mixed = alpha * p1 + (1 - alpha) * p2
    raw = np.einsum("i,j,ijc->c", mixed, q[0], combiner.cpt)
    raw1 = np.einsum("i,j,ijc->c", p1, q[0], combiner.cpt)
    raw2 = np.einsum("i,j,ijc->c", p2, q[0], combiner.cpt)
    np.testing.assert_allclose(raw, alpha * raw1 + (1 - alpha) * raw2,
                               atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_expand_imu_probs_respects_mapping(seed):
    """Expanded mass lands only on behaviours mapping to each IMU class."""
    rng = np.random.default_rng(seed)
    imu_probs = _dirichlet(rng, 3, 4)
    expanded = expand_imu_probs(imu_probs)
    for behavior in DrivingBehavior:
        imu_class = int(to_imu_class(behavior))
        column = expanded[:, int(behavior)]
        # Every entry is bounded by its source IMU class mass.
        assert np.all(column <= imu_probs[:, imu_class] + 1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 64), st.integers(2, 64))
def test_resize_idempotent_on_blocky_images(in_edge, out_edge):
    """Downsample-then-downsample-again to the same size is idempotent."""
    rng = np.random.default_rng(in_edge * 1000 + out_edge)
    image = rng.random((in_edge, in_edge)).astype(np.float32)
    once = nearest_neighbor_resize(image, out_edge)
    twice = nearest_neighbor_resize(once, out_edge)
    np.testing.assert_array_equal(once, twice)


@settings(max_examples=20, deadline=None)
@given(st.integers(16, 128))
def test_privacy_levels_monotone_at_any_resolution(full_edge):
    """L/M/H edges and data reductions stay strictly ordered."""
    edges = [level.target_edge(full_edge) for level in PrivacyLevel]
    assert edges[0] > edges[1] > edges[2] >= 2
    reductions = [level.data_reduction(full_edge) for level in PrivacyLevel]
    assert reductions[0] < reductions[1] < reductions[2]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.1, 5.0))
def test_softmax_temperature_preserves_argmax(seed, temperature):
    """Scaling logits by a positive temperature never changes the argmax
    (the property SVM probability calibration relies on)."""
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(5, 4))
    base = softmax(logits, axis=1).argmax(axis=1)
    scaled = softmax(logits / temperature, axis=1).argmax(axis=1)
    np.testing.assert_array_equal(base, scaled)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_imu_window_determinism(seed):
    """Same seed -> identical windows; different seed -> different."""
    from repro.datasets import generate_imu_windows
    a = generate_imu_windows(DrivingBehavior.TALKING, 2,
                             rng=np.random.default_rng(seed))
    b = generate_imu_windows(DrivingBehavior.TALKING, 2,
                             rng=np.random.default_rng(seed))
    c = generate_imu_windows(DrivingBehavior.TALKING, 2,
                             rng=np.random.default_rng(seed + 1))
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 40), st.integers(1, 6))
def test_scene_render_any_driver_and_class(driver_seed, behavior_id):
    """The renderer never leaves [0, 1] for any appearance or class."""
    from repro.datasets import DriverAppearance, SceneRenderer
    rng = np.random.default_rng(driver_seed)
    renderer = SceneRenderer(DriverAppearance.sample(driver_seed, rng),
                             size=32)
    frame = renderer.render(DrivingBehavior(behavior_id - 1), rng=rng)
    assert frame.min() >= 0.0 and frame.max() <= 1.0
    assert frame.std() > 0.01  # never a blank canvas
