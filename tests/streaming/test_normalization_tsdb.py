"""Controller-side normalization and the time-series database."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError, StreamingError
from repro.streaming import (
    SlidingMovingAverage,
    TimeSeriesDatabase,
    align_streams,
    interpolate_to_grid,
    make_grid,
)


# -- interpolation ------------------------------------------------------------

def test_interpolation_exact_on_grid_points():
    timestamps = np.array([0.0, 1.0, 2.0])
    values = np.array([10.0, 20.0, 30.0])
    out = interpolate_to_grid(timestamps, values, timestamps)
    np.testing.assert_allclose(out, values)


def test_interpolation_linear_midpoints():
    out = interpolate_to_grid(np.array([0.0, 1.0]), np.array([0.0, 10.0]),
                              np.array([0.5]))
    np.testing.assert_allclose(out, [5.0])


def test_interpolation_multidim():
    timestamps = np.array([0.0, 2.0])
    values = np.array([[0.0, 100.0], [2.0, 300.0]])
    out = interpolate_to_grid(timestamps, values, np.array([1.0]))
    np.testing.assert_allclose(out, [[1.0, 200.0]])


def test_interpolation_sorts_unordered_input():
    timestamps = np.array([2.0, 0.0, 1.0])
    values = np.array([20.0, 0.0, 10.0])
    out = interpolate_to_grid(timestamps, values, np.array([0.5, 1.5]))
    np.testing.assert_allclose(out, [5.0, 15.0])


def test_interpolation_validates(rng):
    with pytest.raises(ShapeError):
        interpolate_to_grid(np.array([]), np.array([]), np.array([0.0]))
    with pytest.raises(ShapeError):
        interpolate_to_grid(np.array([0.0]), np.array([1.0, 2.0]),
                            np.array([0.0]))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(0, 100), min_size=2, max_size=20, unique=True))
def test_interpolation_recovers_linear_signal(times):
    """Interpolating a linear function is exact inside the support."""
    times = np.sort(np.array(times))
    values = 3.0 * times + 1.0
    grid = np.linspace(times[0], times[-1], 7)
    out = interpolate_to_grid(times, values, grid)
    np.testing.assert_allclose(out, 3.0 * grid + 1.0, rtol=1e-9, atol=1e-9)


def test_make_grid():
    grid = make_grid(1.0, 2.0, 0.25)
    np.testing.assert_allclose(grid, [1.0, 1.25, 1.5, 1.75, 2.0])


def test_make_grid_validates():
    with pytest.raises(ConfigurationError):
        make_grid(0.0, 1.0, 0.0)
    with pytest.raises(ConfigurationError):
        make_grid(2.0, 1.0, 0.5)


# -- smoothing --------------------------------------------------------------

def test_moving_average_constant_signal():
    sma = SlidingMovingAverage(4)
    for _ in range(10):
        out = sma.update(5.0)
    np.testing.assert_allclose(out, [5.0])


def test_moving_average_window_math():
    sma = SlidingMovingAverage(3)
    outputs = [float(sma.update(v)[0]) for v in [3.0, 6.0, 9.0, 12.0]]
    assert outputs == [3.0, 4.5, 6.0, 9.0]


def test_moving_average_suppresses_spike():
    sma = SlidingMovingAverage(5)
    signal = [1.0, 1.0, 1.0, 100.0, 1.0, 1.0]
    smoothed = sma.smooth_series(np.array(signal))
    assert smoothed.max() < 30.0


def test_moving_average_vector_samples():
    sma = SlidingMovingAverage(2)
    sma.update(np.array([1.0, 2.0]))
    out = sma.update(np.array([3.0, 4.0]))
    np.testing.assert_allclose(out, [2.0, 3.0])


def test_moving_average_shape_change_rejected():
    sma = SlidingMovingAverage(2)
    sma.update(np.array([1.0, 2.0]))
    with pytest.raises(ShapeError):
        sma.update(np.array([1.0, 2.0, 3.0]))


def test_moving_average_validates_window():
    with pytest.raises(ConfigurationError):
        SlidingMovingAverage(0)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=1, max_size=30),
       st.integers(1, 8))
def test_moving_average_bounded_by_input_range(values, window):
    sma = SlidingMovingAverage(window)
    smoothed = sma.smooth_series(np.array(values))
    assert smoothed.min() >= min(values) - 1e-9
    assert smoothed.max() <= max(values) + 1e-9


# -- align_streams -------------------------------------------------------------

def test_align_streams_intersection_support():
    streams = {
        "a": (np.array([0.0, 10.0]), np.array([0.0, 10.0])),
        "b": (np.array([2.0, 8.0]), np.array([20.0, 80.0])),
    }
    grid, aligned = align_streams(streams, period=1.0)
    assert grid[0] == 2.0 and grid[-1] == 8.0
    assert aligned["a"].shape == grid.shape
    np.testing.assert_allclose(aligned["a"], grid)  # linear signal


def test_align_streams_rejects_disjoint():
    streams = {
        "a": (np.array([0.0, 1.0]), np.array([0.0, 1.0])),
        "b": (np.array([5.0, 6.0]), np.array([0.0, 1.0])),
    }
    with pytest.raises(ConfigurationError):
        align_streams(streams, period=0.5)


def test_align_streams_empty_inputs():
    with pytest.raises(ConfigurationError):
        align_streams({}, period=1.0)
    with pytest.raises(ShapeError):
        align_streams({"a": (np.array([]), np.array([]))}, period=1.0)


# -- tsdb --------------------------------------------------------------------

def test_tsdb_insert_query():
    db = TimeSeriesDatabase()
    db.insert("s", 1.0, 10.0)
    db.insert("s", 3.0, 30.0)
    db.insert("s", 2.0, 20.0)  # out of order
    points = db.query("s")
    assert [p.timestamp for p in points] == [1.0, 2.0, 3.0]


def test_tsdb_range_query():
    db = TimeSeriesDatabase()
    for t in range(10):
        db.insert("s", float(t), float(t))
    points = db.query("s", start=2.5, end=6.5)
    assert [p.timestamp for p in points] == [3.0, 4.0, 5.0, 6.0]


def test_tsdb_unknown_series():
    with pytest.raises(StreamingError):
        TimeSeriesDatabase().query("nope")


def test_tsdb_as_arrays_with_labels():
    db = TimeSeriesDatabase()
    db.insert("s", 0.0, [1.0, 2.0], label=3)
    db.insert("s", 1.0, [3.0, 4.0])
    timestamps, values, labels = db.as_arrays("s")
    assert values.shape == (2, 2)
    np.testing.assert_array_equal(labels, [3, -1])


def test_tsdb_aggregate_mean():
    db = TimeSeriesDatabase()
    for t, v in [(0.1, 1.0), (0.2, 3.0), (1.1, 10.0)]:
        db.insert("s", t, v)
    starts, values = db.aggregate("s", bucket=1.0, statistic="mean",
                                  start=0.0)
    np.testing.assert_allclose(starts, [0.0, 1.0])
    np.testing.assert_allclose(values.ravel(), [2.0, 10.0])


def test_tsdb_aggregate_count_and_last():
    db = TimeSeriesDatabase()
    for t in [0.0, 0.5, 0.9]:
        db.insert("s", t, t)
    _, counts = db.aggregate("s", bucket=1.0, statistic="count")
    assert counts.ravel().tolist() == [3.0]
    _, last = db.aggregate("s", bucket=1.0, statistic="last")
    np.testing.assert_allclose(last.ravel(), [0.9])


def test_tsdb_aggregate_validation():
    db = TimeSeriesDatabase()
    db.insert("s", 0.0, 0.0)
    with pytest.raises(ConfigurationError):
        db.aggregate("s", bucket=0.0)
    with pytest.raises(ConfigurationError):
        db.aggregate("s", bucket=1.0, statistic="median")


def test_tsdb_insert_many_and_clear(rng):
    db = TimeSeriesDatabase()
    db.insert_many("s", np.arange(5.0), rng.random((5, 2)))
    assert db.count("s") == 5
    db.clear("s")
    assert db.count("s") == 0
    db.insert("a", 0.0, 1.0)
    db.insert("b", 0.0, 1.0)
    db.clear()
    assert db.series_names() == []


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0, 100), min_size=1, max_size=40))
def test_tsdb_is_always_time_sorted(times):
    db = TimeSeriesDatabase()
    for t in times:
        db.insert("s", t, t)
    stored = [p.timestamp for p in db.query("s")]
    assert stored == sorted(stored)
