"""Agent liveness supervision and sensor fault detection."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, HealthError
from repro.streaming import (
    Channel,
    CollectionAgent,
    DriftingClock,
    Heartbeat,
    HealthRegistry,
    HealthState,
    SensorFaultDetector,
    VirtualClock,
    accelerometer,
)
from repro.streaming.records import SensorReading, payload_size


def _reading(t: float, values) -> SensorReading:
    return SensorReading.create("phone", "accelerometer", t, values)


# -- liveness state machine --------------------------------------------------

def test_registry_tracks_healthy_degraded_silent():
    registry = HealthRegistry(degraded_after=1.0, silent_after=3.0)
    registry.register("phone", 0.0)
    assert registry.state("phone") is HealthState.HEALTHY
    registry.step(0.5)
    assert registry.state("phone") is HealthState.HEALTHY
    registry.step(1.5)
    assert registry.state("phone") is HealthState.DEGRADED
    registry.step(3.5)
    assert registry.state("phone") is HealthState.SILENT
    transitions = [state for _, state in registry.transitions("phone")]
    assert transitions == [HealthState.DEGRADED, HealthState.SILENT]


def test_any_arrival_recovers_a_silent_agent():
    registry = HealthRegistry(degraded_after=1.0, silent_after=3.0)
    registry.register("phone", 0.0)
    registry.step(5.0)
    assert registry.state("phone") is HealthState.SILENT
    registry.record_activity("phone", 5.1)
    assert registry.state("phone") is HealthState.HEALTHY


def test_heartbeats_keep_an_idle_agent_alive():
    registry = HealthRegistry(degraded_after=1.0, silent_after=3.0)
    registry.register("phone", 0.0)
    for tick in range(1, 9):
        registry.record_heartbeat(
            Heartbeat("phone", 0.5 * tick, tick), 0.5 * tick)
        registry.step(0.5 * tick)
    assert registry.state("phone") is HealthState.HEALTHY
    assert registry.report()["heartbeats"]["phone"] == 8


def test_unknown_agent_raises_health_error():
    registry = HealthRegistry()
    with pytest.raises(HealthError):
        registry.state("ghost")
    with pytest.raises(HealthError):
        registry.record_activity("ghost", 0.0)


def test_duplicate_registration_raises():
    registry = HealthRegistry()
    registry.register("phone", 0.0)
    with pytest.raises(HealthError):
        registry.register("phone", 1.0)


def test_registry_rejects_bad_thresholds():
    with pytest.raises(ConfigurationError):
        HealthRegistry(degraded_after=3.0, silent_after=1.0)


# -- sensor fault triad ------------------------------------------------------

def test_detector_flags_stuck_sensor():
    detector = SensorFaultDetector(stuck_count=5)
    frozen = np.array([1.0, 2.0, 3.0])
    verdicts = [detector.observe(frozen, 0.1 * i) for i in range(6)]
    assert verdicts[-1] == "stuck"
    assert detector.stuck


def test_noisy_sensor_is_not_stuck():
    rng = np.random.default_rng(0)
    detector = SensorFaultDetector(stuck_count=5)
    for i in range(50):
        assert detector.observe(rng.normal(size=3), 0.1 * i) is None
    assert not detector.stuck


def test_detector_flags_spike():
    rng = np.random.default_rng(1)
    detector = SensorFaultDetector(min_history=16, spike_sigma=8.0)
    for i in range(32):
        detector.observe(rng.normal(scale=0.1, size=3), 0.1 * i)
    assert detector.observe(np.array([50.0, 0.0, 0.0]), 3.3) == "spike"
    # The spike is not absorbed into the window statistics.
    assert detector.observe(rng.normal(scale=0.1, size=3), 3.4) is None


def test_detector_dropout_by_arrival_gap():
    detector = SensorFaultDetector(dropout_after=1.5)
    detector.observe(np.zeros(3), 0.0)
    assert not detector.dropped_out(1.0)
    assert detector.dropped_out(2.0)


# -- quarantine through the registry ----------------------------------------

def test_stuck_stream_is_quarantined_and_released():
    registry = HealthRegistry(
        detector_factory=lambda: SensorFaultDetector(stuck_count=3))
    registry.register("phone", 0.0)
    for i in range(5):
        accepted = registry.observe_reading(
            _reading(0.1 * i, [1.0, 1.0, 1.0]), 0.1 * i)
    assert not accepted
    assert registry.quarantined() == {"phone/accelerometer"}
    assert registry.fault_counts["stuck"] == 1
    # The sensor unsticks: a varying sample lifts the quarantine.
    assert registry.observe_reading(_reading(0.6, [2.0, 0.0, 1.0]), 0.6)
    assert registry.quarantined() == set()
    assert registry.ever_quarantined() == {"phone/accelerometer"}


def test_dropout_quarantine_requires_healthy_agent():
    registry = HealthRegistry(degraded_after=1.0, silent_after=3.0)
    registry.register("phone", 0.0)
    registry.observe_reading(_reading(0.0, [0.0, 0.0, 9.8]), 0.0)
    # Total silence: the agent goes DEGRADED before the sensor's dropout
    # threshold, so the gap is charged to the network, not the sensor.
    registry.step(2.5)
    assert registry.state("phone") is HealthState.DEGRADED
    assert registry.fault_counts["dropout"] == 0
    # Now the agent is demonstrably alive (heartbeats flow) while one
    # sensor stays quiet: that IS a sensor dropout.
    registry.record_heartbeat(Heartbeat("phone", 2.6, 1), 2.6)
    registry.step(2.7)
    assert registry.fault_counts["dropout"] == 1
    assert registry.quarantined() == {"phone/accelerometer"}


def test_spike_rejects_reading_without_quarantine():
    rng = np.random.default_rng(2)
    registry = HealthRegistry()
    registry.register("phone", 0.0)
    for i in range(20):
        registry.observe_reading(
            _reading(0.1 * i, rng.normal(scale=0.1, size=3)), 0.1 * i)
    assert not registry.observe_reading(_reading(2.1, [99.0, 0.0, 0.0]), 2.1)
    assert registry.fault_counts["spike"] == 1
    assert registry.quarantined() == set()
    assert registry.readings_rejected == 1


# -- heartbeat piggy-backing through the agent -------------------------------

def test_agent_piggybacks_heartbeats():
    true_clock = VirtualClock()
    clock = DriftingClock(true_clock)
    channel = Channel("uplink", base_latency=0.001,
                      rng=np.random.default_rng(3))
    sensor = accelerometer(lambda t: np.array([0.0, 0.0, 9.81]),
                           rng=np.random.default_rng(4))
    agent = CollectionAgent("phone", [sensor], clock, channel,
                            poll_interval=0.05, transmit_interval=0.2,
                            heartbeats=True)
    for _ in range(50):
        agent.step(true_clock.advance(0.05))
    batches = [m.payload for m in channel.poll(true_clock.now() + 1.0)]
    beats = [item for batch in batches for item in batch
             if isinstance(item, Heartbeat)]
    assert beats, "every batch should carry a heartbeat"
    assert all(b.agent_id == "phone" for b in beats)
    assert [b.sequence for b in beats] == sorted(b.sequence for b in beats)
    # The counter reflects the transmit instant; polls after the final
    # transmit are not yet reported.
    assert 0 < beats[-1].readings_taken <= agent.readings_taken
    assert payload_size(beats[0]) == 48


def test_suspended_agent_transmits_nothing():
    true_clock = VirtualClock()
    clock = DriftingClock(true_clock)
    channel = Channel("uplink", rng=np.random.default_rng(5))
    sensor = accelerometer(lambda t: np.array([0.0, 0.0, 9.81]),
                           rng=np.random.default_rng(6))
    agent = CollectionAgent("phone", [sensor], clock, channel,
                            poll_interval=0.05, transmit_interval=0.2,
                            heartbeats=True)
    agent.suspended = True
    for _ in range(20):
        agent.step(true_clock.advance(0.05))
    assert channel.poll(true_clock.now() + 1.0) == []
    assert agent.readings_taken == 0
    # Resuming fast-forwards past the missed slots instead of replaying.
    agent.suspended = False
    agent.fast_forward(true_clock.now())
    agent.step(true_clock.advance(0.05))
    assert agent.readings_taken <= 1
