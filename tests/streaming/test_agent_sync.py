"""Collection agents and the clock-synchronization protocol."""

import numpy as np
import pytest

from repro.exceptions import AgentError, ConfigurationError
from repro.streaming import (
    Channel,
    CollectionAgent,
    ClockSynchronizer,
    DriftingClock,
    VirtualClock,
    scripted_labeller,
)
from repro.streaming.records import SensorReading, SyncMessage
from repro.streaming.sensors import SyntheticSensor


def _make_agent(rng, clock=None, channel=None, **kwargs):
    true = VirtualClock()
    clock = clock or DriftingClock(true)
    channel = channel or Channel(base_latency=0.001, rng=rng)
    sensor = SyntheticSensor("s", 3, lambda t: np.zeros(3), rng=rng)
    return CollectionAgent("phone", [sensor], clock, channel, **kwargs), \
        true, channel


def test_agent_polls_at_interval(rng):
    agent, _, _ = _make_agent(rng, poll_interval=0.025,
                              transmit_interval=10.0)
    for step in range(100):
        agent.step(step * 0.01)
    # 1.0 second at 25 ms -> ~40 polls (first at t=0).
    assert 38 <= agent.readings_taken <= 41


def test_agent_batches_readings(rng):
    agent, _, channel = _make_agent(rng, poll_interval=0.01,
                                    transmit_interval=0.1)
    for step in range(1, 30):
        agent.step(step * 0.01)
    delivered = channel.poll(10.0)
    assert agent.batches_sent >= 2
    total = sum(len(m.payload) for m in delivered)
    assert total == agent.readings_taken - agent.buffered


def test_agent_timestamps_use_local_clock(rng):
    true = VirtualClock()
    skewed = DriftingClock(true, initial_offset=5.0)
    agent, _, channel = _make_agent(rng, clock=skewed)
    agent.step(0.0)
    agent.step(0.3)
    delivered = channel.poll(10.0)
    readings = [r for m in delivered for r in m.payload]
    assert all(isinstance(r, SensorReading) for r in readings)
    assert readings[0].timestamp >= 5.0  # local, not true time


def test_agent_requires_sensors(rng):
    true = VirtualClock()
    with pytest.raises(AgentError):
        CollectionAgent("x", [], DriftingClock(true),
                        Channel(rng=rng))


def test_agent_validates_intervals(rng):
    true = VirtualClock()
    sensor = SyntheticSensor("s", 1, lambda t: np.zeros(1), rng=rng)
    with pytest.raises(ConfigurationError):
        CollectionAgent("x", [sensor], DriftingClock(true),
                        Channel(rng=rng), poll_interval=0.0)


def test_agent_labels_readings(rng):
    labeller = scripted_labeller([(0.0, 0.5, 3)])
    agent, _, channel = _make_agent(rng, label_fn=labeller)
    agent.step(0.0)
    agent.step(0.6)
    agent.step(1.0)
    readings = [r for m in channel.poll(10.0) for r in m.payload]
    labels = {r.label for r in readings}
    assert 3 in labels and 0 in labels


def test_scripted_labeller_segments():
    label = scripted_labeller([(1.0, 2.0, 4), (3.0, 4.0, 5)])
    assert label(0.5) == 0
    assert label(1.5) == 4
    assert label(2.5) == 0
    assert label(3.0) == 5
    assert label(4.0) == 0  # end-exclusive


def test_scripted_labeller_rejects_overlap():
    with pytest.raises(ConfigurationError):
        scripted_labeller([(0.0, 2.0, 1), (1.0, 3.0, 2)])


def test_handle_sync_sets_clock(rng):
    agent, true, _ = _make_agent(rng)
    agent.clock.set_time(99.0)
    agent.handle_sync(SyncMessage(master_time=true.now()),
                      estimated_latency=0.01)
    assert abs(agent.clock.error() - 0.01) < 1e-9


# -- synchronizer -------------------------------------------------------------

def test_synchronizer_corrects_drift(rng):
    true = VirtualClock()
    clock = DriftingClock(true, drift_ppm=200.0, initial_offset=0.5)
    down = Channel(base_latency=0.01, rng=rng)
    sensor = SyntheticSensor("s", 1, lambda t: np.zeros(1), rng=rng)
    agent = CollectionAgent("a", [sensor], clock,
                            Channel(base_latency=0.01, rng=rng))
    sync = ClockSynchronizer(agent, down, sync_interval=5.0)
    for _ in range(1200):
        now = true.advance(0.01)
        sync.step(now, true.now())
    assert sync.stats.syncs_applied >= 2
    assert sync.worst_residual_error() < 0.02
    assert abs(clock.error()) < 0.02


def test_synchronizer_latency_compensation(rng):
    """With zero jitter and a perfect estimate, residual error is ~0."""
    true = VirtualClock()
    clock = DriftingClock(true, initial_offset=2.0)
    down = Channel(base_latency=0.05, jitter=0.0, rng=rng)
    sensor = SyntheticSensor("s", 1, lambda t: np.zeros(1), rng=rng)
    agent = CollectionAgent("a", [sensor], clock,
                            Channel(base_latency=0.01, rng=rng))
    sync = ClockSynchronizer(agent, down, sync_interval=1.0)
    for _ in range(300):
        now = true.advance(0.01)
        sync.step(now, true.now())
    # Residual = master_time staleness (one sim step) only.
    assert sync.worst_residual_error() < 0.015


def test_synchronizer_periodic_resync(rng):
    true = VirtualClock()
    clock = DriftingClock(true, drift_ppm=100.0)
    down = Channel(base_latency=0.001, rng=rng)
    sensor = SyntheticSensor("s", 1, lambda t: np.zeros(1), rng=rng)
    agent = CollectionAgent("a", [sensor], clock,
                            Channel(base_latency=0.001, rng=rng))
    sync = ClockSynchronizer(agent, down, sync_interval=5.0)
    for _ in range(2100):
        now = true.advance(0.01)
        sync.step(now, true.now())
    # 21 seconds -> syncs at 0, 5, 10, 15, 20.
    assert sync.stats.syncs_sent == 5


def test_synchronizer_validates_interval(rng):
    true = VirtualClock()
    sensor = SyntheticSensor("s", 1, lambda t: np.zeros(1), rng=rng)
    agent = CollectionAgent("a", [sensor], DriftingClock(true),
                            Channel(rng=rng))
    with pytest.raises(ConfigurationError):
        ClockSynchronizer(agent, Channel(rng=rng), sync_interval=0.0)
