"""Records, payload sizing, and simulated sensors."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, StreamingError
from repro.streaming import (
    CameraSensor,
    FrameRecord,
    SensorReading,
    SyntheticSensor,
    accelerometer,
    gravity,
    gyroscope,
    rotation,
)
from repro.streaming.records import SyncMessage, payload_size


def test_sensor_reading_roundtrip():
    reading = SensorReading.create("phone", "accelerometer", 1.25,
                                   np.array([1.0, 2.0, 3.0]), label=2)
    restored = SensorReading.from_dict(reading.to_dict())
    assert restored == reading


def test_sensor_reading_from_dict_missing_key():
    with pytest.raises(StreamingError):
        SensorReading.from_dict({"agent_id": "x"})


def test_frame_record_image_readonly(rng):
    frame = FrameRecord("dashcam", 0.0, rng.random((4, 4)))
    with pytest.raises(ValueError):
        frame.image[0, 0] = 1.0


def test_frame_record_nbytes(rng):
    frame = FrameRecord("dashcam", 0.0,
                        rng.random((8, 8)).astype(np.float32))
    assert frame.nbytes == 8 * 8 * 4


def test_payload_size_scales_with_image(rng):
    small = FrameRecord("d", 0.0, rng.random((4, 4)).astype(np.float32))
    large = FrameRecord("d", 0.0, rng.random((16, 16)).astype(np.float32))
    assert payload_size(large) > payload_size(small)
    assert payload_size([small, small]) > 2 * payload_size(small) - 100


def test_payload_size_sync_is_small():
    assert payload_size(SyncMessage(0.0)) == 16


def test_synthetic_sensor_clean_signal(rng):
    sensor = SyntheticSensor("s", 3, lambda t: np.array([t, 2 * t, 3 * t]),
                             noise_std=0.0, rng=rng)
    np.testing.assert_allclose(sensor.sample(2.0), [2.0, 4.0, 6.0])


def test_synthetic_sensor_noise_statistics():
    rng = np.random.default_rng(0)
    sensor = SyntheticSensor("s", 1, lambda t: np.zeros(1), noise_std=0.5,
                             rng=rng)
    samples = np.array([sensor.sample(0.0)[0] for _ in range(2000)])
    assert abs(samples.std() - 0.5) < 0.05
    assert abs(samples.mean()) < 0.05


def test_synthetic_sensor_bias(rng):
    sensor = SyntheticSensor("s", 2, lambda t: np.zeros(2),
                             bias=np.array([1.0, -1.0]), rng=rng)
    np.testing.assert_allclose(sensor.sample(0.0), [1.0, -1.0])


def test_synthetic_sensor_validates_dimension(rng):
    with pytest.raises(ConfigurationError):
        SyntheticSensor("s", 0, lambda t: np.zeros(0), rng=rng)
    sensor = SyntheticSensor("s", 3, lambda t: np.zeros(2), rng=rng)
    with pytest.raises(ConfigurationError):
        sensor.sample(0.0)


def test_synthetic_sensor_bias_shape_validation(rng):
    with pytest.raises(ConfigurationError):
        SyntheticSensor("s", 3, lambda t: np.zeros(3),
                        bias=np.array([1.0]), rng=rng)


@pytest.mark.parametrize("factory,name", [
    (accelerometer, "accelerometer"), (gyroscope, "gyroscope"),
    (gravity, "gravity"), (rotation, "rotation"),
])
def test_imu_sensor_factories(rng, factory, name):
    sensor = factory(lambda t: np.zeros(3), rng=rng)
    assert sensor.name == name
    assert sensor.dimension == 3
    assert sensor.sample(0.0).shape == (3,)


def test_camera_sensor(rng):
    camera = CameraSensor(lambda t: np.full((6, 6), t, dtype=np.float32))
    frame = camera.sample(0.5)
    assert frame.shape == (6, 6)
    np.testing.assert_allclose(frame, 0.5)


def test_camera_rejects_bad_frame():
    camera = CameraSensor(lambda t: np.zeros(5))
    with pytest.raises(ConfigurationError):
        camera.sample(0.0)
