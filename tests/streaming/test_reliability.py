"""Reliable transport: acks, retransmission, dedup, and shedding."""

import numpy as np
import pytest

import repro.streaming as streaming
from repro.exceptions import (
    ConfigurationError,
    HealthError,
    ReliabilityError,
    ReproError,
    StreamingError,
)
from repro.streaming import (
    Ack,
    Channel,
    PayloadClass,
    ReliablePacket,
    classify_payload,
    reliable_link,
)
from repro.streaming.records import FrameRecord, SensorReading, payload_size


def _reading(seq: int) -> SensorReading:
    return SensorReading.create("phone", "accelerometer", 0.01 * seq,
                                [float(seq), 0.0, 9.81])


def _frame(t: float) -> FrameRecord:
    return FrameRecord("dashcam", t, np.zeros((4, 4), dtype=np.float32))


# -- exception hierarchy (satellite) ----------------------------------------

def test_fault_tolerance_exception_hierarchy():
    assert issubclass(ReliabilityError, StreamingError)
    assert issubclass(HealthError, StreamingError)
    assert issubclass(StreamingError, ReproError)


def test_fault_tolerance_errors_exported_from_streaming():
    assert streaming.ReliabilityError is ReliabilityError
    assert streaming.HealthError is HealthError
    assert streaming.StreamingError is StreamingError


# -- envelopes --------------------------------------------------------------

def test_classify_payload_prefers_frames():
    assert classify_payload(_frame(0.0)) is PayloadClass.FRAME
    assert classify_payload([_reading(0), _frame(0.0)]) is PayloadClass.FRAME
    assert classify_payload([_reading(0)]) is PayloadClass.DATA
    assert classify_payload(b"opaque") is PayloadClass.DATA


def test_packet_wire_size_adds_header():
    payload = [_reading(0), _reading(1)]
    packet = ReliablePacket(1, payload)
    assert packet.wire_size == payload_size(payload) + 24
    # The duck-typed hook means payload_size sees through the envelope too.
    assert payload_size(packet) == packet.wire_size


def test_ack_covers_cumulative_and_selective():
    ack = Ack(cumulative=3, selective=(7, 9))
    assert ack.covers(1) and ack.covers(3)
    assert ack.covers(7) and ack.covers(9)
    assert not ack.covers(4) and not ack.covers(8)


# -- happy path -------------------------------------------------------------

def test_lossless_link_delivers_in_order():
    sender, receiver = reliable_link("test", rng=np.random.default_rng(0))
    for seq in range(5):
        sender.send("phone", "controller", _reading(seq), 0.1 * seq)
    messages = receiver.poll(2.0)
    assert [m.payload.values[0] for m in messages] == [0.0, 1.0, 2.0, 3.0, 4.0]
    # Delivered payloads are unwrapped application objects.
    assert all(isinstance(m.payload, SensorReading) for m in messages)
    sender.step(2.1)
    assert sender.unacked == 0
    assert sender.stats.acked == 5
    assert sender.stats.retransmissions == 0


def test_retransmission_recovers_from_total_loss():
    sender, receiver = reliable_link("test", rng=np.random.default_rng(1))
    sender.data.drop_probability = 1.0
    sender.send("phone", "controller", _reading(0), 0.0)
    sender.data.drop_probability = 0.0  # link heals before the first retry
    now = 0.0
    while sender.unacked and now < 10.0:
        now += 0.05
        sender.step(now)
        receiver.poll(now)
    assert sender.unacked == 0
    assert sender.stats.retransmissions >= 1
    assert receiver.stats.received == 1


def test_receiver_deduplicates_retransmissions():
    sender, receiver = reliable_link("test", rng=np.random.default_rng(2))
    # Lose the ack so the sender retransmits a packet already delivered.
    sender.ack.drop_probability = 1.0
    sender.send("phone", "controller", _reading(0), 0.0)
    assert len(receiver.poll(0.5)) == 1
    sender.ack.drop_probability = 0.0
    now = 0.5
    while sender.unacked and now < 10.0:
        now += 0.05
        sender.step(now)
        assert receiver.poll(now) == []  # duplicates never re-deliver
    assert receiver.stats.duplicates >= 1
    assert receiver.stats.received == 1


def test_selective_acks_survive_gaps():
    sender, receiver = reliable_link("test", rng=np.random.default_rng(3))
    sender.send("phone", "controller", _reading(0), 0.0)
    # Packet 2 is lost; 3 arrives and must be selectively acknowledged.
    sender.data.drop_probability = 1.0
    sender.send("phone", "controller", _reading(1), 0.01)
    sender.data.drop_probability = 0.0
    sender.send("phone", "controller", _reading(2), 0.02)
    receiver.poll(0.5)
    sender.step(0.6)
    assert sender.unacked == 1  # only the lost packet remains pending
    now = 0.6
    while sender.unacked and now < 10.0:
        now += 0.05
        sender.step(now)
        receiver.poll(now)
    assert receiver.stats.received == 3
    assert sender.stats.acked == 3


def test_srtt_estimate_converges():
    # base_timeout above the poll cadence: no retransmissions, so every
    # ack is an unambiguous Karn sample.
    sender, receiver = reliable_link("test", base_latency=0.05,
                                     base_timeout=0.5,
                                     rng=np.random.default_rng(4))
    now = 0.0
    for seq in range(10):
        sender.send("phone", "controller", _reading(seq), now)
        now += 0.2
        receiver.poll(now)
        sender.step(now)
    # Two 50 ms hops observed at 200 ms step granularity: the ack lands
    # one step after the delivery poll, so every sample reads 0.4 s.
    assert sender.srtt == pytest.approx(0.4, abs=0.05)
    assert sender.stats.retransmissions == 0


# -- backpressure -----------------------------------------------------------

def test_shedding_evicts_oldest_frame_first():
    sender, _ = reliable_link("test", rng=np.random.default_rng(5),
                              buffer_limit=3)
    sender.ack.drop_probability = 1.0  # nothing ever acks
    sender.send("dashcam", "controller", _frame(0.0), 0.0)
    sender.send("dashcam", "controller", [_reading(1)], 0.1)
    sender.send("dashcam", "controller", _frame(0.2), 0.2)
    assert sender.pressure == pytest.approx(1.0)
    sender.send("dashcam", "controller", [_reading(3)], 0.3)
    assert sender.stats.shed_frames == 1
    assert sender.stats.shed_data == 0
    pending_classes = [e.payload_class for e in sender._pending.values()]
    # The oldest frame went; the older IMU batch survived it.
    assert pending_classes.count(PayloadClass.DATA) == 2


def test_shedding_falls_back_to_oldest_data():
    sender, _ = reliable_link("test", rng=np.random.default_rng(6),
                              buffer_limit=2)
    sender.ack.drop_probability = 1.0
    first = sender.send("phone", "controller", [_reading(0)], 0.0)
    sender.send("phone", "controller", [_reading(1)], 0.1)
    sender.send("phone", "controller", [_reading(2)], 0.2)
    assert sender.stats.shed_data == 1
    assert first not in sender._pending


def test_backoff_spaces_out_retries():
    sender, _ = reliable_link("test", rng=np.random.default_rng(7))
    sender.data.drop_probability = 1.0
    sender.jitter = 0.0
    sender.send("phone", "controller", _reading(0), 0.0)
    retry_times = []
    now = 0.0
    while len(retry_times) < 4 and now < 30.0:
        now += 0.01
        before = sender.stats.retransmissions
        sender.step(now)
        if sender.stats.retransmissions > before:
            retry_times.append(now)
    gaps = np.diff(retry_times)
    assert len(gaps) == 2 or len(gaps) == 3
    # Exponential backoff: every gap at least as long as the previous,
    # with real growth until the max_timeout cap kicks in.
    assert all(b >= a - 0.02 for a, b in zip(gaps, gaps[1:]))
    assert gaps[0] >= sender.base_timeout * 0.9


def test_abandons_after_max_attempts():
    sender, _ = reliable_link("test", rng=np.random.default_rng(8))
    sender.data.drop_probability = 1.0
    sender.max_attempts = 3
    sender.send("phone", "controller", _reading(0), 0.0)
    now = 0.0
    for _ in range(2000):
        now += 0.05
        sender.step(now)
        if not sender.unacked:
            break
    assert sender.unacked == 0
    assert sender.stats.abandoned == 1


# -- validation -------------------------------------------------------------

def test_sender_rejects_bad_configuration():
    data, ack = Channel("d"), Channel("a")
    from repro.streaming import ReliableSender
    with pytest.raises(ConfigurationError):
        ReliableSender(data, ack, base_timeout=0.0)
    with pytest.raises(ConfigurationError):
        ReliableSender(data, ack, backoff=0.5)
    with pytest.raises(ConfigurationError):
        ReliableSender(data, ack, jitter=1.5)
    with pytest.raises(ConfigurationError):
        ReliableSender(data, ack, buffer_limit=0)


def test_misused_channels_raise_reliability_error():
    sender, receiver = reliable_link("test", rng=np.random.default_rng(9))
    # A raw payload on the data channel is a wiring bug, not packet loss.
    receiver.data.send("phone", "controller", _reading(0), 0.0)
    with pytest.raises(ReliabilityError):
        receiver.poll(1.0)
    sender.ack.send("controller", "phone", b"not-an-ack", 0.0)
    with pytest.raises(ReliabilityError):
        sender.step(1.0)
