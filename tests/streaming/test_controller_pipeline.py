"""Centralized controller and the end-to-end collection session."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ControllerError
from repro.streaming import (
    CentralizedController,
    Channel,
    CollectionAgent,
    CollectionSession,
    DriftingClock,
    NetworkConditions,
    ProcessingLocation,
    ProcessingPolicy,
    SessionConfig,
    VirtualClock,
    decide_processing,
    scripted_labeller,
)
from repro.streaming.records import FrameRecord
from repro.streaming.sensors import CameraSensor, SyntheticSensor


def _controller_with_agent(rng, signal=None):
    true = VirtualClock()
    uplink = Channel(base_latency=0.005, rng=rng)
    downlink = Channel(base_latency=0.005, rng=rng)
    sensor = SyntheticSensor(
        "accelerometer", 3,
        signal or (lambda t: np.array([t, 0.0, 9.81])), rng=rng)
    agent = CollectionAgent("phone", [sensor], DriftingClock(true), uplink,
                            poll_interval=0.05, transmit_interval=0.2)
    controller = CentralizedController(true, grid_period=0.25)
    controller.register_agent(agent, uplink, downlink)
    return true, agent, controller


def test_controller_receives_and_orders(rng):
    true, agent, controller = _controller_with_agent(rng)
    for _ in range(600):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    assert controller.readings_received > 50
    streams = controller.raw_streams()
    timestamps, _ = streams["phone/accelerometer"]
    assert np.all(np.diff(timestamps) >= 0)


def test_controller_normalize_persists_to_tsdb(rng):
    true, agent, controller = _controller_with_agent(rng)
    for _ in range(600):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    grid, aligned = controller.normalize()
    assert grid.shape[0] > 5
    assert aligned["phone/accelerometer"].shape == (grid.shape[0], 3)
    assert controller.tsdb.count("phone/accelerometer") == grid.shape[0]


def test_controller_interpolation_recovers_linear_signal(rng):
    """The x-axis signal is t; after align+smooth it must track the grid."""
    true, agent, controller = _controller_with_agent(rng)
    for _ in range(800):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    grid, aligned = controller.normalize()
    x = aligned["phone/accelerometer"][:, 0]
    # Local timestamps differ from true time by clock offset, but the
    # signal is linear so interpolation error stays below the noise floor.
    residual = np.abs(x - (grid - (grid - x).mean()))
    assert residual.mean() < 0.2


def test_controller_rejects_duplicate_agent(rng):
    true, agent, controller = _controller_with_agent(rng)
    with pytest.raises(ControllerError):
        controller.register_agent(agent, Channel(rng=rng))


def test_controller_normalize_without_data(rng):
    controller = CentralizedController(VirtualClock())
    with pytest.raises(ControllerError):
        controller.normalize()


def test_controller_frame_transform_hook(rng):
    true = VirtualClock()
    uplink = Channel(base_latency=0.001, rng=rng)
    camera = CameraSensor(lambda t: np.ones((4, 4), dtype=np.float32))
    agent = CollectionAgent("cam", [camera], DriftingClock(true), uplink,
                            poll_interval=0.1, transmit_interval=0.2)

    def halve(frame: FrameRecord) -> FrameRecord:
        return FrameRecord(frame.agent_id, frame.timestamp,
                           np.asarray(frame.image) * 0.5)

    controller = CentralizedController(true, frame_transform=halve)
    controller.register_agent(agent, uplink)
    for _ in range(100):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    assert controller.frames
    np.testing.assert_allclose(controller.frames[0].image, 0.5)


def test_controller_grid_labels(rng):
    true = VirtualClock()
    uplink = Channel(base_latency=0.001, rng=rng)
    sensor = SyntheticSensor("accelerometer", 3, lambda t: np.zeros(3),
                             rng=rng)
    labeller = scripted_labeller([(0.0, 1.0, 2)])
    agent = CollectionAgent("phone", [sensor], DriftingClock(true), uplink,
                            poll_interval=0.05, transmit_interval=0.1,
                            label_fn=labeller)
    controller = CentralizedController(true, grid_period=0.25)
    controller.register_agent(agent, uplink)
    for _ in range(300):
        now = true.advance(0.01)
        agent.step(now)
        controller.step(now)
    grid, _ = controller.normalize()
    labels = controller.grid_labels(grid, "phone", "accelerometer")
    assert set(labels.tolist()) <= {0, 2}
    assert 2 in labels


# -- processing decision -------------------------------------------------------

def test_decide_processing_good_network():
    conditions = NetworkConditions(bandwidth_bps=5e6, latency_s=0.02)
    assert decide_processing(conditions) is ProcessingLocation.REMOTE


@pytest.mark.parametrize("conditions", [
    NetworkConditions(bandwidth_bps=1e4, latency_s=0.02),
    NetworkConditions(bandwidth_bps=5e6, latency_s=2.0),
    NetworkConditions(bandwidth_bps=5e6, latency_s=0.02, loss_rate=0.5),
])
def test_decide_processing_poor_network(conditions):
    assert decide_processing(conditions) is ProcessingLocation.LOCAL


def test_decide_processing_custom_policy():
    conditions = NetworkConditions(bandwidth_bps=100.0, latency_s=0.01)
    lenient = ProcessingPolicy(min_remote_bandwidth_bps=10.0)
    assert decide_processing(conditions, lenient) is ProcessingLocation.REMOTE


# -- full session ---------------------------------------------------------------

@pytest.fixture(scope="module")
def session_result():
    def imu_signal(sensor, t):
        return np.array([np.sin(t), 0.0, 9.81])

    def frame_fn(t):
        return np.full((6, 6), min(t / 10.0, 1.0), dtype=np.float32)

    labeller = scripted_labeller([(1.0, 3.0, 2)])
    session = CollectionSession(imu_signal, frame_fn, labeller,
                                rng=np.random.default_rng(10))
    return session.run(8.0), session


def test_session_produces_aligned_imu(session_result):
    result, _ = session_result
    assert result.imu.shape[1] == 12  # 4 sensors x 3 axes
    assert result.imu.shape[0] == result.grid.shape[0]
    assert result.imu_labels.shape[0] == result.grid.shape[0]


def test_session_grid_is_uniform(session_result):
    result, _ = session_result
    np.testing.assert_allclose(np.diff(result.grid), 0.25, atol=1e-9)


def test_session_collects_frames(session_result):
    result, _ = session_result
    assert len(result.frames) >= 30  # 8 s at 5 fps
    times = [f.timestamp for f in result.frames]
    assert times == sorted(times)


def test_session_clock_sync_quality(session_result):
    _, session = session_result
    report = session.controller.sync_report()
    assert all(err < 0.05 for err in report.values())


def test_session_labels_cover_script(session_result):
    result, _ = session_result
    assert 2 in result.imu_labels
    assert 0 in result.imu_labels


def test_session_rejects_nonpositive_duration():
    session = CollectionSession(lambda s, t: np.zeros(3),
                                lambda t: np.zeros((4, 4), dtype=np.float32),
                                rng=np.random.default_rng(0))
    with pytest.raises(ConfigurationError):
        session.run(0.0)


def test_session_with_packet_loss_still_aligns():
    config = SessionConfig(channel_drop=0.2)
    session = CollectionSession(
        lambda s, t: np.array([0.0, 0.0, 9.81]),
        lambda t: np.zeros((4, 4), dtype=np.float32),
        config=config, rng=np.random.default_rng(11))
    result = session.run(6.0)
    assert result.imu.shape[0] > 0
    stats = session.phone.channel.stats
    assert stats.dropped > 0
