"""Processing placement runtimes and sensor-data persistence."""

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SerializationError
from repro.streaming import (
    ComputeProfile,
    LocalRuntime,
    NetworkConditions,
    ProcessingLocation,
    ProcessingPolicy,
    RemoteRuntime,
    Channel,
    SensorReading,
    TimeSeriesDatabase,
    choose_runtime,
    frame_payload_bytes,
    load_readings_jsonl,
    load_tsdb,
    placement_sweep,
    save_readings_jsonl,
    save_tsdb,
)


# -- runtimes ---------------------------------------------------------------

def test_local_runtime_has_no_network_legs():
    runtime = LocalRuntime(ComputeProfile(seconds_per_frame=0.01,
                                          slowdown=8.0))
    timing = runtime.verdict_timing(10_000, 1_000)
    assert timing.uplink_seconds == 0.0
    assert timing.downlink_seconds == 0.0
    assert timing.inference_seconds == pytest.approx(0.08)
    assert timing.total_seconds == pytest.approx(0.08)


def test_remote_runtime_pays_transmission(rng):
    uplink = Channel("up", base_latency=0.01, bandwidth_bps=1e6, rng=rng)
    downlink = Channel("down", base_latency=0.01, rng=rng)
    runtime = RemoteRuntime(uplink, downlink, ComputeProfile(0.004))
    timing = runtime.verdict_timing(frame_payload_bytes(64), 960)
    assert timing.uplink_seconds > 0.01  # latency + serialization
    assert timing.total_seconds > timing.inference_seconds


def test_frame_payload_bytes():
    assert frame_payload_bytes(64) == 64 * 64 * 4 + 64
    with pytest.raises(ConfigurationError):
        frame_payload_bytes(0)


def test_choose_runtime_matches_policy(rng):
    good = NetworkConditions(bandwidth_bps=1e7, latency_s=0.01)
    bad = NetworkConditions(bandwidth_bps=1e4, latency_s=1.0)
    assert choose_runtime(good, rng=rng).location is ProcessingLocation.REMOTE
    assert choose_runtime(bad, rng=rng).location is ProcessingLocation.LOCAL


def test_choose_runtime_applies_local_slowdown(rng):
    policy = ProcessingPolicy(local_slowdown=16.0)
    bad = NetworkConditions(bandwidth_bps=1e3, latency_s=2.0)
    runtime = choose_runtime(bad, policy=policy, rng=rng)
    assert isinstance(runtime, LocalRuntime)
    assert runtime.compute.slowdown == 16.0


def test_placement_sweep_crossover(rng):
    """Remote wins at high bandwidth, local wins at very low bandwidth."""
    rows = placement_sweep([1e3, 1e5, 1e7, 1e9], latency_s=0.005,
                           rng=rng)
    assert rows[0]["local_seconds"] < rows[0]["remote_seconds"]
    assert rows[-1]["remote_seconds"] < rows[-1]["local_seconds"]
    # Remote latency monotonically improves with bandwidth.
    remote = [row["remote_seconds"] for row in rows]
    assert remote == sorted(remote, reverse=True)


def test_placement_sweep_decisions_follow_policy(rng):
    rows = placement_sweep([1e3, 1e8], rng=rng)
    assert rows[0]["decision"] == "local"
    assert rows[1]["decision"] == "remote"


# -- persistence ----------------------------------------------------------

def test_readings_jsonl_roundtrip(tmp_path):
    readings = [
        SensorReading.create("phone", "accelerometer", 0.1, [1.0, 2.0, 3.0],
                             label=2),
        SensorReading.create("phone", "gyroscope", 0.2, [0.1, 0.2, 0.3]),
    ]
    path = os.path.join(tmp_path, "session.jsonl")
    assert save_readings_jsonl(readings, path) == 2
    restored = load_readings_jsonl(path)
    assert restored == readings


def test_readings_jsonl_missing_file(tmp_path):
    with pytest.raises(SerializationError):
        load_readings_jsonl(os.path.join(tmp_path, "nope.jsonl"))


def test_readings_jsonl_malformed_line(tmp_path):
    path = os.path.join(tmp_path, "bad.jsonl")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("not json\n")
    with pytest.raises(SerializationError, match="malformed"):
        load_readings_jsonl(path)


def test_tsdb_snapshot_roundtrip(tmp_path, rng):
    db = TimeSeriesDatabase()
    db.insert("a/x", 0.0, [1.0, 2.0], label=3)
    db.insert("a/x", 1.0, [3.0, 4.0])
    db.insert("b/y", 0.5, 7.0)
    path = os.path.join(tmp_path, "snapshot.npz")
    save_tsdb(db, path)
    restored = load_tsdb(path)
    assert restored.series_names() == ["a/x", "b/y"]
    timestamps, values, labels = restored.as_arrays("a/x")
    np.testing.assert_allclose(timestamps, [0.0, 1.0])
    np.testing.assert_allclose(values, [[1.0, 2.0], [3.0, 4.0]])
    np.testing.assert_array_equal(labels, [3, -1])


def test_tsdb_snapshot_rejects_foreign_npz(tmp_path):
    path = os.path.join(tmp_path, "other.npz")
    np.savez(path, something=np.zeros(3))
    with pytest.raises(SerializationError):
        load_tsdb(path)


def test_tsdb_snapshot_missing(tmp_path):
    with pytest.raises(SerializationError):
        load_tsdb(os.path.join(tmp_path, "missing.npz"))


def test_session_tsdb_survives_snapshot(tmp_path):
    """Snapshot a real collection session's database and reload it."""
    from repro.core import DriveScript, run_collection_drive
    from repro.datasets import DrivingBehavior
    script = DriveScript.standard([DrivingBehavior.TALKING],
                                  segment_seconds=3.0)
    result = run_collection_drive(script, rng=np.random.default_rng(3))
    path = os.path.join(tmp_path, "drive.npz")
    save_tsdb(result.tsdb, path)
    restored = load_tsdb(path)
    for series in result.tsdb.series_names():
        assert restored.count(series) == result.tsdb.count(series)
