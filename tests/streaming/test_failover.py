"""Placement circuit breaker and adaptive privacy escalation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.streaming import (
    PRIVACY_LADDER,
    BreakerState,
    PlacementCircuitBreaker,
    PrivacyEscalator,
    ProcessingLocation,
)


def _breaker(**kwargs):
    defaults = dict(failure_threshold=3, recovery_timeout=2.0,
                    success_threshold=2)
    defaults.update(kwargs)
    return PlacementCircuitBreaker(**defaults)


# -- circuit breaker ---------------------------------------------------------

def test_breaker_starts_closed_on_remote():
    breaker = _breaker()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.location is ProcessingLocation.REMOTE
    assert breaker.allow_remote(0.0)


def test_breaker_trips_after_consecutive_failures():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure(0.2)
    assert breaker.state is BreakerState.OPEN
    assert breaker.location is ProcessingLocation.LOCAL
    assert not breaker.allow_remote(0.3)
    assert breaker.transitions == [(0.2, ProcessingLocation.LOCAL)]


def test_success_resets_the_failure_streak():
    breaker = _breaker()
    breaker.record_failure(0.0)
    breaker.record_failure(0.1)
    breaker.record_success(0.2)  # streak broken
    breaker.record_failure(0.3)
    breaker.record_failure(0.4)
    assert breaker.state is BreakerState.CLOSED


def test_half_open_probe_and_full_recovery():
    breaker = _breaker()
    for t in (0.0, 0.1, 0.2):
        breaker.record_failure(t)
    assert not breaker.allow_remote(1.0)  # recovery window not elapsed
    assert breaker.allow_remote(2.5)      # admitted as the half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    # Probing happens from LOCAL: one lucky probe must not move traffic.
    assert breaker.location is ProcessingLocation.LOCAL
    breaker.record_success(2.5)
    assert breaker.location is ProcessingLocation.LOCAL
    breaker.record_success(2.75)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.location is ProcessingLocation.REMOTE
    # One failover, one recovery: exactly two placement transitions.
    assert [loc for _, loc in breaker.transitions] == [
        ProcessingLocation.LOCAL, ProcessingLocation.REMOTE]


def test_half_open_failure_reopens_with_backoff():
    breaker = _breaker(recovery_timeout=2.0, backoff=2.0)
    for t in (0.0, 0.1, 0.2):
        breaker.record_failure(t)
    assert breaker.allow_remote(2.5)
    breaker.record_failure(2.5)
    assert breaker.state is BreakerState.OPEN
    # The dwell doubled: 2 s is no longer enough.
    assert not breaker.allow_remote(4.6)
    assert breaker.allow_remote(6.6)
    # Failed probes never count as placement transitions (hysteresis).
    assert [loc for _, loc in breaker.transitions] == [
        ProcessingLocation.LOCAL]


def test_recovery_timeout_is_capped_and_resets_on_close():
    breaker = _breaker(recovery_timeout=2.0, backoff=10.0,
                       max_recovery_timeout=5.0)
    for t in (0.0, 0.1, 0.2):
        breaker.record_failure(t)
    breaker.allow_remote(2.5)
    breaker.record_failure(2.5)          # timeout -> min(20, 5) = 5
    assert not breaker.allow_remote(7.0)
    assert breaker.allow_remote(7.6)
    breaker.record_success(7.6)
    breaker.record_success(7.7)          # CLOSED again
    assert breaker.state is BreakerState.CLOSED
    # Next trip starts from the base recovery timeout again.
    for t in (8.0, 8.1, 8.2):
        breaker.record_failure(t)
    assert breaker.allow_remote(10.3)


def test_breaker_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        PlacementCircuitBreaker(failure_threshold=0)
    with pytest.raises(ConfigurationError):
        PlacementCircuitBreaker(recovery_timeout=0.0)
    with pytest.raises(ConfigurationError):
        PlacementCircuitBreaker(backoff=0.9)


# -- privacy escalation ------------------------------------------------------

def test_escalator_climbs_the_ladder_under_pressure():
    escalator = PrivacyEscalator(escalate_above=0.7, relax_below=0.25,
                                 dwell=1.0)
    assert escalator.level is None
    assert escalator.update(0.9, 0.0) == "low"
    # Dwell: sustained pressure cannot skip rungs within the window.
    assert escalator.update(0.95, 0.5) == "low"
    assert escalator.update(0.95, 1.1) == "medium"
    assert escalator.update(0.95, 2.2) == "high"
    assert escalator.update(1.0, 3.3) == "high"  # top of the ladder
    assert escalator.escalations == 3


def test_escalator_relaxes_only_below_low_watermark():
    escalator = PrivacyEscalator(escalate_above=0.7, relax_below=0.25,
                                 dwell=0.5)
    escalator.update(0.9, 0.0)
    assert escalator.level == "low"
    # Mid-band pressure: hold the level (hysteresis band).
    assert escalator.update(0.5, 1.0) == "low"
    assert escalator.update(0.1, 2.0) is None
    assert escalator.relaxations == 1


def test_escalator_ladder_matches_privacy_levels():
    from repro.core.privacy import PrivacyLevel
    assert PRIVACY_LADDER[0] is None
    for value in PRIVACY_LADDER[1:]:
        assert PrivacyLevel(value).value == value


def test_escalator_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        PrivacyEscalator(escalate_above=0.2, relax_below=0.5)
    with pytest.raises(ConfigurationError):
        PrivacyEscalator(dwell=-1.0)
    with pytest.raises(ConfigurationError):
        PrivacyEscalator(ladder=("low",))
