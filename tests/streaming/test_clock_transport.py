"""Virtual clocks, drifting clocks, and the simulated transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.streaming import Channel, DriftingClock, VirtualClock
from repro.streaming.records import SyncMessage


# -- clocks -----------------------------------------------------------------

def test_virtual_clock_advances():
    clock = VirtualClock()
    assert clock.now() == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock.now() == 1.5


def test_virtual_clock_rejects_negative_advance():
    with pytest.raises(ConfigurationError):
        VirtualClock().advance(-1.0)


def test_drifting_clock_initial_offset():
    true = VirtualClock()
    clock = DriftingClock(true, initial_offset=0.25)
    assert clock.error() == pytest.approx(0.25)


def test_drifting_clock_drift_accumulates():
    true = VirtualClock()
    clock = DriftingClock(true, drift_ppm=100.0)
    true.advance(1000.0)
    # 100 ppm over 1000 s = 0.1 s fast.
    assert clock.error() == pytest.approx(0.1, rel=1e-6)


def test_drifting_clock_set_time_resets_error():
    true = VirtualClock()
    clock = DriftingClock(true, drift_ppm=500.0, initial_offset=1.0)
    true.advance(100.0)
    clock.set_time(true.now())
    assert clock.error() == pytest.approx(0.0, abs=1e-12)
    true.advance(10.0)
    assert clock.error() == pytest.approx(500e-6 * 10.0, rel=1e-6)


@settings(max_examples=30, deadline=None)
@given(st.floats(-200, 200), st.floats(0, 100),
       st.floats(-0.5, 0.5))
def test_drifting_clock_error_formula(drift_ppm, elapsed, offset):
    true = VirtualClock()
    clock = DriftingClock(true, drift_ppm=drift_ppm, initial_offset=offset)
    true.advance(elapsed)
    expected = offset + elapsed * drift_ppm * 1e-6
    assert clock.error() == pytest.approx(expected, abs=1e-9)


# -- transport --------------------------------------------------------------

def test_channel_delivers_after_latency(rng):
    channel = Channel(base_latency=0.1, rng=rng)
    channel.send("a", "b", SyncMessage(0.0), now=0.0)
    assert channel.poll(0.05) == []
    delivered = channel.poll(0.2)
    assert len(delivered) == 1
    assert delivered[0].latency == pytest.approx(0.1)


def test_channel_zero_jitter_preserves_order(rng):
    channel = Channel(base_latency=0.01, rng=rng)
    for i in range(5):
        channel.send("a", "b", SyncMessage(float(i)), now=i * 0.001)
    delivered = channel.poll(1.0)
    times = [m.payload.master_time for m in delivered]
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_channel_jitter_can_reorder():
    rng = np.random.default_rng(3)
    channel = Channel(base_latency=0.01, jitter=0.05, rng=rng)
    for i in range(50):
        channel.send("a", "b", SyncMessage(float(i)), now=i * 0.001)
    delivered = channel.poll(10.0)
    order = [m.payload.master_time for m in delivered]
    assert sorted(order) == list(range(50))
    assert order != sorted(order)  # at least one inversion


def test_channel_drops(rng):
    channel = Channel(drop_probability=0.5, rng=np.random.default_rng(0))
    results = [channel.send("a", "b", SyncMessage(0.0), now=0.0)
               for _ in range(200)]
    dropped = sum(1 for r in results if r is None)
    assert 60 < dropped < 140
    assert channel.stats.dropped == dropped


def test_channel_bandwidth_adds_serialization_delay(rng):
    channel = Channel(base_latency=0.0, bandwidth_bps=8000.0, rng=rng)
    # 1000 bytes at 8 kbps = 1 second.
    assert channel.transit_delay(1000) == pytest.approx(1.0)


def test_channel_stats_accumulate(rng):
    channel = Channel(base_latency=0.01, rng=rng)
    channel.send("a", "b", SyncMessage(0.0), now=0.0)
    channel.send("a", "b", SyncMessage(1.0), now=0.0)
    channel.poll(1.0)
    assert channel.stats.sent == 2
    assert channel.stats.delivered == 2
    assert channel.stats.mean_latency() == pytest.approx(0.01)
    assert channel.pending == 0


def test_channel_validation():
    with pytest.raises(ConfigurationError):
        Channel(base_latency=-0.1)
    with pytest.raises(ConfigurationError):
        Channel(drop_probability=1.0)
    with pytest.raises(ConfigurationError):
        Channel(bandwidth_bps=0.0)


def test_message_latency_requires_delivery(rng):
    channel = Channel(base_latency=1.0, rng=rng)
    message = channel.send("a", "b", SyncMessage(0.0), now=0.0)
    from repro.exceptions import StreamingError
    with pytest.raises(StreamingError):
        _ = message.latency


@settings(max_examples=20, deadline=None)
@given(st.lists(st.floats(0, 10), min_size=1, max_size=30))
def test_channel_never_delivers_early(send_times):
    rng = np.random.default_rng(1)
    channel = Channel(base_latency=0.05, jitter=0.01, rng=rng)
    for t in sorted(send_times):
        channel.send("a", "b", SyncMessage(t), now=t)
    delivered = channel.poll(1e9)
    for message in delivered:
        assert message.delivered_at >= message.sent_at + 0.05
