"""Unit tests for the span tracer."""

from __future__ import annotations

import time

from repro.obs.tracing import Span, Trace, Tracer


class TestSpanTrace:
    def test_span_duration_and_dict(self):
        span = Span("queue", 1.0, 1.25, {"batch": 4})
        assert span.duration == 0.25
        payload = span.to_dict()
        assert payload["name"] == "queue"
        assert payload["duration_s"] == 0.25
        assert payload["meta"] == {"batch": 4}

    def test_trace_duration_sums_spans(self):
        trace = Trace("t1", "verdict", spans=[
            Span("a", 0.0, 0.1), Span("b", 0.5, 0.7)])
        assert trace.duration == 0.30000000000000004 or \
            abs(trace.duration - 0.3) < 1e-12

    def test_format_mentions_id_and_spans(self):
        trace = Trace("t9", "verdict/drv-1", spans=[Span("queue", 0, 0.01)])
        text = trace.format()
        assert "t9" in text
        assert "queue" in text
        assert "[incomplete]" in text
        trace.complete = True
        assert "[incomplete]" not in trace.format()


class TestTracerLifecycle:
    def test_start_record_finish(self):
        tracer = Tracer()
        trace_id = tracer.start("verdict/drv-0")
        assert trace_id is not None
        tracer.record(trace_id, "queue", 0.0, 0.01, depth=3)
        tracer.finish(trace_id)
        done = tracer.last_completed()
        assert done is not None
        assert done.complete
        assert [span.name for span in done.spans] == ["queue"]
        assert done.spans[0].meta == {"depth": 3}
        assert tracer.active_count == 0

    def test_ids_are_unique_and_ordered(self):
        tracer = Tracer()
        ids = [tracer.start("x") for _ in range(5)]
        assert len(set(ids)) == 5
        assert ids == sorted(ids)

    def test_span_context_manager_times_the_block(self):
        tracer = Tracer()
        trace_id = tracer.start("x")
        with tracer.span(trace_id, "work", shard=0):
            time.sleep(0.002)
        tracer.finish(trace_id)
        span = tracer.last_completed().spans[0]
        assert span.name == "work"
        assert span.duration >= 0.002
        assert span.meta == {"shard": 0}

    def test_discard_drops_without_archiving(self):
        tracer = Tracer()
        trace_id = tracer.start("x")
        tracer.discard(trace_id)
        assert tracer.active_count == 0
        assert tracer.completed() == []

    def test_record_on_unknown_or_finished_trace_is_ignored(self):
        tracer = Tracer()
        tracer.record("t999999", "ghost", 0.0, 1.0)
        trace_id = tracer.start("x")
        tracer.finish(trace_id)
        tracer.record(trace_id, "late", 0.0, 1.0)
        assert tracer.last_completed().spans == []

    def test_complete_appends_spans_after_existing_and_finishes(self):
        tracer = Tracer()
        trace_id = tracer.start("verdict/drv-0")
        tracer.record(trace_id, "admission", 0.0, 0.001)
        tracer.complete(trace_id, [
            Span("queue", 0.001, 0.01),
            Span("forward", 0.01, 0.02, {"batch_size": 4}),
        ])
        done = tracer.last_completed()
        assert done.complete
        assert [span.name for span in done.spans] == \
            ["admission", "queue", "forward"]
        assert done.spans[2].meta == {"batch_size": 4}
        assert tracer.active_count == 0

    def test_complete_on_unknown_none_or_disabled_is_noop(self):
        tracer = Tracer()
        tracer.complete("t999999", [Span("ghost", 0.0, 1.0)])
        tracer.complete(None, [Span("ghost", 0.0, 1.0)])
        assert tracer.completed() == []
        disabled = Tracer(enabled=False)
        disabled.complete("t000001", [Span("ghost", 0.0, 1.0)])
        assert disabled.completed() == []

    def test_completed_ring_is_bounded(self):
        tracer = Tracer(max_traces=3)
        for index in range(10):
            trace_id = tracer.start(f"n{index}")
            tracer.finish(trace_id)
        completed = tracer.completed()
        assert len(completed) == 3
        assert [trace.name for trace in completed] == ["n7", "n8", "n9"]

    def test_snapshot_is_json_shaped(self):
        tracer = Tracer()
        trace_id = tracer.start("verdict/s")
        tracer.record(trace_id, "queue", 0.0, 0.5)
        tracer.finish(trace_id)
        (payload,) = tracer.snapshot()
        assert payload["complete"] is True
        assert payload["spans"][0]["name"] == "queue"
        assert payload["duration_s"] == 0.5


class TestDisabledTracer:
    def test_everything_is_a_noop(self):
        tracer = Tracer(enabled=False)
        trace_id = tracer.start("x")
        assert trace_id is None
        tracer.record(trace_id, "a", 0.0, 1.0)
        with tracer.span(trace_id, "b"):
            pass
        tracer.finish(trace_id)
        tracer.discard(trace_id)
        assert tracer.active_count == 0
        assert tracer.completed() == []
        assert tracer.last_completed() is None
