"""Unit tests for the snapshot exporters (JSON, Prometheus, text)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs.export import (
    bundle,
    histogram_percentile,
    load_snapshot,
    render_prometheus,
    render_text,
    render_traces,
    save_snapshot,
)
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.tracing import Tracer


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests_total", "Requests seen",
                     server="srv1").inc(42)
    registry.gauge("queue_depth", "Live depth").set(7)
    hist = registry.histogram("stage_seconds", "Stage latency")
    for value in (0.001, 0.004, 0.02, 0.3):
        hist.observe(value)
    return registry


def _sample_traces() -> list[dict]:
    tracer = Tracer()
    trace_id = tracer.start("verdict/drv-0")
    tracer.record(trace_id, "queue", 0.0, 0.002)
    tracer.record(trace_id, "forward", 0.002, 0.010)
    tracer.finish(trace_id)
    return tracer.snapshot()


class TestBundleRoundtrip:
    def test_bundle_carries_metrics_and_traces(self):
        document = bundle(_sample_registry().snapshot(), _sample_traces())
        assert document["version"] == 1
        assert len(document["metrics"]) == 3
        assert len(document["traces"]) == 1

    def test_bundle_without_traces_omits_key(self):
        document = bundle(_sample_registry().snapshot())
        assert "traces" not in document

    def test_save_load_roundtrip(self, tmp_path):
        document = bundle(_sample_registry().snapshot(), _sample_traces())
        path = str(tmp_path / "snap.json")
        save_snapshot(document, path)
        loaded = load_snapshot(path)
        assert loaded == json.loads(json.dumps(document))

    def test_load_rejects_non_snapshot(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ConfigurationError):
            load_snapshot(str(path))

    def test_save_maps_non_finite_to_null(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("h_seconds")  # empty: min/max are +/-inf -> None
        path = str(tmp_path / "snap.json")
        save_snapshot(bundle(registry.snapshot()), path)
        (entry,) = load_snapshot(path)["metrics"]
        assert entry["min"] is None
        assert entry["max"] is None


class TestHistogramPercentileOnSnapshots:
    def test_matches_live_instrument(self, rng):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=LATENCY_BUCKETS)
        for value in rng.uniform(0.0005, 2.0, size=800):
            hist.observe(float(value))
        (entry,) = registry.snapshot()["metrics"]
        for q in (50.0, 95.0, 99.0):
            assert histogram_percentile(entry, q) == pytest.approx(
                hist.percentile(q))

    def test_survives_json_roundtrip(self, rng, tmp_path):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds")
        for value in rng.exponential(0.05, size=300):
            hist.observe(float(value))
        path = str(tmp_path / "snap.json")
        save_snapshot(bundle(registry.snapshot()), path)
        (entry,) = load_snapshot(path)["metrics"]
        assert histogram_percentile(entry, 95.0) == pytest.approx(
            hist.percentile(95.0))

    def test_empty_histogram_is_zero(self):
        entry = MetricsRegistry().histogram("h")._state() | {
            "name": "h", "kind": "histogram", "labels": {}}
        assert histogram_percentile(entry, 50.0) == 0.0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(bundle(_sample_registry().snapshot()))
        assert '# TYPE requests_total counter' in text
        assert '# HELP requests_total Requests seen' in text
        assert 'requests_total{server="srv1"} 42' in text
        assert '# TYPE queue_depth gauge' in text
        assert 'queue_depth 7' in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.01, 0.1))
        for value in (0.005, 0.05, 5.0):
            hist.observe(value)
        text = render_prometheus(bundle(registry.snapshot()))
        assert 'h_seconds_bucket{le="0.01"} 1' in text
        assert 'h_seconds_bucket{le="0.1"} 2' in text
        assert 'h_seconds_bucket{le="+Inf"} 3' in text
        assert 'h_seconds_count 3' in text
        assert 'h_seconds_sum 5.055' in text

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("x_total", link="a").inc()
        registry.counter("x_total", link="b").inc()
        text = render_prometheus(bundle(registry.snapshot()))
        assert text.count("# TYPE x_total counter") == 1


class TestTextRendering:
    def test_histogram_row_has_quantiles(self):
        text = render_text(bundle(_sample_registry().snapshot()))
        assert "stage_seconds" in text
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "ms" in text

    def test_unitless_histograms_are_not_scaled_to_ms(self):
        registry = MetricsRegistry()
        registry.histogram("batch_size", buckets=(1.0, 8.0)).observe(4)
        text = render_text(bundle(registry.snapshot()))
        assert "ms" not in text
        assert "p50=4.000" in text

    def test_zero_instruments_hidden_unless_requested(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total")
        document = bundle(registry.snapshot())
        assert render_text(document) == "(no metrics recorded)"
        assert "quiet_total" in render_text(document, zeros=True)


class TestTraceRendering:
    def test_renders_last_completed_trace(self):
        document = bundle(_sample_registry().snapshot(), _sample_traces())
        text = render_traces(document)
        assert "verdict/drv-0" in text
        assert "queue" in text
        assert "forward" in text

    def test_no_traces_message(self):
        assert render_traces(bundle(_sample_registry().snapshot())) == \
            "(no completed traces)"

    def test_limit_selects_most_recent(self):
        tracer = Tracer()
        for name in ("first", "second", "third"):
            tracer.finish(tracer.start(name))
        document = bundle(_sample_registry().snapshot(), tracer.snapshot())
        text = render_traces(document, limit=2)
        assert "first" not in text
        assert "second" in text and "third" in text
