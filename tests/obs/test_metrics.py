"""Unit tests for the metrics primitives: instruments, registry, fork-merge."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            Counter("c").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(7)
        a._merge(b._state())
        assert a.value == 10.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.inc(2.0)
        gauge.dec(4.0)
        assert gauge.value == 3.0

    def test_set_max_ratchets_upward_only(self):
        gauge = Gauge("g")
        gauge.set_max(4.0)
        gauge.set_max(2.0)
        assert gauge.value == 4.0

    def test_merge_takes_max(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(3.0)
        b.set(9.0)
        a._merge(b._state())
        assert a.value == 9.0


class TestHistogramBuckets:
    def test_buckets_must_be_sorted_and_unique(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            Histogram("h", buckets=())

    def test_upper_bounds_are_inclusive(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)   # lands in the <=1.0 bucket, not <=2.0
        state = hist._state()
        assert state["counts"] == [1, 0, 0]

    def test_overflow_lands_in_implicit_inf_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(100.0)
        state = hist._state()
        assert state["counts"] == [0, 0, 1]

    def test_boundary_placement_across_all_edges(self):
        bounds = (0.5, 1.0, 5.0)
        hist = Histogram("h", buckets=bounds)
        for bound in bounds:
            hist.observe(bound)          # inclusive: lands at its bound
            hist.observe(bound + 1e-9)   # exclusive: lands one bucket up
        assert hist._state()["counts"] == [1, 2, 2, 1]

    def test_streaming_aggregates(self):
        hist = Histogram("h", buckets=COUNT_BUCKETS)
        for value in (1, 2, 3, 10):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == 16.0
        assert hist.mean == 4.0
        assert hist.min == 1.0
        assert hist.max == 10.0

    def test_empty_histogram_is_all_zero(self):
        hist = Histogram("h")
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.min == 0.0
        assert hist.max == 0.0
        assert hist.percentile(50) == 0.0


class TestHistogramQuantiles:
    def test_single_sample_reports_itself(self):
        hist = Histogram("h")
        hist.observe(0.0123)
        for q in (0.0, 50.0, 99.0, 100.0):
            assert hist.percentile(q) == pytest.approx(0.0123, rel=1e-9)

    def test_out_of_range_percentile_rejected(self):
        hist = Histogram("h")
        with pytest.raises(ConfigurationError):
            hist.percentile(101)
        with pytest.raises(ConfigurationError):
            hist.percentile(-1)

    @pytest.mark.parametrize("q", [10.0, 50.0, 90.0, 95.0, 99.0])
    def test_estimates_track_numpy_on_uniform_samples(self, q, rng):
        samples = rng.uniform(0.0005, 1.0, size=5000)
        hist = Histogram("h", buckets=LATENCY_BUCKETS)
        for value in samples:
            hist.observe(float(value))
        exact = float(np.percentile(samples, q))
        estimate = hist.percentile(q)
        # Interpolation within a geometric bucket grid: coarse, but the
        # estimate must land within the bucket that holds the true value.
        assert estimate == pytest.approx(exact, rel=0.35, abs=1e-4)

    def test_estimates_track_numpy_on_lognormal_samples(self, rng):
        samples = np.exp(rng.normal(-4.0, 1.0, size=4000))
        hist = Histogram("h", buckets=LATENCY_BUCKETS)
        for value in samples:
            hist.observe(float(value))
        for q in (50.0, 95.0, 99.0):
            exact = float(np.percentile(samples, q))
            assert hist.percentile(q) == pytest.approx(exact, rel=0.4)

    def test_quantiles_are_monotone_in_q(self, rng):
        hist = Histogram("h", buckets=LATENCY_BUCKETS)
        for value in rng.exponential(0.05, size=500):
            hist.observe(float(value))
        estimates = [hist.percentile(q) for q in (1, 25, 50, 75, 95, 99)]
        assert estimates == sorted(estimates)

    def test_p100_is_observed_max(self, rng):
        hist = Histogram("h")
        samples = rng.uniform(0, 0.2, size=100)
        for value in samples:
            hist.observe(float(value))
        assert hist.percentile(100) == pytest.approx(float(samples.max()))


class TestRegistry:
    def test_same_key_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", link="a")
        b = registry.counter("x_total", link="a")
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total", link="a")
        b = registry.counter("x_total", link="b")
        a.inc()
        assert b.value == 0.0
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_get_returns_registered_or_none(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", link="a")
        assert registry.get("x_total", link="a") is counter
        assert registry.get("x_total", link="zzz") is None

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", a="1", b="2")
        b = registry.counter("x", b="2", a="1")
        assert a is b

    def test_snapshot_is_json_shaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "help text").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds").observe(0.01)
        snap = registry.snapshot()
        kinds = {entry["name"]: entry["kind"] for entry in snap["metrics"]}
        assert kinds == {"c_total": "counter", "g": "gauge",
                        "h_seconds": "histogram"}
        by_name = {e["name"]: e for e in snap["metrics"]}
        assert by_name["c_total"]["value"] == 2.0
        assert by_name["c_total"]["help"] == "help text"
        assert by_name["h_seconds"]["count"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert len(registry) == 0


class TestDrainMerge:
    def _worker_registry(self, counter_amount: float, gauge_level: float,
                         samples: list[float]) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(counter_amount)
        registry.gauge("depth").set(gauge_level)
        hist = registry.histogram("latency_seconds")
        for value in samples:
            hist.observe(value)
        return registry

    def test_drain_returns_delta_and_zeroes(self):
        registry = self._worker_registry(3, 2.0, [0.01])
        first = registry.drain()
        assert first["metrics"][0]["name"] in ("depth", "jobs_total",
                                               "latency_seconds")
        assert registry.counter("jobs_total").value == 0.0
        assert registry.histogram("latency_seconds").count == 0
        second = registry.drain()
        for entry in second["metrics"]:
            if entry["kind"] == "counter":
                assert entry["value"] == 0.0
            if entry["kind"] == "histogram":
                assert entry["count"] == 0

    def test_merge_adds_counters_and_histograms_takes_gauge_max(self):
        parent = self._worker_registry(1, 5.0, [0.01, 0.02])
        parent.merge(self._worker_registry(2, 3.0, [0.04]).snapshot())
        assert parent.counter("jobs_total").value == 3.0
        assert parent.gauge("depth").value == 5.0
        hist = parent.histogram("latency_seconds")
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.07)
        assert hist.max == pytest.approx(0.04)

    def test_merge_creates_unknown_instruments(self):
        parent = MetricsRegistry()
        parent.merge(self._worker_registry(4, 1.0, [0.5]).snapshot())
        assert parent.counter("jobs_total").value == 4.0
        assert parent.histogram("latency_seconds").count == 1

    def test_merge_is_associative(self):
        """(a + b) + c == a + (b + c) for every instrument kind."""
        def snapshots():
            return [
                self._worker_registry(1, 2.0, [0.001, 0.3]).snapshot(),
                self._worker_registry(5, 9.0, [0.02]).snapshot(),
                self._worker_registry(2, 4.0, [0.07, 0.07, 8.0]).snapshot(),
            ]

        left = MetricsRegistry()
        ab = MetricsRegistry()
        a, b, c = snapshots()
        ab.merge(a)
        ab.merge(b)
        left.merge(ab.snapshot())
        left.merge(c)

        right = MetricsRegistry()
        bc = MetricsRegistry()
        a, b, c = snapshots()
        bc.merge(b)
        bc.merge(c)
        right.merge(a)
        right.merge(bc.snapshot())

        assert left.snapshot() == right.snapshot()

    def test_merge_is_commutative(self):
        a = self._worker_registry(1, 2.0, [0.001]).snapshot()
        b = self._worker_registry(5, 9.0, [0.02, 1.0]).snapshot()
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()

    def test_merge_rejects_mismatched_buckets(self):
        parent = MetricsRegistry()
        parent.histogram("h", buckets=(1.0, 2.0))
        other = MetricsRegistry()
        other.histogram("h", buckets=(1.0, 2.0, 3.0)).observe(1.5)
        snap = other.snapshot()
        with pytest.raises(ConfigurationError):
            parent.merge(snap)


class TestConcurrency:
    def test_parallel_increments_are_not_lost(self):
        counter = Counter("c")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(2000)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 16000.0

    def test_snapshot_under_concurrent_writes_is_consistent(self):
        """A histogram snapshot never shows a half-applied observe.

        Writers hammer one histogram while a reader snapshots; in every
        snapshot the bucket counts must sum to the streaming count and
        the sum must be consistent with count*value (all observations
        use the same value, so sum == count * value exactly).
        """
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds", buckets=(0.5, 1.0))
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            while not stop.is_set():
                hist.observe(0.25)

        def reader():
            for _ in range(300):
                entry = registry.snapshot()["metrics"][0]
                if sum(entry["counts"]) != entry["count"]:
                    errors.append("bucket counts out of sync with count")
                if entry["sum"] != pytest.approx(0.25 * entry["count"]):
                    errors.append("sum out of sync with count")

        writers = [threading.Thread(target=writer) for _ in range(4)]
        for thread in writers:
            thread.start()
        reader()
        stop.set()
        for thread in writers:
            thread.join()
        assert errors == []

    def test_concurrent_instrument_creation_yields_one_instance(self):
        registry = MetricsRegistry()
        seen = []

        def create():
            seen.append(registry.counter("x_total", link="shared"))

        threads = [threading.Thread(target=create) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instance is seen[0] for instance in seen)
        assert len(registry) == 1


class TestProcessDefault:
    def test_get_registry_is_a_singleton_per_process(self):
        assert get_registry() is get_registry()

    def test_reset_registry_swaps_the_instance(self):
        before = get_registry()
        before.counter("x").inc()
        reset_registry()
        after = get_registry()
        assert after is not before
        assert len(after) == 0
