"""Shared fixtures for the DarNet reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _fresh_metrics_registry():
    """Give every test an empty process-default metrics registry.

    Instrumented modules (transport, health, workspace…) record into the
    process registry as a side effect; without this reset, counts would
    leak across tests and exact-value assertions would depend on
    execution order.
    """
    from repro.obs.metrics import reset_registry

    reset_registry()
    yield
    reset_registry()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_driving_dataset():
    """A small paired dataset shared across core tests (session-scoped)."""
    from repro.datasets import generate_driving_dataset

    return generate_driving_dataset(
        90, num_drivers=2, rng=np.random.default_rng(777))


@pytest.fixture(scope="session")
def tiny_alternative_dataset():
    """A small 18-class dataset shared across privacy tests."""
    from repro.datasets import generate_alternative_dataset

    return generate_alternative_dataset(
        4, num_drivers=2, rng=np.random.default_rng(778))


@pytest.fixture(scope="session")
def mixed_scenario_spec():
    """The committed mixed-class fleet scenario (old + extended classes)."""
    from pathlib import Path

    from repro.scenarios import ScenarioSpec

    return ScenarioSpec.load(
        str(Path(__file__).parent / "fixtures" / "scenario_mixed_spec.json"))


@pytest.fixture(scope="session")
def extended_ensemble(mixed_scenario_spec):
    """Extended 8-class heads trained on the mixed scenario's own windows.

    Epochs are chosen so both new classes are actually learned: the CNN
    separates CAMERA_COVERED frames, the IMU RNN separates the DROWSY
    lane-weave — the fused verdict stream then surfaces both classes.
    """
    from repro.core import CnnConfig, RnnConfig
    from repro.scenarios import scenario_training_set, train_extended_ensemble

    train = scenario_training_set(mixed_scenario_spec)
    return train_extended_ensemble(
        train,
        cnn_config=CnnConfig(epochs=16, width=0.5),
        rnn_config=RnnConfig(hidden_units=16, epochs=16),
        rng=np.random.default_rng(7))
