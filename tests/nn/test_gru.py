"""GRU and bidirectional GRU."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import GRU, Adam, BidirectionalGRU, Dense, NeuralNetwork, \
    Sequential
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
)


def test_gru_output_shapes(rng):
    last = GRU(5, 7, rng=rng)
    seq = GRU(5, 7, return_sequences=True, rng=rng)
    x = rng.normal(size=(3, 6, 5)).astype(np.float32)
    assert last.forward(x).shape == (3, 7)
    assert seq.forward(x).shape == (3, 6, 7)


def test_gru_rejects_wrong_features(rng):
    layer = GRU(5, 4, rng=rng)
    with pytest.raises(ShapeError):
        layer.forward(rng.normal(size=(2, 6, 3)).astype(np.float32))


def test_gru_reverse_equivalence(rng):
    fwd = GRU(3, 4, rng=np.random.default_rng(0))
    bwd = GRU(3, 4, reverse=True, rng=np.random.default_rng(0))
    x = rng.normal(size=(2, 5, 3)).astype(np.float32)
    np.testing.assert_allclose(bwd.forward(x),
                               fwd.forward(x[:, ::-1, :]), atol=1e-6)


def test_gru_input_gradient(rng):
    layer = GRU(3, 4, rng=rng)
    x = rng.normal(size=(2, 4, 3))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_gru_sequence_input_gradient(rng):
    layer = GRU(3, 4, return_sequences=True, rng=rng)
    x = rng.normal(size=(2, 4, 3))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_gru_param_gradients(rng):
    layer = GRU(2, 3, rng=rng)
    x = rng.normal(size=(2, 3, 2))
    errors = check_layer_param_gradients(layer, x, rng=rng)
    assert max(errors.values()) < 3e-2


def test_gru_fewer_params_than_lstm(rng):
    from repro.nn import LSTM
    gru = GRU(8, 16, rng=rng)
    lstm = LSTM(8, 16, rng=rng)
    assert gru.num_parameters() < lstm.num_parameters()


def test_bidirectional_gru_concat(rng):
    layer = BidirectionalGRU(3, 4, rng=np.random.default_rng(1))
    x = rng.normal(size=(2, 5, 3)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (2, 8)
    fwd = layer.forward_gru.forward(x)
    bwd = layer.backward_gru.forward(x)
    np.testing.assert_allclose(out, np.concatenate([fwd, bwd], axis=1),
                               atol=1e-6)


def test_bidirectional_gru_gradcheck(rng):
    layer = BidirectionalGRU(2, 3, rng=rng)
    x = rng.normal(size=(2, 3, 2))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_gru_trains_on_direction_task(rng):
    n, t = 100, 8
    ramps = np.linspace(-1, 1, t)
    x = np.empty((n, t, 1), dtype=np.float32)
    y = np.empty(n, dtype=np.int64)
    for i in range(n):
        direction = i % 2
        x[i, :, 0] = (ramps if direction else -ramps) + rng.normal(0, 0.05, t)
        y[i] = direction
    net = Sequential([BidirectionalGRU(1, 8, rng=rng), Dense(16, 2, rng=rng)])
    model = NeuralNetwork(net, optimizer_factory=lambda p: Adam(p, 5e-3),
                          grad_clip=5.0)
    model.fit(x, y, epochs=10, batch_size=16, rng=rng)
    assert model.evaluate(x, y) > 0.95


def test_imu_rnn_gru_cell_option():
    from repro.core.rnn import ImuSequenceRNN, RnnConfig
    from repro.datasets import DrivingBehavior, generate_imu_windows
    rng = np.random.default_rng(0)
    x = np.concatenate([
        generate_imu_windows(DrivingBehavior.NORMAL, 20, rng=rng),
        generate_imu_windows(DrivingBehavior.TALKING, 20, rng=rng),
    ])
    y = np.repeat([0, 1], 20)
    rnn = ImuSequenceRNN(RnnConfig(hidden_units=8, epochs=4, cell="gru"),
                         rng=rng)
    rnn.fit(x, y)
    assert rnn.evaluate(x, y) > 0.6


def test_imu_rnn_rejects_unknown_cell():
    from repro.core.rnn import RnnConfig, build_imu_rnn
    from repro.exceptions import ConfigurationError
    with pytest.raises(ConfigurationError):
        build_imu_rnn(RnnConfig(cell="transformer"))
