"""Parametrized gradient-check sweep across every differentiable layer.

Each layer's hand-derived backward pass is validated against central
finite differences through a random projection — the strongest guarantee
the substrate offers that training signals are correct.
"""

import numpy as np
import pytest

from repro.nn import (
    GRU,
    LSTM,
    AvgPool2D,
    BatchNorm,
    BidirectionalGRU,
    BidirectionalLSTM,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ParallelBranches,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
    numerical_gradient,
    relative_error,
)

RNG = np.random.default_rng(2024)

CASES = [
    ("dense", lambda r: Dense(5, 4, rng=r), (3, 5)),
    ("dense_nobias", lambda r: Dense(5, 4, use_bias=False, rng=r), (3, 5)),
    ("conv_same", lambda r: Conv2D(2, 3, 3, rng=r), (2, 2, 5, 5)),
    ("conv_stride", lambda r: Conv2D(2, 3, 3, stride=2, padding=1, rng=r),
     (2, 2, 6, 6)),
    ("conv_1x3", lambda r: Conv2D(2, 2, (1, 3), rng=r), (2, 2, 4, 4)),
    ("conv_3x1", lambda r: Conv2D(2, 2, (3, 1), rng=r), (2, 2, 4, 4)),
    ("maxpool", lambda r: MaxPool2D(2), (2, 2, 6, 6)),
    ("avgpool", lambda r: AvgPool2D(2), (2, 2, 6, 6)),
    ("avgpool_same", lambda r: AvgPool2D(3, stride=1, padding="same"),
     (2, 2, 5, 5)),
    ("gap", lambda r: GlobalAvgPool2D(), (2, 3, 4, 4)),
    ("relu", lambda r: ReLU(), (3, 7)),
    ("leaky", lambda r: LeakyReLU(0.2), (3, 7)),
    ("sigmoid", lambda r: Sigmoid(), (3, 7)),
    ("tanh", lambda r: Tanh(), (3, 7)),
    ("softmax", lambda r: Softmax(), (3, 5)),
    ("batchnorm2d", lambda r: BatchNorm(3), (6, 3, 4, 4)),
    ("batchnorm1d", lambda r: BatchNorm(4), (8, 4)),
    ("lstm", lambda r: LSTM(3, 4, rng=r), (2, 4, 3)),
    ("lstm_seq", lambda r: LSTM(3, 4, return_sequences=True, rng=r),
     (2, 4, 3)),
    ("lstm_rev", lambda r: LSTM(3, 4, reverse=True, rng=r), (2, 4, 3)),
    ("gru", lambda r: GRU(3, 4, rng=r), (2, 4, 3)),
    ("gru_seq", lambda r: GRU(3, 4, return_sequences=True, rng=r),
     (2, 4, 3)),
    ("bilstm", lambda r: BidirectionalLSTM(3, 4, rng=r), (2, 4, 3)),
    ("bigru", lambda r: BidirectionalGRU(3, 4, rng=r), (2, 4, 3)),
    ("branches", lambda r: ParallelBranches([
        Sequential([Conv2D(2, 2, 1, rng=r), ReLU()]),
        Conv2D(2, 3, 3, rng=r),
    ]), (2, 2, 4, 4)),
]


@pytest.mark.parametrize("name,factory,shape", CASES,
                         ids=[case[0] for case in CASES])
def test_input_gradients(name, factory, shape):
    layer = factory(np.random.default_rng(1))
    x = np.random.default_rng(2).normal(size=shape)
    error = check_layer_input_gradient(layer, x,
                                       rng=np.random.default_rng(3))
    assert error < 3e-2, f"{name}: input gradient error {error}"


PARAM_CASES = [case for case in CASES
               if case[0] in ("dense", "conv_same", "conv_stride",
                              "batchnorm2d", "lstm", "gru", "bilstm",
                              "bigru", "branches")]


@pytest.mark.parametrize("name,factory,shape", PARAM_CASES,
                         ids=[case[0] for case in PARAM_CASES])
def test_parameter_gradients(name, factory, shape):
    layer = factory(np.random.default_rng(1))
    x = np.random.default_rng(2).normal(size=shape)
    errors = check_layer_param_gradients(layer, x,
                                         rng=np.random.default_rng(3))
    worst = max(errors.values())
    assert worst < 4e-2, f"{name}: worst param gradient error {worst}"


def test_micro_inception_gradients_descend():
    """End-to-end sanity: MicroInception's gradients reduce the CE loss.

    A direct numerical input-gradient check is infeasible at this depth in
    float32 (true gradients ~1e-8 sit below finite-difference noise), so
    we verify the training-relevant property instead: repeated steps along
    the analytic gradient monotonically-ish drive the loss down.
    """
    from repro.core import build_micro_inception
    from repro.nn import SGD, SoftmaxCrossEntropy
    net = build_micro_inception(3, width=0.25, dropout=0.0,
                                rng=np.random.default_rng(0))
    net.set_training(True)
    x = np.random.default_rng(1).normal(
        0.5, 0.2, size=(8, 1, 16, 16)).astype(np.float32)
    labels = np.random.default_rng(2).integers(0, 3, 8)
    loss = SoftmaxCrossEntropy()
    optimizer = SGD(list(net.parameters()), learning_rate=0.05,
                    momentum=0.9)
    losses = []
    for _ in range(15):
        value = loss.forward(net.forward(x), labels)
        losses.append(value)
        optimizer.zero_grad()
        net.backward(loss.backward())
        optimizer.step()
    assert losses[-1] < 0.5 * losses[0]


def test_imu_rnn_end_to_end_gradient():
    """Numerical check through the stacked bidirectional LSTM classifier."""
    from repro.core.rnn import RnnConfig, build_imu_rnn
    from repro.nn import SoftmaxCrossEntropy
    config = RnnConfig(hidden_units=4, num_layers=2, dropout=0.0)
    net = build_imu_rnn(config, rng=np.random.default_rng(0))
    net.set_training(True)
    x = np.random.default_rng(1).normal(size=(2, 5, 12)).astype(np.float32)
    labels = np.array([0, 2])
    loss = SoftmaxCrossEntropy()

    def scalar(probe):
        return loss.forward(net.forward(probe), labels)

    loss.forward(net.forward(x), labels)
    analytic = net.backward(loss.backward())
    numeric = numerical_gradient(scalar, x.astype(np.float64), eps=1e-2)
    assert relative_error(analytic, numeric) < 8e-2
