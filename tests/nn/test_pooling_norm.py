"""Pooling, batch-norm, dropout, flatten/reshape, and branch composites."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    ParallelBranches,
    ReLU,
    Reshape,
    Residual,
    Sequential,
)
from repro.nn.gradcheck import check_layer_input_gradient


def test_maxpool_known_values():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = MaxPool2D(2).forward(x)
    np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])


def test_avgpool_known_values():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    out = AvgPool2D(2).forward(x)
    np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])


def test_global_avg_pool(rng):
    x = rng.normal(size=(3, 5, 4, 4)).astype(np.float32)
    out = GlobalAvgPool2D().forward(x)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-6)


@pytest.mark.parametrize("layer", [
    MaxPool2D(2), AvgPool2D(2), AvgPool2D(3, stride=1, padding="same"),
    GlobalAvgPool2D(),
])
def test_pool_gradients(rng, layer):
    x = rng.normal(size=(2, 2, 6, 6))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_maxpool_backward_routes_to_argmax():
    x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]], dtype=np.float32)
    layer = MaxPool2D(2)
    layer.forward(x)
    dx = layer.backward(np.array([[[[1.0]]]], dtype=np.float32))
    np.testing.assert_allclose(dx[0, 0], [[0, 0], [0, 1.0]])


def test_pool_rejects_2d_input(rng):
    with pytest.raises(ShapeError):
        MaxPool2D(2).forward(rng.normal(size=(4, 4)))


# -- batch norm --------------------------------------------------------------

def test_batchnorm_normalizes_training_batch(rng):
    layer = BatchNorm(3)
    x = rng.normal(5.0, 3.0, size=(64, 3)).astype(np.float32)
    out = layer.forward(x)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-4)
    np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)


def test_batchnorm_4d_reduces_spatial(rng):
    layer = BatchNorm(2)
    x = rng.normal(-2.0, 0.5, size=(8, 2, 5, 5)).astype(np.float32)
    out = layer.forward(x)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)


def test_batchnorm_eval_uses_running_stats(rng):
    layer = BatchNorm(2, momentum=0.0)  # running stats = last batch
    x = rng.normal(3.0, 2.0, size=(128, 2)).astype(np.float32)
    layer.forward(x)
    layer.set_training(False)
    out = layer.forward(x)
    np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=5e-2)


def test_batchnorm_gradient(rng):
    layer = BatchNorm(3)
    x = rng.normal(size=(8, 3))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_batchnorm_rejects_wrong_channels(rng):
    with pytest.raises(ShapeError):
        BatchNorm(3).forward(rng.normal(size=(4, 5)).astype(np.float32))


# -- dropout --------------------------------------------------------------

def test_dropout_identity_in_eval(rng):
    layer = Dropout(0.5, rng=rng)
    layer.set_training(False)
    x = rng.normal(size=(4, 4)).astype(np.float32)
    np.testing.assert_array_equal(layer.forward(x), x)


def test_dropout_preserves_expectation(rng):
    layer = Dropout(0.3, rng=rng)
    x = np.ones((200, 200), dtype=np.float32)
    out = layer.forward(x)
    assert abs(out.mean() - 1.0) < 0.02


def test_dropout_invalid_rate():
    with pytest.raises(ConfigurationError):
        Dropout(1.0)
    with pytest.raises(ConfigurationError):
        Dropout(-0.1)


def test_dropout_backward_uses_same_mask(rng):
    layer = Dropout(0.5, rng=rng)
    x = np.ones((10, 10), dtype=np.float32)
    out = layer.forward(x)
    grad = layer.backward(np.ones_like(out))
    np.testing.assert_array_equal(grad, out)


# -- shape layers / composites -----------------------------------------------

def test_flatten_roundtrip(rng):
    x = rng.normal(size=(3, 2, 4, 4)).astype(np.float32)
    layer = Flatten()
    out = layer.forward(x)
    assert out.shape == (3, 32)
    np.testing.assert_array_equal(layer.backward(out), x)


def test_reshape(rng):
    x = rng.normal(size=(2, 12)).astype(np.float32)
    layer = Reshape((3, 4))
    assert layer.forward(x).shape == (2, 3, 4)
    assert layer.backward(layer.forward(x)).shape == (2, 12)


def test_parallel_branches_concat(rng):
    branches = ParallelBranches([
        Sequential([ReLU()]),
        Sequential([ReLU()]),
    ])
    x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
    out = branches.forward(x)
    assert out.shape == (2, 6, 4, 4)


def test_parallel_branches_backward_sums(rng):
    branches = ParallelBranches([ReLU(), ReLU()])
    x = np.abs(rng.normal(size=(2, 3, 4, 4))).astype(np.float32)
    out = branches.forward(x)
    dx = branches.backward(np.ones_like(out))
    np.testing.assert_allclose(dx, 2.0)  # both branches pass grad 1


def test_parallel_branches_gradcheck(rng):
    from repro.nn import Conv2D
    branches = ParallelBranches([
        Conv2D(2, 3, 1, rng=rng),
        Sequential([Conv2D(2, 2, 3, rng=rng), ReLU()]),
    ])
    x = rng.normal(size=(2, 2, 5, 5))
    assert check_layer_input_gradient(branches, x, rng=rng) < 2e-2


def test_parallel_branches_requires_branches():
    with pytest.raises(ConfigurationError):
        ParallelBranches([])


def test_residual_adds_input(rng):
    class Zero(ReLU):
        def forward(self, x):
            super().forward(x)
            return np.zeros_like(x)

        def backward(self, grad):
            return np.zeros_like(grad)

    residual = Residual(Zero())
    x = rng.normal(size=(2, 3)).astype(np.float32)
    np.testing.assert_array_equal(residual.forward(x), x)


def test_residual_shape_mismatch(rng):
    from repro.nn import Dense
    residual = Residual(Dense(4, 3, rng=rng))
    with pytest.raises(ShapeError):
        residual.forward(rng.normal(size=(2, 4)).astype(np.float32))
