"""Conv2D: correctness against a naive reference, gradients, shapes."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import Conv2D
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
)
from repro.nn.layers.conv import col2im, conv_output_size, im2col


def naive_conv(x, weight, bias, stride, pad):
    """Straightforward quadruple-loop convolution for reference."""
    n, c, h, w = x.shape
    oc, _, kh, kw = weight.shape
    sh, sw = stride
    ph, pw = pad
    x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    out = np.zeros((n, oc, oh, ow), dtype=np.float64)
    for b in range(n):
        for f in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = x[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[b, f, i, j] = np.sum(patch * weight[f])
            if bias is not None:
                out[b, f] += bias[f]
    return out


@pytest.mark.parametrize("kernel,stride,padding", [
    (3, 1, "same"), (3, 2, 1), ((1, 3), 1, "same"), ((3, 1), 1, "same"),
    (2, 2, "valid"), (5, 1, 2),
])
def test_conv_matches_naive(rng, kernel, stride, padding):
    layer = Conv2D(3, 4, kernel, stride=stride, padding=padding, rng=rng)
    x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
    out = layer.forward(x)
    expected = naive_conv(x.astype(np.float64),
                          layer.weight.value.astype(np.float64),
                          layer.bias.value.astype(np.float64),
                          layer.stride, layer.padding)
    np.testing.assert_allclose(out, expected, rtol=1e-4, atol=1e-4)


def test_conv_same_padding_preserves_size(rng):
    layer = Conv2D(1, 2, 3, padding="same", rng=rng)
    out = layer.forward(rng.normal(size=(1, 1, 10, 10)))
    assert out.shape == (1, 2, 10, 10)


def test_conv_stride_two_halves_size(rng):
    layer = Conv2D(1, 2, 3, stride=2, padding=1, rng=rng)
    out = layer.forward(rng.normal(size=(1, 1, 16, 16)))
    assert out.shape == (1, 2, 8, 8)


def test_conv_rejects_wrong_channels(rng):
    layer = Conv2D(3, 4, 3, rng=rng)
    with pytest.raises(ShapeError):
        layer.forward(rng.normal(size=(1, 2, 8, 8)))


def test_conv_rejects_collapsed_output():
    with pytest.raises(ShapeError):
        conv_output_size(2, 5, 1, 0)


def test_conv_input_gradient(rng):
    layer = Conv2D(2, 3, 3, stride=1, padding="same", rng=rng)
    x = rng.normal(size=(2, 2, 6, 6))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_conv_param_gradients(rng):
    layer = Conv2D(2, 3, 3, stride=2, padding=1, rng=rng)
    x = rng.normal(size=(2, 2, 6, 6))
    errors = check_layer_param_gradients(layer, x, rng=rng)
    assert max(errors.values()) < 2e-2


def test_conv_no_bias(rng):
    layer = Conv2D(1, 2, 3, use_bias=False, rng=rng)
    assert layer.bias is None
    assert len(list(layer.parameters())) == 1


def test_im2col_col2im_adjoint(rng):
    """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
    x = rng.normal(size=(2, 3, 7, 7))
    kernel, stride, pad = (3, 3), (2, 2), (1, 1)
    cols, _ = im2col(x, kernel, stride, pad)
    y = rng.normal(size=cols.shape)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * col2im(y, x.shape, kernel, stride, pad)))
    assert abs(lhs - rhs) < 1e-6 * max(abs(lhs), 1.0)


def test_backward_before_forward_raises(rng):
    layer = Conv2D(1, 1, 3, rng=rng)
    from repro.exceptions import ReproError
    with pytest.raises(ReproError):
        layer.backward(np.zeros((1, 1, 4, 4), dtype=np.float32))
