"""NeuralNetwork training wrapper, metrics, serialization."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    ConfigurationError,
    NotFittedError,
    SerializationError,
    ShapeError,
)
from repro.nn import (
    Adam,
    Dense,
    MSELoss,
    NeuralNetwork,
    ReLU,
    SGD,
    Sequential,
    accuracy,
    confusion_matrix,
    copy_weights,
    format_confusion,
    iterate_minibatches,
    load_weights,
    normalized_confusion,
    per_class_accuracy,
    precision_recall_f1,
    save_weights,
    top_k_accuracy,
)


def _toy_model(rng, in_dim=4, classes=3):
    net = Sequential([Dense(in_dim, 16, rng=rng), ReLU(),
                      Dense(16, classes, rng=rng)])
    return NeuralNetwork(net, optimizer_factory=lambda p: Adam(p, 5e-3))


def _blobs(rng, n=90, classes=3, dim=4):
    centers = rng.normal(0, 4.0, size=(classes, dim))
    y = rng.integers(0, classes, n)
    x = centers[y] + rng.normal(0, 0.5, size=(n, dim))
    return x.astype(np.float32), y


def test_fit_learns_blobs(rng):
    x, y = _blobs(rng)
    model = _toy_model(rng)
    history = model.fit(x, y, epochs=30, batch_size=16, rng=rng)
    assert history.epochs == 30
    assert history.loss[-1] < history.loss[0]
    assert model.evaluate(x, y) > 0.9


def test_fit_requires_matching_lengths(rng):
    model = _toy_model(rng)
    with pytest.raises(ShapeError):
        model.fit(np.zeros((4, 4), dtype=np.float32), np.zeros(5, dtype=int))


def test_predict_before_fit_raises(rng):
    model = _toy_model(rng)
    with pytest.raises(NotFittedError):
        model.predict(np.zeros((2, 4), dtype=np.float32))


def test_mark_fitted_allows_inference(rng):
    model = _toy_model(rng)
    model.mark_fitted()
    assert model.predict(np.zeros((2, 4), dtype=np.float32)).shape == (2,)


def test_optimizer_factory_required(rng):
    with pytest.raises(ConfigurationError):
        NeuralNetwork(Sequential([Dense(2, 2, rng=rng)]))


def test_predict_proba_rows_sum_to_one(rng):
    x, y = _blobs(rng, n=30)
    model = _toy_model(rng)
    model.fit(x, y, epochs=2, rng=rng)
    probs = model.predict_proba(x)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-5)


def test_validation_and_early_stopping(rng):
    x, y = _blobs(rng, n=60)
    model = _toy_model(rng)
    history = model.fit(x[:40], y[:40], epochs=50, batch_size=8, rng=rng,
                        validation=(x[40:], y[40:]),
                        early_stopping_patience=3)
    assert history.epochs <= 50
    assert len(history.val_loss) == history.epochs


def test_batched_inference_matches_single_batch(rng):
    x, y = _blobs(rng, n=50)
    model = _toy_model(rng)
    model.fit(x, y, epochs=2, rng=rng)
    full = model.forward_in_batches(x, batch_size=50)
    chunked = model.forward_in_batches(x, batch_size=7)
    np.testing.assert_allclose(full, chunked, atol=1e-5)


def test_target_transform_regression(rng):
    """MSE training against transformed targets (the distillation path)."""
    net = Sequential([Dense(3, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng)])
    model = NeuralNetwork(net, loss=MSELoss(),
                          optimizer_factory=lambda p: SGD(p, 0.05))
    x = rng.normal(size=(40, 3)).astype(np.float32)
    history = model.fit(x, x, epochs=20, batch_size=8, rng=rng,
                        target_transform=lambda t: 2.0 * t)
    assert history.loss[-1] < history.loss[0]


def test_iterate_minibatches_covers_all_indices(rng):
    batches = list(iterate_minibatches(23, 5, rng))
    flat = np.concatenate(batches)
    assert sorted(flat.tolist()) == list(range(23))
    assert all(len(b) <= 5 for b in batches)


# -- metrics ------------------------------------------------------------

def test_accuracy_basic():
    assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)


def test_accuracy_empty_raises():
    with pytest.raises(ShapeError):
        accuracy(np.array([]), np.array([]))


def test_top_k_accuracy():
    probs = np.array([[0.5, 0.3, 0.2], [0.1, 0.2, 0.7]])
    y = np.array([1, 0])
    assert top_k_accuracy(y, probs, k=1) == 0.0
    assert top_k_accuracy(y, probs, k=2) == pytest.approx(0.5)
    assert top_k_accuracy(y, probs, k=3) == 1.0


def test_top_k_validates_k():
    probs = np.ones((2, 3)) / 3
    with pytest.raises(ShapeError):
        top_k_accuracy(np.array([0, 1]), probs, k=4)


def test_confusion_matrix_counts():
    matrix = confusion_matrix(np.array([0, 0, 1, 2]), np.array([0, 1, 1, 2]),
                              num_classes=3)
    expected = np.array([[1, 1, 0], [0, 1, 0], [0, 0, 1]])
    np.testing.assert_array_equal(matrix, expected)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)),
                min_size=1, max_size=50))
def test_confusion_matrix_total_equals_samples(pairs):
    y_true = np.array([p[0] for p in pairs])
    y_pred = np.array([p[1] for p in pairs])
    matrix = confusion_matrix(y_true, y_pred, num_classes=5)
    assert matrix.sum() == len(pairs)
    # Diagonal sum / total == accuracy.
    assert np.trace(matrix) / len(pairs) == pytest.approx(
        accuracy(y_true, y_pred))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                min_size=1, max_size=40))
def test_normalized_confusion_rows_sum_to_one_or_zero(pairs):
    y_true = np.array([p[0] for p in pairs])
    y_pred = np.array([p[1] for p in pairs])
    norm = normalized_confusion(confusion_matrix(y_true, y_pred, 4))
    sums = norm.sum(axis=1)
    for value in sums:
        assert value == pytest.approx(1.0) or value == pytest.approx(0.0)


def test_per_class_accuracy():
    y_true = np.array([0, 0, 1, 1])
    y_pred = np.array([0, 1, 1, 1])
    np.testing.assert_allclose(per_class_accuracy(y_true, y_pred, 2),
                               [0.5, 1.0])


def test_precision_recall_f1_perfect():
    y = np.array([0, 1, 2, 0])
    precision, recall, f1 = precision_recall_f1(y, y, 3)
    np.testing.assert_allclose(precision, 1.0)
    np.testing.assert_allclose(recall, 1.0)
    np.testing.assert_allclose(f1, 1.0)


def test_format_confusion_renders(rng):
    matrix = confusion_matrix(rng.integers(0, 3, 20), rng.integers(0, 3, 20),
                              3)
    text = format_confusion(matrix, ["a", "b", "c"])
    assert "a" in text and len(text.splitlines()) == 4


# -- serialization ----------------------------------------------------------

def test_save_load_roundtrip(rng, tmp_path):
    model = _toy_model(rng)
    x, y = _blobs(rng, n=30)
    model.fit(x, y, epochs=2, rng=rng)
    path = os.path.join(tmp_path, "weights.npz")
    save_weights(model.network, path)
    fresh = _toy_model(np.random.default_rng(99))
    load_weights(fresh.network, path)
    fresh.mark_fitted()
    np.testing.assert_allclose(model.predict_logits(x),
                               fresh.predict_logits(x), atol=1e-5)


def test_load_missing_file_raises(rng, tmp_path):
    model = _toy_model(rng)
    with pytest.raises(SerializationError):
        load_weights(model.network, os.path.join(tmp_path, "nope.npz"))


def test_load_strict_shape_mismatch(rng, tmp_path):
    small = Sequential([Dense(4, 8, rng=rng)])
    big = Sequential([Dense(4, 16, rng=rng)])
    path = os.path.join(tmp_path, "w.npz")
    save_weights(small, path)
    with pytest.raises(SerializationError):
        load_weights(big, path)


def test_copy_weights(rng):
    src = Sequential([Dense(3, 5, rng=rng), ReLU(), Dense(5, 2, rng=rng)])
    dst = Sequential([Dense(3, 5, rng=np.random.default_rng(5)), ReLU(),
                      Dense(5, 2, rng=np.random.default_rng(6))])
    copied = copy_weights(src, dst)
    assert copied == 4  # two weights + two biases
    for s, d in zip(src.parameters(), dst.parameters()):
        np.testing.assert_array_equal(s.value, d.value)


def test_copy_weights_strict_mismatch(rng):
    src = Sequential([Dense(3, 5, rng=rng)])
    dst = Sequential([Dense(3, 6, rng=rng)])
    with pytest.raises(SerializationError):
        copy_weights(src, dst)


def test_save_load_batchnorm_running_stats(rng, tmp_path):
    from repro.nn import BatchNorm
    net = Sequential([Dense(4, 3, rng=rng), BatchNorm(3)])
    net.forward(rng.normal(2.0, 1.0, size=(32, 4)).astype(np.float32))
    path = os.path.join(tmp_path, "bn.npz")
    save_weights(net, path)
    fresh = Sequential([Dense(4, 3, rng=rng), BatchNorm(3)])
    load_weights(fresh, path)
    bn_old = net.layers[1]
    bn_new = fresh.layers[1]
    np.testing.assert_array_equal(bn_old.running_mean, bn_new.running_mean)
    np.testing.assert_array_equal(bn_old.running_var, bn_new.running_var)
