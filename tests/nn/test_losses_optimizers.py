"""Losses and optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ConfigurationError, ReproError, ShapeError
from repro.nn import SGD, Adam, HingeLoss, LearningRateSchedule, MSELoss, \
    SoftmaxCrossEntropy
from repro.nn.gradcheck import check_loss_gradient
from repro.nn.layers.base import Parameter


# -- cross entropy ----------------------------------------------------------

def test_ce_known_value():
    loss = SoftmaxCrossEntropy()
    logits = np.array([[np.log(3.0), 0.0]], dtype=np.float64)
    # softmax = [0.75, 0.25]; CE for label 0 = -log(0.75)
    value = loss.forward(logits, np.array([0]))
    assert abs(value + np.log(0.75)) < 1e-5


def test_ce_gradient(rng):
    loss = SoftmaxCrossEntropy()
    logits = rng.normal(size=(5, 4))
    labels = rng.integers(0, 4, 5)
    assert check_loss_gradient(loss, logits, labels) < 1e-2


def test_ce_label_smoothing_gradient(rng):
    loss = SoftmaxCrossEntropy(label_smoothing=0.1)
    logits = rng.normal(size=(4, 3))
    labels = rng.integers(0, 3, 4)
    assert check_loss_gradient(loss, logits, labels) < 1e-2


def test_ce_class_weights_scale_loss(rng):
    logits = rng.normal(size=(6, 3))
    labels = np.zeros(6, dtype=np.int64)
    plain = SoftmaxCrossEntropy().forward(logits, labels)
    weighted = SoftmaxCrossEntropy(
        class_weights=np.array([2.0, 1.0, 1.0])).forward(logits, labels)
    assert abs(weighted - 2.0 * plain) < 1e-5


def test_ce_rejects_bad_shapes(rng):
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ShapeError):
        loss.forward(rng.normal(size=(4,)), np.zeros(4, dtype=int))
    with pytest.raises(ShapeError):
        loss.forward(rng.normal(size=(4, 3)), np.zeros(5, dtype=int))


def test_ce_backward_before_forward():
    with pytest.raises(ReproError):
        SoftmaxCrossEntropy().backward()


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (3, 4), elements=st.floats(-30, 30)),
       st.lists(st.integers(0, 3), min_size=3, max_size=3))
def test_ce_gradient_sums_to_zero_per_sample(logits, labels):
    """d(CE)/d(logits) rows sum to 0 (softmax mass conservation)."""
    loss = SoftmaxCrossEntropy()
    loss.forward(logits, np.array(labels))
    grad = loss.backward()
    np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)


# -- MSE / hinge --------------------------------------------------------------

def test_mse_value_and_gradient(rng):
    loss = MSELoss()
    pred = rng.normal(size=(4, 3))
    target = rng.normal(size=(4, 3))
    value = loss.forward(pred, target)
    assert abs(value - np.mean((pred - target) ** 2)) < 1e-6
    assert check_loss_gradient(loss, pred, target) < 1e-2


def test_mse_shape_mismatch(rng):
    with pytest.raises(ShapeError):
        MSELoss().forward(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)))


def test_hinge_zero_when_margin_satisfied():
    scores = np.array([[10.0, 0.0, 0.0]])
    assert HingeLoss().forward(scores, np.array([0])) == 0.0


def test_hinge_gradient(rng):
    loss = HingeLoss()
    scores = rng.normal(size=(5, 4))
    labels = rng.integers(0, 4, 5)
    assert check_loss_gradient(loss, scores, labels) < 1e-2


# -- optimizers --------------------------------------------------------------

def _quadratic_params(rng):
    return [Parameter(rng.normal(size=(4,)).astype(np.float32), "w")]


def test_sgd_plain_step():
    param = Parameter(np.array([1.0, 2.0], dtype=np.float32), "w")
    opt = SGD([param], learning_rate=0.1)
    param.grad[:] = np.array([1.0, -1.0])
    opt.step()
    np.testing.assert_allclose(param.value, [0.9, 2.1], rtol=1e-6)


def test_sgd_momentum_accumulates():
    param = Parameter(np.zeros(1, dtype=np.float32), "w")
    opt = SGD([param], learning_rate=0.1, momentum=0.9)
    for _ in range(3):
        param.grad[:] = 1.0
        opt.step()
        param.zero_grad()
    # velocity: -0.1, -0.19, -0.271 -> position sum
    np.testing.assert_allclose(param.value, [-0.561], rtol=1e-5)


def test_sgd_weight_decay_shrinks_weights():
    param = Parameter(np.array([10.0], dtype=np.float32), "w")
    opt = SGD([param], learning_rate=0.1, weight_decay=0.5)
    param.grad[:] = 0.0
    opt.step()
    np.testing.assert_allclose(param.value, [9.5], rtol=1e-6)


def test_sgd_skips_frozen_parameters():
    param = Parameter(np.ones(2, dtype=np.float32), "w", trainable=False)
    opt = SGD([param], learning_rate=1.0)
    param.grad[:] = 1.0
    opt.step()
    np.testing.assert_allclose(param.value, 1.0)


@pytest.mark.parametrize("factory", [
    lambda p: SGD(p, 0.05, momentum=0.9),
    lambda p: Adam(p, 0.1),
])
def test_optimizers_minimize_quadratic(rng, factory):
    target = np.array([1.0, -2.0, 3.0, 0.5], dtype=np.float32)
    params = _quadratic_params(rng)
    opt = factory(params)
    for _ in range(200):
        opt.zero_grad()
        params[0].grad += 2.0 * (params[0].value - target)
        opt.step()
    np.testing.assert_allclose(params[0].value, target, atol=1e-2)


def test_adam_bias_correction_first_step():
    param = Parameter(np.zeros(1, dtype=np.float32), "w")
    opt = Adam([param], learning_rate=0.1)
    param.grad[:] = 5.0
    opt.step()
    # With bias correction the first step is ~ -lr * sign(grad).
    np.testing.assert_allclose(param.value, [-0.1], atol=1e-5)


def test_clip_gradients_scales_to_norm():
    param = Parameter(np.zeros(2, dtype=np.float32), "w")
    opt = SGD([param], learning_rate=0.1)
    param.grad[:] = np.array([3.0, 4.0])  # norm 5
    pre = opt.clip_gradients(1.0)
    assert abs(pre - 5.0) < 1e-6
    assert abs(np.linalg.norm(param.grad) - 1.0) < 1e-5


def test_clip_noop_when_under_limit():
    param = Parameter(np.zeros(2, dtype=np.float32), "w")
    opt = SGD([param], learning_rate=0.1)
    param.grad[:] = np.array([0.3, 0.4])
    opt.clip_gradients(1.0)
    np.testing.assert_allclose(param.grad, [0.3, 0.4])


def test_optimizer_validation():
    param = Parameter(np.zeros(1, dtype=np.float32), "w")
    with pytest.raises(ConfigurationError):
        SGD([], learning_rate=0.1)
    with pytest.raises(ConfigurationError):
        SGD([param], learning_rate=-1.0)
    with pytest.raises(ConfigurationError):
        SGD([param], learning_rate=0.1, momentum=1.5)
    with pytest.raises(ConfigurationError):
        SGD([param], learning_rate=0.1, nesterov=True)
    with pytest.raises(ConfigurationError):
        Adam([param], learning_rate=0.1, beta1=1.0)


def test_lr_schedule_decays():
    param = Parameter(np.zeros(1, dtype=np.float32), "w")
    opt = SGD([param], learning_rate=1.0)
    schedule = LearningRateSchedule(opt, step_size=2, gamma=0.5)
    rates = [schedule.on_epoch_end() for _ in range(6)]
    assert rates == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]


def test_lr_schedule_respects_floor():
    param = Parameter(np.zeros(1, dtype=np.float32), "w")
    opt = SGD([param], learning_rate=1e-5)
    schedule = LearningRateSchedule(opt, step_size=1, gamma=0.1,
                                    min_lr=1e-6)
    for _ in range(10):
        schedule.on_epoch_end()
    assert opt.learning_rate == pytest.approx(1e-6)
