"""Dense layer and activation functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ShapeError
from repro.nn import Dense, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
)
from repro.nn.layers.activations import log_softmax, softmax


def test_dense_affine_identity(rng):
    layer = Dense(3, 2, rng=rng)
    layer.weight.value = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.float32)
    layer.bias.value = np.array([0.5, -0.5], dtype=np.float32)
    out = layer.forward(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
    np.testing.assert_allclose(out, [[4.5, 4.5]])


def test_dense_shape_validation(rng):
    layer = Dense(3, 2, rng=rng)
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((4, 5), dtype=np.float32))
    with pytest.raises(ShapeError):
        layer.forward(np.zeros((4, 3, 1), dtype=np.float32))


def test_dense_gradients(rng):
    layer = Dense(4, 3, rng=rng)
    x = rng.normal(size=(5, 4))
    assert check_layer_input_gradient(layer, x, rng=rng) < 1e-2
    errors = check_layer_param_gradients(layer, x, rng=rng)
    assert max(errors.values()) < 1e-2


def test_dense_no_bias(rng):
    layer = Dense(4, 3, use_bias=False, rng=rng)
    assert layer.bias is None
    out = layer.forward(np.zeros((2, 4), dtype=np.float32))
    np.testing.assert_allclose(out, 0.0)


@pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh,
                                       Softmax])
def test_activation_gradients(rng, layer_cls):
    layer = layer_cls()
    x = rng.normal(size=(4, 6))
    assert check_layer_input_gradient(layer, x, rng=rng) < 1e-2


def test_relu_clamps_negatives():
    out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
    np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])


def test_leaky_relu_slope():
    out = LeakyReLU(0.1).forward(np.array([[-10.0, 10.0]]))
    np.testing.assert_allclose(out, [[-1.0, 10.0]], rtol=1e-6)


def test_sigmoid_range_and_midpoint():
    out = Sigmoid().forward(np.array([[0.0, 100.0, -100.0]]))
    np.testing.assert_allclose(out, [[0.5, 1.0, 0.0]], atol=1e-6)


def test_tanh_odd_symmetry(rng):
    x = rng.normal(size=(3, 3)).astype(np.float32)
    layer = Tanh()
    np.testing.assert_allclose(layer.forward(x), -layer.forward(-x),
                               atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, (4, 5), elements=st.floats(-50, 50)))
def test_softmax_is_distribution(logits):
    probs = softmax(logits, axis=1)
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)


def test_softmax_handles_huge_logits():
    probs = softmax(np.array([[1e30, 0.0, -1e30]]))
    assert np.isfinite(probs).all()
    np.testing.assert_allclose(probs[0, 0], 1.0)


def test_softmax_shift_invariance(rng):
    logits = rng.normal(size=(3, 4))
    np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0),
                               atol=1e-9)


def test_log_softmax_matches_log_of_softmax(rng):
    logits = rng.normal(size=(3, 4))
    np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)),
                               atol=1e-9)
