"""Tests for weight initializers."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.initializers import (
    get_initializer,
    glorot_uniform,
    he_normal,
    ones,
    orthogonal,
    small_normal,
    zeros,
)


def test_zeros_and_ones_values(rng):
    assert np.all(zeros((3, 4), rng) == 0.0)
    assert np.all(ones((3, 4), rng) == 1.0)


def test_initializers_return_float32(rng):
    for init in (zeros, ones, he_normal, glorot_uniform, orthogonal,
                 small_normal):
        assert init((4, 4), rng).dtype == np.float32


def test_he_normal_std_scales_with_fan_in(rng):
    fan_in = 400
    weights = he_normal((fan_in, 300), rng)
    expected = np.sqrt(2.0 / fan_in)
    assert abs(weights.std() - expected) < 0.15 * expected


def test_he_normal_conv_fan_in(rng):
    # Conv kernel (out, in, kh, kw): fan_in = in * kh * kw.
    weights = he_normal((64, 16, 3, 3), rng)
    expected = np.sqrt(2.0 / (16 * 9))
    assert abs(weights.std() - expected) < 0.15 * expected


def test_glorot_uniform_bounds(rng):
    weights = glorot_uniform((50, 70), rng)
    limit = np.sqrt(6.0 / 120)
    assert weights.max() <= limit
    assert weights.min() >= -limit


def test_orthogonal_rows_orthonormal(rng):
    mat = orthogonal((8, 8), rng).astype(np.float64)
    np.testing.assert_allclose(mat @ mat.T, np.eye(8), atol=1e-5)


def test_orthogonal_rectangular(rng):
    tall = orthogonal((10, 4), rng).astype(np.float64)
    np.testing.assert_allclose(tall.T @ tall, np.eye(4), atol=1e-5)


def test_orthogonal_rejects_1d(rng):
    with pytest.raises(ConfigurationError):
        orthogonal((5,), rng)


def test_small_normal_is_small(rng):
    weights = small_normal((200, 200), rng)
    assert abs(weights.std() - 0.01) < 0.002


def test_get_initializer_by_name_and_callable():
    assert get_initializer("he_normal") is he_normal
    assert get_initializer(he_normal) is he_normal


def test_get_initializer_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown initializer"):
        get_initializer("bogus")
