"""nn runtime telemetry: sampled layer profiling, workspace counters."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Dense, ReLU, Sequential, Workspace
from repro.nn.runtime import (
    layer_profiling_interval,
    profiled_layers,
    set_layer_profiling,
)
from repro.nn.runtime.profiling import layer_timer, should_sample
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def _profiling_off():
    """Profiling is a process-global switch; leave it how we found it."""
    saved = layer_profiling_interval()
    set_layer_profiling(0)
    yield
    set_layer_profiling(saved)


class TestSamplingSwitch:
    def test_disabled_never_samples(self):
        assert layer_profiling_interval() == 0
        assert not any(should_sample() for _ in range(20))

    def test_every_one_samples_every_call(self):
        set_layer_profiling(1)
        assert all(should_sample() for _ in range(5))

    def test_cadence_of_three(self):
        set_layer_profiling(3)
        pattern = [should_sample() for _ in range(9)]
        assert pattern == [False, False, True] * 3

    def test_setting_resets_the_phase(self):
        set_layer_profiling(2)
        should_sample()  # call 1: not sampled
        set_layer_profiling(2)
        assert [should_sample(), should_sample()] == [False, True]

    def test_negative_period_rejected(self):
        with pytest.raises(ConfigurationError):
            set_layer_profiling(-1)

    def test_context_manager_restores_prior_setting(self):
        set_layer_profiling(7)
        with profiled_layers(2):
            assert layer_profiling_interval() == 2
            with profiled_layers(5):
                assert layer_profiling_interval() == 5
            assert layer_profiling_interval() == 2
        assert layer_profiling_interval() == 7

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with profiled_layers(4):
                raise RuntimeError("boom")
        assert layer_profiling_interval() == 0


class TestSequentialProfiling:
    def _model_and_input(self, rng):
        model = Sequential([Dense(6, 4, rng=rng), ReLU()])
        model.set_training(False)
        return model, rng.standard_normal((3, 6)).astype(np.float32)

    def test_profiled_forward_times_every_layer(self, rng):
        model, x = self._model_and_input(rng)
        with profiled_layers(1):
            model.forward(x)
            model.forward(x)
        for layer in model.layers:
            hist = layer_timer(layer.name)
            assert hist.count == 2, layer.name
            assert hist.sum >= 0.0

    def test_sampling_period_skips_forwards(self, rng):
        model, x = self._model_and_input(rng)
        with profiled_layers(2):
            for _ in range(4):  # calls 2 and 4 are the samples
                model.forward(x)
        assert layer_timer(model.layers[0].name).count == 2

    def test_disabled_records_nothing(self, rng):
        model, x = self._model_and_input(rng)
        model.forward(x)
        assert layer_timer(model.layers[0].name).count == 0

    def test_profiled_output_matches_unprofiled(self, rng):
        model, x = self._model_and_input(rng)
        plain = model.forward(x)
        with profiled_layers(1):
            profiled = model.forward(x)
        np.testing.assert_array_equal(plain, profiled)

    def test_layer_timer_is_one_series_per_layer(self):
        assert layer_timer("conv1") is layer_timer("conv1")
        assert layer_timer("conv1") is not layer_timer("conv2")


class TestWorkspaceCounters:
    def test_buffer_counts_hits_and_misses(self):
        workspace = Workspace()
        workspace.buffer("cols", (2, 3))
        assert (workspace.hits, workspace.misses) == (0, 1)
        workspace.buffer("cols", (2, 3))
        workspace.buffer("cols", (2, 3))
        assert (workspace.hits, workspace.misses) == (2, 1)
        workspace.buffer("cols", (4, 3))  # new shape -> new buffer
        assert (workspace.hits, workspace.misses) == (2, 2)

    def test_zeros_counts_like_buffer(self):
        workspace = Workspace()
        workspace.zeros("state", (2, 2))
        workspace.zeros("state", (2, 2))
        assert (workspace.hits, workspace.misses) == (1, 1)

    def test_publish_metrics_flushes_deltas_once(self):
        workspace = Workspace()
        workspace.buffer("a", (2,))
        workspace.buffer("a", (2,))
        workspace.publish_metrics()
        registry = get_registry()
        assert registry.counter("nn_workspace_hits_total").value == 1
        assert registry.counter("nn_workspace_misses_total").value == 1
        workspace.publish_metrics()  # no new activity: no double count
        assert registry.counter("nn_workspace_hits_total").value == 1
        workspace.buffer("a", (2,))
        workspace.publish_metrics()
        assert registry.counter("nn_workspace_hits_total").value == 2

    def test_publish_without_activity_creates_no_series(self):
        Workspace().publish_metrics()
        assert len(get_registry()) == 0

    def test_pickled_workspace_resets_counters(self):
        workspace = Workspace()
        workspace.buffer("a", (2,))
        workspace.publish_metrics()
        restored = pickle.loads(pickle.dumps(workspace))
        assert (restored.hits, restored.misses) == (0, 0)
        restored.buffer("a", (2,))
        restored.publish_metrics()  # fresh delta, not a replay
        assert get_registry().counter(
            "nn_workspace_misses_total").value == 2
