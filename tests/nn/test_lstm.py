"""LSTM and bidirectional wrapper."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.nn import LSTM, BidirectionalLSTM, Sequential, Dense
from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
)


def test_lstm_output_shapes(rng):
    last = LSTM(5, 7, rng=rng)
    seq = LSTM(5, 7, return_sequences=True, rng=rng)
    x = rng.normal(size=(3, 6, 5)).astype(np.float32)
    assert last.forward(x).shape == (3, 7)
    assert seq.forward(x).shape == (3, 6, 7)


def test_lstm_rejects_wrong_features(rng):
    layer = LSTM(5, 4, rng=rng)
    with pytest.raises(ShapeError):
        layer.forward(rng.normal(size=(2, 6, 3)).astype(np.float32))


def test_lstm_forget_bias_initialized_to_one(rng):
    layer = LSTM(3, 4, rng=rng)
    h = 4
    np.testing.assert_allclose(layer.bias.value[h:2 * h], 1.0)
    np.testing.assert_allclose(layer.bias.value[:h], 0.0)


def test_lstm_reverse_processes_reversed_sequence(rng):
    """A reversed LSTM on x equals a forward LSTM on x[::-1] (final state)."""
    fwd = LSTM(3, 4, rng=np.random.default_rng(0))
    bwd = LSTM(3, 4, reverse=True, rng=np.random.default_rng(0))
    x = rng.normal(size=(2, 5, 3)).astype(np.float32)
    np.testing.assert_allclose(bwd.forward(x),
                               fwd.forward(x[:, ::-1, :]), atol=1e-6)


def test_lstm_reverse_sequence_alignment(rng):
    """With return_sequences, output step t corresponds to input step t."""
    layer = LSTM(3, 4, return_sequences=True, reverse=True, rng=rng)
    x = rng.normal(size=(1, 5, 3)).astype(np.float32)
    out = layer.forward(x)
    # The reversed LSTM's *first* processed step is input step 4, and its
    # output must appear at index 4 after re-reversal.
    single = LSTM(3, 4, rng=rng)
    single.w_x.value = layer.w_x.value.copy()
    single.w_h.value = layer.w_h.value.copy()
    single.bias.value = layer.bias.value.copy()
    first_step = single.forward(x[:, 4:, :])
    np.testing.assert_allclose(out[:, 4, :], first_step, atol=1e-6)


def test_lstm_input_gradient(rng):
    layer = LSTM(3, 4, rng=rng)
    x = rng.normal(size=(2, 4, 3))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_lstm_sequence_input_gradient(rng):
    layer = LSTM(3, 4, return_sequences=True, rng=rng)
    x = rng.normal(size=(2, 4, 3))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_lstm_param_gradients(rng):
    layer = LSTM(2, 3, rng=rng)
    x = rng.normal(size=(2, 3, 2))
    errors = check_layer_param_gradients(layer, x, rng=rng)
    assert max(errors.values()) < 3e-2


def test_bidirectional_output_is_concat(rng):
    layer = BidirectionalLSTM(3, 4, rng=np.random.default_rng(1))
    x = rng.normal(size=(2, 5, 3)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (2, 8)
    fwd = layer.forward_lstm.forward(x)
    bwd = layer.backward_lstm.forward(x)
    np.testing.assert_allclose(out, np.concatenate([fwd, bwd], axis=1),
                               atol=1e-6)


def test_bidirectional_sequences_shape(rng):
    layer = BidirectionalLSTM(3, 4, return_sequences=True, rng=rng)
    out = layer.forward(rng.normal(size=(2, 5, 3)).astype(np.float32))
    assert out.shape == (2, 5, 8)


def test_bidirectional_gradcheck(rng):
    layer = BidirectionalLSTM(2, 3, rng=rng)
    x = rng.normal(size=(2, 3, 2))
    assert check_layer_input_gradient(layer, x, rng=rng) < 2e-2


def test_stacked_bilstm_trains_on_direction_task(rng):
    """A stacked bidirectional LSTM separates rising from falling ramps."""
    from repro.nn import Adam, NeuralNetwork
    n, t = 120, 10
    ramps = np.linspace(-1, 1, t)
    x = np.empty((n, t, 1), dtype=np.float32)
    y = np.empty(n, dtype=np.int64)
    for i in range(n):
        direction = i % 2
        noise = rng.normal(0, 0.05, t)
        x[i, :, 0] = (ramps if direction else -ramps) + noise
        y[i] = direction
    net = Sequential([
        BidirectionalLSTM(1, 8, return_sequences=True, rng=rng),
        BidirectionalLSTM(16, 8, rng=rng),
        Dense(16, 2, rng=rng),
    ])
    model = NeuralNetwork(net, optimizer_factory=lambda p: Adam(p, 5e-3),
                          grad_clip=5.0)
    model.fit(x, y, epochs=10, batch_size=16, rng=rng)
    assert model.evaluate(x, y) > 0.95
