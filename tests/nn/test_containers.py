"""Layer container semantics: traversal, training mode, composition."""

import numpy as np

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    ParallelBranches,
    ReLU,
    Sequential,
)
from repro.nn.layers.base import Layer, Parameter


def test_sequential_forward_order(rng):
    """Layers run in insertion order (affine then clamp vs clamp then affine)."""
    dense = Dense(2, 2, rng=rng)
    dense.weight.value = -np.eye(2, dtype=np.float32)
    dense.bias.value = np.zeros(2, dtype=np.float32)
    x = np.array([[1.0, 2.0]], dtype=np.float32)
    affine_then_relu = Sequential([dense, ReLU()]).forward(x)
    np.testing.assert_allclose(affine_then_relu, [[0.0, 0.0]])
    relu_then_affine = Sequential([ReLU(), dense]).forward(x)
    np.testing.assert_allclose(relu_then_affine, [[-1.0, -2.0]])


def test_sequential_add_chaining(rng):
    net = Sequential()
    result = net.add(Dense(3, 4, rng=rng)).add(ReLU())
    assert result is net
    assert len(net) == 2
    assert isinstance(net[1], ReLU)


def test_parameters_order_is_stable(rng):
    net = Sequential([Dense(3, 4, rng=rng), BatchNorm(4),
                      Dense(4, 2, rng=rng)])
    names = [param.name for param in net.parameters()]
    assert names == [param.name for param in net.parameters()]
    # Dense weight/bias come before the batch-norm gamma/beta of layer 2.
    assert "weight" in names[0]
    assert "gamma" in names[2]


def test_num_parameters_arithmetic(rng):
    net = Sequential([Dense(3, 4, rng=rng), Dense(4, 2, rng=rng)])
    assert net.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2)


def test_set_training_recurses_through_branches(rng):
    dropout_a = Dropout(0.5, rng=rng)
    dropout_b = Dropout(0.5, rng=rng)
    net = Sequential([
        ParallelBranches([Sequential([Conv2D(1, 1, 1, rng=rng), dropout_a]),
                          Sequential([dropout_b])]),
    ])
    net.set_training(False)
    assert not dropout_a.training
    assert not dropout_b.training
    net.set_training(True)
    assert dropout_a.training and dropout_b.training


def test_children_covers_lists_of_layers(rng):
    branches = ParallelBranches([ReLU(), ReLU()])
    assert len(list(branches.children())) == 2


def test_layer_repr_readable(rng):
    assert "Dense" in repr(Dense(2, 2, rng=rng))
    assert "Sequential" in repr(Sequential([ReLU()]))
    assert "Parameter" in repr(Parameter(np.zeros(2), "w"))


def test_custom_layer_parameter_discovery():
    """Parameters assigned as attributes are discovered automatically."""

    class Custom(Layer):
        def __init__(self):
            super().__init__()
            self.scale = Parameter(np.ones(3, dtype=np.float32), "scale")
            self.inner = ReLU()

        def forward(self, x):
            return self.inner.forward(x * self.scale.value)

        def backward(self, grad):
            return self.inner.backward(grad) * self.scale.value

    layer = Custom()
    params = list(layer.parameters())
    assert len(params) == 1
    assert params[0].name == "scale"
    assert list(layer.children()) == [layer.inner]


def test_frozen_parameter_survives_optimizer_but_gets_grads(rng):
    from repro.nn import SGD
    dense = Dense(2, 2, rng=rng)
    dense.weight.trainable = False
    before = dense.weight.value.copy()
    optimizer = SGD(list(dense.parameters()), learning_rate=1.0)
    out = dense.forward(np.ones((1, 2), dtype=np.float32))
    dense.backward(np.ones_like(out))
    assert np.any(dense.weight.grad != 0)  # gradients still computed
    optimizer.step()
    np.testing.assert_array_equal(dense.weight.value, before)  # not updated
    assert np.any(dense.bias.value != 0)  # bias did update


def test_zero_grad_resets(rng):
    dense = Dense(2, 3, rng=rng)
    out = dense.forward(np.ones((2, 2), dtype=np.float32))
    dense.backward(np.ones_like(out))
    assert np.any(dense.weight.grad != 0)
    dense.weight.zero_grad()
    np.testing.assert_array_equal(dense.weight.grad, 0)
