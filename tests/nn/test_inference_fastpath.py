"""Inference fast path: parity with the reference forward, workspace reuse.

Every layer with a ``_forward_inference`` branch must produce the same
output (atol 1e-5) as the reference path — the training-style forward
that ``repro.nn.reference_mode`` forces — on eval-mode layers, and the
workspace arena must actually reuse its scratch buffers across calls.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.nn import (
    GRU,
    LSTM,
    AvgPool2D,
    BatchNorm,
    BidirectionalGRU,
    BidirectionalLSTM,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    LeakyReLU,
    MaxPool2D,
    ParallelBranches,
    ReLU,
    Reshape,
    Residual,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    Workspace,
    assert_float32,
    fast_path_enabled,
    reference_mode,
)

ATOL = 1e-5


def _fast_and_reference(layer, x):
    """(fast, reference) outputs of an eval-mode layer on ``x``."""
    layer.set_training(False)
    fast = layer.forward(x)
    with reference_mode():
        reference = layer.forward(x)
    return fast, reference


def _check_parity(layer, x):
    fast, reference = _fast_and_reference(layer, x)
    np.testing.assert_allclose(fast, reference, atol=ATOL)
    assert fast.dtype == np.float32
    assert fast.flags["C_CONTIGUOUS"]
    return fast


@pytest.mark.parametrize("kernel,stride,padding,bias", [
    (3, 1, "same", True), (1, 1, "valid", True), ((1, 7), 1, "same", False),
    (3, 2, "valid", True), (5, 1, 2, False),
])
def test_conv_fast_path_matches_reference(rng, kernel, stride, padding, bias):
    layer = Conv2D(3, 5, kernel, stride=stride, padding=padding,
                   use_bias=bias, rng=rng)
    x = rng.standard_normal((4, 3, 12, 12)).astype(np.float32)
    _check_parity(layer, x)


@pytest.mark.parametrize("cls", [MaxPool2D, AvgPool2D])
@pytest.mark.parametrize("pool,stride,padding", [
    (2, 2, 0), (3, 2, 1), (3, 1, "same"),
])
def test_pool_fast_path_matches_reference(rng, cls, pool, stride, padding):
    layer = cls(pool, stride=stride, padding=padding)
    x = rng.standard_normal((3, 4, 10, 10)).astype(np.float32)
    _check_parity(layer, x)


@pytest.mark.parametrize("cls", [GlobalAvgPool2D, Dense, BatchNorm, ReLU,
                                 LeakyReLU, Sigmoid, Softmax, Tanh])
def test_pointwise_layers_match_reference(rng, cls):
    if cls is GlobalAvgPool2D:
        layer, x = cls(), rng.standard_normal((3, 6, 7, 7))
    elif cls is Dense:
        layer, x = cls(11, 5, rng=rng), rng.standard_normal((8, 11))
    elif cls is BatchNorm:
        layer, x = cls(6), rng.standard_normal((8, 6, 5, 5))
        layer.set_training(True)
        layer.forward(x.astype(np.float32))  # accumulate running stats
    else:
        layer, x = cls(), rng.standard_normal((8, 13))
    _check_parity(layer, x.astype(np.float32))


@pytest.mark.parametrize("cls", [LSTM, GRU, BidirectionalLSTM,
                                 BidirectionalGRU])
@pytest.mark.parametrize("return_sequences", [True, False])
def test_recurrent_fast_path_matches_reference(rng, cls, return_sequences):
    layer = cls(12, 8, return_sequences=return_sequences, rng=rng)
    x = rng.standard_normal((5, 9, 12)).astype(np.float32)
    _check_parity(layer, x)


@pytest.mark.parametrize("rate", [0.0, 0.3, 0.9])
def test_dropout_eval_is_identity_on_both_paths(rng, rate):
    layer = Dropout(rate, rng=rng)
    x = rng.standard_normal((6, 9)).astype(np.float32)
    out = _check_parity(layer, x)
    np.testing.assert_array_equal(out, x)


def test_flatten_fast_path_matches_reference(rng):
    layer = Flatten()
    x = rng.standard_normal((4, 3, 5, 5)).astype(np.float32)
    out = _check_parity(layer, x)
    assert out.shape == (4, 75)


def test_reshape_fast_path_matches_reference(rng):
    layer = Reshape((3, 25))
    x = rng.standard_normal((4, 75)).astype(np.float32)
    out = _check_parity(layer, x)
    assert out.shape == (4, 3, 25)


def test_parallel_branches_fast_path_matches_reference(rng):
    layer = ParallelBranches([
        Sequential([Conv2D(3, 4, 1, rng=rng), ReLU()]),
        Sequential([Conv2D(3, 2, 3, padding="same", rng=rng)]),
    ])
    x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
    out = _check_parity(layer, x)
    assert out.shape == (2, 6, 8, 8)  # channel concat of 4 + 2


def test_residual_fast_path_matches_reference(rng):
    layer = Residual(Sequential([Dense(10, 10, rng=rng), Tanh()]))
    x = rng.standard_normal((5, 10)).astype(np.float32)
    _check_parity(layer, x)


def test_sequential_composite_fast_path_matches_reference(rng):
    model = Sequential([
        Conv2D(1, 4, 3, padding="same", rng=rng),
        BatchNorm(4),
        ReLU(),
        MaxPool2D(2, stride=2),
        Dropout(0.5, rng=rng),
        Flatten(),
        Dense(4 * 4 * 4, 6, rng=rng),
        Softmax(),
    ])
    x = rng.standard_normal((3, 1, 8, 8)).astype(np.float32)
    model.set_training(True)
    model.forward(x)  # accumulate BatchNorm running stats
    _check_parity(model, x)


def test_fast_path_skips_backward_caches(rng):
    layer = Conv2D(2, 3, 3, rng=rng)
    x = rng.standard_normal((2, 2, 8, 8)).astype(np.float32)
    layer.set_training(True)
    layer.forward(x)
    assert layer._cols is not None
    layer.set_training(False)
    layer.forward(x)
    assert layer._cols is None


def test_workspace_buffers_are_reused(rng):
    workspace = Workspace()
    layer = Conv2D(3, 4, 3, rng=rng)
    layer.set_workspace(workspace)
    layer.set_training(False)
    x = rng.standard_normal((2, 3, 10, 10)).astype(np.float32)
    first = layer.forward(x)
    buffers_after_first = len(workspace)
    buffer = workspace.buffer(f"{layer.name}.cols", (2, 27, 100), np.float32)
    second = layer.forward(x)
    assert len(workspace) == buffers_after_first  # no new allocations
    assert workspace.buffer(f"{layer.name}.cols", (2, 27, 100),
                            np.float32) is buffer
    np.testing.assert_array_equal(first, second)
    assert workspace.nbytes > 0
    workspace.clear()
    assert len(workspace) == 0


def test_workspace_pickles_empty(rng):
    import pickle

    workspace = Workspace()
    workspace.buffer("scratch", (4, 4), np.float32)
    restored = pickle.loads(pickle.dumps(workspace))
    assert len(restored) == 0  # buffers are dropped, not shipped


def test_reference_mode_restores_fast_path():
    assert fast_path_enabled()
    with reference_mode():
        assert not fast_path_enabled()
    assert fast_path_enabled()


def test_assert_float32_rejects_float64():
    assert_float32(np.zeros(3, dtype=np.float32))
    with pytest.raises(ReproError):
        assert_float32(np.zeros(3, dtype=np.float64), where="logits")


def test_ensemble_fast_path_matches_reference(tiny_driving_dataset):
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig

    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=1, width=0.5),
        rnn_config=RnnConfig(hidden_units=8, epochs=1),
        rng=np.random.default_rng(3))
    ensemble.fit(tiny_driving_dataset)
    images = tiny_driving_dataset.images[:16]
    windows = tiny_driving_dataset.imu[:16]
    fast = ensemble.predict_degraded(images=images, imu=windows)
    with reference_mode():
        reference = ensemble.predict_degraded(images=images, imu=windows)
    np.testing.assert_allclose(fast.probabilities, reference.probabilities,
                               atol=ATOL)
    np.testing.assert_array_equal(fast.predictions, reference.predictions)
