"""Graph-compiled inference: plan structure, parity, backends, profiling.

The compiled backend's contract is strict: float32 plans are *bitwise*
identical to the interpreted fast path (same kernels, same operand
order), within ``ATOL`` of the reference path, and uncompilable models
degrade to the fast path silently.  These tests pin each clause plus the
plan-cache/invalidation and thread-locality rules the serving tier
relies on.
"""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.core.inception import build_micro_inception
from repro.core.rnn import RnnConfig, build_imu_rnn
from repro.exceptions import ConfigurationError
from repro.nn import (
    Adam,
    AvgPool2D,
    NeuralNetwork,
    Sequential,
    backend_names,
    compile_network,
    fast_path_enabled,
    reference_mode,
    set_default_backend,
    using_backend,
)
from repro.nn.compile import (
    NumpyCompiledBackend,
    PlanWeight,
    UnsupportedLayerError,
    active_backend_name,
    get_backend,
)
from repro.nn.compile.plan import BOUND_CACHE_SIZE
from repro.nn.runtime import profiled_layers
from repro.nn.runtime.profiling import layer_timer

ATOL = 1e-5

CNN_SHAPE = (1, 16, 16)
RNN_SHAPE = (20, 12)


def _images(n: int, shape=CNN_SHAPE, seed: int = 99) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n,) + shape).astype(np.float32)


@pytest.fixture(scope="module")
def cnn():
    net = build_micro_inception(5, width=0.5, rng=np.random.default_rng(3))
    net.set_training(False)
    return net


@pytest.fixture(scope="module")
def cnn_plan(cnn):
    return compile_network(cnn, CNN_SHAPE)


@pytest.fixture(scope="module")
def rnn():
    net = build_imu_rnn(RnnConfig(hidden_units=8),
                        rng=np.random.default_rng(4))
    net.set_training(False)
    return net


# -- plan structure ------------------------------------------------------

def test_conv_bn_relu_fold_into_one_op(cnn_plan):
    described = cnn_plan.describe()
    fused = [d for d in described
             if d["kind"] == "conv" and len(d["fused"]) >= 3]
    assert fused, "expected at least one conv+bn+relu fusion"
    for d in described:
        assert d["layer"] in d["fused"]


def test_arena_reuses_buffers_across_ops(cnn_plan):
    assert 0 < cnn_plan.arena_per_sample < cnn_plan.slot_elements_total


def test_bound_plan_cache_is_bounded(cnn_plan):
    for n in range(1, BOUND_CACHE_SIZE + 4):
        cnn_plan.run(_images(n))
    assert len(cnn_plan._bound) <= BOUND_CACHE_SIZE


# -- numeric parity ------------------------------------------------------

@pytest.mark.parametrize("n", [1, 3, 32])
def test_cnn_plan_bitwise_matches_fast_path(cnn, cnn_plan, n):
    x = _images(n)
    out = cnn_plan.run(x)
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out, cnn.forward(x))
    with reference_mode():
        reference = cnn.forward(x)
    np.testing.assert_allclose(out, reference, atol=ATOL, rtol=0)


@pytest.mark.parametrize("n", [1, 7, 32])
def test_rnn_plan_bitwise_matches_fast_path(rnn, n):
    plan = compile_network(rnn, RNN_SHAPE)
    x = _images(n, RNN_SHAPE)
    out = plan.run(x)
    np.testing.assert_array_equal(out, rnn.forward(x))
    with reference_mode():
        reference = rnn.forward(x)
    np.testing.assert_allclose(out, reference, atol=ATOL, rtol=0)


@pytest.mark.parametrize("padding", ["valid", "same"])
def test_stride1_avgpool_flat_kernel_bitwise(padding):
    # Stride-1 average pooling takes the flat-shift contiguous-tap
    # kernel; both the padded and unpadded variants must stay bit-exact.
    net = Sequential([AvgPool2D(3, stride=1, padding=padding)])
    net.set_training(False)
    plan = compile_network(net, (2, 9, 9))
    x = _images(4, (2, 9, 9))
    np.testing.assert_array_equal(plan.run(x), net.forward(x))


def test_int8_weight_roundtrip_error_is_per_channel_bounded():
    rng = np.random.default_rng(17)
    weight = rng.standard_normal((8, 27)).astype(np.float32)
    handle = PlanWeight.quantized(weight, channel_axis=0)
    assert handle.is_quantized
    dequantized = handle.materialize()
    scales = np.abs(weight).max(axis=1) / 127.0
    assert np.all(np.abs(dequantized - weight)
                  <= scales[:, None] * 0.5 + 1e-7)
    assert handle.nbytes_at_rest < weight.nbytes


def test_int8_plan_runs_and_stays_finite(cnn):
    plan = compile_network(cnn, CNN_SHAPE, quantize=True)
    out = plan.run(_images(5))
    assert out.shape == (5, 5)
    assert np.all(np.isfinite(out))


# -- backend registry and fallback --------------------------------------

def test_backend_registry_api():
    assert {"numpy-fast", "numpy-compiled",
            "numpy-compiled-int8"} <= set(backend_names())
    with pytest.raises(ConfigurationError):
        get_backend("no-such-backend")
    with pytest.raises(ConfigurationError):
        set_default_backend("no-such-backend")
    with pytest.raises(ConfigurationError):
        with using_backend("no-such-backend"):
            pass  # pragma: no cover - must raise before entering
    assert active_backend_name() == "numpy-fast"
    with using_backend("numpy-compiled"):
        assert active_backend_name() == "numpy-compiled"
        with using_backend("numpy-fast"):
            assert active_backend_name() == "numpy-fast"
        assert active_backend_name() == "numpy-compiled"
    assert active_backend_name() == "numpy-fast"


def test_unsupported_layer_degrades_to_fast_path():
    net = build_imu_rnn(RnnConfig(hidden_units=8, cell="gru"),
                        rng=np.random.default_rng(5))
    net.set_training(False)
    with pytest.raises(UnsupportedLayerError):
        compile_network(net, RNN_SHAPE)
    assert NumpyCompiledBackend().compile_model(net, RNN_SHAPE) is None
    model = NeuralNetwork(net, optimizer_factory=lambda p: Adam(p))
    model.mark_fitted()
    x = _images(6, RNN_SHAPE)
    fast = model.predict_logits(x)
    with using_backend("numpy-compiled"):
        np.testing.assert_array_equal(model.predict_logits(x), fast)


# -- model integration ---------------------------------------------------

@pytest.fixture(scope="module")
def cnn_model():
    net = build_micro_inception(5, width=0.5, rng=np.random.default_rng(6))
    model = NeuralNetwork(net, optimizer_factory=lambda p: Adam(p))
    model.mark_fitted()
    return model


def test_model_predicts_identically_under_compiled_backend(cnn_model):
    # 130 samples: one full 128-wide chunk plus a ragged 2-sample tail.
    x = _images(130)
    fast = cnn_model.predict_logits(x)
    with using_backend("numpy-compiled"):
        compiled = cnn_model.predict_logits(x)
    np.testing.assert_array_equal(compiled, fast)
    assert ("numpy-compiled", CNN_SHAPE) in cnn_model._plans


def test_pickling_drops_compiled_plans(cnn_model):
    with using_backend("numpy-compiled"):
        cnn_model.predict_logits(_images(2))
    assert cnn_model._plans
    clone = pickle.loads(pickle.dumps(cnn_model))
    assert clone._plans == {}
    x = _images(4)
    with using_backend("numpy-compiled"):
        np.testing.assert_array_equal(clone.predict_logits(x),
                                      cnn_model.predict_logits(x))


def test_invalidate_plans_forces_recompile(cnn_model):
    with using_backend("numpy-compiled"):
        cnn_model.predict_logits(_images(2))
    assert cnn_model._plans
    cnn_model.invalidate_plans()
    assert cnn_model._plans == {}


# -- profiling attribution ----------------------------------------------

def test_compiled_run_attributes_timings_to_source_layers(cnn_plan):
    with profiled_layers(1):
        cnn_plan.run(_images(2))
    for entry in cnn_plan.describe():
        assert layer_timer(entry["layer"]).count >= 1


# -- thread-locality (reference_mode and using_backend) ------------------

def test_reference_mode_is_thread_local():
    entered = threading.Event()
    release = threading.Event()
    seen: dict[str, bool] = {}

    def hold() -> None:
        with reference_mode():
            seen["inside"] = fast_path_enabled()
            entered.set()
            release.wait(5.0)
        seen["after"] = fast_path_enabled()

    worker = threading.Thread(target=hold)
    worker.start()
    assert entered.wait(5.0)
    try:
        # The override lives in the worker's thread-local slot only.
        assert fast_path_enabled()
    finally:
        release.set()
        worker.join(5.0)
    assert seen["inside"] is False
    assert seen["after"] is True


def test_using_backend_is_thread_local():
    entered = threading.Event()
    release = threading.Event()
    seen: dict[str, str] = {}

    def hold() -> None:
        with using_backend("numpy-compiled"):
            seen["inside"] = active_backend_name()
            entered.set()
            release.wait(5.0)

    worker = threading.Thread(target=hold)
    worker.start()
    assert entered.wait(5.0)
    try:
        assert active_backend_name() == "numpy-fast"
    finally:
        release.set()
        worker.join(5.0)
    assert seen["inside"] == "numpy-compiled"
