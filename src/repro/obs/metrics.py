"""Lock-safe, fork-aware metrics primitives.

One registry holds every runtime signal the pipeline emits — reliability
counters from the streaming transport, queue/batch telemetry from the
serving tier, workspace and layer timings from the nn runtime — so a
single snapshot answers "what is this process doing" without chasing
per-module stat structs.

Three instrument kinds, deliberately Prometheus-shaped:

* :class:`Counter` — monotonically increasing count (requests, sheds);
* :class:`Gauge` — instantaneous level (queue depth, clock error);
* :class:`Histogram` — fixed-bucket distribution with streaming
  count/sum/min/max and interpolated quantile estimates (p50/p95/p99 of
  stage latencies).  Fixed buckets keep ``observe`` O(log buckets) and
  make merged histograms exact, which the fork-merge path relies on.

Concurrency model: the registry guards its name table with one lock and
every instrument guards its own values with another, so writers on many
threads never corrupt a snapshot and a snapshot never observes a
half-applied histogram update.

Fork model: :func:`get_registry` is pid-checked — the first access in a
forked worker gets a *fresh* registry rather than the parent's inherited
copy, so worker recordings are clean deltas.  Workers report via
:meth:`MetricsRegistry.drain` and parents fold results back in with
:meth:`MetricsRegistry.merge`; merge adds counters and histograms and
takes the max of gauges, all associative, so any merge order yields the
same totals.
"""

from __future__ import annotations

import bisect
import os
import threading

from repro.exceptions import ConfigurationError

#: Default latency buckets in seconds (sub-millisecond to 10 s).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for small-integer distributions (batch sizes, queue depths).
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Microsecond-scale buckets for shared-memory handoff latencies — a ring
#: publish-to-pickup hop is orders of magnitude below LATENCY_BUCKETS'
#: floor, so it needs its own resolution to be visible at all.
HANDOFF_BUCKETS = (
    0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.05, 0.1,
)

_LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str] | None = None,
                 help: str = "") -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name}: cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _state(self) -> dict:
        with self._lock:
            return {"value": self._value}

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _merge(self, state: dict) -> None:
        with self._lock:
            self._value += state["value"]


class Gauge:
    """An instantaneous level that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str] | None = None,
                 help: str = "") -> None:
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_max(self, value: float) -> None:
        """Ratchet the gauge upward (peak tracking)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def _state(self) -> dict:
        with self._lock:
            return {"value": self._value}

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _merge(self, state: dict) -> None:
        # max is associative and commutative, which keeps fork-merge
        # order-independent; sum would double peaks, last-wins would race.
        with self._lock:
            self._value = max(self._value, state["value"])


class Histogram:
    """Fixed-bucket distribution with streaming aggregates.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches the overflow.  Quantiles are estimated by linear
    interpolation inside the bucket where the rank falls, with the
    observed min/max tightening the first and last edges.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: dict[str, str] | None = None,
                 help: str = "",
                 buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(set(buckets)):
            raise ConfigurationError(
                f"histogram {name}: buckets must be sorted and unique")
        self.name = name
        self.labels = dict(labels or {})
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (q in [0, 100])."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q / 100.0 * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lower = self._edge(index - 1)
            upper = self._edge(index)
            if cumulative + bucket_count >= rank:
                within = max(0.0, rank - cumulative)
                fraction = within / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self._max

    def _edge(self, index: int) -> float:
        """Interpolation edge for bucket ``index``, tightened by min/max."""
        if index < 0:
            return self._min
        if index >= len(self.buckets):
            return self._max
        edge = self.buckets[index]
        # Clamp the outermost edges to what was actually observed so a
        # histogram holding one sample reports that sample, not a bucket
        # boundary far away from it.
        return min(max(edge, self._min), self._max)

    def _state(self) -> dict:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
            }

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    def _merge(self, state: dict) -> None:
        if list(state["buckets"]) != list(self.buckets):
            raise ConfigurationError(
                f"histogram {self.name}: cannot merge mismatched buckets")
        with self._lock:
            for index, add in enumerate(state["counts"]):
                self._counts[index] += add
            self._count += state["count"]
            self._sum += state["sum"]
            if state["min"] is not None and state["min"] < self._min:
                self._min = state["min"]
            if state["max"] is not None and state["max"] > self._max:
                self._max = state["max"]


class MetricsRegistry:
    """A named collection of instruments with snapshot/merge semantics.

    Instruments are keyed by ``(name, labels)``: asking twice for the
    same key returns the same instrument, so call sites never need to
    cache handles.  Asking for an existing key with a different kind is
    an error — one name, one meaning.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, _LabelItems], object] = {}

    # -- instrument factories --------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = LATENCY_BUCKETS,
                  **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def _get_or_create(self, cls, name: str, help: str,
                       labels: dict[str, str], **options):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels=labels, help=help, **options)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    # -- inspection ------------------------------------------------------
    def metrics(self) -> list:
        """Every registered instrument (stable name/label order)."""
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, **labels: str):
        """The instrument registered under (name, labels), or ``None``."""
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-safe copy of every instrument's current state."""
        entries = []
        for metric in self.metrics():
            entry = {"kind": metric.kind, "name": metric.name,
                     "labels": dict(metric.labels), "help": metric.help}
            entry.update(metric._state())
            entries.append(entry)
        return {"metrics": entries}

    def drain(self) -> dict:
        """Snapshot, then zero every instrument (worker delta reporting).

        Values recorded between the snapshot and the reset of one
        instrument are lost; drain is meant for single-threaded worker
        processes reporting between batches, where no such window exists.
        """
        snap = self.snapshot()
        for metric in self.metrics():
            metric._reset()
        return snap

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (usually a worker's drain) into this registry.

        Counters and histograms add; gauges take the max.  Unknown
        instruments are created on the fly, so a parent can merge from a
        worker that registered metrics the parent never touched.
        """
        for entry in snapshot.get("metrics", []):
            kind, labels = entry["kind"], entry.get("labels", {})
            if kind == "counter":
                metric = self.counter(entry["name"], entry.get("help", ""),
                                      **labels)
            elif kind == "gauge":
                metric = self.gauge(entry["name"], entry.get("help", ""),
                                    **labels)
            elif kind == "histogram":
                metric = self.histogram(entry["name"], entry.get("help", ""),
                                        buckets=tuple(entry["buckets"]),
                                        **labels)
            else:
                raise ConfigurationError(f"unknown metric kind {kind!r}")
            metric._merge(entry)

    def reset(self) -> None:
        """Drop every instrument (test isolation, fork refresh)."""
        with self._lock:
            self._metrics.clear()


# -- process-default registry -------------------------------------------------

_DEFAULT: MetricsRegistry | None = None
_DEFAULT_PID: int | None = None
_DEFAULT_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-default registry; fresh after a fork.

    The pid check makes forked executor workers start from an empty
    registry instead of the parent's inherited copy, so their
    :meth:`~MetricsRegistry.drain` reports are true deltas.
    """
    global _DEFAULT, _DEFAULT_PID
    pid = os.getpid()
    if _DEFAULT is None or _DEFAULT_PID != pid:
        with _DEFAULT_LOCK:
            if _DEFAULT is None or _DEFAULT_PID != pid:
                _DEFAULT = MetricsRegistry()
                _DEFAULT_PID = pid
    return _DEFAULT


def reset_registry() -> None:
    """Replace the process-default registry with an empty one."""
    global _DEFAULT, _DEFAULT_PID
    with _DEFAULT_LOCK:
        _DEFAULT = MetricsRegistry()
        _DEFAULT_PID = os.getpid()
