"""Snapshot exporters: JSON files, Prometheus text format, human tables.

Every exporter works on the plain-dict snapshot produced by
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (optionally bundled
with a tracer dump), so a snapshot written at the end of a replay can be
inspected later with ``repro stats`` without the process that produced it.
"""

from __future__ import annotations

import json
import math

from repro.exceptions import ConfigurationError

#: The quantiles rendered for every histogram.
QUANTILES = (50.0, 95.0, 99.0)


def bundle(metrics_snapshot: dict, traces: list[dict] | None = None) -> dict:
    """One self-describing document: metrics plus (optionally) traces."""
    document = {"version": 1, "metrics": metrics_snapshot.get("metrics", [])}
    if traces is not None:
        document["traces"] = traces
    return document


def save_snapshot(document: dict, path: str) -> None:
    """Write a snapshot document as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, default=_json_safe)
        handle.write("\n")


def load_snapshot(path: str) -> dict:
    """Read a snapshot document written by :func:`save_snapshot`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if "metrics" not in document:
        raise ConfigurationError(f"{path}: not a metrics snapshot")
    return document


def _json_safe(value):
    if isinstance(value, float) and not math.isfinite(value):
        return None
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


# -- quantile estimation over snapshot dicts ----------------------------------

def histogram_percentile(entry: dict, q: float) -> float:
    """Percentile estimate from a snapshot histogram entry.

    Mirrors :meth:`repro.obs.metrics.Histogram.percentile` so saved
    snapshots yield the same numbers the live instrument would.
    """
    count = entry["count"]
    if count == 0:
        return 0.0
    buckets = list(entry["buckets"])
    counts = list(entry["counts"])
    low = entry.get("min")
    high = entry.get("max")
    low = buckets[0] if low is None else low
    high = buckets[-1] if high is None else high

    def edge(index: int) -> float:
        if index < 0:
            return low
        if index >= len(buckets):
            return high
        return min(max(buckets[index], low), high)

    rank = q / 100.0 * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if cumulative + bucket_count >= rank:
            fraction = max(0.0, rank - cumulative) / bucket_count
            lower, upper = edge(index - 1), edge(index)
            return lower + fraction * (upper - lower)
        cumulative += bucket_count
    return high


# -- Prometheus text format ---------------------------------------------------

def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    return "{" + ",".join(parts) + "}"


def _merge_labels(labels: dict, extra: dict) -> str:
    combined = dict(labels)
    combined.update(extra)
    return _label_text(combined)


def render_prometheus(document: dict) -> str:
    """The snapshot in Prometheus exposition text format (0.0.4)."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for entry in document.get("metrics", []):
        name, labels = entry["name"], entry.get("labels", {})
        if name not in seen_types:
            if entry.get("help"):
                lines.append(f"# HELP {name} {entry['help']}")
            lines.append(f"# TYPE {name} {entry['kind']}")
            seen_types.add(name)
        if entry["kind"] in ("counter", "gauge"):
            lines.append(f"{name}{_label_text(labels)} {entry['value']:g}")
            continue
        cumulative = 0
        for bound, count in zip(entry["buckets"], entry["counts"]):
            cumulative += count
            lines.append(f"{name}_bucket"
                         f"{_merge_labels(labels, {'le': f'{bound:g}'})}"
                         f" {cumulative}")
        lines.append(f"{name}_bucket{_merge_labels(labels, {'le': '+Inf'})}"
                     f" {entry['count']}")
        lines.append(f"{name}_sum{_label_text(labels)} {entry['sum']:g}")
        lines.append(f"{name}_count{_label_text(labels)} {entry['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable table -----------------------------------------------------

def render_text(document: dict, *, zeros: bool = False) -> str:
    """Compact table of every instrument, histograms with p50/p95/p99.

    Args:
        document: a snapshot document (live or loaded from disk).
        zeros: include counters/histograms that never recorded anything.
    """
    lines: list[str] = []
    for entry in document.get("metrics", []):
        label = entry["name"] + _label_text(entry.get("labels", {}))
        if entry["kind"] == "histogram":
            if entry["count"] == 0 and not zeros:
                continue
            # Time-valued histograms read best in milliseconds; unitless
            # ones (batch sizes, depths) are printed as-is.
            timed = entry["name"].endswith("_seconds")
            scale, unit = (1e3, "ms") if timed else (1.0, "")
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            quantiles = "  ".join(
                f"p{int(q)}={histogram_percentile(entry, q) * scale:.3f}{unit}"
                for q in QUANTILES)
            lines.append(
                f"{label:<58} n={entry['count']:<7} "
                f"mean={mean * scale:.3f}{unit}  "
                f"{quantiles}")
        else:
            if entry["value"] == 0 and not zeros:
                continue
            lines.append(f"{label:<58} {entry['value']:g}")
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)


def render_traces(document: dict, *, limit: int = 1) -> str:
    """Render the last ``limit`` completed traces from a document."""
    traces = [t for t in document.get("traces", []) if t.get("complete")]
    if not traces:
        return "(no completed traces)"
    lines = []
    for trace in traces[-limit:]:
        lines.append(f"trace {trace['trace_id']} ({trace['name']}) — "
                     f"{trace['duration_s'] * 1e3:.3f} ms")
        for span in trace.get("spans", []):
            meta = f"  {span['meta']}" if span.get("meta") else ""
            lines.append(f"  {span['name']:<12} "
                         f"{span['duration_s'] * 1e6:9.1f} us{meta}")
    return "\n".join(lines)
