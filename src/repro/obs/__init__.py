"""Unified observability: metrics registry, request tracing, exporters.

The pipeline's runtime signals — reliability counters, scheduler/queue
telemetry, per-stage serving latencies, nn-runtime workspace and layer
timings — all land in a :class:`MetricsRegistry` and come out through one
snapshot, renderable as JSON, Prometheus text, or a human table
(``repro stats``).  See DESIGN.md §11 for the design rationale.
"""

from repro.obs.export import (
    QUANTILES,
    bundle,
    histogram_percentile,
    load_snapshot,
    render_prometheus,
    render_text,
    render_traces,
    save_snapshot,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
)
from repro.obs.tracing import Span, Trace, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "reset_registry",
    "LATENCY_BUCKETS", "COUNT_BUCKETS",
    "Span", "Trace", "Tracer",
    "bundle", "save_snapshot", "load_snapshot", "histogram_percentile",
    "render_prometheus", "render_text", "render_traces", "QUANTILES",
]
