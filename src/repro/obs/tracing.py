"""Lightweight request tracing.

A *trace* follows one request through the pipeline's stages — for a
serving request: admission, queue, forward, combine — as a flat list of
named :class:`Span`\\ s sharing a trace id.  The id is minted where the
request enters the system (``InferenceServer.request_verdict``), rides on
the request object through the scheduler and executor, and every stage
appends its span with either the context-manager API (the stage wraps its
own work) or :meth:`Tracer.record` (the stage already measured the
interval, e.g. queue wait between submit and flush).

The tracer is deliberately small: no propagation contexts, no sampling
tax on the hot path beyond one dict lookup, and a bounded ring of
completed traces so a long-lived server holds recent evidence rather
than an unbounded history.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One named stage interval inside a trace (perf_counter seconds)."""

    name: str
    start: float
    end: float
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        entry = {"name": self.name, "duration_s": self.duration}
        if self.meta:
            entry["meta"] = dict(self.meta)
        return entry


@dataclass
class Trace:
    """All spans recorded for one request."""

    trace_id: str
    name: str
    spans: list[Span] = field(default_factory=list)
    complete: bool = False

    @property
    def duration(self) -> float:
        """Total of recorded span durations (stages can be disjoint)."""
        return sum(span.duration for span in self.spans)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "complete": self.complete,
            "duration_s": self.duration,
            "spans": [span.to_dict() for span in self.spans],
        }

    def format(self) -> str:
        """Human-readable one-trace rendering."""
        lines = [f"trace {self.trace_id} ({self.name}) — "
                 f"{self.duration * 1e3:.3f} ms over {len(self.spans)} "
                 f"span(s){'' if self.complete else ' [incomplete]'}"]
        for span in self.spans:
            lines.append(f"  {span.name:<12} {span.duration * 1e6:9.1f} us"
                         + (f"  {span.meta}" if span.meta else ""))
        return "\n".join(lines)


class Tracer:
    """Mints trace ids and collects spans into bounded trace storage.

    Args:
        max_traces: completed traces retained (oldest evicted first).
        enabled: a disabled tracer turns every call into a cheap no-op,
            which is how the serving tier switches observability off for
            the overhead benchmark.
    """

    def __init__(self, *, max_traces: int = 128, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._next_id = 0
        self._active: dict[str, Trace] = {}
        self._completed: deque[Trace] = deque(maxlen=int(max_traces))

    # -- lifecycle -------------------------------------------------------
    def start(self, name: str) -> str | None:
        """Open a new trace; returns its id (``None`` when disabled)."""
        if not self.enabled:
            return None
        with self._lock:
            self._next_id += 1
            trace_id = f"t{self._next_id:06d}"
            self._active[trace_id] = Trace(trace_id=trace_id, name=name)
            return trace_id

    def record(self, trace_id: str | None, name: str, start: float,
               end: float, **meta) -> None:
        """Append an externally timed span to an active trace."""
        if trace_id is None or not self.enabled:
            return
        with self._lock:
            trace = self._active.get(trace_id)
            if trace is not None:
                trace.spans.append(Span(name, start, end, dict(meta)))

    @contextmanager
    def span(self, trace_id: str | None, name: str, **meta):
        """Time a block as one span of ``trace_id``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(trace_id, name, start, time.perf_counter(), **meta)

    def finish(self, trace_id: str | None) -> None:
        """Mark a trace complete and move it to the bounded history."""
        if trace_id is None or not self.enabled:
            return
        with self._lock:
            trace = self._active.pop(trace_id, None)
            if trace is not None:
                trace.complete = True
                self._completed.append(trace)

    def complete(self, trace_id: str | None, spans: list[Span]) -> None:
        """Append pre-built spans and finish, in one locked step.

        Hot-path helper for batch dispatch: recording queue/forward/
        shard/combine and finishing each request costs one lock
        acquisition instead of five.  Spans are appended after anything
        already recorded on the trace (e.g. admission).
        """
        if trace_id is None or not self.enabled:
            return
        with self._lock:
            trace = self._active.pop(trace_id, None)
            if trace is not None:
                trace.spans.extend(spans)
                trace.complete = True
                self._completed.append(trace)

    def discard(self, trace_id: str | None) -> None:
        """Drop an active trace without archiving (request failed early)."""
        if trace_id is None:
            return
        with self._lock:
            self._active.pop(trace_id, None)

    # -- inspection ------------------------------------------------------
    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    def completed(self) -> list[Trace]:
        """Completed traces, oldest first."""
        with self._lock:
            return list(self._completed)

    def last_completed(self) -> Trace | None:
        with self._lock:
            return self._completed[-1] if self._completed else None

    def snapshot(self) -> list[dict]:
        """JSON-safe dump of the completed-trace ring."""
        return [trace.to_dict() for trace in self.completed()]
