"""MicroInceptionV3: a laptop-scale Inception-V3.

The paper fine-tunes Inception-V3 (Szegedy et al., 2015) from the
TensorFlow ILSVRC-2012 checkpoint.  We reproduce the architecture family —
a convolutional stem, Inception modules with parallel 1x1 / 3x3 / double-3x3
/ pooled branches (the 5x5 factorized into two 3x3s, as Inception-V3 does),
factorized 1xN/Nx1 convolutions in later blocks, batch-norm after every
convolution with no conv biases, and a global-average-pooled classifier —
scaled down to train on a CPU in numpy.

Layer widths are controlled by a single ``width`` multiplier so tests can
build tiny instances and benchmarks larger ones.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn import (
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    GlobalAvgPool2D,
    MaxPool2D,
    ParallelBranches,
    ReLU,
    Sequential,
)


def conv_bn_relu(in_channels: int, out_channels: int, kernel, *,
                 stride=1, padding="same", rng: np.random.Generator,
                 name: str) -> Sequential:
    """Inception's basic unit: bias-free conv, batch-norm, ReLU."""
    return Sequential([
        Conv2D(in_channels, out_channels, kernel, stride=stride,
               padding=padding, use_bias=False, rng=rng, name=f"{name}.conv"),
        BatchNorm(out_channels, name=f"{name}.bn"),
        ReLU(name=f"{name}.relu"),
    ], name=name)


def _scaled(base: int, width: float) -> int:
    return max(4, int(round(base * width)))


def inception_a(in_channels: int, width: float, rng: np.random.Generator,
                name: str) -> ParallelBranches:
    """Inception-A: 1x1 / 3x3 / double-3x3 (factorized 5x5) / pooled 1x1."""
    c1 = _scaled(16, width)
    c3r, c3 = _scaled(12, width), _scaled(16, width)
    d3r, d3 = _scaled(12, width), _scaled(16, width)
    cp = _scaled(8, width)
    return ParallelBranches([
        conv_bn_relu(in_channels, c1, 1, rng=rng, name=f"{name}.b1x1"),
        Sequential([
            conv_bn_relu(in_channels, c3r, 1, rng=rng, name=f"{name}.b3.r"),
            conv_bn_relu(c3r, c3, 3, rng=rng, name=f"{name}.b3.c"),
        ]),
        Sequential([
            conv_bn_relu(in_channels, d3r, 1, rng=rng, name=f"{name}.d3.r"),
            conv_bn_relu(d3r, d3, 3, rng=rng, name=f"{name}.d3.c1"),
            conv_bn_relu(d3, d3, 3, rng=rng, name=f"{name}.d3.c2"),
        ]),
        Sequential([
            AvgPool2D(3, stride=1, padding="same", name=f"{name}.pool"),
            conv_bn_relu(in_channels, cp, 1, rng=rng, name=f"{name}.bp"),
        ]),
    ], name=name)


def inception_a_channels(width: float) -> int:
    """Output channel count of :func:`inception_a`."""
    return (_scaled(16, width) + _scaled(16, width) + _scaled(16, width)
            + _scaled(8, width))


def inception_b(in_channels: int, width: float, rng: np.random.Generator,
                name: str) -> ParallelBranches:
    """Inception-B: factorized 1xN/Nx1 branches (N=3 at our resolution)."""
    c1 = _scaled(24, width)
    f_r, f_m, f_o = _scaled(16, width), _scaled(20, width), _scaled(24, width)
    cp = _scaled(16, width)
    return ParallelBranches([
        conv_bn_relu(in_channels, c1, 1, rng=rng, name=f"{name}.b1x1"),
        Sequential([
            conv_bn_relu(in_channels, f_r, 1, rng=rng, name=f"{name}.f.r"),
            conv_bn_relu(f_r, f_m, (1, 3), rng=rng, name=f"{name}.f.h"),
            conv_bn_relu(f_m, f_o, (3, 1), rng=rng, name=f"{name}.f.v"),
        ]),
        Sequential([
            AvgPool2D(3, stride=1, padding="same", name=f"{name}.pool"),
            conv_bn_relu(in_channels, cp, 1, rng=rng, name=f"{name}.bp"),
        ]),
    ], name=name)


def inception_b_channels(width: float) -> int:
    """Output channel count of :func:`inception_b`."""
    return _scaled(24, width) + _scaled(24, width) + _scaled(16, width)


def build_micro_inception(num_classes: int, *, in_channels: int = 1,
                          width: float = 1.0, dropout: float = 0.3,
                          rng: np.random.Generator | None = None
                          ) -> Sequential:
    """Assemble the full MicroInceptionV3 classifier.

    Input is NCHW with spatial size divisible by 8 (64x64 by default in
    this repo).  The network is resolution-agnostic thanks to the global
    average pool before the classifier.

    Args:
        num_classes: classifier output width.
        in_channels: input channels (1 for grayscale frames).
        width: channel multiplier for all internal layers.
        dropout: pre-classifier dropout rate.
        rng: initialization randomness.
    """
    if num_classes <= 1:
        raise ConfigurationError(f"need >= 2 classes, got {num_classes}")
    rng = rng or np.random.default_rng()
    s1 = _scaled(12, width)
    s2 = _scaled(16, width)
    s3 = _scaled(24, width)
    stem = [
        conv_bn_relu(in_channels, s1, 3, stride=2, padding=1, rng=rng,
                     name="stem.c1"),
        conv_bn_relu(s1, s2, 3, rng=rng, name="stem.c2"),
        MaxPool2D(2, name="stem.pool1"),
        conv_bn_relu(s2, s3, 3, rng=rng, name="stem.c3"),
        MaxPool2D(2, name="stem.pool2"),
    ]
    block_a = inception_a(s3, width, rng, "inception_a1")
    ch_a = inception_a_channels(width)
    block_a2 = inception_a(ch_a, width, rng, "inception_a2")
    reduce_ch = _scaled(48, width)
    reduction = conv_bn_relu(ch_a, reduce_ch, 3, stride=2, padding=1,
                             rng=rng, name="reduction")
    block_b = inception_b(reduce_ch, width, rng, "inception_b1")
    ch_b = inception_b_channels(width)
    head = [
        GlobalAvgPool2D(name="head.gap"),
        Dropout(dropout, rng=rng, name="head.dropout"),
        Dense(ch_b, num_classes, weight_init="small_normal", rng=rng,
              name="head.logits"),
    ]
    return Sequential(stem + [block_a, block_a2, reduction, block_b] + head,
                      name="micro_inception_v3")


def replace_classifier(network: Sequential, num_classes: int, *,
                       rng: np.random.Generator | None = None) -> Sequential:
    """Swap the final fully connected layer for a fresh ``num_classes`` head.

    "We modify the final fully connected layer of this network, such that
    the number of outputs corresponds to the number of driving classes."
    (paper §4.2.)  All other weights are retained — the fine-tuning setup.
    """
    rng = rng or np.random.default_rng()
    if not network.layers:
        raise ConfigurationError("cannot replace classifier of an empty network")
    last = network.layers[-1]
    if not isinstance(last, Dense):
        raise ConfigurationError(
            f"expected final Dense classifier, found {type(last).__name__}"
        )
    network.layers[-1] = Dense(last.in_features, num_classes,
                               weight_init="small_normal", rng=rng,
                               name="head.logits")
    return network
