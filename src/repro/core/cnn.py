"""Frame-sequence classifier (the CNN half of DarNet's analytics engine).

Wraps MicroInceptionV3 with the paper's training methodology: pretrain on a
generic task (the ImageNet stand-in), swap the classifier head, fine-tune
on driving frames (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inception import build_micro_inception, replace_classifier
from repro.datasets.classes import NUM_BEHAVIOR_CLASSES
from repro.datasets.pretraining import (
    SHAPE_CLASSES,
    generate_pretraining_dataset,
)
from repro.nn import Adam, NeuralNetwork, SoftmaxCrossEntropy


@dataclass
class CnnConfig:
    """Hyper-parameters for the frame classifier."""

    num_classes: int = NUM_BEHAVIOR_CLASSES
    in_channels: int = 1
    image_size: int = 64
    width: float = 1.0
    dropout: float = 0.3
    learning_rate: float = 2e-3
    batch_size: int = 32
    epochs: int = 18
    pretrain_epochs: int = 4
    pretrain_samples_per_class: int = 40
    label_smoothing: float = 0.05


class DriverFrameCNN:
    """Per-frame driving-behaviour classifier.

    Usage::

        cnn = DriverFrameCNN(CnnConfig(), rng=rng)
        cnn.pretrain()                  # generic-features init (optional)
        cnn.fit(train_images, labels)   # fine-tune on driving frames
        probs = cnn.predict_proba(eval_images)
    """

    def __init__(self, config: CnnConfig | None = None, *,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config or CnnConfig()
        self.rng = rng or np.random.default_rng()
        self.network = build_micro_inception(
            self.config.num_classes, in_channels=self.config.in_channels,
            width=self.config.width, dropout=self.config.dropout,
            rng=self.rng,
        )
        self.model = self._wrap(self.network)
        self.pretrained = False

    def _wrap(self, network) -> NeuralNetwork:
        cfg = self.config
        return NeuralNetwork(
            network,
            loss=SoftmaxCrossEntropy(label_smoothing=cfg.label_smoothing),
            optimizer_factory=lambda params: Adam(params, cfg.learning_rate),
        )

    # -- training ----------------------------------------------------------
    def pretrain(self, *, epochs: int | None = None,
                 verbose: bool = False) -> None:
        """Train on the generic-shapes task, then swap the classifier head.

        Mirrors initializing Inception-V3 from the ILSVRC-2012 checkpoint
        and replacing its final fully connected layer (paper §4.2).
        """
        cfg = self.config
        epochs = cfg.pretrain_epochs if epochs is None else epochs
        # Temporarily widen the head to the pretraining label space.
        replace_classifier(self.network, len(SHAPE_CLASSES), rng=self.rng)
        images, labels = generate_pretraining_dataset(
            cfg.pretrain_samples_per_class, size=cfg.image_size, rng=self.rng)
        pretrain_model = self._wrap(self.network)
        pretrain_model.fit(images, labels, epochs=epochs,
                           batch_size=cfg.batch_size, rng=self.rng,
                           verbose=verbose)
        replace_classifier(self.network, cfg.num_classes, rng=self.rng)
        self.model = self._wrap(self.network)
        self.pretrained = True

    def fit(self, images: np.ndarray, labels: np.ndarray, *,
            epochs: int | None = None,
            validation: tuple[np.ndarray, np.ndarray] | None = None,
            verbose: bool = False) -> None:
        """Fine-tune (or train from scratch) on driving frames."""
        cfg = self.config
        self.model.fit(images, labels,
                       epochs=cfg.epochs if epochs is None else epochs,
                       batch_size=cfg.batch_size, rng=self.rng,
                       validation=validation, verbose=verbose)

    # -- inference ---------------------------------------------------------
    def predict_logits(self, images: np.ndarray) -> np.ndarray:
        """Raw pre-softmax outputs (the distillation teacher signal)."""
        return self.model.predict_logits(images)

    def predict_proba(self, images: np.ndarray) -> np.ndarray:
        """Per-class probability distribution for each frame."""
        return self.model.predict_proba(images)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.model.predict(images)

    def evaluate(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 classification percentage on labelled frames."""
        return self.model.evaluate(images, labels)
