"""Unsupervised dCNN distillation (the privacy-preserving analytics path).

Training methodology (paper §4.3):

1. Each image is passed through the original CNN *on the device* and the
   final-layer output recorded — no clean image ever leaves the car.
2. The image is downsampled and shipped with its distortion tag.
3. The server pairs the distorted image with the recorded teacher output.
4. The dCNN — same architecture, initialized from the trained CNN's
   weights — is trained to reproduce the teacher output from the distorted
   image, minimizing the L2 distance with stochastic gradient descent.

The procedure is completely unsupervised: no ground-truth labels are used.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cnn import DriverFrameCNN
from repro.core.inception import build_micro_inception
from repro.core.privacy import PrivacyLevel, distort_restore
from repro.exceptions import ConfigurationError
from repro.nn import SGD, MSELoss, NeuralNetwork
from repro.nn.metrics import accuracy
from repro.nn.serialization import copy_weights


@dataclass
class DistillationConfig:
    """Hyper-parameters for dCNN training."""

    epochs: int = 15
    batch_size: int = 32
    learning_rate: float = 0.01   # paper: plain SGD
    momentum: float = 0.9
    init_from_teacher: bool = True
    #: Fresh Gaussian noise added to the distorted input every epoch.
    #: "The motivation behind the training methodology stems from the
    #: success exhibited by de-noising autoencoders" (§4.3) — denoising
    #: training perturbs inputs while targets stay fixed, which is also
    #: what lets the student generalize past its overfit teacher
    #: (the Table-3 dCNN-L anomaly).
    input_noise_std: float = 0.04


class DenoisingCNN:
    """A dCNN for one privacy level.

    Args:
        teacher: the trained full-resolution CNN being mimicked.
        level: distortion level this student handles.
        config: distillation hyper-parameters.
        rng: randomness for training order (and init when not copying
            teacher weights).
    """

    def __init__(self, teacher: DriverFrameCNN, level: PrivacyLevel, *,
                 config: DistillationConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.teacher = teacher
        self.level = level
        self.config = config or DistillationConfig()
        self.rng = rng or np.random.default_rng()
        teacher_cfg = teacher.config
        self.network = build_micro_inception(
            teacher_cfg.num_classes, in_channels=teacher_cfg.in_channels,
            width=teacher_cfg.width, dropout=teacher_cfg.dropout,
            rng=self.rng,
        )
        if self.config.init_from_teacher:
            # "We reuse the Inception-V3 architecture and initialize the
            # weights using the CNN trained on the driving dataset." (§4.3)
            copy_weights(teacher.network, self.network)
        cfg = self.config
        self.model = NeuralNetwork(
            self.network,
            loss=MSELoss(),
            optimizer_factory=lambda params: SGD(
                params, cfg.learning_rate, momentum=cfg.momentum),
        )

    def distill(self, images: np.ndarray, *, epochs: int | None = None,
                verbose: bool = False) -> None:
        """Run the unsupervised distillation loop on unlabeled images.

        Args:
            images: clean NCHW frames (teacher targets are computed from
                these *before* distortion, modelling the on-device step).
            epochs: override the configured epoch count.
            verbose: per-epoch loss logging.
        """
        if images.ndim != 4:
            raise ConfigurationError(
                f"expected NCHW images, got shape {images.shape}"
            )
        teacher_outputs = self.teacher.predict_logits(images)
        distorted = distort_restore(images, self.level)
        total_epochs = self.config.epochs if epochs is None else epochs
        noise_std = self.config.input_noise_std
        for _ in range(total_epochs):
            inputs = distorted
            if noise_std:
                # Denoising-autoencoder style: fresh input perturbation
                # each epoch, fixed teacher targets.
                inputs = np.clip(
                    distorted + self.rng.normal(
                        0.0, noise_std, distorted.shape).astype(np.float32),
                    0.0, 1.0)
            self.model.fit(inputs, teacher_outputs, epochs=1,
                           batch_size=self.config.batch_size, rng=self.rng,
                           verbose=verbose)

    # -- inference (server side, distorted input) ---------------------------
    def predict_logits(self, clean_images: np.ndarray) -> np.ndarray:
        """Student outputs on the distorted version of ``clean_images``."""
        return self.model.predict_logits(distort_restore(clean_images,
                                                         self.level))

    def predict(self, clean_images: np.ndarray) -> np.ndarray:
        """Hard predictions from distorted frames."""
        return self.predict_logits(clean_images).argmax(axis=1)

    def evaluate(self, clean_images: np.ndarray,
                 labels: np.ndarray) -> float:
        """Top-1 accuracy of the student on distorted frames."""
        return accuracy(np.asarray(labels), self.predict(clean_images))


def train_privacy_suite(teacher: DriverFrameCNN, images: np.ndarray, *,
                        config: DistillationConfig | None = None,
                        levels: tuple[PrivacyLevel, ...] = tuple(PrivacyLevel),
                        rng: np.random.Generator | None = None,
                        verbose: bool = False
                        ) -> dict[PrivacyLevel, DenoisingCNN]:
    """Distill one dCNN per privacy level (the three server-side models)."""
    rng = rng or np.random.default_rng()
    suite: dict[PrivacyLevel, DenoisingCNN] = {}
    for level in levels:
        student = DenoisingCNN(teacher, level, config=config, rng=rng)
        student.distill(images, verbose=verbose)
        suite[level] = student
    return suite
