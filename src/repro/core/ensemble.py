"""The DarNet ensemble: CNN + IMU model + Bayesian-network combiner.

Implements the three architectures of Table 2:

* ``CNN+RNN`` — the full DarNet (frame CNN, bidirectional-LSTM IMU model,
  BN combiner).
* ``CNN+SVM`` — the ensemble ablation with a kernel SVM on window
  statistics as the IMU model.
* ``CNN``     — frames only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bayesian import BayesianNetworkCombiner
from repro.core.cnn import CnnConfig, DriverFrameCNN
from repro.core.rnn import ImuSequenceRNN, RnnConfig
from repro.datasets.classes import (
    NUM_BEHAVIOR_CLASSES,
    NUM_EXTENDED_IMU_CLASSES,
    NUM_IMU_CLASSES,
)
from repro.datasets.dataset import DrivingDataset
from repro.exceptions import ConfigurationError, NotFittedError
from repro.ml.features import FeatureScaler, extract_window_features
from repro.ml.svm import MultiClassSVM
from repro.nn.metrics import accuracy, confusion_matrix


class SvmImuClassifier:
    """SVM pipeline over IMU windows: features -> scaling -> OvR kernel SVM.

    Presents the same ``fit`` / ``predict_proba`` surface as
    :class:`~repro.core.rnn.ImuSequenceRNN`, so the ensemble can swap the
    IMU model freely.
    """

    def __init__(self, *, c: float = 2.0, kernel: str = "rbf",
                 gamma: float = 0.05, temperature: float = 0.3,
                 rng: np.random.Generator | None = None) -> None:
        self.scaler = FeatureScaler()
        self.svm = MultiClassSVM(c, kernel, gamma=gamma,
                                 temperature=temperature, rng=rng)
        self._num_classes: int | None = None

    def fit(self, windows: np.ndarray, labels: np.ndarray, **_: object
            ) -> None:
        """Train on (n, steps, 12) windows with IMU-class labels."""
        features = self.scaler.fit_transform(extract_window_features(windows))
        labels = np.asarray(labels, dtype=np.int64)
        self._num_classes = int(labels.max()) + 1
        self.svm.fit(features, labels)

    def _features(self, windows: np.ndarray) -> np.ndarray:
        return self.scaler.transform(extract_window_features(windows))

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        """IMU-class probabilities; columns cover the full label range."""
        if self._num_classes is None:
            raise NotFittedError("SvmImuClassifier used before fit()")
        raw = self.svm.predict_proba(self._features(windows))
        # Map the SVM's observed-class columns onto the full label range.
        out = np.zeros((raw.shape[0], self._num_classes))
        for column, class_value in enumerate(self.svm.classes_):
            out[:, int(class_value)] = raw[:, column]
        totals = out.sum(axis=1, keepdims=True)
        return out / np.maximum(totals, 1e-12)

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Hard IMU-class predictions."""
        return self.svm.predict(self._features(windows)).astype(np.int64)

    def evaluate(self, windows: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy."""
        return accuracy(np.asarray(labels), self.predict(windows))


#: The three evaluation architectures of Table 2.
ARCHITECTURES = ("cnn+rnn", "cnn+svm", "cnn")


@dataclass
class EnsembleResult:
    """Evaluation output of one architecture run."""

    architecture: str
    top1: float
    confusion: np.ndarray
    probabilities: np.ndarray
    predictions: np.ndarray
    imu_top1: float | None = None
    extras: dict = field(default_factory=dict)


@dataclass
class DegradedPrediction:
    """A verdict batch annotated with its degradation status.

    ``degraded`` is true when a modality the architecture normally uses
    was unavailable and the posterior fell back to BN marginalization;
    ``missing`` names the absent streams, and ``confidence`` is the
    per-sample max posterior (systematically lower under degradation).
    """

    probabilities: np.ndarray
    predictions: np.ndarray
    confidence: np.ndarray
    degraded: bool
    missing: tuple[str, ...] = ()


class DarNetEnsemble:
    """End-to-end classifier over paired (frame, IMU-window) samples.

    Args:
        architecture: one of ``"cnn+rnn"``, ``"cnn+svm"``, ``"cnn"``.
        cnn: a (possibly pre-trained) frame classifier to reuse; built
            fresh from ``cnn_config`` when omitted.
        cnn_config / rnn_config: hyper-parameters for freshly built models.
        rng: randomness source.
    """

    def __init__(self, architecture: str = "cnn+rnn", *,
                 cnn: DriverFrameCNN | None = None,
                 cnn_config: CnnConfig | None = None,
                 rnn_config: RnnConfig | None = None,
                 combiner: BayesianNetworkCombiner | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if architecture not in ARCHITECTURES:
            raise ConfigurationError(
                f"unknown architecture {architecture!r}; "
                f"choose from {ARCHITECTURES}"
            )
        self.architecture = architecture
        self.rng = rng or np.random.default_rng()
        self.cnn = cnn or DriverFrameCNN(cnn_config, rng=self.rng)
        self.imu_model = None
        if architecture == "cnn+rnn":
            self.imu_model = ImuSequenceRNN(rnn_config, rng=self.rng)
            # One scratch arena serves both members: layer-name-prefixed
            # tags keep their buffers apart, and shared shapes coalesce.
            self.imu_model.model.workspace = self.cnn.model.workspace
        elif architecture == "cnn+svm":
            self.imu_model = SvmImuClassifier(rng=self.rng)
        # Combiner dimensions follow the member heads, so an extended
        # 8-class CNN + 4-class RNN composes without touching the BN code;
        # default configs reproduce the paper's 6x3 network exactly.
        num_classes = self.cnn.config.num_classes
        if isinstance(self.imu_model, ImuSequenceRNN):
            num_imu = self.imu_model.config.num_classes
        else:
            num_imu = (NUM_EXTENDED_IMU_CLASSES
                       if num_classes > NUM_BEHAVIOR_CLASSES
                       else NUM_IMU_CLASSES)
        self.combiner = combiner or BayesianNetworkCombiner(
            num_classes, num_imu)
        self._fitted = False

    # -- training --------------------------------------------------------
    def fit(self, train: DrivingDataset, *, pretrain_cnn: bool = False,
            cnn_epochs: int | None = None, imu_epochs: int | None = None,
            train_cnn: bool = True, verbose: bool = False) -> None:
        """Train the member models, then calibrate the combiner.

        CPTs are computed from the member models' verdicts on the training
        set ("the number of true-positive observations from the training
        data presented to the system", §4.2).

        Args:
            train: the paired training partition.
            pretrain_cnn: run generic-shapes pretraining before fine-tune.
            cnn_epochs / imu_epochs: override configured epoch counts.
            train_cnn: skip CNN training when reusing an already-trained
                frame model across architectures.
            verbose: per-epoch logging.
        """
        if train_cnn:
            if pretrain_cnn:
                self.cnn.pretrain(verbose=verbose)
            self.cnn.fit(train.images, train.labels, epochs=cnn_epochs,
                         verbose=verbose)
        if self.imu_model is not None:
            self.imu_model.fit(train.imu, train.imu_labels,
                               epochs=imu_epochs, verbose=verbose)
            cnn_verdicts = self.cnn.predict(train.images)
            imu_verdicts = self.imu_model.predict(train.imu)
            self.combiner.fit(cnn_verdicts, imu_verdicts, train.labels)
        self._fitted = True

    # -- input validation ------------------------------------------------
    def _validate_images(self, images: np.ndarray) -> None:
        cfg = self.cnn.config
        images = np.asarray(images)
        if images.ndim != 4:
            raise ConfigurationError(
                f"images must be a 4-d NCHW batch, got {images.ndim}-d "
                f"array of shape {images.shape}")
        n, channels, height, width = images.shape
        if (channels, height, width) != (cfg.in_channels, cfg.image_size,
                                         cfg.image_size):
            raise ConfigurationError(
                f"images must be (n, {cfg.in_channels}, {cfg.image_size}, "
                f"{cfg.image_size}) for this CNN, got {images.shape}")

    def _validate_windows(self, windows: np.ndarray) -> None:
        windows = np.asarray(windows)
        if windows.ndim != 3:
            raise ConfigurationError(
                f"IMU windows must be a 3-d (n, steps, features) batch, "
                f"got {windows.ndim}-d array of shape {windows.shape}")
        if isinstance(self.imu_model, ImuSequenceRNN):
            rnn_cfg = self.imu_model.config
            if windows.shape[1:] != (rnn_cfg.window_steps,
                                     rnn_cfg.input_features):
                raise ConfigurationError(
                    f"IMU windows must be (n, {rnn_cfg.window_steps}, "
                    f"{rnn_cfg.input_features}) for this RNN, got "
                    f"{windows.shape}")
        elif windows.shape[2] != 12:
            raise ConfigurationError(
                f"IMU windows must carry 12 features, got {windows.shape}")

    # -- inference -------------------------------------------------------
    def predict_proba(self, dataset: DrivingDataset) -> np.ndarray:
        """Combined behaviour-class probabilities per sample."""
        if not self._fitted:
            raise NotFittedError("ensemble used before fit()")
        self._validate_images(dataset.images)
        if self.imu_model is not None:
            self._validate_windows(dataset.imu)
        cnn_probs = self.cnn.predict_proba(dataset.images)
        if self.imu_model is None:
            return cnn_probs
        imu_probs = self.imu_model.predict_proba(dataset.imu)
        return self.combiner.predict_proba(cnn_probs, imu_probs)

    def predict(self, dataset: DrivingDataset) -> np.ndarray:
        """Hard behaviour predictions."""
        return self.predict_proba(dataset).argmax(axis=1)

    def predict_degraded(self, *, images: np.ndarray | None = None,
                         imu: np.ndarray | None = None
                         ) -> DegradedPrediction:
        """Classify with whatever streams survived, flagging degradation.

        This is the verdict path the controller uses when health
        supervision reports a dead stream mid-drive: with ``imu`` missing
        the BN marginalizes over the IMU parent's prior (CNN-only
        posterior); with ``images`` missing it marginalizes over the CNN
        parent (IMU-only posterior).  Verdicts are always emitted — a
        distracted-driving monitor that goes quiet when a sensor dies is
        worse than one that answers with honest, flagged uncertainty.

        Args:
            images: NCHW frame batch, or ``None`` if the stream is down.
            imu: (n, steps, 12) window batch, or ``None`` if down.
        """
        if not self._fitted:
            raise NotFittedError("ensemble used before fit()")
        if images is None and imu is None:
            raise ConfigurationError(
                "cannot classify: both streams are missing")
        if images is None and self.imu_model is None:
            raise ConfigurationError(
                f"architecture {self.architecture!r} has no IMU model to "
                "fall back on without frames")
        if images is not None:
            self._validate_images(images)
        if imu is not None and self.imu_model is not None:
            self._validate_windows(imu)
        missing: tuple[str, ...] = ()
        if images is not None and (imu is not None or self.imu_model is None):
            # Full-fidelity path: everything the architecture uses is here.
            cnn_probs = self.cnn.predict_proba(images)
            if self.imu_model is None:
                probs = cnn_probs
            else:
                probs = self.combiner.predict_proba(
                    cnn_probs, self.imu_model.predict_proba(imu))
        elif imu is None:
            missing = ("imu",)
            probs = self.combiner.predict_proba_cnn_only(
                self.cnn.predict_proba(images))
        else:
            missing = ("frames",)
            probs = self.combiner.predict_proba_imu_only(
                self.imu_model.predict_proba(imu))
        return DegradedPrediction(
            probabilities=probs,
            predictions=probs.argmax(axis=1),
            confidence=probs.max(axis=1),
            degraded=bool(missing),
            missing=missing,
        )

    def evaluate(self, dataset: DrivingDataset) -> EnsembleResult:
        """Full evaluation: Top-1, confusion matrix, raw probabilities."""
        probabilities = self.predict_proba(dataset)
        predictions = probabilities.argmax(axis=1)
        imu_top1 = None
        if self.imu_model is not None:
            imu_top1 = self.imu_model.evaluate(dataset.imu,
                                               dataset.imu_labels)
        return EnsembleResult(
            architecture=self.architecture,
            top1=accuracy(dataset.labels, predictions),
            confusion=confusion_matrix(dataset.labels, predictions,
                                       self.cnn.config.num_classes),
            probabilities=probabilities,
            predictions=predictions,
            imu_top1=imu_top1,
        )
