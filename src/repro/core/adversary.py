"""Adversarial privacy evaluation (the paper's stated future work).

"Future work is still required to determine how effective these
distortion techniques are for preventing adversarial networks from
performing classification tasks e.g. facial recognition." (paper §5.3)

This module runs that experiment: an adversary trains a CNN to
*re-identify the driver* from exactly the frames the server receives —
i.e. after device-side distortion.  Privacy is quantified as the gap
between the adversary's accuracy and the chance floor, per privacy level.
A level protects identity if the adversary collapses toward chance while
the behaviour dCNN (Table 3) keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cnn import CnnConfig, DriverFrameCNN
from repro.core.privacy import PrivacyLevel, distort_restore
from repro.exceptions import ConfigurationError


@dataclass
class AdversaryResult:
    """Driver re-identification accuracy at one distortion level."""

    level: PrivacyLevel | None
    accuracy: float
    chance: float

    @property
    def privacy_margin(self) -> float:
        """How close the adversary is pushed to chance (1 = fully private).

        Defined as ``1 - (accuracy - chance) / (1 - chance)`` clipped to
        [0, 1]; 0 means the adversary identifies drivers as well as on
        clean frames of a perfectly separable population.
        """
        leak = (self.accuracy - self.chance) / max(1.0 - self.chance, 1e-9)
        return float(np.clip(1.0 - leak, 0.0, 1.0))


class DriverIdentificationAdversary:
    """An adversary that learns to identify drivers from (distorted) frames.

    The adversary is given the strongest realistic position: it trains
    directly on distorted frames with true driver labels (e.g. it joined
    the data-collection study), so its accuracy upper-bounds what a
    weaker, transfer-based attacker could achieve.

    Args:
        num_drivers: identity-class count.
        level: the distortion level the defender selected (``None`` =
            clean frames — the no-privacy baseline).
        config: CNN hyper-parameters for the attack model.
        rng: randomness source.
    """

    def __init__(self, num_drivers: int, level: PrivacyLevel | None, *,
                 config: CnnConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if num_drivers < 2:
            raise ConfigurationError("need >= 2 drivers to identify")
        self.num_drivers = int(num_drivers)
        self.level = level
        self.rng = rng or np.random.default_rng()
        base = config or CnnConfig()
        self.config = CnnConfig(
            num_classes=self.num_drivers, in_channels=base.in_channels,
            image_size=base.image_size, width=base.width,
            dropout=base.dropout, learning_rate=base.learning_rate,
            batch_size=base.batch_size, epochs=base.epochs,
            pretrain_epochs=base.pretrain_epochs,
            pretrain_samples_per_class=base.pretrain_samples_per_class,
            label_smoothing=base.label_smoothing,
        )
        self.model = DriverFrameCNN(self.config, rng=self.rng)

    def _observed(self, images: np.ndarray) -> np.ndarray:
        """What the adversary sees: the server-side restored frames."""
        return distort_restore(np.asarray(images, dtype=np.float32),
                               self.level)

    def fit(self, images: np.ndarray, driver_ids: np.ndarray, *,
            verbose: bool = False) -> None:
        """Train the attack model on distorted frames + identity labels."""
        self.model.fit(self._observed(images),
                       np.asarray(driver_ids, dtype=np.int64),
                       verbose=verbose)

    def evaluate(self, images: np.ndarray,
                 driver_ids: np.ndarray) -> AdversaryResult:
        """Re-identification accuracy on held-out frames."""
        driver_ids = np.asarray(driver_ids, dtype=np.int64)
        accuracy = self.model.evaluate(self._observed(images), driver_ids)
        counts = np.bincount(driver_ids, minlength=self.num_drivers)
        chance = float(counts.max() / max(counts.sum(), 1))
        return AdversaryResult(level=self.level, accuracy=accuracy,
                               chance=chance)


def run_privacy_adversary_study(images: np.ndarray, driver_ids: np.ndarray,
                                *, train_fraction: float = 0.8,
                                config: CnnConfig | None = None,
                                levels=(None, *PrivacyLevel),
                                rng: np.random.Generator | None = None,
                                verbose: bool = False
                                ) -> dict[str, AdversaryResult]:
    """Train one adversary per distortion level; return per-level results.

    Args:
        images: NCHW clean frames (distortion is applied per level).
        driver_ids: identity labels aligned with ``images``.
        train_fraction: attacker's train/eval partition.
        config: attack-model hyper-parameters.
        levels: distortion levels to study (``None`` = clean baseline).
        rng: randomness source.
    """
    rng = rng or np.random.default_rng()
    driver_ids = np.asarray(driver_ids, dtype=np.int64)
    num_drivers = int(driver_ids.max()) + 1
    order = rng.permutation(len(driver_ids))
    cut = int(round(len(order) * train_fraction))
    train_idx, eval_idx = order[:cut], order[cut:]
    results: dict[str, AdversaryResult] = {}
    for level in levels:
        name = "clean" if level is None else level.value
        adversary = DriverIdentificationAdversary(
            num_drivers, level, config=config,
            rng=np.random.default_rng(int(rng.integers(1 << 31))))
        adversary.fit(images[train_idx], driver_ids[train_idx],
                      verbose=verbose)
        results[name] = adversary.evaluate(images[eval_idx],
                                           driver_ids[eval_idx])
    return results
