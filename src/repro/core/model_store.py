"""Whole-system persistence: save and reload a trained DarNet ensemble.

The paper commits to "making the software and learning models available
to the general research community" (§1) — which requires trained models
to survive a process restart.  A saved ensemble is a directory:

    <dir>/manifest.json      architecture + hyper-parameters + digests
    <dir>/cnn.npz            frame-CNN weights (+ batch-norm stats)
    <dir>/rnn.npz            IMU-RNN weights            (cnn+rnn only)
    <dir>/rnn_stats.npz      window standardization stats
    <dir>/svm.npz            SVM dual state + scaler     (cnn+svm only)
    <dir>/combiner.npz       Bayesian-network CPT

The manifest carries a SHA-256 content digest for every artifact file,
and :func:`load_ensemble` verifies each digest before any bytes are
parsed — a flipped bit in transit (OTA distribution, a bad disk) raises
:class:`~repro.exceptions.ModelIntegrityError` instead of silently
loading corrupt weights.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from repro.core.bayesian import BayesianNetworkCombiner
from repro.core.cnn import CnnConfig, DriverFrameCNN
from repro.core.ensemble import DarNetEnsemble, SvmImuClassifier
from repro.core.rnn import ImuSequenceRNN, RnnConfig
from repro.exceptions import ModelIntegrityError, SerializationError
from repro.ml.svm import BinarySVM
from repro.nn.serialization import load_weights, save_weights

_FORMAT_VERSION = 1


def file_digest(path: str) -> str:
    """SHA-256 hex digest of one file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def artifact_digests(directory: str) -> dict[str, str]:
    """Digest every ``.npz`` artifact in a saved-ensemble directory."""
    return {
        name: file_digest(os.path.join(directory, name))
        for name in sorted(os.listdir(directory))
        if name.endswith(".npz")
    }


def verify_artifacts(directory: str, digests: dict[str, str]) -> None:
    """Check every artifact against its recorded digest.

    Raises :class:`ModelIntegrityError` naming the first missing or
    mismatching artifact; a store that verifies is bit-identical to the
    one that was saved.
    """
    for name, expected in sorted(digests.items()):
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise ModelIntegrityError(
                f"artifact {name!r} listed in the manifest is missing "
                f"from {directory}")
        actual = file_digest(path)
        if actual != expected:
            raise ModelIntegrityError(
                f"artifact {name!r} digest mismatch: manifest says "
                f"{expected[:12]}..., file is {actual[:12]}...")


def save_ensemble(ensemble: DarNetEnsemble, directory: str) -> None:
    """Persist a trained ensemble into ``directory`` (created if needed)."""
    if not ensemble._fitted:
        raise SerializationError("cannot save an untrained ensemble")
    os.makedirs(directory, exist_ok=True)
    cnn_cfg = ensemble.cnn.config
    manifest = {
        "format_version": _FORMAT_VERSION,
        "architecture": ensemble.architecture,
        "cnn_config": {
            "num_classes": cnn_cfg.num_classes,
            "in_channels": cnn_cfg.in_channels,
            "image_size": cnn_cfg.image_size,
            "width": cnn_cfg.width,
            "dropout": cnn_cfg.dropout,
        },
    }
    save_weights(ensemble.cnn.network, os.path.join(directory, "cnn.npz"))
    if isinstance(ensemble.imu_model, ImuSequenceRNN):
        rnn = ensemble.imu_model
        manifest["rnn_config"] = {
            "num_classes": rnn.config.num_classes,
            "input_features": rnn.config.input_features,
            "hidden_units": rnn.config.hidden_units,
            "num_layers": rnn.config.num_layers,
            "window_steps": rnn.config.window_steps,
            "dropout": rnn.config.dropout,
        }
        save_weights(rnn.network, os.path.join(directory, "rnn.npz"))
        mean, std = rnn._stats
        np.savez(os.path.join(directory, "rnn_stats.npz"), mean=mean, std=std)
    elif isinstance(ensemble.imu_model, SvmImuClassifier):
        _save_svm(ensemble.imu_model, os.path.join(directory, "svm.npz"))
    if ensemble.imu_model is not None:
        np.savez(os.path.join(directory, "combiner.npz"),
                 cpt=ensemble.combiner.cpt,
                 laplace=np.array(ensemble.combiner.laplace),
                 cnn_prior=ensemble.combiner.cnn_prior(),
                 imu_prior=ensemble.combiner.imu_prior())
    manifest["digests"] = artifact_digests(directory)
    with open(os.path.join(directory, "manifest.json"), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)


def load_ensemble(directory: str, *,
                  rng: np.random.Generator | None = None) -> DarNetEnsemble:
    """Reload an ensemble saved by :func:`save_ensemble`, inference-ready."""
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.exists(manifest_path):
        raise SerializationError(f"no manifest at {manifest_path}")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format_version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {manifest.get('format_version')}"
        )
    # Pre-digest saves carry no "digests" key and load unverified.
    if "digests" in manifest:
        verify_artifacts(directory, manifest["digests"])
    rng = rng or np.random.default_rng()
    architecture = manifest["architecture"]
    cnn = DriverFrameCNN(CnnConfig(**manifest["cnn_config"]), rng=rng)
    load_weights(cnn.network, os.path.join(directory, "cnn.npz"))
    cnn.model.mark_fitted()
    rnn_config = None
    if "rnn_config" in manifest:
        rnn_config = RnnConfig(**manifest["rnn_config"])
    ensemble = DarNetEnsemble(architecture, cnn=cnn, rnn_config=rnn_config,
                              rng=rng)
    if isinstance(ensemble.imu_model, ImuSequenceRNN):
        rnn = ensemble.imu_model
        load_weights(rnn.network, os.path.join(directory, "rnn.npz"))
        rnn.model.mark_fitted()
        with np.load(os.path.join(directory, "rnn_stats.npz")) as stats:
            rnn._stats = (stats["mean"], stats["std"])
    elif isinstance(ensemble.imu_model, SvmImuClassifier):
        _load_svm(ensemble.imu_model, os.path.join(directory, "svm.npz"))
    if ensemble.imu_model is not None:
        with np.load(os.path.join(directory, "combiner.npz")) as data:
            combiner = BayesianNetworkCombiner(
                data["cpt"].shape[0], data["cpt"].shape[1],
                laplace=float(data["laplace"]))
            combiner._cpt = data["cpt"]
            # Parent priors are absent in pre-degraded-mode saves; the
            # combiner then falls back to uniform marginals.
            if "cnn_prior" in data.files:
                combiner._cnn_prior = data["cnn_prior"]
                combiner._imu_prior = data["imu_prior"]
        ensemble.combiner = combiner
    ensemble._fitted = True
    return ensemble


def _save_svm(classifier: SvmImuClassifier, path: str) -> None:
    machines = classifier.svm._machines
    if machines is None:
        raise SerializationError("SVM has not been trained")
    arrays: dict[str, np.ndarray] = {
        "classes": classifier.svm.classes_,
        "num_classes": np.array(classifier._num_classes),
        "c": np.array(classifier.svm.c),
        "gamma": np.array(classifier.svm.gamma),
        "temperature": np.array(classifier.svm.temperature),
        "scaler_mean": classifier.scaler._mean,
        "scaler_std": classifier.scaler._std,
    }
    for index, machine in enumerate(machines):
        arrays[f"alpha_{index:02d}"] = machine._alpha
        arrays[f"sv_x_{index:02d}"] = machine._x
        arrays[f"sv_y_{index:02d}"] = machine._y
        arrays[f"bias_{index:02d}"] = np.array(machine._bias)
    np.savez(path, **arrays)


def _load_svm(classifier: SvmImuClassifier, path: str) -> None:
    if not os.path.exists(path):
        raise SerializationError(f"SVM state not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        classifier._num_classes = int(data["num_classes"])
        classifier.svm.c = float(data["c"])
        classifier.svm.gamma = float(data["gamma"])
        classifier.svm.temperature = float(data["temperature"])
        classifier.scaler._mean = data["scaler_mean"]
        classifier.scaler._std = data["scaler_std"]
        classifier.svm._classes = data["classes"]
        machines = []
        index = 0
        while f"alpha_{index:02d}" in data.files:
            machine = BinarySVM(classifier.svm.c, "rbf",
                                gamma=classifier.svm.gamma)
            machine._alpha = data[f"alpha_{index:02d}"]
            machine._x = data[f"sv_x_{index:02d}"]
            machine._y = data[f"sv_y_{index:02d}"]
            machine._bias = float(data[f"bias_{index:02d}"])
            machines.append(machine)
            index += 1
        classifier.svm._machines = machines
