"""The complete DarNet system: collection framework + analytics engine.

Ties both halves of the paper together: scripted collection drives run
through the streaming simulation produce aligned multimodal data; the
trained ensemble classifies "at each time-step from the data, making it
amenable to near real-time detection" (§1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ensemble import DarNetEnsemble
from repro.core.privacy import DistortionModule, PrivacyLevel
from repro.datasets.classes import DrivingBehavior
from repro.datasets.dataset import DrivingDataset
from repro.datasets.image_synth import DriverAppearance, SceneRenderer
from repro.datasets.imu_synth import (
    DEFAULT_WINDOW_STEPS,
    DriverProfile,
    ImuTraceGenerator,
)
from repro.datasets.windows import windows_from_stream
from repro.exceptions import ConfigurationError
from repro.streaming.agent import scripted_labeller
from repro.streaming.pipeline import (
    CollectionSession,
    SessionConfig,
    SessionResult,
)


@dataclass
class DriveScript:
    """A scripted collection drive: timed distraction segments.

    The paper's drivers performed scripted 15-second distractions, ten
    repetitions each (§5.1).
    """

    segments: list[tuple[float, float, DrivingBehavior]]

    @property
    def duration(self) -> float:
        if not self.segments:
            return 0.0
        return max(end for _, end, _ in self.segments)

    @classmethod
    def standard(cls, behaviors: list[DrivingBehavior] | None = None, *,
                 segment_seconds: float = 15.0, repetitions: int = 1,
                 gap_seconds: float = 2.0) -> "DriveScript":
        """The paper-style script: each behaviour for 15 s, repeated."""
        behaviors = behaviors or list(DrivingBehavior)
        segments: list[tuple[float, float, DrivingBehavior]] = []
        t = 0.0
        for _ in range(repetitions):
            for behavior in behaviors:
                segments.append((t, t + segment_seconds, behavior))
                t += segment_seconds + gap_seconds
        return cls(segments)


def run_collection_drive(script: DriveScript, *, driver_id: int = 0,
                         config: SessionConfig | None = None,
                         privacy: PrivacyLevel | None = None,
                         rng: np.random.Generator | None = None
                         ) -> SessionResult:
    """Execute one scripted drive through the full streaming stack.

    A per-segment :class:`ImuTraceGenerator` provides the phone's physical
    signal; the scene renderer provides dashcam frames; both are labelled
    by the drive script.  An optional privacy level plugs the distortion
    module into the controller's frame path.
    """
    if not script.segments:
        raise ConfigurationError("drive script has no segments")
    rng = rng or np.random.default_rng()
    profile = DriverProfile.sample(driver_id, rng)
    appearance = DriverAppearance.sample(driver_id, rng)
    renderer = SceneRenderer(appearance)
    episodes = {
        index: ImuTraceGenerator(behavior, profile, rng=rng)
        for index, (_, _, behavior) in enumerate(script.segments)
    }
    idle = ImuTraceGenerator(DrivingBehavior.NORMAL, profile, rng=rng)

    def segment_at(t: float) -> int | None:
        for index, (start, end, _) in enumerate(script.segments):
            if start <= t < end:
                return index
        return None

    def imu_signal(sensor: str, t: float) -> np.ndarray:
        index = segment_at(t)
        generator = idle if index is None else episodes[index]
        return generator.sample(sensor, t)

    def behavior_at(t: float) -> int:
        index = segment_at(t)
        if index is None:
            return int(DrivingBehavior.NORMAL)
        return int(script.segments[index][2])

    frame_fn = renderer.frame_fn(behavior_at, rng=rng)
    labeller = scripted_labeller(
        [(start, end, int(behavior))
         for start, end, behavior in script.segments])
    frame_transform = None
    if privacy is not None:
        frame_transform = DistortionModule(privacy).distort_frame
    session = CollectionSession(imu_signal, frame_fn, labeller,
                                config=config, rng=rng,
                                frame_transform=frame_transform)
    return session.run(script.duration + 1.0)


def dataset_from_drives(results: list[SessionResult], *,
                        window_steps: int = DEFAULT_WINDOW_STEPS,
                        stride: int = 2) -> DrivingDataset:
    """Build a training dataset from streamed collection drives.

    This is how the paper's own dataset came to be: data flows through the
    agents/controller pipeline (including interpolation and smoothing) and
    is then windowed for the models, so the training distribution matches
    what the deployed system sees at inference time.  Each window pairs
    with the camera frame nearest its end instant.

    Args:
        results: finished collection sessions (one per drive).
        window_steps: IMU window length.
        stride: grid steps between consecutive windows (2 = 0.5 s overlap
            spacing at the 4 Hz grid).
    """
    if not results:
        raise ConfigurationError("no collection sessions supplied")
    images: list[np.ndarray] = []
    windows: list[np.ndarray] = []
    labels: list[int] = []
    drivers: list[int] = []
    for driver_index, result in enumerate(results):
        wins, marks = windows_from_stream(result.imu, result.imu_labels,
                                          steps=window_steps, stride=stride,
                                          drop_unlabelled=True)
        if wins.shape[0] == 0:
            continue
        window_times = result.grid[window_steps - 1::stride][:wins.shape[0]]
        frame_times = np.array([f.timestamp for f in result.frames])
        frames = np.stack([np.asarray(f.image, dtype=np.float32)
                           for f in result.frames])
        if frames.ndim == 3:
            frames = frames[:, None]
        nearest = np.clip(np.searchsorted(frame_times, window_times),
                          0, len(result.frames) - 1)
        for i in range(wins.shape[0]):
            images.append(frames[nearest[i]])
            windows.append(wins[i])
            labels.append(int(marks[i]))
            drivers.append(driver_index)
    if not labels:
        raise ConfigurationError("collection sessions produced no windows")
    return DrivingDataset(
        images=np.stack(images),
        imu=np.stack(windows),
        labels=np.asarray(labels, dtype=np.int64),
        drivers=np.asarray(drivers, dtype=np.int64),
    )


@dataclass
class TimestepClassification:
    """One near-real-time verdict."""

    timestamp: float
    predicted: DrivingBehavior
    probabilities: np.ndarray
    true_label: DrivingBehavior | None


class DarNetSystem:
    """End-to-end facade: classify streamed drives with a trained ensemble.

    Args:
        ensemble: a trained :class:`~repro.core.ensemble.DarNetEnsemble`.
        window_steps: IMU window length for per-timestep verdicts.
    """

    def __init__(self, ensemble: DarNetEnsemble, *,
                 window_steps: int = DEFAULT_WINDOW_STEPS) -> None:
        self.ensemble = ensemble
        self.window_steps = int(window_steps)

    def classify_session(self, result: SessionResult
                         ) -> list[TimestepClassification]:
        """Per-timestep classification of a finished collection session.

        Each verdict pairs the IMU window ending at grid step *t* with the
        camera frame nearest to that instant.
        """
        windows, labels = windows_from_stream(result.imu, result.imu_labels,
                                              steps=self.window_steps,
                                              drop_unlabelled=False)
        if windows.shape[0] == 0:
            return []
        window_times = result.grid[self.window_steps - 1:]
        frame_times = np.array([frame.timestamp for frame in result.frames])
        images = np.stack([np.asarray(frame.image, dtype=np.float32)
                           for frame in result.frames])
        if images.ndim == 3:
            images = images[:, None]
        nearest = np.searchsorted(frame_times, window_times)
        nearest = np.clip(nearest, 0, len(result.frames) - 1)
        batch = DrivingDataset(
            images=images[nearest],
            imu=windows,
            labels=np.maximum(labels, 0),
            drivers=np.zeros(windows.shape[0], dtype=np.int64),
        )
        probabilities = self.ensemble.predict_proba(batch)
        verdicts = []
        for i, t in enumerate(window_times):
            true = None if labels[i] < 0 else DrivingBehavior(int(labels[i]))
            verdicts.append(TimestepClassification(
                timestamp=float(t),
                predicted=DrivingBehavior(int(probabilities[i].argmax())),
                probabilities=probabilities[i],
                true_label=true,
            ))
        return verdicts
