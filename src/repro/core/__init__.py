"""DarNet's primary contribution: the multimodal analytics engine.

CNN frame classifier, bidirectional-LSTM IMU classifier, Bayesian-network
ensemble combiner, the privacy-preserving dCNN distillation path, and the
end-to-end system facade.
"""

from repro.core.inception import (
    build_micro_inception,
    conv_bn_relu,
    inception_a,
    inception_b,
    replace_classifier,
)
from repro.core.cnn import CnnConfig, DriverFrameCNN
from repro.core.rnn import ImuSequenceRNN, RnnConfig, build_imu_rnn
from repro.core.bayesian import (
    AveragingCombiner,
    BayesianNetworkCombiner,
    MaxConfidenceCombiner,
    ProductCombiner,
    expand_imu_probs,
)
from repro.core.ensemble import (
    ARCHITECTURES,
    DarNetEnsemble,
    DegradedPrediction,
    EnsembleResult,
    SvmImuClassifier,
)
from repro.core.privacy import (
    DistortionModule,
    PrivacyLevel,
    distort_restore,
    nearest_neighbor_resize,
    restore_size,
)
from repro.core.distillation import (
    DenoisingCNN,
    DistillationConfig,
    train_privacy_suite,
)
from repro.core.engine import AnalyticsEngine, ModalityModel, StreamModel
from repro.core.adversary import (
    AdversaryResult,
    DriverIdentificationAdversary,
    run_privacy_adversary_study,
)
from repro.core.alerts import (
    Alert,
    AlertPolicy,
    DistractionAlerter,
    DriverReport,
    FleetMonitor,
)
from repro.core.model_store import (
    artifact_digests,
    file_digest,
    load_ensemble,
    save_ensemble,
    verify_artifacts,
)
from repro.core.darnet import (
    DarNetSystem,
    dataset_from_drives,
    DriveScript,
    TimestepClassification,
    run_collection_drive,
)

__all__ = [
    "build_micro_inception", "replace_classifier", "conv_bn_relu",
    "inception_a", "inception_b", "DriverFrameCNN", "CnnConfig",
    "ImuSequenceRNN", "RnnConfig", "build_imu_rnn",
    "BayesianNetworkCombiner", "AveragingCombiner", "ProductCombiner",
    "MaxConfidenceCombiner", "expand_imu_probs", "DarNetEnsemble",
    "DegradedPrediction", "EnsembleResult", "SvmImuClassifier",
    "ARCHITECTURES", "PrivacyLevel",
    "DistortionModule", "nearest_neighbor_resize", "restore_size",
    "distort_restore", "DenoisingCNN", "DistillationConfig",
    "train_privacy_suite", "AnalyticsEngine", "ModalityModel", "StreamModel",
    "DarNetSystem", "DriveScript", "TimestepClassification",
    "run_collection_drive", "dataset_from_drives", "AdversaryResult",
    "DriverIdentificationAdversary", "run_privacy_adversary_study",
    "Alert", "AlertPolicy", "DistractionAlerter", "DriverReport",
    "FleetMonitor", "save_ensemble", "load_ensemble",
    "artifact_digests", "file_digest", "verify_artifacts",
]
