"""Ensemble combiners, centered on the paper's Bayesian Network approach.

"Because the RNN and CNN output probability distributions for a different
set of classes, we implement a Bayesian Network to combine the outputs
into a single inference.  Each class is assigned its own BN consisting of
two parent nodes and a child node.  We compute the conditional probability
tables (CPTs) for each class based on the number of true-positive
observations from the training data presented to the system." (§4.2)

Concretely: for behaviour class *c* the BN's parents are the CNN's verdict
(6-way) and the IMU model's verdict (3-way), and the child is the event
"true class is c".  The CPT entry ``P(c | cnn=i, imu=j)`` is estimated
from training-set co-occurrence counts with Laplace smoothing.  At
inference the parent verdicts are soft, so the child probability
marginalizes the CPT over the joint parent distribution:

    P(c) = sum_ij  P_cnn(i) * P_rnn(j) * CPT[i, j, c]

Alternative combiners (averaging / product / max-confidence) are provided
for the ablation benchmark, since the BN is the paper's stated novelty.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.classes import (
    NUM_BEHAVIOR_CLASSES,
    NUM_IMU_CLASSES,
    DrivingBehavior,
    to_imu_class,
)
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError


def _check_probs(probs: np.ndarray, classes: int, name: str) -> np.ndarray:
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[1] != classes:
        raise ShapeError(f"{name}: expected (n, {classes}), got {probs.shape}")
    return probs


class BayesianNetworkCombiner:
    """Per-class Bayesian networks over the two model verdicts.

    Args:
        num_classes: behaviour-class count (CNN label space).
        num_imu_classes: IMU-class count (RNN/SVM label space).
        laplace: additive smoothing for CPT estimation — keeps parent
            configurations never seen in training from zeroing a class.
    """

    def __init__(self, num_classes: int = NUM_BEHAVIOR_CLASSES,
                 num_imu_classes: int = NUM_IMU_CLASSES, *,
                 laplace: float = 1.0) -> None:
        if laplace < 0:
            raise ConfigurationError(f"laplace must be >= 0, got {laplace}")
        self.num_classes = int(num_classes)
        self.num_imu_classes = int(num_imu_classes)
        self.laplace = float(laplace)
        self._cpt: np.ndarray | None = None  # (cnn, imu, true)
        self._cnn_prior: np.ndarray | None = None
        self._imu_prior: np.ndarray | None = None

    def fit(self, cnn_predictions: np.ndarray, imu_predictions: np.ndarray,
            true_labels: np.ndarray) -> "BayesianNetworkCombiner":
        """Estimate CPTs from training-set verdict co-occurrences.

        Args:
            cnn_predictions: (n,) hard CNN verdicts on training data.
            imu_predictions: (n,) hard IMU-model verdicts.
            true_labels: (n,) ground-truth behaviour classes.
        """
        cnn_predictions = np.asarray(cnn_predictions, dtype=np.int64)
        imu_predictions = np.asarray(imu_predictions, dtype=np.int64)
        true_labels = np.asarray(true_labels, dtype=np.int64)
        if not (cnn_predictions.shape == imu_predictions.shape
                == true_labels.shape):
            raise ShapeError("prediction/label arrays must share shape")
        counts = np.zeros(
            (self.num_classes, self.num_imu_classes, self.num_classes))
        np.add.at(counts, (cnn_predictions, imu_predictions, true_labels), 1.0)
        counts += self.laplace
        self._cpt = counts / counts.sum(axis=2, keepdims=True)
        # Parent marginals, kept for degraded-mode inference: when one
        # modality's stream dies, its verdict distribution is replaced by
        # the training-time prior and the BN marginalizes over it.
        cnn_marginal = counts.sum(axis=(1, 2))
        imu_marginal = counts.sum(axis=(0, 2))
        self._cnn_prior = cnn_marginal / cnn_marginal.sum()
        self._imu_prior = imu_marginal / imu_marginal.sum()
        return self

    @property
    def cpt(self) -> np.ndarray:
        """The (cnn, imu, true) conditional probability tensor."""
        if self._cpt is None:
            raise NotFittedError("combiner used before fit()")
        return self._cpt

    def cnn_prior(self) -> np.ndarray:
        """Training-time marginal of the CNN parent (uniform pre-priors)."""
        if self._cnn_prior is not None:
            return self._cnn_prior
        return np.full(self.num_classes, 1.0 / self.num_classes)

    def imu_prior(self) -> np.ndarray:
        """Training-time marginal of the IMU parent (uniform pre-priors)."""
        if self._imu_prior is not None:
            return self._imu_prior
        return np.full(self.num_imu_classes, 1.0 / self.num_imu_classes)

    def predict_proba(self, cnn_probs: np.ndarray | None,
                      imu_probs: np.ndarray | None) -> np.ndarray:
        """Combined behaviour-class distribution per sample.

        Either parent distribution may be ``None`` when its stream is
        unavailable: the BN then marginalizes the CPT over that parent's
        training-time prior instead of collapsing — the degraded-mode
        verdict path.  Passing both as ``None`` is an error.
        """
        if cnn_probs is None and imu_probs is None:
            raise ConfigurationError(
                "at least one of cnn_probs/imu_probs is required")
        if imu_probs is None:
            cnn_probs = _check_probs(cnn_probs, self.num_classes, "cnn_probs")
            combined = np.einsum("ni,j,ijc->nc", cnn_probs,
                                 self.imu_prior(), self.cpt)
        elif cnn_probs is None:
            imu_probs = _check_probs(imu_probs, self.num_imu_classes,
                                     "imu_probs")
            combined = np.einsum("i,nj,ijc->nc", self.cnn_prior(),
                                 imu_probs, self.cpt)
        else:
            cnn_probs = _check_probs(cnn_probs, self.num_classes, "cnn_probs")
            imu_probs = _check_probs(imu_probs, self.num_imu_classes,
                                     "imu_probs")
            if cnn_probs.shape[0] != imu_probs.shape[0]:
                raise ShapeError("cnn/imu batches differ in length")
            combined = np.einsum("ni,nj,ijc->nc", cnn_probs, imu_probs,
                                 self.cpt)
        totals = combined.sum(axis=1, keepdims=True)
        return combined / np.maximum(totals, 1e-12)

    def predict_proba_cnn_only(self, cnn_probs: np.ndarray) -> np.ndarray:
        """Degraded-mode posterior when the IMU stream is missing."""
        return self.predict_proba(cnn_probs, None)

    def predict_proba_imu_only(self, imu_probs: np.ndarray) -> np.ndarray:
        """Degraded-mode posterior when the frame stream is missing."""
        return self.predict_proba(None, imu_probs)

    def predict(self, cnn_probs: np.ndarray | None,
                imu_probs: np.ndarray | None) -> np.ndarray:
        """Hard combined verdicts."""
        return self.predict_proba(cnn_probs, imu_probs).argmax(axis=1)


def expand_imu_probs(imu_probs: np.ndarray,
                     num_classes: int = NUM_BEHAVIOR_CLASSES) -> np.ndarray:
    """Lift a 3-way IMU distribution into the 6-way behaviour space.

    Probability mass of each IMU class is split uniformly among the
    behaviour classes that map to it (normal -> the four non-phone
    classes).  Used by the non-BN baseline combiners, which need both
    modalities in one label space.
    """
    imu_probs = _check_probs(imu_probs, NUM_IMU_CLASSES, "imu_probs")
    groups: dict[int, list[int]] = {}
    for behavior in range(num_classes):
        imu_class = int(to_imu_class(DrivingBehavior(behavior)))
        groups.setdefault(imu_class, []).append(behavior)
    expanded = np.zeros((imu_probs.shape[0], num_classes))
    for imu_class, members in groups.items():
        share = imu_probs[:, imu_class] / len(members)
        for behavior in members:
            expanded[:, behavior] = share
    return expanded


class AveragingCombiner:
    """Uniform average of the two (expanded) distributions."""

    def predict_proba(self, cnn_probs: np.ndarray,
                      imu_probs: np.ndarray) -> np.ndarray:
        cnn_probs = _check_probs(cnn_probs, cnn_probs.shape[1], "cnn_probs")
        expanded = expand_imu_probs(imu_probs, cnn_probs.shape[1])
        return (cnn_probs + expanded) / 2.0

    def predict(self, cnn_probs: np.ndarray,
                imu_probs: np.ndarray) -> np.ndarray:
        return self.predict_proba(cnn_probs, imu_probs).argmax(axis=1)


class ProductCombiner:
    """Product-of-experts: multiply distributions and renormalize."""

    def predict_proba(self, cnn_probs: np.ndarray,
                      imu_probs: np.ndarray) -> np.ndarray:
        cnn_probs = _check_probs(cnn_probs, cnn_probs.shape[1], "cnn_probs")
        expanded = expand_imu_probs(imu_probs, cnn_probs.shape[1])
        product = cnn_probs * (expanded + 1e-9)
        return product / product.sum(axis=1, keepdims=True)

    def predict(self, cnn_probs: np.ndarray,
                imu_probs: np.ndarray) -> np.ndarray:
        return self.predict_proba(cnn_probs, imu_probs).argmax(axis=1)


class MaxConfidenceCombiner:
    """Trust whichever modality is most confident per sample."""

    def predict_proba(self, cnn_probs: np.ndarray,
                      imu_probs: np.ndarray) -> np.ndarray:
        cnn_probs = _check_probs(cnn_probs, cnn_probs.shape[1], "cnn_probs")
        expanded = expand_imu_probs(imu_probs, cnn_probs.shape[1])
        pick_imu = expanded.max(axis=1) > cnn_probs.max(axis=1)
        out = cnn_probs.copy()
        out[pick_imu] = expanded[pick_imu]
        return out

    def predict(self, cnn_probs: np.ndarray,
                imu_probs: np.ndarray) -> np.ndarray:
        return self.predict_proba(cnn_probs, imu_probs).argmax(axis=1)
