"""Real-time alerting and fleet monitoring.

The paper motivates detection with "providing real-time alerts to drivers
and fleet managers" (§1).  This module turns DarNet's per-timestep
verdict stream into debounced alerts and fleet-level statistics:

* :class:`AlertPolicy` / :class:`DistractionAlerter` — raise an alert
  after N consecutive distracted verdicts above a confidence threshold
  (debouncing the classifier's per-frame noise), close it after M
  consecutive normal verdicts.
* :class:`FleetMonitor` — aggregate per-driver distraction exposure, the
  metric an insurer (the paper cites Progressive Snapshot) would price.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.darnet import TimestepClassification
from repro.datasets.classes import DrivingBehavior
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class AlertPolicy:
    """Debouncing rules for raising/clearing a distraction alert."""

    consecutive_to_raise: int = 4      # 1 s at the 4 Hz verdict rate
    consecutive_to_clear: int = 8      # 2 s of normal driving to clear
    min_confidence: float = 0.35

    def __post_init__(self) -> None:
        if self.consecutive_to_raise < 1 or self.consecutive_to_clear < 1:
            raise ConfigurationError("consecutive counts must be >= 1")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigurationError("min_confidence must be in [0, 1]")


@dataclass(frozen=True)
class Alert:
    """One raised distraction episode."""

    start_time: float
    end_time: float | None
    behavior: DrivingBehavior

    @property
    def duration(self) -> float | None:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time


class DistractionAlerter:
    """Streaming alert state machine over per-timestep verdicts."""

    def __init__(self, policy: AlertPolicy | None = None) -> None:
        self.policy = policy or AlertPolicy()
        self.alerts: list[Alert] = []
        self._distracted_run: list[TimestepClassification] = []
        self._normal_run = 0
        self._active: Alert | None = None

    @property
    def active_alert(self) -> Alert | None:
        """The currently open alert, if any."""
        return self._active

    def observe(self, verdict: TimestepClassification) -> Alert | None:
        """Feed one verdict; returns a *newly raised* alert or ``None``."""
        policy = self.policy
        confidence = float(verdict.probabilities.max())
        distracted = (verdict.predicted != DrivingBehavior.NORMAL
                      and confidence >= policy.min_confidence)
        raised = None
        if distracted:
            self._normal_run = 0
            self._distracted_run.append(verdict)
            if (self._active is None
                    and len(self._distracted_run) >= policy.consecutive_to_raise):
                first = self._distracted_run[0]
                behaviors = [v.predicted for v in self._distracted_run]
                values, counts = np.unique(
                    [int(b) for b in behaviors], return_counts=True)
                majority = DrivingBehavior(int(values[np.argmax(counts)]))
                self._active = Alert(start_time=first.timestamp,
                                     end_time=None, behavior=majority)
                raised = self._active
        else:
            self._distracted_run.clear()
            self._normal_run += 1
            if (self._active is not None
                    and self._normal_run >= policy.consecutive_to_clear):
                closed = Alert(start_time=self._active.start_time,
                               end_time=verdict.timestamp,
                               behavior=self._active.behavior)
                self.alerts.append(closed)
                self._active = None
        return raised

    def finish(self, end_time: float | None = None) -> list[Alert]:
        """Close any open alert and return the full alert history."""
        if self._active is not None:
            self.alerts.append(Alert(start_time=self._active.start_time,
                                     end_time=end_time,
                                     behavior=self._active.behavior))
            self._active = None
        return list(self.alerts)


@dataclass
class DriverReport:
    """Fleet-level exposure statistics for one driver."""

    driver_id: int
    verdicts: int = 0
    distracted_verdicts: int = 0
    alerts: int = 0
    alert_seconds: float = 0.0
    by_behavior: dict = field(default_factory=dict)

    @property
    def distraction_rate(self) -> float:
        if self.verdicts == 0:
            return 0.0
        return self.distracted_verdicts / self.verdicts


class FleetMonitor:
    """Aggregates alerting output across a fleet of drivers."""

    def __init__(self, policy: AlertPolicy | None = None) -> None:
        self.policy = policy or AlertPolicy()
        self._reports: dict[int, DriverReport] = {}

    def ingest_session(self, driver_id: int,
                       verdicts: list[TimestepClassification]
                       ) -> DriverReport:
        """Process one driver session through the alerter and aggregate."""
        report = self._reports.setdefault(driver_id,
                                          DriverReport(driver_id))
        alerter = DistractionAlerter(self.policy)
        for verdict in verdicts:
            alerter.observe(verdict)
            report.verdicts += 1
            if verdict.predicted != DrivingBehavior.NORMAL:
                report.distracted_verdicts += 1
                key = verdict.predicted.display_name
                report.by_behavior[key] = report.by_behavior.get(key, 0) + 1
        end = verdicts[-1].timestamp if verdicts else None
        for alert in alerter.finish(end):
            report.alerts += 1
            if alert.duration is not None:
                report.alert_seconds += alert.duration
        return report

    def report(self, driver_id: int) -> DriverReport:
        """Per-driver report (raises KeyError for unknown drivers)."""
        return self._reports[driver_id]

    def ranking(self) -> list[DriverReport]:
        """Drivers ordered by distraction rate, worst first."""
        return sorted(self._reports.values(),
                      key=lambda r: r.distraction_rate, reverse=True)
