"""IMU-sequence classifier (the RNN half of DarNet's analytics engine).

"The architecture for the RNN consists of 2 bidirectional LSTM cells
containing 64 hidden units.  Because we use a sampling frequency of 4Hz
and a time window of 5 seconds, the network is trained and evaluated on a
sliding window of 20 data points." (paper §4.2)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.classes import NUM_IMU_CLASSES
from repro.datasets.imu_synth import standardize_windows
from repro.exceptions import ConfigurationError, NotFittedError
from repro.nn import (
    Adam,
    BidirectionalLSTM,
    Dense,
    Dropout,
    NeuralNetwork,
    Sequential,
    SoftmaxCrossEntropy,
)


@dataclass
class RnnConfig:
    """Hyper-parameters for the IMU classifier (paper defaults)."""

    num_classes: int = NUM_IMU_CLASSES
    input_features: int = 12
    hidden_units: int = 64          # paper: 64 hidden units
    num_layers: int = 2             # paper: 2 bidirectional LSTM cells
    window_steps: int = 20          # paper: 4 Hz x 5 s
    dropout: float = 0.2
    learning_rate: float = 2e-3
    batch_size: int = 32
    epochs: int = 40
    grad_clip: float = 5.0
    cell: str = "lstm"              # "lstm" (paper) or "gru" (ablation)


def build_imu_rnn(config: RnnConfig, *,
                  rng: np.random.Generator | None = None) -> Sequential:
    """Stacked bidirectional recurrent network with a softmax classifier.

    The cell type follows ``config.cell``: the paper's bidirectional LSTM
    by default, or a bidirectional GRU for the architecture ablation.
    """
    from repro.nn import BidirectionalGRU
    rng = rng or np.random.default_rng()
    if config.cell not in ("lstm", "gru"):
        raise ConfigurationError(
            f"unknown recurrent cell {config.cell!r}; use 'lstm' or 'gru'"
        )
    cell_cls = BidirectionalLSTM if config.cell == "lstm" else BidirectionalGRU
    layers: list = []
    in_features = config.input_features
    for layer_index in range(config.num_layers):
        last = layer_index == config.num_layers - 1
        layers.append(cell_cls(
            in_features, config.hidden_units, return_sequences=not last,
            rng=rng, name=f"bi{config.cell}{layer_index + 1}",
        ))
        in_features = 2 * config.hidden_units
    if config.dropout:
        layers.append(Dropout(config.dropout, rng=rng, name="rnn.dropout"))
    layers.append(Dense(in_features, config.num_classes,
                        weight_init="small_normal", rng=rng,
                        name="rnn.logits"))
    return Sequential(layers, name="imu_bilstm")


class ImuSequenceRNN:
    """Deep bidirectional recurrent net over standardized IMU windows.

    The paper's configuration (2 bidirectional LSTM cells, 64 units,
    20-step windows) is the default; ``RnnConfig.cell`` switches to GRU.
    Standardization statistics are learned from the training set and
    applied consistently at inference.
    """

    def __init__(self, config: RnnConfig | None = None, *,
                 rng: np.random.Generator | None = None) -> None:
        self.config = config or RnnConfig()
        self.rng = rng or np.random.default_rng()
        self.network = build_imu_rnn(self.config, rng=self.rng)
        cfg = self.config
        self.model = NeuralNetwork(
            self.network,
            loss=SoftmaxCrossEntropy(),
            optimizer_factory=lambda params: Adam(params, cfg.learning_rate),
            grad_clip=cfg.grad_clip,
        )
        self._stats: tuple[np.ndarray, np.ndarray] | None = None

    def fit(self, windows: np.ndarray, labels: np.ndarray, *,
            epochs: int | None = None,
            validation: tuple[np.ndarray, np.ndarray] | None = None,
            verbose: bool = False) -> None:
        """Train on (n, steps, 12) windows with 3-way IMU labels."""
        cfg = self.config
        scaled, self._stats = standardize_windows(windows)
        if validation is not None:
            val_scaled, _ = standardize_windows(validation[0], self._stats)
            validation = (val_scaled, validation[1])
        self.model.fit(scaled, labels,
                       epochs=cfg.epochs if epochs is None else epochs,
                       batch_size=cfg.batch_size, rng=self.rng,
                       validation=validation, verbose=verbose)

    def _scale(self, windows: np.ndarray) -> np.ndarray:
        if self._stats is None:
            raise NotFittedError("ImuSequenceRNN used before fit()")
        scaled, _ = standardize_windows(windows, self._stats)
        return scaled

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        """3-way probability distribution per window."""
        return self.model.predict_proba(self._scale(windows))

    def predict(self, windows: np.ndarray) -> np.ndarray:
        """Hard IMU-class predictions."""
        return self.model.predict(self._scale(windows))

    def evaluate(self, windows: np.ndarray, labels: np.ndarray) -> float:
        """Top-1 accuracy on labelled windows."""
        return self.model.evaluate(self._scale(windows), labels)
