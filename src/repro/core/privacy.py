"""Privacy-preserving distortion module.

"The image data is distorted using nearest neighbor down sampling to the
sizes of 100x100 (dCNN-L), 50x50 (dCNN-M), and 25x25 (dCNN-H) pixels.
Being able to reduce the image from 300x300 pixels [to] these sizes
represents approximately a 9x, 25x, and 144x decrease in [the] amount of
data required for transmission." (§4.3)

Resolution scaling (documented in DESIGN.md): the paper's frames are
300x300 while ours are 64x64, and the *accuracy impact* of nearest-
neighbour downsampling depends on absolute feature size, not the ratio —
a 300->50 frame still shows the body pose, while 64->10 destroys it.  We
therefore place the three levels at edge divisors 2 / 3 / 4 (64 -> 32 /
21 / 16 px), which empirically reproduces the paper's accuracy shape:
dCNN-L above the baseline CNN, dCNN-M within a couple of points, dCNN-H
double digits down but still far above chance.  The paper's own divisors
(3 / 6 / 12, i.e. 9x / 25x / 144x data reduction) are exposed as
``PAPER_EDGE_DIVISORS`` for the bandwidth benchmarks.

The distortion module runs on the device (only the downsampled frame
leaves the car); ``restore_size`` nearest-neighbour-upsamples back to the
network's input resolution on the server side — information lost stays
lost.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.streaming.records import FrameRecord


#: The paper's edge divisors at 300x300 (9x / 25x / 144x data reduction).
PAPER_EDGE_DIVISORS: dict["PrivacyLevel", int] = {}


class PrivacyLevel(enum.Enum):
    """The three user-selectable distortion levels (paper Fig. 3)."""

    LOW = "low"        # dCNN-L (paper 300 -> 100; here 64 -> 32)
    MEDIUM = "medium"  # dCNN-M (paper 300 -> 50;  here 64 -> 21)
    HIGH = "high"      # dCNN-H (paper 300 -> 25;  here 64 -> 16)

    @property
    def edge_divisor(self) -> int:
        return {PrivacyLevel.LOW: 2, PrivacyLevel.MEDIUM: 3,
                PrivacyLevel.HIGH: 4}[self]

    @property
    def paper_edge_divisor(self) -> int:
        """The divisor the paper used at 300x300 (for bandwidth figures)."""
        return PAPER_EDGE_DIVISORS[self]

    @property
    def model_name(self) -> str:
        """The paper's model label for this level."""
        return {PrivacyLevel.LOW: "dCNN-L", PrivacyLevel.MEDIUM: "dCNN-M",
                PrivacyLevel.HIGH: "dCNN-H"}[self]

    def target_edge(self, full_edge: int) -> int:
        """Downsampled edge length for a ``full_edge`` px frame."""
        return max(2, full_edge // self.edge_divisor)

    def data_reduction(self, full_edge: int) -> float:
        """Transmission-size reduction factor (pixels full / pixels small)."""
        small = self.target_edge(full_edge)
        return (full_edge * full_edge) / float(small * small)


PAPER_EDGE_DIVISORS.update({
    PrivacyLevel.LOW: 3,
    PrivacyLevel.MEDIUM: 6,
    PrivacyLevel.HIGH: 12,
})


#: Cached nearest-neighbour source indices keyed by (in_edge, out_edge).
#: Index maps depend only on the two edge lengths, so every frame of a
#: replay (and every image of a batch) shares one cached array.
_INDEX_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _resize_indices(in_edge: int, out_edge: int) -> np.ndarray:
    """Source row/column indices for an ``in_edge -> out_edge`` resample."""
    key = (int(in_edge), int(out_edge))
    cached = _INDEX_CACHE.get(key)
    if cached is None:
        cached = np.minimum((np.arange(out_edge) * in_edge) // out_edge,
                            in_edge - 1)
        _INDEX_CACHE[key] = cached
    return cached


def nearest_neighbor_resize(image: np.ndarray, out_edge: int) -> np.ndarray:
    """Nearest-neighbour resample of a square image to ``out_edge`` px.

    Works for both down- and upsampling; accepts (h, w) or (c, h, w).
    """
    image = np.asarray(image)
    if out_edge < 1:
        raise ConfigurationError(f"target edge must be >= 1, got {out_edge}")
    squeeze = image.ndim == 2
    if squeeze:
        image = image[None]
    if image.ndim != 3 or image.shape[1] != image.shape[2]:
        raise ShapeError(f"expected square (c, h, w) image, got {image.shape}")
    indices = _resize_indices(image.shape[1], out_edge)
    resized = image[:, indices][:, :, indices]
    return resized[0] if squeeze else resized


def _batch_resize(images: np.ndarray, out_edge: int) -> np.ndarray:
    """Resample a whole NCHW batch with one fancy-index.

    ``images[:, :, idx[:, None], idx[None, :]]`` gathers every output
    pixel of every image at once — byte-identical to resizing each image
    in a Python loop, minus the loop.
    """
    if images.shape[2] != images.shape[3]:
        raise ShapeError(f"expected square NCHW batch, got {images.shape}")
    indices = _resize_indices(images.shape[2], out_edge)
    return images[:, :, indices[:, None], indices[None, :]]


class DistortionModule:
    """Device-side distortion: downsample frames before transmission.

    Args:
        level: active privacy level, or ``None`` to pass frames through
            untouched (the non-private remote configuration).
    """

    def __init__(self, level: PrivacyLevel | None = None) -> None:
        self.level = level

    def distort(self, image: np.ndarray) -> np.ndarray:
        """Downsample one image to the active level's size."""
        if self.level is None:
            return np.asarray(image)
        edge = image.shape[-1]
        return nearest_neighbor_resize(image, self.level.target_edge(edge))

    def distort_frame(self, frame: FrameRecord) -> FrameRecord:
        """Distort a streamed frame and tag it with the level.

        This is the controller's ``frame_transform`` hook: "the distortion
        module down samples the video according to user-specified
        preference and tags the video with the down-sampling rate" (§4.3).
        """
        if self.level is None:
            return frame
        return FrameRecord(agent_id=frame.agent_id, timestamp=frame.timestamp,
                           image=self.distort(np.asarray(frame.image)),
                           privacy_level=self.level.value, label=frame.label)

    def distort_batch(self, images: np.ndarray) -> np.ndarray:
        """Distort an NCHW batch; returns the smaller NCHW batch."""
        images = np.asarray(images)
        if self.level is None:
            return images
        return _batch_resize(images, self.level.target_edge(images.shape[-1]))


def restore_size(images: np.ndarray, full_edge: int) -> np.ndarray:
    """Server-side upsample of distorted frames back to the model input size.

    Nearest-neighbour, so the blocky information loss is preserved — this
    is what the dCNN must denoise through.
    """
    images = np.asarray(images)
    if images.ndim == 4:
        return _batch_resize(images, full_edge)
    return nearest_neighbor_resize(images, full_edge)


def distort_restore(images: np.ndarray, level: PrivacyLevel | None
                    ) -> np.ndarray:
    """Round-trip helper: distort then restore to the original resolution."""
    if level is None:
        return np.asarray(images)
    full_edge = images.shape[-1]
    module = DistortionModule(level)
    return restore_size(module.distort_batch(images), full_edge)
