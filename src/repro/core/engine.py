"""The modular analytics engine.

"The engine is designed to be entirely modular — the system maintains a
1-to-1 relationship between device data-streams and machine learning
models. ... 1. New devices can be incorporated into the network without
requiring the existing models to be retrained.  2. Each machine learning
model can be specified based on the type of data streamed from the
device." (paper §3.3)

:class:`AnalyticsEngine` is that registry: named streams map to modality
models; a combiner merges their distributions into the final verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.core.bayesian import BayesianNetworkCombiner
from repro.exceptions import ConfigurationError, NotFittedError


class ModalityModel(Protocol):
    """Structural interface every per-stream model satisfies."""

    def predict_proba(self, data: np.ndarray) -> np.ndarray:
        """Class distribution per sample of this stream."""
        ...

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Hard verdicts per sample."""
        ...


@dataclass
class StreamModel:
    """Registry entry: one data stream bound to one model."""

    stream: str
    model: ModalityModel
    num_classes: int


class AnalyticsEngine:
    """Per-stream model registry with ensemble combination.

    The engine currently combines up to two streams through the paper's
    Bayesian-network combiner (the CNN + IMU configuration); a single
    registered stream passes its distribution through unchanged.  New
    streams slot in without retraining existing models — only the
    (cheaply re-estimated) combiner changes.
    """

    def __init__(self) -> None:
        self._streams: dict[str, StreamModel] = {}
        self._order: list[str] = []
        self._combiner: BayesianNetworkCombiner | None = None

    # -- registry ---------------------------------------------------------
    def register(self, stream: str, model: ModalityModel,
                 num_classes: int) -> None:
        """Bind ``model`` to data stream ``stream``."""
        if stream in self._streams:
            raise ConfigurationError(f"stream {stream!r} already registered")
        if len(self._streams) >= 2:
            raise ConfigurationError(
                "the Bayesian-network combiner supports two parent streams; "
                "unregister one first"
            )
        self._streams[stream] = StreamModel(stream, model, int(num_classes))
        self._order.append(stream)
        self._combiner = None  # must recalibrate

    def unregister(self, stream: str) -> None:
        """Remove a stream binding (its model is untouched)."""
        if stream not in self._streams:
            raise ConfigurationError(f"stream {stream!r} is not registered")
        del self._streams[stream]
        self._order.remove(stream)
        self._combiner = None

    @property
    def streams(self) -> list[str]:
        """Registered stream names in registration order."""
        return list(self._order)

    # -- combiner calibration ------------------------------------------------
    def calibrate(self, training_data: dict[str, np.ndarray],
                  true_labels: np.ndarray, *, laplace: float = 1.0) -> None:
        """Estimate combiner CPTs from member verdicts on training data.

        Args:
            training_data: stream name -> model input batch.
            true_labels: ground truth in the *first* stream's label space
                (the behaviour classes).
            laplace: CPT smoothing.
        """
        if len(self._order) != 2:
            if len(self._order) == 1:
                return  # single modality needs no combiner
            raise ConfigurationError("calibrate requires 1 or 2 streams")
        first, second = (self._streams[name] for name in self._order)
        combiner = BayesianNetworkCombiner(first.num_classes,
                                           second.num_classes,
                                           laplace=laplace)
        combiner.fit(first.model.predict(training_data[first.stream]),
                     second.model.predict(training_data[second.stream]),
                     np.asarray(true_labels, dtype=np.int64))
        self._combiner = combiner

    # -- inference ----------------------------------------------------------
    def predict_proba(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Combined class distribution for a batch of aligned stream data."""
        if not self._order:
            raise ConfigurationError("no streams registered")
        missing = [name for name in self._order if name not in data]
        if missing:
            raise ConfigurationError(f"missing data for streams: {missing}")
        if len(self._order) == 1:
            only = self._streams[self._order[0]]
            return only.model.predict_proba(data[only.stream])
        if self._combiner is None:
            raise NotFittedError("engine used before calibrate()")
        first, second = (self._streams[name] for name in self._order)
        return self._combiner.predict_proba(
            first.model.predict_proba(data[first.stream]),
            second.model.predict_proba(data[second.stream]),
        )

    def predict(self, data: dict[str, np.ndarray]) -> np.ndarray:
        """Hard combined verdicts."""
        return self.predict_proba(data).argmax(axis=1)
