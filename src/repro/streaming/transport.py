"""Simulated communication channels (Bluetooth / 802.11 point-to-point).

A :class:`Channel` delays, jitters, drops, and therefore potentially
reorders messages between an agent and the controller.  Delivery is pull
based: the receiving side calls :meth:`Channel.poll` with the current true
time and gets every message whose delivery time has passed, in *arrival*
order — which, with jitter, is not send order.  The controller must
therefore order data by payload timestamp, as the paper notes (§3.2).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, TransportError
from repro.obs.metrics import get_registry
from repro.streaming.records import Message, payload_size

#: How many recent latency samples :class:`ChannelStats` retains.
LATENCY_WINDOW = 1024


@dataclass
class ChannelStats:
    """Counters accumulated over a channel's lifetime.

    Latency samples are kept in a bounded window (the most recent
    :data:`LATENCY_WINDOW` deliveries) so long-running sessions stay at
    constant memory; lifetime aggregates are maintained as streaming
    counters alongside.
    """

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    latencies: deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW))
    latency_sum: float = 0.0
    max_latency: float = 0.0

    def record_latency(self, latency: float) -> None:
        """Account one delivered-message latency."""
        self.latencies.append(float(latency))
        self.latency_sum += float(latency)
        if latency > self.max_latency:
            self.max_latency = float(latency)

    def mean_latency(self) -> float:
        """Mean latency over the retained window (0.0 when empty)."""
        if not self.latencies:
            return 0.0
        return float(np.mean(self.latencies))

    def lifetime_mean_latency(self) -> float:
        """Mean latency over every delivery, window notwithstanding."""
        if not self.delivered:
            return 0.0
        return self.latency_sum / self.delivered


class Channel:
    """Point-to-point lossy link with latency jitter.

    Args:
        name: label for diagnostics (e.g. ``"phone->controller"``).
        base_latency: fixed one-way delay in seconds.
        jitter: standard deviation of additional (truncated-normal) delay.
        drop_probability: i.i.d. probability a message is lost.
        bandwidth_bps: if set, adds a size/bandwidth serialization delay —
            this is what makes downsampled frames cheaper to ship (Fig. 3).
        rng: randomness source.
    """

    def __init__(self, name: str = "channel", *, base_latency: float = 0.01,
                 jitter: float = 0.0, drop_probability: float = 0.0,
                 bandwidth_bps: float | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if base_latency < 0 or jitter < 0:
            raise ConfigurationError("latency and jitter must be >= 0")
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop probability must be in [0, 1), got {drop_probability}"
            )
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.name = name
        self.base_latency = float(base_latency)
        self.jitter = float(jitter)
        self.drop_probability = float(drop_probability)
        self.bandwidth_bps = bandwidth_bps
        self.rng = rng or np.random.default_rng()
        self.stats = ChannelStats()
        self._in_flight: list[tuple[float, int, Message]] = []
        self._sequence = 0
        # Registry-side telemetry (shared across channels with one name).
        registry = get_registry()
        self._obs_latency = registry.histogram(
            "streaming_channel_latency_seconds",
            "One-way delivery latency per channel", channel=name)
        self._obs_dropped = registry.counter(
            "streaming_channel_dropped_total",
            "Messages lost in transit per channel", channel=name)

    def transit_delay(self, size_bytes: int) -> float:
        """Draw the one-way delay for a message of ``size_bytes``."""
        delay = self.base_latency
        if self.jitter:
            delay += abs(float(self.rng.normal(0.0, self.jitter)))
        if self.bandwidth_bps is not None:
            delay += 8.0 * size_bytes / self.bandwidth_bps
        return delay

    def send(self, source: str, destination: str, payload, now: float) -> Message | None:
        """Submit a payload at true time ``now``.

        Returns the in-flight :class:`Message`, or ``None`` if dropped.
        """
        size = payload_size(payload)
        self._sequence += 1
        self.stats.sent += 1
        self.stats.bytes_sent += size
        if self.drop_probability and self.rng.random() < self.drop_probability:
            self.stats.dropped += 1
            self._obs_dropped.inc()
            return None
        message = Message(source=source, destination=destination,
                          payload=payload, sent_at=now, size_bytes=size,
                          sequence=self._sequence)
        delivery = now + self.transit_delay(size)
        heapq.heappush(self._in_flight, (delivery, self._sequence, message))
        return message

    def poll(self, now: float) -> list[Message]:
        """Deliver every message whose arrival time has passed, in arrival order."""
        delivered: list[Message] = []
        while self._in_flight and self._in_flight[0][0] <= now:
            arrival, _, message = heapq.heappop(self._in_flight)
            if arrival < message.sent_at:
                raise TransportError(
                    f"{self.name}: message would arrive before it was sent"
                )
            message.delivered_at = arrival
            self.stats.delivered += 1
            self.stats.bytes_delivered += message.size_bytes
            self.stats.record_latency(message.latency)
            self._obs_latency.observe(message.latency)
            delivered.append(message)
        return delivered

    @property
    def pending(self) -> int:
        """Messages currently in flight."""
        return len(self._in_flight)
