"""Processing placement: where the analytics engine actually runs.

The controller "can choose between a local and remote configuration.  A
remote server would have a greater amount of processing power ... However,
under poor network conditions, the controller has the option of
processing all data locally, albeit slower." (paper §3.2)

This module models both deployments so their end-to-end verdict latency
can be compared (the quantity the placement decision trades off):

* :class:`RemoteRuntime` — ship the (possibly distorted) frame + window
  over the uplink, run inference at server speed, ship the verdict back.
* :class:`LocalRuntime` — no network, but inference pays the device's
  slowdown factor.

:func:`choose_runtime` applies the §3.2 decision and returns the runtime
the controller would select for the observed conditions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streaming.controller import (
    NetworkConditions,
    ProcessingLocation,
    ProcessingPolicy,
    decide_processing,
)
from repro.streaming.transport import Channel


@dataclass(frozen=True)
class ComputeProfile:
    """Inference cost model for one placement.

    ``seconds_per_frame`` is the reference (server) cost of one verdict;
    ``slowdown`` scales it for weaker hardware (the phone/tablet).
    """

    seconds_per_frame: float = 0.004
    slowdown: float = 1.0

    def inference_seconds(self) -> float:
        return self.seconds_per_frame * self.slowdown


@dataclass
class VerdictTiming:
    """Latency breakdown of one classification round-trip."""

    uplink_seconds: float
    inference_seconds: float
    downlink_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.uplink_seconds + self.inference_seconds
                + self.downlink_seconds)


class LocalRuntime:
    """Run the analytics engine on the device itself.

    Args:
        compute: the device's compute profile (apply the policy's
            ``local_slowdown``).
    """

    location = ProcessingLocation.LOCAL

    def __init__(self, compute: ComputeProfile) -> None:
        self.compute = compute

    def verdict_timing(self, frame_bytes: int, window_bytes: int
                       ) -> VerdictTiming:
        """Latency of one verdict; no network legs."""
        del frame_bytes, window_bytes
        return VerdictTiming(uplink_seconds=0.0,
                             inference_seconds=self.compute.inference_seconds(),
                             downlink_seconds=0.0)


class RemoteRuntime:
    """Ship data to a server, classify there, return the verdict.

    Args:
        uplink: device -> server channel (bandwidth-limited).
        downlink: server -> device channel for the verdict (tiny payload).
        compute: the server's compute profile.
    """

    location = ProcessingLocation.REMOTE

    def __init__(self, uplink: Channel, downlink: Channel,
                 compute: ComputeProfile) -> None:
        self.uplink = uplink
        self.downlink = downlink
        self.compute = compute

    def verdict_timing(self, frame_bytes: int, window_bytes: int
                       ) -> VerdictTiming:
        """Latency of one verdict including both network legs."""
        up = self.uplink.transit_delay(frame_bytes + window_bytes)
        down = self.downlink.transit_delay(64)  # a verdict is tiny
        return VerdictTiming(uplink_seconds=up,
                             inference_seconds=self.compute.inference_seconds(),
                             downlink_seconds=down)


class BreakerState(enum.Enum):
    """Circuit-breaker states guarding the REMOTE placement."""

    CLOSED = "closed"        # remote path trusted
    OPEN = "open"            # remote path tripped; everything runs locally
    HALF_OPEN = "half_open"  # probing the remote path before re-closing


class PlacementCircuitBreaker:
    """Fail the §3.2 placement decision over, and back, without flapping.

    The static :func:`decide_processing` policy answers "which placement
    is better right now"; this breaker answers the operational question
    "is the remote path *trustworthy*".  Consecutive timeouts trip
    REMOTE -> LOCAL (OPEN); after a recovery window the breaker lets a
    probe through (HALF_OPEN) and only returns to REMOTE after several
    consecutive successes.  Two hysteresis mechanisms stop flapping:

    * the OPEN dwell grows by ``backoff`` on every re-trip (decaying back
      to the base once the breaker fully closes), and
    * the LOCAL placement is kept throughout HALF_OPEN probing, so a
      single lucky probe cannot bounce traffic back to the remote.

    Args:
        failure_threshold: consecutive timeouts that trip the breaker.
        recovery_timeout: seconds OPEN before the first half-open probe.
        success_threshold: consecutive probe successes needed to re-close.
        backoff: growth factor of the recovery timeout on repeated trips.
        max_recovery_timeout: recovery-timeout ceiling.
    """

    def __init__(self, *, failure_threshold: int = 3,
                 recovery_timeout: float = 2.0, success_threshold: int = 2,
                 backoff: float = 2.0,
                 max_recovery_timeout: float = 30.0) -> None:
        if failure_threshold < 1 or success_threshold < 1:
            raise ConfigurationError(
                "failure and success thresholds must be >= 1")
        if recovery_timeout <= 0 or backoff < 1.0:
            raise ConfigurationError(
                "recovery_timeout must be positive and backoff >= 1")
        self.failure_threshold = int(failure_threshold)
        self.base_recovery_timeout = float(recovery_timeout)
        self.success_threshold = int(success_threshold)
        self.backoff = float(backoff)
        self.max_recovery_timeout = float(max_recovery_timeout)
        self.state = BreakerState.CLOSED
        self.transitions: list[tuple[float, ProcessingLocation]] = []
        self._recovery_timeout = self.base_recovery_timeout
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._opened_at: float | None = None

    @property
    def location(self) -> ProcessingLocation:
        """Current placement: REMOTE only while the breaker is CLOSED."""
        return (ProcessingLocation.REMOTE
                if self.state is BreakerState.CLOSED
                else ProcessingLocation.LOCAL)

    def allow_remote(self, now: float) -> bool:
        """Whether a request may use the remote path at ``now``.

        While OPEN this also advances to HALF_OPEN once the recovery
        window has elapsed, admitting the probe that asked.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if (self._opened_at is not None
                    and now - self._opened_at >= self._recovery_timeout):
                self.state = BreakerState.HALF_OPEN
                self._consecutive_successes = 0
                return True
            return False
        return True  # HALF_OPEN: probes allowed

    def record_success(self, now: float) -> None:
        """Account one successful remote round-trip."""
        if self.state is BreakerState.CLOSED:
            self._consecutive_failures = 0
            return
        if self.state is BreakerState.HALF_OPEN:
            self._consecutive_successes += 1
            if self._consecutive_successes >= self.success_threshold:
                self.state = BreakerState.CLOSED
                self._consecutive_failures = 0
                self._recovery_timeout = self.base_recovery_timeout
                self.transitions.append((now, ProcessingLocation.REMOTE))

    def record_failure(self, now: float) -> None:
        """Account one remote timeout/failure."""
        if self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip(now, record=True)
        elif self.state is BreakerState.HALF_OPEN:
            self._recovery_timeout = min(
                self._recovery_timeout * self.backoff,
                self.max_recovery_timeout)
            self._trip(now, record=False)  # location never left LOCAL

    def _trip(self, now: float, *, record: bool) -> None:
        self.state = BreakerState.OPEN
        self._opened_at = now
        self._consecutive_successes = 0
        if record:
            self.transitions.append((now, ProcessingLocation.LOCAL))


#: Distortion-level ladder the escalator climbs (values match
#: :class:`repro.core.privacy.PrivacyLevel`; ``None`` = undistorted).
PRIVACY_LADDER: tuple[str | None, ...] = (None, "low", "medium", "high")


class PrivacyEscalator:
    """Escalate distortion L -> M -> H under bandwidth pressure.

    Under sustained uplink pressure the cheapest byte is the one never
    sent: before the reliable sender starts shedding frames, the
    escalator climbs the Fig. 3 distortion ladder so every frame costs
    4x/9x/16x less wire.  De-escalation uses a lower threshold plus a
    dwell time, so the level ratchets rather than flaps.

    Args:
        escalate_above: send-buffer pressure (0..1) that steps the ladder up.
        relax_below: pressure below which the ladder steps back down.
        dwell: minimum seconds between level changes.
        ladder: ordered level values, least to most distorted.
    """

    def __init__(self, *, escalate_above: float = 0.7,
                 relax_below: float = 0.25, dwell: float = 1.0,
                 ladder: tuple[str | None, ...] = PRIVACY_LADDER) -> None:
        if not 0.0 <= relax_below < escalate_above <= 1.0:
            raise ConfigurationError(
                "need 0 <= relax_below < escalate_above <= 1")
        if dwell < 0 or len(ladder) < 2:
            raise ConfigurationError(
                "dwell must be >= 0 and the ladder needs >= 2 rungs")
        self.escalate_above = float(escalate_above)
        self.relax_below = float(relax_below)
        self.dwell = float(dwell)
        self.ladder = tuple(ladder)
        self._index = 0
        self._last_change: float | None = None
        self.escalations = 0
        self.relaxations = 0

    @property
    def level(self) -> str | None:
        """Current distortion level value."""
        return self.ladder[self._index]

    def update(self, pressure: float, now: float) -> str | None:
        """Feed one pressure sample; returns the (possibly new) level."""
        movable = (self._last_change is None
                   or now - self._last_change >= self.dwell)
        if movable and pressure >= self.escalate_above \
                and self._index < len(self.ladder) - 1:
            self._index += 1
            self._last_change = now
            self.escalations += 1
        elif movable and pressure <= self.relax_below and self._index > 0:
            self._index -= 1
            self._last_change = now
            self.relaxations += 1
        return self.level


def frame_payload_bytes(edge: int, *, bytes_per_pixel: int = 4,
                        channels: int = 1) -> int:
    """Wire size of one square frame."""
    if edge <= 0:
        raise ConfigurationError("frame edge must be positive")
    return edge * edge * channels * bytes_per_pixel + 64


def choose_runtime(conditions: NetworkConditions, *,
                   server_compute: ComputeProfile | None = None,
                   policy: ProcessingPolicy | None = None,
                   rng: np.random.Generator | None = None
                   ) -> LocalRuntime | RemoteRuntime:
    """Apply the §3.2 placement decision and build the chosen runtime."""
    policy = policy or ProcessingPolicy()
    server_compute = server_compute or ComputeProfile()
    location = decide_processing(conditions, policy)
    if location is ProcessingLocation.LOCAL:
        device = ComputeProfile(
            seconds_per_frame=server_compute.seconds_per_frame,
            slowdown=policy.local_slowdown)
        return LocalRuntime(device)
    rng = rng or np.random.default_rng()
    uplink = Channel("uplink", base_latency=conditions.latency_s,
                     bandwidth_bps=conditions.bandwidth_bps,
                     drop_probability=conditions.loss_rate, rng=rng)
    downlink = Channel("downlink", base_latency=conditions.latency_s,
                       bandwidth_bps=conditions.bandwidth_bps, rng=rng)
    return RemoteRuntime(uplink, downlink, server_compute)


def placement_sweep(bandwidths_bps: list[float], *,
                    frame_edge: int = 64, window_bytes: int = 20 * 12 * 4,
                    latency_s: float = 0.02,
                    server_compute: ComputeProfile | None = None,
                    policy: ProcessingPolicy | None = None,
                    rng: np.random.Generator | None = None
                    ) -> list[dict]:
    """Verdict latency for local vs. remote across a bandwidth sweep.

    Returns one row per bandwidth with the latency of *both* placements
    and which one the §3.2 policy picks — showing the crossover the
    controller's decision exploits.
    """
    policy = policy or ProcessingPolicy()
    server_compute = server_compute or ComputeProfile()
    rng = rng or np.random.default_rng()
    frame_bytes = frame_payload_bytes(frame_edge)
    device = ComputeProfile(
        seconds_per_frame=server_compute.seconds_per_frame,
        slowdown=policy.local_slowdown)
    local = LocalRuntime(device)
    rows = []
    for bandwidth in bandwidths_bps:
        conditions = NetworkConditions(bandwidth_bps=bandwidth,
                                       latency_s=latency_s)
        uplink = Channel("up", base_latency=latency_s,
                         bandwidth_bps=bandwidth, rng=rng)
        downlink = Channel("down", base_latency=latency_s,
                           bandwidth_bps=bandwidth, rng=rng)
        remote = RemoteRuntime(uplink, downlink, server_compute)
        local_t = local.verdict_timing(frame_bytes, window_bytes)
        remote_t = remote.verdict_timing(frame_bytes, window_bytes)
        rows.append({
            "bandwidth_bps": bandwidth,
            "local_seconds": local_t.total_seconds,
            "remote_seconds": remote_t.total_seconds,
            "decision": decide_processing(conditions, policy).value,
        })
    return rows
