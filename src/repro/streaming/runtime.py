"""Processing placement: where the analytics engine actually runs.

The controller "can choose between a local and remote configuration.  A
remote server would have a greater amount of processing power ... However,
under poor network conditions, the controller has the option of
processing all data locally, albeit slower." (paper §3.2)

This module models both deployments so their end-to-end verdict latency
can be compared (the quantity the placement decision trades off):

* :class:`RemoteRuntime` — ship the (possibly distorted) frame + window
  over the uplink, run inference at server speed, ship the verdict back.
* :class:`LocalRuntime` — no network, but inference pays the device's
  slowdown factor.

:func:`choose_runtime` applies the §3.2 decision and returns the runtime
the controller would select for the observed conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streaming.controller import (
    NetworkConditions,
    ProcessingLocation,
    ProcessingPolicy,
    decide_processing,
)
from repro.streaming.transport import Channel


@dataclass(frozen=True)
class ComputeProfile:
    """Inference cost model for one placement.

    ``seconds_per_frame`` is the reference (server) cost of one verdict;
    ``slowdown`` scales it for weaker hardware (the phone/tablet).
    """

    seconds_per_frame: float = 0.004
    slowdown: float = 1.0

    def inference_seconds(self) -> float:
        return self.seconds_per_frame * self.slowdown


@dataclass
class VerdictTiming:
    """Latency breakdown of one classification round-trip."""

    uplink_seconds: float
    inference_seconds: float
    downlink_seconds: float

    @property
    def total_seconds(self) -> float:
        return (self.uplink_seconds + self.inference_seconds
                + self.downlink_seconds)


class LocalRuntime:
    """Run the analytics engine on the device itself.

    Args:
        compute: the device's compute profile (apply the policy's
            ``local_slowdown``).
    """

    location = ProcessingLocation.LOCAL

    def __init__(self, compute: ComputeProfile) -> None:
        self.compute = compute

    def verdict_timing(self, frame_bytes: int, window_bytes: int
                       ) -> VerdictTiming:
        """Latency of one verdict; no network legs."""
        del frame_bytes, window_bytes
        return VerdictTiming(uplink_seconds=0.0,
                             inference_seconds=self.compute.inference_seconds(),
                             downlink_seconds=0.0)


class RemoteRuntime:
    """Ship data to a server, classify there, return the verdict.

    Args:
        uplink: device -> server channel (bandwidth-limited).
        downlink: server -> device channel for the verdict (tiny payload).
        compute: the server's compute profile.
    """

    location = ProcessingLocation.REMOTE

    def __init__(self, uplink: Channel, downlink: Channel,
                 compute: ComputeProfile) -> None:
        self.uplink = uplink
        self.downlink = downlink
        self.compute = compute

    def verdict_timing(self, frame_bytes: int, window_bytes: int
                       ) -> VerdictTiming:
        """Latency of one verdict including both network legs."""
        up = self.uplink.transit_delay(frame_bytes + window_bytes)
        down = self.downlink.transit_delay(64)  # a verdict is tiny
        return VerdictTiming(uplink_seconds=up,
                             inference_seconds=self.compute.inference_seconds(),
                             downlink_seconds=down)


def frame_payload_bytes(edge: int, *, bytes_per_pixel: int = 4,
                        channels: int = 1) -> int:
    """Wire size of one square frame."""
    if edge <= 0:
        raise ConfigurationError("frame edge must be positive")
    return edge * edge * channels * bytes_per_pixel + 64


def choose_runtime(conditions: NetworkConditions, *,
                   server_compute: ComputeProfile | None = None,
                   policy: ProcessingPolicy | None = None,
                   rng: np.random.Generator | None = None
                   ) -> LocalRuntime | RemoteRuntime:
    """Apply the §3.2 placement decision and build the chosen runtime."""
    policy = policy or ProcessingPolicy()
    server_compute = server_compute or ComputeProfile()
    location = decide_processing(conditions, policy)
    if location is ProcessingLocation.LOCAL:
        device = ComputeProfile(
            seconds_per_frame=server_compute.seconds_per_frame,
            slowdown=policy.local_slowdown)
        return LocalRuntime(device)
    rng = rng or np.random.default_rng()
    uplink = Channel("uplink", base_latency=conditions.latency_s,
                     bandwidth_bps=conditions.bandwidth_bps,
                     drop_probability=conditions.loss_rate, rng=rng)
    downlink = Channel("downlink", base_latency=conditions.latency_s,
                       bandwidth_bps=conditions.bandwidth_bps, rng=rng)
    return RemoteRuntime(uplink, downlink, server_compute)


def placement_sweep(bandwidths_bps: list[float], *,
                    frame_edge: int = 64, window_bytes: int = 20 * 12 * 4,
                    latency_s: float = 0.02,
                    server_compute: ComputeProfile | None = None,
                    policy: ProcessingPolicy | None = None,
                    rng: np.random.Generator | None = None
                    ) -> list[dict]:
    """Verdict latency for local vs. remote across a bandwidth sweep.

    Returns one row per bandwidth with the latency of *both* placements
    and which one the §3.2 policy picks — showing the crossover the
    controller's decision exploits.
    """
    policy = policy or ProcessingPolicy()
    server_compute = server_compute or ComputeProfile()
    rng = rng or np.random.default_rng()
    frame_bytes = frame_payload_bytes(frame_edge)
    device = ComputeProfile(
        seconds_per_frame=server_compute.seconds_per_frame,
        slowdown=policy.local_slowdown)
    local = LocalRuntime(device)
    rows = []
    for bandwidth in bandwidths_bps:
        conditions = NetworkConditions(bandwidth_bps=bandwidth,
                                       latency_s=latency_s)
        uplink = Channel("up", base_latency=latency_s,
                         bandwidth_bps=bandwidth, rng=rng)
        downlink = Channel("down", base_latency=latency_s,
                           bandwidth_bps=bandwidth, rng=rng)
        remote = RemoteRuntime(uplink, downlink, server_compute)
        local_t = local.verdict_timing(frame_bytes, window_bytes)
        remote_t = remote.verdict_timing(frame_bytes, window_bytes)
        rows.append({
            "bandwidth_bps": bandwidth,
            "local_seconds": local_t.total_seconds,
            "remote_seconds": remote_t.total_seconds,
            "decision": decide_processing(conditions, policy).value,
        })
    return rows
