"""Reliable transport: ack/retransmit over lossy :class:`Channel` pairs.

The raw :class:`~repro.streaming.transport.Channel` models the paper's
Bluetooth/802.11 links faithfully — including the part where a dropped
batch is simply gone.  Production deployments cannot accept that for IMU
tuples, so this module layers a sequence-tracked, acknowledged protocol
on top of two simplex channels (data out, acks back):

* every payload travels in a :class:`ReliablePacket` with a sender-scoped
  sequence number;
* the receiver acknowledges with a cumulative watermark plus a selective
  list (so one lost ack cannot strand the whole window);
* unacknowledged packets retransmit on an exponential backoff schedule
  with jitter, seeded from an EWMA round-trip estimate (Karn-style: only
  never-retransmitted packets update the estimate);
* the send buffer is bounded, and under pressure it sheds the *oldest
  frame* payloads first — IMU tuples outlive video frames, because a
  3-second gap in the accelerometer stream poisons alignment while a
  missing frame merely degrades one verdict.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.exceptions import ConfigurationError, ReliabilityError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.streaming.records import FrameRecord, Message, payload_size
from repro.streaming.transport import Channel

#: Selective-ack list is capped so acks stay small on the wire.
MAX_SELECTIVE_ACKS = 64


class PayloadClass(enum.Enum):
    """Shedding priority classes (frames are shed before IMU data)."""

    FRAME = "frame"
    DATA = "data"


def classify_payload(payload: Any) -> PayloadClass:
    """Classify a payload for the backpressure policy."""
    if isinstance(payload, FrameRecord):
        return PayloadClass.FRAME
    if isinstance(payload, (list, tuple)):
        if any(isinstance(item, FrameRecord) for item in payload):
            return PayloadClass.FRAME
    return PayloadClass.DATA


@dataclass(frozen=True)
class ReliablePacket:
    """Sequenced envelope around an application payload."""

    sequence: int
    payload: Any
    retransmission: bool = False

    @property
    def wire_size(self) -> int:
        """Payload size plus the sequencing header."""
        return payload_size(self.payload) + 24


@dataclass(frozen=True)
class Ack:
    """Receiver -> sender acknowledgement.

    ``cumulative`` is the highest sequence below which everything has been
    received; ``selective`` lists received sequences above the watermark.
    """

    cumulative: int
    selective: tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return 16 + 8 * len(self.selective)

    def covers(self, sequence: int) -> bool:
        """Whether this ack confirms delivery of ``sequence``."""
        return sequence <= self.cumulative or sequence in self.selective


#: Uniquifies the ``link`` label so every endpoint owns its own series.
_LINK_IDS = itertools.count(1)


def _link_label(base: str) -> str:
    return f"{base}#{next(_LINK_IDS)}"


class _RegistryStats:
    """Counter bundle living in a :class:`MetricsRegistry`.

    Replaces the PR-1 ad-hoc stat dataclasses: every field is a labelled
    counter in the (by default process-wide) registry, so the reliability
    layer shares one telemetry surface with serving and the nn runtime.
    Field reads (``stats.sent``) keep working via ``__getattr__``, and
    the per-instance ``link`` label keeps endpoints' series distinct.
    """

    _PREFIX = ""
    _FIELDS: tuple[str, ...] = ()

    def __init__(self, *, registry: MetricsRegistry | None = None,
                 link: str = "link") -> None:
        registry = registry or get_registry()
        self.link = _link_label(link)
        self._counters = {
            field: registry.counter(f"{self._PREFIX}{field}_total",
                                    link=self.link)
            for field in self._FIELDS
        }

    def incr(self, field: str, amount: int = 1) -> None:
        """Bump one counter (the write path for the owning endpoint)."""
        self._counters[field].inc(amount)

    def __getattr__(self, field: str) -> int:
        counters = object.__getattribute__(self, "_counters")
        if field in counters:
            return int(counters[field].value)
        raise AttributeError(field)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={int(c.value)}"
                          for f, c in self._counters.items())
        return f"{type(self).__name__}({inner})"


class SenderStats(_RegistryStats):
    """Sender-side reliability counters (registry-backed)."""

    _PREFIX = "streaming_sender_"
    _FIELDS = ("sent", "retransmissions", "acked", "shed_frames",
               "shed_data", "abandoned")


class ReceiverStats(_RegistryStats):
    """Receiver-side reliability counters (registry-backed)."""

    _PREFIX = "streaming_receiver_"
    _FIELDS = ("received", "duplicates", "acks_sent")


@dataclass
class _PendingEntry:
    sequence: int
    payload: Any
    payload_class: PayloadClass
    first_sent: float
    next_retry: float
    attempts: int = 1


class ReliableSender:
    """Sending endpoint of the reliable link.

    :meth:`send` matches :meth:`Channel.send`'s signature, so an agent can
    use a sender as a drop-in uplink; :meth:`step` must then be driven by
    the simulation loop (the agent calls it automatically when the uplink
    exposes one).

    Args:
        data: outgoing channel carrying :class:`ReliablePacket`\\ s.
        ack: incoming channel carrying :class:`Ack`\\ s.
        base_timeout: first retransmission timeout in seconds.
        backoff: multiplier applied per retransmission attempt.
        max_timeout: retransmission timeout ceiling.
        jitter: +/- fraction of random spread on every timeout.
        max_attempts: transmissions before a packet is abandoned.
        buffer_limit: maximum unacknowledged packets held; beyond this the
            oldest frame-class payload is shed first (then oldest data).
        rng: randomness source for jitter.
    """

    def __init__(self, data: Channel, ack: Channel, *,
                 base_timeout: float = 0.1, backoff: float = 2.0,
                 max_timeout: float = 1.0, jitter: float = 0.2,
                 max_attempts: int = 25, buffer_limit: int = 256,
                 rng: np.random.Generator | None = None,
                 registry: MetricsRegistry | None = None,
                 link: str | None = None) -> None:
        if base_timeout <= 0 or max_timeout < base_timeout:
            raise ConfigurationError(
                "need 0 < base_timeout <= max_timeout")
        if backoff < 1.0:
            raise ConfigurationError("backoff must be >= 1.0")
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if max_attempts < 1 or buffer_limit < 1:
            raise ConfigurationError(
                "max_attempts and buffer_limit must be >= 1")
        self.data = data
        self.ack = ack
        self.base_timeout = float(base_timeout)
        self.backoff = float(backoff)
        self.max_timeout = float(max_timeout)
        self.jitter = float(jitter)
        self.max_attempts = int(max_attempts)
        self.buffer_limit = int(buffer_limit)
        self.rng = rng or np.random.default_rng()
        #: Optional delivery hooks: ``on_ack(sequence)`` fires when an
        #: ack first covers a pending packet; ``on_drop(sequence,
        #: reason)`` fires when the sender gives a packet up (reason
        #: ``"abandoned"`` or ``"shed"``).  The edge uploader uses these
        #: to keep its spool cursor exact — a record only counts as
        #: uploaded when the controller acknowledged the packet carrying
        #: it, and a dropped packet re-queues instead of leaking.
        self.on_ack: Callable[[int], None] | None = None
        self.on_drop: Callable[[int, str], None] | None = None
        self.stats = SenderStats(registry=registry,
                                 link=link or data.name)
        self._srtt_gauge = (registry or get_registry()).gauge(
            "streaming_srtt_seconds", link=self.stats.link)
        self._pending: dict[int, _PendingEntry] = {}
        self._sequence = 0
        self._srtt: float | None = None
        self._source = "sender"
        self._destination = "receiver"

    # -- public API ----------------------------------------------------------
    def send(self, source: str, destination: str, payload: Any,
             now: float) -> int:
        """Enqueue and transmit a payload; returns its sequence number."""
        self._source, self._destination = source, destination
        self._sequence += 1
        sequence = self._sequence
        if len(self._pending) >= self.buffer_limit:
            self._shed()
        entry = _PendingEntry(
            sequence=sequence, payload=payload,
            payload_class=classify_payload(payload),
            first_sent=now, next_retry=now + self._timeout(1))
        self._pending[sequence] = entry
        self.stats.incr("sent")
        self.data.send(source, destination,
                       ReliablePacket(sequence, payload), now)
        return sequence

    def step(self, now: float) -> None:
        """Process incoming acks, then retransmit every overdue packet."""
        for message in self.ack.poll(now):
            ack = message.payload
            if not isinstance(ack, Ack):
                raise ReliabilityError(
                    f"unexpected payload on ack channel: {type(ack).__name__}")
            self._apply_ack(ack, now)
        for entry in list(self._pending.values()):
            if entry.next_retry > now:
                continue
            if entry.attempts >= self.max_attempts:
                del self._pending[entry.sequence]
                self.stats.incr("abandoned")
                if self.on_drop is not None:
                    self.on_drop(entry.sequence, "abandoned")
                continue
            entry.attempts += 1
            entry.next_retry = now + self._timeout(entry.attempts)
            self.stats.incr("retransmissions")
            self.data.send(self._source, self._destination,
                           ReliablePacket(entry.sequence, entry.payload,
                                          retransmission=True), now)

    @property
    def unacked(self) -> int:
        """Packets awaiting acknowledgement."""
        return len(self._pending)

    @property
    def pressure(self) -> float:
        """Send-buffer occupancy in [0, 1] — the backpressure signal."""
        return len(self._pending) / self.buffer_limit

    @property
    def srtt(self) -> float | None:
        """Smoothed round-trip estimate (``None`` before the first ack)."""
        return self._srtt

    # -- internals -----------------------------------------------------------
    def _timeout(self, attempts: int) -> float:
        base = self.base_timeout
        if self._srtt is not None:
            base = max(base, 2.0 * self._srtt)
        timeout = min(base * self.backoff ** (attempts - 1), self.max_timeout)
        if self.jitter:
            timeout *= 1.0 + self.jitter * float(self.rng.uniform(-1.0, 1.0))
        return timeout

    def _apply_ack(self, ack: Ack, now: float) -> None:
        for sequence in list(self._pending):
            if not ack.covers(sequence):
                continue
            entry = self._pending.pop(sequence)
            self.stats.incr("acked")
            if self.on_ack is not None:
                self.on_ack(sequence)
            if entry.attempts == 1:  # Karn: unambiguous RTT sample
                sample = now - entry.first_sent
                self._srtt = (sample if self._srtt is None
                              else 0.875 * self._srtt + 0.125 * sample)
                self._srtt_gauge.set(self._srtt)

    def _shed(self) -> None:
        """Evict one packet to make room: oldest frame first, then data."""
        victim = None
        for entry in self._pending.values():
            if entry.payload_class is PayloadClass.FRAME:
                victim = entry
                break
        if victim is None:
            victim = next(iter(self._pending.values()))
        del self._pending[victim.sequence]
        if victim.payload_class is PayloadClass.FRAME:
            self.stats.incr("shed_frames")
        else:
            self.stats.incr("shed_data")
        if self.on_drop is not None:
            self.on_drop(victim.sequence, "shed")


class ReliableReceiver:
    """Receiving endpoint: dedup by sequence, acknowledge everything.

    :meth:`poll` matches :meth:`Channel.poll`, so the controller can drain
    a receiver exactly like a raw uplink channel; delivered messages carry
    the *unwrapped* application payload.
    """

    def __init__(self, data: Channel, ack: Channel, *,
                 ack_source: str = "controller") -> None:
        self.data = data
        self.ack = ack
        self.ack_source = ack_source
        self.stats = ReceiverStats()
        self._cumulative = 0
        self._above: set[int] = set()

    def poll(self, now: float) -> list[Message]:
        """Deliver new unique messages; ack everything that arrived."""
        delivered: list[Message] = []
        arrivals = self.data.poll(now)
        for message in arrivals:
            packet = message.payload
            if not isinstance(packet, ReliablePacket):
                raise ReliabilityError(
                    f"unexpected payload on data channel: "
                    f"{type(packet).__name__}")
            if self._seen(packet.sequence):
                self.stats.incr("duplicates")
                continue
            self._mark(packet.sequence)
            self.stats.incr("received")
            message.payload = packet.payload
            delivered.append(message)
        if arrivals:
            selective = tuple(sorted(self._above))[-MAX_SELECTIVE_ACKS:]
            self.ack.send(self.ack_source, arrivals[0].source,
                          Ack(self._cumulative, selective), now)
            self.stats.incr("acks_sent")
        return delivered

    @property
    def pending(self) -> int:
        """In-flight messages on the underlying data channel."""
        return self.data.pending

    def _seen(self, sequence: int) -> bool:
        return sequence <= self._cumulative or sequence in self._above

    def _mark(self, sequence: int) -> None:
        self._above.add(sequence)
        while self._cumulative + 1 in self._above:
            self._cumulative += 1
            self._above.remove(self._cumulative)


def reliable_link(name: str, *, base_latency: float = 0.01,
                  jitter: float = 0.0, drop_probability: float = 0.0,
                  bandwidth_bps: float | None = None,
                  rng: np.random.Generator | None = None,
                  **sender_options) -> tuple[ReliableSender, ReliableReceiver]:
    """Build a matched sender/receiver pair over symmetric lossy channels."""
    rng = rng or np.random.default_rng()
    data = Channel(f"{name}-data", base_latency=base_latency, jitter=jitter,
                   drop_probability=drop_probability,
                   bandwidth_bps=bandwidth_bps, rng=rng)
    ack = Channel(f"{name}-ack", base_latency=base_latency, jitter=jitter,
                  drop_probability=drop_probability, rng=rng)
    sender = ReliableSender(data, ack, rng=rng, **sender_options)
    receiver = ReliableReceiver(data, ack)
    return sender, receiver
