"""Persistence for collected sensor data.

The paper open-sources its collection framework as something "useful for
quickly collecting, aggregating and labeling data" (§1) — which implies
collected sessions can be saved and reloaded.  This module provides two
formats:

* JSONL for sensor readings (interoperable, greppable, append-only), and
* ``.npz`` for whole :class:`~repro.streaming.tsdb.TimeSeriesDatabase`
  snapshots (compact, fast).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.exceptions import SerializationError
from repro.streaming.records import SensorReading
from repro.streaming.tsdb import TimeSeriesDatabase


def save_readings_jsonl(readings: list[SensorReading], path: str) -> int:
    """Append-save readings as one JSON object per line; returns count."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for reading in readings:
            handle.write(json.dumps(reading.to_dict()) + "\n")
    return len(readings)


def load_readings_jsonl(path: str) -> list[SensorReading]:
    """Load readings written by :func:`save_readings_jsonl`."""
    if not os.path.exists(path):
        raise SerializationError(f"readings file not found: {path}")
    readings: list[SensorReading] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                readings.append(SensorReading.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError) as error:
                raise SerializationError(
                    f"{path}:{line_number}: malformed reading ({error})"
                ) from error
    return readings


def save_tsdb(db: TimeSeriesDatabase, path: str) -> None:
    """Snapshot a time-series database to a ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {}
    names = db.series_names()
    arrays["__series__"] = np.array(names)
    for index, series in enumerate(names):
        timestamps, values, labels = db.as_arrays(series)
        arrays[f"ts_{index:04d}"] = timestamps
        arrays[f"val_{index:04d}"] = values
        if labels is not None:
            arrays[f"lab_{index:04d}"] = labels
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_tsdb(path: str) -> TimeSeriesDatabase:
    """Restore a database saved by :func:`save_tsdb`."""
    if not os.path.exists(path):
        raise SerializationError(f"tsdb snapshot not found: {path}")
    db = TimeSeriesDatabase()
    with np.load(path, allow_pickle=False) as archive:
        if "__series__" not in archive.files:
            raise SerializationError(f"{path} is not a tsdb snapshot")
        names = [str(name) for name in archive["__series__"]]
        for index, series in enumerate(names):
            timestamps = archive[f"ts_{index:04d}"]
            values = archive[f"val_{index:04d}"]
            label_key = f"lab_{index:04d}"
            labels = archive[label_key] if label_key in archive.files else None
            for i, timestamp in enumerate(timestamps):
                label = None
                if labels is not None and labels[i] >= 0:
                    label = int(labels[i])
                db.insert(series, float(timestamp), values[i], label)
    return db
