"""DarNet's data-collection framework as a discrete-event simulation.

Collection agents embedded in IoT devices poll sensors on drifting local
clocks and stream batches over lossy channels to a centralized controller,
which re-orders, interpolates, smooths, clock-synchronizes, and persists
the data — the middleware half of the paper.
"""

from repro.exceptions import HealthError, ReliabilityError, StreamingError
from repro.streaming.clock import DriftingClock, VirtualClock
from repro.streaming.records import (
    FrameRecord,
    Message,
    SensorReading,
    SyncMessage,
    payload_size,
)
from repro.streaming.transport import Channel, ChannelStats
from repro.streaming.sensors import (
    CameraSensor,
    SyntheticSensor,
    accelerometer,
    gravity,
    gyroscope,
    rotation,
)
from repro.streaming.agent import CollectionAgent, scripted_labeller
from repro.streaming.sync import DEFAULT_SYNC_INTERVAL, ClockSynchronizer
from repro.streaming.normalization import (
    SlidingMovingAverage,
    align_streams,
    interpolate_to_grid,
    make_grid,
)
from repro.streaming.tsdb import Point, TimeSeriesDatabase
from repro.streaming.controller import (
    CentralizedController,
    NetworkConditions,
    ProcessingLocation,
    ProcessingPolicy,
    decide_processing,
)
from repro.streaming.reliability import (
    Ack,
    PayloadClass,
    ReceiverStats,
    ReliablePacket,
    ReliableReceiver,
    ReliableSender,
    SenderStats,
    classify_payload,
    reliable_link,
)
from repro.streaming.health import (
    AgentLiveness,
    Heartbeat,
    HealthRegistry,
    HealthState,
    SensorFaultDetector,
)
from repro.streaming.runtime import (
    PRIVACY_LADDER,
    BreakerState,
    ComputeProfile,
    LocalRuntime,
    PlacementCircuitBreaker,
    PrivacyEscalator,
    RemoteRuntime,
    VerdictTiming,
    choose_runtime,
    frame_payload_bytes,
    placement_sweep,
)
from repro.streaming.persistence import (
    load_readings_jsonl,
    load_tsdb,
    save_readings_jsonl,
    save_tsdb,
)
from repro.streaming.pipeline import (
    PHONE_SENSORS,
    CollectionSession,
    SessionConfig,
    SessionResult,
)
from repro.streaming.faults import (
    FAULT_KINDS,
    ChaosDriveReport,
    ChaosHarness,
    FaultEvent,
    FaultSchedule,
    FaultableSensor,
    WindowHealth,
    run_chaos_drive,
    standard_chaos_schedule,
)

__all__ = [
    "VirtualClock", "DriftingClock", "SensorReading", "FrameRecord",
    "SyncMessage", "Message", "payload_size", "Channel", "ChannelStats",
    "SyntheticSensor", "CameraSensor", "accelerometer", "gyroscope",
    "gravity", "rotation", "CollectionAgent", "scripted_labeller",
    "ClockSynchronizer", "DEFAULT_SYNC_INTERVAL", "SlidingMovingAverage",
    "align_streams", "interpolate_to_grid", "make_grid", "TimeSeriesDatabase",
    "Point", "CentralizedController", "ProcessingLocation",
    "NetworkConditions", "ProcessingPolicy", "decide_processing",
    "CollectionSession", "SessionConfig", "SessionResult", "PHONE_SENSORS",
    "ComputeProfile", "LocalRuntime", "RemoteRuntime", "VerdictTiming",
    "choose_runtime", "frame_payload_bytes", "placement_sweep",
    "save_readings_jsonl", "load_readings_jsonl", "save_tsdb", "load_tsdb",
    # fault-tolerance layer
    "StreamingError", "ReliabilityError", "HealthError",
    "ReliableSender", "ReliableReceiver", "ReliablePacket", "Ack",
    "SenderStats", "ReceiverStats", "PayloadClass", "classify_payload",
    "reliable_link",
    "HealthState", "Heartbeat", "HealthRegistry", "AgentLiveness",
    "SensorFaultDetector",
    "PlacementCircuitBreaker", "BreakerState", "PrivacyEscalator",
    "PRIVACY_LADDER",
    "FaultEvent", "FaultSchedule", "FaultableSensor", "ChaosHarness",
    "ChaosDriveReport", "WindowHealth", "run_chaos_drive",
    "standard_chaos_schedule", "FAULT_KINDS",
]
