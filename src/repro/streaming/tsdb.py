"""In-memory time-series database.

A statsd-flavoured store the controller writes aligned tuples into (paper
§4.1: "store the data in a time-series database e.g. statsd"), supporting
range queries and bucketed aggregation.  Points within a series are kept
sorted by timestamp with bisection inserts, so out-of-order arrivals are
handled.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, StreamingError


@dataclass(frozen=True)
class Point:
    """One stored observation."""

    timestamp: float
    value: tuple[float, ...]
    label: int | None = None


_AGGREGATES = ("mean", "min", "max", "count", "last")


class TimeSeriesDatabase:
    """Multi-series store keyed by series name."""

    def __init__(self) -> None:
        self._series: dict[str, list[Point]] = {}
        self._keys: dict[str, list[float]] = {}

    # -- writes ---------------------------------------------------------
    def insert(self, series: str, timestamp: float,
               value: np.ndarray | float | tuple,
               label: int | None = None) -> None:
        """Insert one point, keeping the series time-ordered."""
        vec = tuple(float(v) for v in np.atleast_1d(np.asarray(value, dtype=np.float64)))
        point = Point(float(timestamp), vec, label)
        points = self._series.setdefault(series, [])
        keys = self._keys.setdefault(series, [])
        index = bisect.bisect_right(keys, point.timestamp)
        keys.insert(index, point.timestamp)
        points.insert(index, point)

    def insert_many(self, series: str, timestamps: np.ndarray,
                    values: np.ndarray,
                    labels: np.ndarray | None = None) -> None:
        """Bulk insert a column of points."""
        timestamps = np.asarray(timestamps, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != timestamps.shape[0]:
            raise ConfigurationError("timestamps/values length mismatch")
        for i, ts in enumerate(timestamps):
            label = None if labels is None else int(labels[i])
            self.insert(series, float(ts), values[i], label)

    # -- reads ------------------------------------------------------------
    def series_names(self) -> list[str]:
        """All stored series names, sorted."""
        return sorted(self._series)

    def query(self, series: str, start: float = -np.inf,
              end: float = np.inf) -> list[Point]:
        """Points with ``start <= timestamp <= end`` in time order."""
        points = self._series.get(series)
        if points is None:
            raise StreamingError(f"unknown series {series!r}")
        keys = self._keys[series]
        lo = bisect.bisect_left(keys, start)
        hi = bisect.bisect_right(keys, end)
        return points[lo:hi]

    def as_arrays(self, series: str, start: float = -np.inf,
                  end: float = np.inf
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Return (timestamps, values, labels) arrays for a range.

        ``labels`` is None when no point in the range carries a label.
        """
        points = self.query(series, start, end)
        if not points:
            return (np.empty(0), np.empty((0, 0)), None)
        timestamps = np.array([p.timestamp for p in points])
        values = np.array([p.value for p in points])
        if all(p.label is None for p in points):
            return timestamps, values, None
        labels = np.array([-1 if p.label is None else p.label for p in points])
        return timestamps, values, labels

    def aggregate(self, series: str, bucket: float, statistic: str = "mean",
                  start: float | None = None, end: float | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Bucketed aggregate: (bucket starts, aggregated values).

        Empty buckets are omitted.  ``statistic`` is one of mean / min /
        max / count / last.
        """
        if statistic not in _AGGREGATES:
            raise ConfigurationError(
                f"unknown statistic {statistic!r}; choose from {_AGGREGATES}"
            )
        if bucket <= 0:
            raise ConfigurationError("bucket width must be positive")
        points = self.query(series,
                            -np.inf if start is None else start,
                            np.inf if end is None else end)
        if not points:
            return np.empty(0), np.empty((0, 0))
        origin = points[0].timestamp if start is None else float(start)
        grouped: dict[int, list[Point]] = {}
        for point in points:
            index = int((point.timestamp - origin) // bucket)
            grouped.setdefault(index, []).append(point)
        bucket_starts = []
        outputs = []
        for index in sorted(grouped):
            members = grouped[index]
            values = np.array([m.value for m in members])
            bucket_starts.append(origin + index * bucket)
            if statistic == "mean":
                outputs.append(values.mean(axis=0))
            elif statistic == "min":
                outputs.append(values.min(axis=0))
            elif statistic == "max":
                outputs.append(values.max(axis=0))
            elif statistic == "count":
                outputs.append(np.array([float(len(members))]))
            else:  # last
                outputs.append(values[-1])
        return np.array(bucket_starts), np.array(outputs)

    def count(self, series: str) -> int:
        """Number of points stored in ``series`` (0 if absent)."""
        return len(self._series.get(series, ()))

    def clear(self, series: str | None = None) -> None:
        """Drop one series, or everything when ``series`` is None."""
        if series is None:
            self._series.clear()
            self._keys.clear()
        else:
            self._series.pop(series, None)
            self._keys.pop(series, None)
