"""The centralized controller.

Responsibilities (paper §3.2): aggregate data received from agents, order
it by payload timestamp (arrival order is scrambled by the network), fill
gaps by interpolation onto a consistent grid, smooth with a sliding moving
average, keep agent clocks synchronized, persist into the time-series
database, and decide where processing happens (local vs. remote) based on
network conditions — selecting a privacy level for frames shipped remotely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError, ControllerError
from repro.streaming.agent import CollectionAgent
from repro.streaming.health import Heartbeat, HealthRegistry
from repro.streaming.normalization import align_streams
from repro.streaming.records import FrameRecord, SensorReading
from repro.streaming.sync import ClockSynchronizer
from repro.streaming.transport import Channel
from repro.streaming.tsdb import TimeSeriesDatabase


class ProcessingLocation(enum.Enum):
    """Where the analytics engine runs for the current session."""

    LOCAL = "local"
    REMOTE = "remote"


@dataclass(frozen=True)
class NetworkConditions:
    """Observed link quality used by the processing decision."""

    bandwidth_bps: float
    latency_s: float
    loss_rate: float = 0.0


@dataclass(frozen=True)
class ProcessingPolicy:
    """Thresholds for the local/remote decision.

    A remote server "would have a greater amount of processing power",
    but "under poor network conditions, the controller has the option of
    processing all data locally, albeit slower" (paper §3.2).
    """

    min_remote_bandwidth_bps: float = 1_000_000.0
    max_remote_latency_s: float = 0.5
    max_remote_loss_rate: float = 0.1
    local_slowdown: float = 8.0


def decide_processing(conditions: NetworkConditions,
                      policy: ProcessingPolicy | None = None
                      ) -> ProcessingLocation:
    """Pick local vs. remote processing from link quality."""
    policy = policy or ProcessingPolicy()
    good_network = (
        conditions.bandwidth_bps >= policy.min_remote_bandwidth_bps
        and conditions.latency_s <= policy.max_remote_latency_s
        and conditions.loss_rate <= policy.max_remote_loss_rate
    )
    return ProcessingLocation.REMOTE if good_network else ProcessingLocation.LOCAL


@dataclass
class RegisteredAgent:
    """Controller-side bookkeeping for one agent."""

    agent: CollectionAgent
    uplink: Channel
    synchronizer: ClockSynchronizer | None = None


class CentralizedController:
    """Aggregates agent streams; runs on the dashcam tablet in the paper.

    Args:
        clock: the controller's own clock (the sync master).  Any object
            with ``now()``; typically the undrifted :class:`VirtualClock`.
        tsdb: destination store for aligned tuples.
        grid_period: aggregation interval for interpolation (paper's IMU
            pipeline samples at 4 Hz -> 0.25 s).
        smoothing_window: sliding-moving-average width in grid steps.
        frame_transform: optional hook applied to each received frame
            (the privacy distortion module plugs in here).
        health: optional :class:`HealthRegistry`; when present, agents are
            supervised for liveness, heartbeats are consumed, and faulty
            sensor readings are quarantined before they reach alignment.
    """

    def __init__(self, clock, *, tsdb: TimeSeriesDatabase | None = None,
                 grid_period: float = 0.25, smoothing_window: int = 3,
                 frame_transform: Callable[[FrameRecord], FrameRecord] | None = None,
                 health: HealthRegistry | None = None) -> None:
        if grid_period <= 0:
            raise ConfigurationError("grid period must be positive")
        self.clock = clock
        self.tsdb = tsdb or TimeSeriesDatabase()
        self.grid_period = float(grid_period)
        self.smoothing_window = int(smoothing_window)
        self.frame_transform = frame_transform
        self.health = health
        self._agents: dict[str, RegisteredAgent] = {}
        self._raw: dict[tuple[str, str], list[SensorReading]] = {}
        self.frames: list[FrameRecord] = []
        self.readings_received = 0
        self.frames_received = 0
        self.readings_quarantined = 0
        self.heartbeats_received = 0

    # -- registration --------------------------------------------------------
    def register_agent(self, agent: CollectionAgent, uplink: Channel,
                       downlink: Channel | None = None,
                       sync_interval: float = 5.0) -> None:
        """Open the two-way channel with an agent; start its clock sync."""
        if agent.agent_id in self._agents:
            raise ControllerError(f"agent {agent.agent_id!r} already registered")
        synchronizer = None
        if downlink is not None:
            synchronizer = ClockSynchronizer(agent, downlink,
                                             sync_interval=sync_interval)
        self._agents[agent.agent_id] = RegisteredAgent(agent, uplink, synchronizer)
        if self.health is not None:
            self.health.register(agent.agent_id, self.clock.now())

    @property
    def agent_ids(self) -> list[str]:
        """Registered agent names, sorted."""
        return sorted(self._agents)

    # -- simulation hook -------------------------------------------------------
    def step(self, true_time: float) -> None:
        """Drain uplinks, ingest payloads, and run due clock syncs."""
        for registered in self._agents.values():
            if registered.synchronizer is not None:
                registered.synchronizer.step(true_time, self.clock.now())
            for message in registered.uplink.poll(true_time):
                self._ingest(message.payload, true_time)
        if self.health is not None:
            self.health.step(true_time)

    def _ingest(self, payload, now: float) -> None:
        if isinstance(payload, (list, tuple)):
            for item in payload:
                self._ingest(item, now)
            return
        if isinstance(payload, SensorReading):
            self.readings_received += 1
            if (self.health is not None
                    and not self.health.observe_reading(payload, now)):
                self.readings_quarantined += 1
                return
            key = (payload.agent_id, payload.sensor)
            self._raw.setdefault(key, []).append(payload)
        elif isinstance(payload, FrameRecord):
            self.frames_received += 1
            if self.health is not None:
                self.health.record_activity(payload.agent_id, now)
            if self.frame_transform is not None:
                payload = self.frame_transform(payload)
            self.frames.append(payload)
        elif isinstance(payload, Heartbeat):
            self.heartbeats_received += 1
            if self.health is not None:
                self.health.record_heartbeat(payload, now)
        else:
            raise ControllerError(f"unexpected payload type {type(payload).__name__}")

    # -- normalization / persistence -----------------------------------------
    def raw_streams(self) -> dict[str, tuple[np.ndarray, np.ndarray]]:
        """Time-ordered raw streams keyed ``"agent/sensor"``."""
        streams: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for (agent_id, sensor), readings in self._raw.items():
            ordered = sorted(readings, key=lambda r: r.timestamp)
            timestamps = np.array([r.timestamp for r in ordered])
            values = np.array([r.values for r in ordered])
            streams[f"{agent_id}/{sensor}"] = (timestamps, values)
        return streams

    def raw_labels(self, agent_id: str, sensor: str) -> np.ndarray:
        """Time-ordered labels for one stream (-1 where unlabelled)."""
        readings = self._raw.get((agent_id, sensor))
        if not readings:
            raise ControllerError(f"no data for {agent_id}/{sensor}")
        ordered = sorted(readings, key=lambda r: r.timestamp)
        return np.array([-1 if r.label is None else r.label for r in ordered])

    def normalize(self) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Interpolate every stream onto the shared grid and smooth.

        Returns the grid and per-stream aligned values; also persists each
        aligned stream into the TSDB.
        """
        streams = self.raw_streams()
        if not streams:
            raise ControllerError("no sensor data received yet")
        grid, aligned = align_streams(streams, self.grid_period,
                                      smoothing_window=self.smoothing_window)
        for name, values in aligned.items():
            self.tsdb.insert_many(name, grid, values)
        return grid, aligned

    def grid_labels(self, grid: np.ndarray, agent_id: str,
                    sensor: str) -> np.ndarray:
        """Nearest-neighbour labels for grid points from a labelled stream."""
        readings = self._raw.get((agent_id, sensor))
        if not readings:
            raise ControllerError(f"no data for {agent_id}/{sensor}")
        ordered = sorted(readings, key=lambda r: r.timestamp)
        timestamps = np.array([r.timestamp for r in ordered])
        labels = np.array([-1 if r.label is None else r.label for r in ordered])
        indices = np.searchsorted(timestamps, grid)
        indices = np.clip(indices, 0, len(ordered) - 1)
        left = np.clip(indices - 1, 0, len(ordered) - 1)
        use_left = (np.abs(timestamps[left] - grid)
                    < np.abs(timestamps[indices] - grid))
        return labels[np.where(use_left, left, indices)]

    def health_report(self) -> dict:
        """Health-registry summary (empty when supervision is disabled)."""
        if self.health is None:
            return {}
        return self.health.report()

    def sync_report(self) -> dict[str, float]:
        """Worst residual clock error per agent after synchronization."""
        report = {}
        for agent_id, registered in self._agents.items():
            if registered.synchronizer is not None:
                report[agent_id] = registered.synchronizer.worst_residual_error()
        return report
