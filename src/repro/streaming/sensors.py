"""Simulated device sensors.

A sensor is anything with ``name``, ``dimension``, and ``sample(true_time)``.
The IMU sensors mirror the Android sensors DarNet's phone agent registers
(accelerometer, gyroscope, gravity, rotation — paper §4.1); the camera
sensor mirrors the tablet agent.  Signal content is supplied by a *signal
function* of true time, so the dataset synthesizers in
:mod:`repro.datasets.imu_synth` can drive the same sensor objects used in
unit tests with constant or scripted signals.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.exceptions import ConfigurationError

SignalFunction = Callable[[float], np.ndarray]


class Sensor(Protocol):
    """Structural interface every sensor satisfies."""

    name: str
    dimension: int

    def sample(self, true_time: float) -> np.ndarray:
        """Return one sample at simulation time ``true_time``."""
        ...


class SyntheticSensor:
    """Generic vector sensor: signal function plus additive Gaussian noise.

    Commodity sensor hardware has bounded error (paper §3.2 motivates the
    controller's smoothing pass with exactly this), modelled here as
    per-axis Gaussian noise and a fixed bias.
    """

    def __init__(self, name: str, dimension: int, signal: SignalFunction, *,
                 noise_std: float = 0.0, bias: np.ndarray | None = None,
                 rng: np.random.Generator | None = None) -> None:
        if dimension <= 0:
            raise ConfigurationError("sensor dimension must be positive")
        self.name = name
        self.dimension = int(dimension)
        self.signal = signal
        self.noise_std = float(noise_std)
        self.bias = (np.zeros(dimension, dtype=np.float64) if bias is None
                     else np.asarray(bias, dtype=np.float64))
        if self.bias.shape != (dimension,):
            raise ConfigurationError(
                f"bias shape {self.bias.shape} != ({dimension},)"
            )
        self.rng = rng or np.random.default_rng()

    def sample(self, true_time: float) -> np.ndarray:
        """One noisy sample of the underlying signal."""
        clean = np.asarray(self.signal(true_time), dtype=np.float64).ravel()
        if clean.shape != (self.dimension,):
            raise ConfigurationError(
                f"{self.name}: signal returned shape {clean.shape}, "
                f"expected ({self.dimension},)"
            )
        noisy = clean + self.bias
        if self.noise_std:
            noisy = noisy + self.rng.normal(0.0, self.noise_std, self.dimension)
        return noisy


def accelerometer(signal: SignalFunction, *, noise_std: float = 0.05,
                  rng: np.random.Generator | None = None) -> SyntheticSensor:
    """3-axis accelerometer (m/s^2), Android-typical noise floor."""
    return SyntheticSensor("accelerometer", 3, signal, noise_std=noise_std, rng=rng)


def gyroscope(signal: SignalFunction, *, noise_std: float = 0.02,
              rng: np.random.Generator | None = None) -> SyntheticSensor:
    """3-axis gyroscope (rad/s)."""
    return SyntheticSensor("gyroscope", 3, signal, noise_std=noise_std, rng=rng)


def gravity(signal: SignalFunction, *, noise_std: float = 0.02,
            rng: np.random.Generator | None = None) -> SyntheticSensor:
    """3-axis gravity vector (m/s^2) — Android's low-passed accelerometer."""
    return SyntheticSensor("gravity", 3, signal, noise_std=noise_std, rng=rng)


def rotation(signal: SignalFunction, *, noise_std: float = 0.01,
             rng: np.random.Generator | None = None) -> SyntheticSensor:
    """Rotation vector sensor (3 components of the device quaternion)."""
    return SyntheticSensor("rotation", 3, signal, noise_std=noise_std, rng=rng)


class CameraSensor:
    """Frame source for the dashcam agent.

    ``frame_fn(true_time)`` returns an HxW (or HxWxC) float32 image in
    [0, 1]; the agent wraps it into a
    :class:`~repro.streaming.records.FrameRecord`.
    """

    def __init__(self, frame_fn: Callable[[float], np.ndarray],
                 name: str = "camera") -> None:
        self.name = name
        self.dimension = 0  # image-valued; dimension is not meaningful
        self.frame_fn = frame_fn

    def sample(self, true_time: float) -> np.ndarray:
        """Capture one frame."""
        frame = np.asarray(self.frame_fn(true_time), dtype=np.float32)
        if frame.ndim not in (2, 3):
            raise ConfigurationError(
                f"{self.name}: frame must be 2-D or 3-D, got {frame.shape}"
            )
        return frame
