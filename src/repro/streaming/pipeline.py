"""End-to-end collection sessions.

A :class:`CollectionSession` wires the full DarNet data-collection stack —
virtual time, drifting device clocks, lossy channels, collection agents,
and the centralized controller — and advances it through simulated wall
time.  The result mirrors what the paper's Android deployment produces: a
time-aligned multi-sensor dataset with ground-truth labels from the
scripted drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streaming.agent import CollectionAgent
from repro.streaming.clock import DriftingClock, VirtualClock
from repro.streaming.controller import CentralizedController
from repro.streaming.records import FrameRecord
from repro.streaming.sensors import (
    CameraSensor,
    accelerometer,
    gravity,
    gyroscope,
    rotation,
)
from repro.streaming.transport import Channel
from repro.streaming.tsdb import TimeSeriesDatabase


@dataclass
class SessionConfig:
    """Tunables for a collection session.

    Defaults follow the paper's implementation: 25 ms sensor polling
    (§4.1), 4 Hz controller aggregation grid (§4.2), 5 s clock re-sync.
    """

    poll_interval: float = 0.025
    frame_interval: float = 0.2
    transmit_interval: float = 0.25
    grid_period: float = 0.25
    smoothing_window: int = 3
    sync_interval: float = 5.0
    simulation_step: float = 0.005
    phone_drift_ppm: float = 80.0
    dashcam_drift_ppm: float = -40.0
    phone_initial_offset: float = 0.05
    dashcam_initial_offset: float = -0.02
    channel_latency: float = 0.008
    channel_jitter: float = 0.002
    channel_drop: float = 0.0


@dataclass
class SessionResult:
    """Everything a finished session produced."""

    grid: np.ndarray
    imu: np.ndarray
    imu_labels: np.ndarray
    frames: list[FrameRecord]
    tsdb: TimeSeriesDatabase
    controller: CentralizedController
    sensor_order: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.grid.size == 0:
            return 0.0
        return float(self.grid[-1] - self.grid[0])


#: Sensors registered by the phone agent (paper §4.1).
PHONE_SENSORS = ("accelerometer", "gyroscope", "gravity", "rotation")


class CollectionSession:
    """A full agents + controller simulation.

    Args:
        imu_signal: ``(sensor_name, true_time) -> 3-vector`` giving the
            clean physical signal for each phone sensor.
        frame_fn: ``true_time -> image`` for the dashcam.
        label_fn: ``true_time -> behaviour class`` ground truth.
        config: session tunables.
        rng: randomness for sensor noise and channel jitter.
        frame_transform: optional *device-side* frame hook applied by the
            dashcam agent before transmission (the privacy distortion
            module) — downsampled frames save real uplink bandwidth.
    """

    def __init__(self, imu_signal: Callable[[str, float], np.ndarray],
                 frame_fn: Callable[[float], np.ndarray],
                 label_fn: Callable[[float], int] | None = None, *,
                 config: SessionConfig | None = None,
                 rng: np.random.Generator | None = None,
                 frame_transform=None) -> None:
        self.config = config or SessionConfig()
        self.rng = rng or np.random.default_rng()
        cfg = self.config
        self.true_clock = VirtualClock()

        def sensor_signal(name: str) -> Callable[[float], np.ndarray]:
            return lambda t: imu_signal(name, t)

        phone_clock = DriftingClock(self.true_clock,
                                    drift_ppm=cfg.phone_drift_ppm,
                                    initial_offset=cfg.phone_initial_offset)
        dashcam_clock = DriftingClock(self.true_clock,
                                      drift_ppm=cfg.dashcam_drift_ppm,
                                      initial_offset=cfg.dashcam_initial_offset)

        def make_channel(name: str) -> Channel:
            return Channel(name, base_latency=cfg.channel_latency,
                           jitter=cfg.channel_jitter,
                           drop_probability=cfg.channel_drop, rng=self.rng)

        phone_up = make_channel("phone->controller")
        phone_down = make_channel("controller->phone")
        cam_up = make_channel("dashcam->controller")
        cam_down = make_channel("controller->dashcam")

        phone_sensors = [
            accelerometer(sensor_signal("accelerometer"), rng=self.rng),
            gyroscope(sensor_signal("gyroscope"), rng=self.rng),
            gravity(sensor_signal("gravity"), rng=self.rng),
            rotation(sensor_signal("rotation"), rng=self.rng),
        ]
        self.phone = CollectionAgent(
            "phone", phone_sensors, phone_clock, phone_up,
            poll_interval=cfg.poll_interval,
            transmit_interval=cfg.transmit_interval, label_fn=label_fn,
        )
        self.dashcam = CollectionAgent(
            "dashcam", [CameraSensor(frame_fn)], dashcam_clock, cam_up,
            poll_interval=cfg.frame_interval,
            transmit_interval=cfg.transmit_interval, label_fn=label_fn,
            frame_transform=frame_transform,
        )
        self.controller = CentralizedController(
            self.true_clock, grid_period=cfg.grid_period,
            smoothing_window=cfg.smoothing_window,
        )
        self.controller.register_agent(self.phone, phone_up, phone_down,
                                       sync_interval=cfg.sync_interval)
        self.controller.register_agent(self.dashcam, cam_up, cam_down,
                                       sync_interval=cfg.sync_interval)

    def run(self, duration: float) -> SessionResult:
        """Simulate ``duration`` seconds, then normalize and package."""
        if duration <= 0:
            raise ConfigurationError("session duration must be positive")
        cfg = self.config
        steps = int(np.ceil(duration / cfg.simulation_step))
        for _ in range(steps):
            now = self.true_clock.advance(cfg.simulation_step)
            self.phone.step(now)
            self.dashcam.step(now)
            self.controller.step(now)
        # Final drain: keep stepping (at normal resolution, so message
        # delivery times stay realistic) until in-flight traffic lands.
        settle_steps = int(np.ceil(1.0 / cfg.simulation_step))
        for _ in range(settle_steps):
            now = self.true_clock.advance(cfg.simulation_step)
            self.controller.step(now)
        grid, aligned = self.controller.normalize()
        sensor_order = [f"phone/{name}" for name in PHONE_SENSORS]
        imu = np.concatenate([aligned[name] for name in sensor_order], axis=1)
        labels = self.controller.grid_labels(grid, "phone", "accelerometer")
        frames = sorted(self.controller.frames, key=lambda f: f.timestamp)
        return SessionResult(grid=grid, imu=imu, imu_labels=labels,
                             frames=frames, tsdb=self.controller.tsdb,
                             controller=self.controller,
                             sensor_order=sensor_order)
