"""Controller-side data normalization.

"Because the timestamps for data received from different agents will not
align exactly, the controller uses interpolation to fill in the gaps, and
to aggregate the data at consistent intervals.  Additionally, the
controller performs a smoothing operation on the data by maintaining a
sliding moving average." (paper §3.2)
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError


def interpolate_to_grid(timestamps: np.ndarray, values: np.ndarray,
                        grid: np.ndarray) -> np.ndarray:
    """Linearly interpolate an irregular series onto a regular grid.

    Grid points outside the observed range clamp to the first/last
    observation.  ``values`` may be 1-D or 2-D ``(samples, dims)``.
    """
    timestamps = np.asarray(timestamps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    grid = np.asarray(grid, dtype=np.float64)
    if timestamps.ndim != 1 or timestamps.size == 0:
        raise ShapeError("timestamps must be a non-empty 1-D array")
    if values.shape[0] != timestamps.shape[0]:
        raise ShapeError(
            f"{values.shape[0]} values for {timestamps.shape[0]} timestamps"
        )
    if np.any(np.diff(timestamps) < 0):
        order = np.argsort(timestamps, kind="stable")
        timestamps = timestamps[order]
        values = values[order]
    if values.ndim == 1:
        return np.interp(grid, timestamps, values)
    columns = [np.interp(grid, timestamps, values[:, d])
               for d in range(values.shape[1])]
    return np.stack(columns, axis=1)


def make_grid(start: float, end: float, period: float) -> np.ndarray:
    """Regular timestamps ``start, start+period, ...`` not exceeding ``end``."""
    if period <= 0:
        raise ConfigurationError(f"grid period must be positive, got {period}")
    if end < start:
        raise ConfigurationError(f"grid end {end} before start {start}")
    count = int(np.floor((end - start) / period)) + 1
    return start + period * np.arange(count, dtype=np.float64)


class SlidingMovingAverage:
    """Streaming moving average over the last ``window`` samples.

    Normalizes commodity-sensor aberrations: a spike is averaged against
    its neighbours.  Vector-valued samples are averaged per dimension.
    """

    def __init__(self, window: int) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive, got {window}")
        self.window = int(window)
        self._buffer: deque = deque(maxlen=self.window)
        self._running_sum: np.ndarray | None = None

    def update(self, value: np.ndarray | float) -> np.ndarray:
        """Push one sample; return the current smoothed value."""
        vec = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if self._running_sum is None:
            self._running_sum = np.zeros_like(vec)
        elif vec.shape != self._running_sum.shape:
            raise ShapeError(
                f"sample shape changed from {self._running_sum.shape} to {vec.shape}"
            )
        if len(self._buffer) == self.window:
            self._running_sum -= self._buffer[0]
        self._buffer.append(vec)
        self._running_sum += vec
        return self._running_sum / len(self._buffer)

    def smooth_series(self, values: np.ndarray) -> np.ndarray:
        """Apply the streaming average over a whole series (fresh state)."""
        self.reset()
        values = np.asarray(values, dtype=np.float64)
        if values.ndim == 1:
            return np.array([float(self.update(v)[0]) for v in values])
        return np.stack([self.update(v) for v in values])

    def reset(self) -> None:
        """Forget all buffered samples."""
        self._buffer.clear()
        self._running_sum = None


def align_streams(streams: dict[str, tuple[np.ndarray, np.ndarray]],
                  period: float,
                  smoothing_window: int | None = None
                  ) -> tuple[np.ndarray, dict[str, np.ndarray]]:
    """Align multiple irregular streams onto one shared grid.

    The grid spans the *intersection* of all stream extents so every grid
    point is covered by real data from every stream.

    Args:
        streams: name -> (timestamps, values) in a common time base.
        period: grid period in seconds (paper: 0.25 s for the 4 Hz windows).
        smoothing_window: optional moving-average width applied after
            interpolation.

    Returns:
        (grid, {name: aligned values}) with aligned arrays sharing length.
    """
    if not streams:
        raise ConfigurationError("no streams to align")
    starts = []
    ends = []
    for name, (timestamps, _) in streams.items():
        timestamps = np.asarray(timestamps, dtype=np.float64)
        if timestamps.size == 0:
            raise ShapeError(f"stream {name!r} is empty")
        starts.append(float(timestamps.min()))
        ends.append(float(timestamps.max()))
    start = max(starts)
    end = min(ends)
    if end < start:
        raise ConfigurationError(
            f"streams do not overlap in time: latest start {start} > earliest end {end}"
        )
    grid = make_grid(start, end, period)
    aligned: dict[str, np.ndarray] = {}
    for name, (timestamps, values) in streams.items():
        resampled = interpolate_to_grid(timestamps, values, grid)
        if smoothing_window is not None and smoothing_window > 1:
            resampled = SlidingMovingAverage(smoothing_window).smooth_series(resampled)
        aligned[name] = resampled
    return grid, aligned
