"""Deterministic chaos harness: scripted fault schedules over virtual time.

Fault tolerance that is only exercised by accident is not exercised at
all.  This module drives the whole supervision stack — reliable
transport, health registry, placement circuit breaker, adaptive privacy
escalation — under a *scripted* :class:`FaultSchedule` evaluated against
the simulation's virtual clock, so every chaos run is reproducible from
a seed.  :func:`run_chaos_drive` packages the canonical scenario (total
blackout + dashcam death + stuck sensor in one drive) behind a single
call used by the integration tests and the ``repro chaos`` CLI command.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.streaming.agent import CollectionAgent
from repro.streaming.clock import DriftingClock, VirtualClock
from repro.streaming.controller import CentralizedController
from repro.streaming.health import HealthRegistry, HealthState
from repro.streaming.reliability import reliable_link
from repro.streaming.runtime import PlacementCircuitBreaker, PrivacyEscalator
from repro.streaming.sensors import (
    CameraSensor,
    accelerometer,
    gravity,
    gyroscope,
    rotation,
)
from repro.streaming.transport import Channel

#: Fault kinds a schedule may contain.  The first five target the
#: streaming stack (:class:`ChaosHarness`); the serving kinds target the
#: shard fleet and are interpreted by
#: :class:`repro.serving.chaos.ServingChaosHarness`; the edge kinds
#: target the device runtime and are interpreted by
#: :class:`repro.edge.chaos.EdgeChaosHarness` — ``uplink_blackhole``
#: severs an agent's uplink both ways, ``ota_corrupt_artifact`` flips
#: bytes in every artifact the OTA server serves, and
#: ``ota_download_kill`` kills the updater process mid-download (the
#: resumed download must continue from its persisted partial files).
#: The camera kinds are scenario-native: scheduled by the scenario DSL's
#: environment track and baked into compiled traces — ``camera_covered``
#: replaces frames with occluded-lens renders (the server keeps getting
#: frames and should *classify* the condition), ``camera_blackout``
#: suppresses frame ingestion (the server must degrade to IMU-only).
FAULT_KINDS = ("blackout", "agent_silence", "sensor_stuck",
               "sensor_dropout", "sensor_spike",
               "shard_kill", "executor_hang", "sink_blackhole",
               "journal_disk_full", "worker_kill",
               "uplink_blackhole", "ota_corrupt_artifact",
               "ota_download_kill",
               "camera_covered", "camera_blackout")

_SENSOR_MODES = {"sensor_stuck": "stuck", "sensor_dropout": "dropout",
                 "sensor_spike": "spike"}


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: ``kind`` applies to ``target`` over [start, end).

    ``target`` is a channel name for blackouts, an agent id for silences,
    an ``agent/sensor`` stream for sensor faults, or ``"*"`` to hit every
    matching component.  ``magnitude`` parameterizes spike faults.
    """

    start: float
    end: float
    kind: str
    target: str
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"need 0 <= start < end, got [{self.start}, {self.end})")

    def matches(self, target: str) -> bool:
        """Whether this event applies to a concrete component name."""
        return self.target == "*" or self.target == target

    def active(self, now: float) -> bool:
        """Whether the event is live at virtual time ``now``."""
        return self.start <= now < self.end


class FaultSchedule:
    """An ordered, immutable script of :class:`FaultEvent`\\ s."""

    def __init__(self, events) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.start, e.end, e.kind, e.target)))

    def active(self, now: float) -> list[FaultEvent]:
        """Every event live at ``now``."""
        return [event for event in self.events if event.active(now)]

    def active_for(self, kind: str, target: str,
                   now: float) -> FaultEvent | None:
        """The live event of ``kind`` hitting ``target``, if any."""
        for event in self.events:
            if event.kind == kind and event.matches(target) \
                    and event.active(now):
                return event
        return None

    @property
    def horizon(self) -> float:
        """Latest finite event end (0.0 for an empty schedule)."""
        ends = [e.end for e in self.events if math.isfinite(e.end)]
        return max(ends, default=0.0)


class FaultableSensor:
    """Chaos wrapper giving any sensor injectable fault modes.

    Modes: ``None`` (pass-through), ``"stuck"`` (repeats the first sample
    taken under the fault), ``"dropout"`` (produces no reading), and
    ``"spike"`` (adds ``magnitude`` to every axis).
    """

    def __init__(self, inner) -> None:
        self.inner = inner
        self.name = inner.name
        self.dimension = inner.dimension
        self.mode: str | None = None
        self.magnitude = 0.0
        self._stuck_value: np.ndarray | None = None

    def set_mode(self, mode: str | None, magnitude: float = 0.0) -> None:
        """Switch the active fault mode."""
        if mode not in (None, "stuck", "dropout", "spike"):
            raise ConfigurationError(f"unknown sensor fault mode {mode!r}")
        if mode != "stuck":
            self._stuck_value = None
        self.mode = mode
        self.magnitude = float(magnitude)

    def sample(self, true_time: float):
        """Sample the wrapped sensor through the active fault."""
        if self.mode == "dropout":
            return None
        if self.mode == "stuck":
            if self._stuck_value is None:
                self._stuck_value = np.asarray(self.inner.sample(true_time))
            return self._stuck_value
        value = self.inner.sample(true_time)
        if self.mode == "spike":
            return np.asarray(value) + self.magnitude
        return value


class ChaosHarness:
    """Applies a :class:`FaultSchedule` to live components every step.

    Args:
        schedule: the fault script.
        channels: channel name -> :class:`Channel` (blackout targets).
        agents: agent id -> :class:`CollectionAgent` (silence targets).
        sensors: ``agent/sensor`` stream -> :class:`FaultableSensor`.
    """

    def __init__(self, schedule: FaultSchedule, *,
                 channels: dict[str, Channel] | None = None,
                 agents: dict[str, CollectionAgent] | None = None,
                 sensors: dict[str, FaultableSensor] | None = None) -> None:
        self.schedule = schedule
        self.channels = dict(channels or {})
        self.agents = dict(agents or {})
        self.sensors = dict(sensors or {})
        self._saved_drop: dict[str, float] = {}
        self._suspended: set[str] = set()
        self.log: list[tuple[float, str, str, str]] = []

    def apply(self, now: float) -> None:
        """Reconcile every component with the schedule at ``now``."""
        for name, channel in self.channels.items():
            active = self.schedule.active_for("blackout", name, now)
            if active is not None and name not in self._saved_drop:
                self._saved_drop[name] = channel.drop_probability
                channel.drop_probability = 1.0
                self.log.append((now, "blackout", name, "on"))
            elif active is None and name in self._saved_drop:
                channel.drop_probability = self._saved_drop.pop(name)
                self.log.append((now, "blackout", name, "off"))
        for agent_id, agent in self.agents.items():
            active = self.schedule.active_for("agent_silence", agent_id, now)
            if active is not None and agent_id not in self._suspended:
                agent.suspended = True
                self._suspended.add(agent_id)
                self.log.append((now, "agent_silence", agent_id, "on"))
            elif active is None and agent_id in self._suspended:
                agent.suspended = False
                agent.fast_forward(now)
                self._suspended.remove(agent_id)
                self.log.append((now, "agent_silence", agent_id, "off"))
        for stream, sensor in self.sensors.items():
            mode, magnitude = None, 0.0
            for kind, sensor_mode in _SENSOR_MODES.items():
                event = self.schedule.active_for(kind, stream, now)
                if event is not None:
                    mode, magnitude = sensor_mode, event.magnitude
                    break
            if sensor.mode != mode:
                self.log.append((now, f"sensor_{mode or 'clear'}",
                                 stream, "on" if mode else "off"))
            sensor.set_mode(mode, magnitude)


def standard_chaos_schedule(duration: float = 30.0) -> FaultSchedule:
    """The canonical robustness scenario for a ``duration``-second drive:
    a 3 s total blackout, the dashcam dying mid-drive, and a stuck
    gyroscope — all three fault classes in one script."""
    return FaultSchedule([
        FaultEvent(8.0, 11.0, "blackout", "*"),
        FaultEvent(duration / 2.0, math.inf, "agent_silence", "dashcam"),
        FaultEvent(5.0, 20.0, "sensor_stuck", "phone/gyroscope"),
    ])


@dataclass
class WindowHealth:
    """Per-analysis-window stream availability after a chaos drive."""

    start: float
    end: float
    imu_readings: int
    frames: int

    @property
    def has_imu(self) -> bool:
        return self.imu_readings > 0

    @property
    def has_frames(self) -> bool:
        return self.frames > 0

    @property
    def degraded(self) -> bool:
        """Whether a verdict for this window must run on partial input."""
        return not (self.has_imu and self.has_frames)

    @property
    def missing(self) -> tuple[str, ...]:
        """Which modalities are absent (``"imu"`` / ``"frames"``)."""
        out = []
        if not self.has_imu:
            out.append("imu")
        if not self.has_frames:
            out.append("frames")
        return tuple(out)


@dataclass
class ChaosDriveReport:
    """Everything :func:`run_chaos_drive` measured."""

    duration: float
    imu_taken: int
    imu_arrived: int
    frames_taken: int
    frames_arrived: int
    readings_quarantined: int
    windows: list[WindowHealth]
    health: dict
    agent_states: dict[str, HealthState]
    agent_transitions: dict[str, list]
    breaker_transitions: list
    breaker_location: str
    privacy_escalations: int
    privacy_relaxations: int
    final_privacy_level: str | None
    phone_sender_stats: object
    dashcam_sender_stats: object
    first_escalation_at: float | None = None
    first_shed_at: float | None = None
    harness_log: list = field(default_factory=list)

    @property
    def imu_delivery_ratio(self) -> float:
        """Fraction of polled IMU tuples that reached the controller."""
        if not self.imu_taken:
            return 0.0
        return self.imu_arrived / self.imu_taken

    @property
    def degraded_windows(self) -> int:
        return sum(1 for w in self.windows if w.degraded)

    @property
    def violations(self) -> list[str]:
        """Invariant breaches that should fail a chaos run.

        The streaming stack's contract under chaos is *degradation, not
        darkness*: any single fault may cost a modality, but no analysis
        window may end up with neither IMU nor frames — that would mean
        the retransmission/recovery machinery lost a window entirely.
        """
        out = []
        for window in self.windows:
            if not window.has_imu and not window.has_frames:
                out.append(
                    f"window [{window.start:.1f}, {window.end:.1f}) fully "
                    "dark: no modality was delivered")
        return out


def run_chaos_drive(schedule: FaultSchedule | None = None, *,
                    duration: float = 30.0, seed: int = 0,
                    window_period: float = 1.0, frame_edge: int = 32,
                    settle: float = 3.0, step: float = 0.01,
                    probe_interval: float = 0.25) -> ChaosDriveReport:
    """Run the full supervised stack through a scripted chaos drive.

    Builds a phone (4 IMU sensors, reliable uplink, heartbeats), a
    dashcam (camera, reliable bandwidth-limited uplink, adaptive privacy
    distortion), a health-supervised controller, and a placement circuit
    breaker probing the uplink — then executes ``schedule`` against all
    of it and reports recovery quality.
    """
    if schedule is None:
        schedule = standard_chaos_schedule(duration)
    if duration <= 0 or step <= 0 or window_period <= 0:
        raise ConfigurationError(
            "duration, step and window_period must be positive")
    # Lazy import: repro.core depends on repro.streaming, not vice versa.
    from repro.core.privacy import DistortionModule, PrivacyLevel

    rng = np.random.default_rng(seed)
    true_clock = VirtualClock()
    phone_clock = DriftingClock(true_clock, drift_ppm=60.0)
    dashcam_clock = DriftingClock(true_clock, drift_ppm=-40.0)

    phone_sender, phone_receiver = reliable_link(
        "phone", base_latency=0.008, jitter=0.002, drop_probability=0.02,
        rng=rng, buffer_limit=256)
    dashcam_sender, dashcam_receiver = reliable_link(
        "dashcam", base_latency=0.008, jitter=0.002, drop_probability=0.02,
        bandwidth_bps=4_000_000.0, rng=rng, buffer_limit=12)
    probe_channel = Channel("probe", base_latency=0.01, rng=rng)

    sensors = {
        "phone/accelerometer": FaultableSensor(
            accelerometer(lambda t: np.array([np.sin(t), np.cos(t), 9.81]),
                          rng=rng)),
        "phone/gyroscope": FaultableSensor(
            gyroscope(lambda t: np.array([0.1 * np.sin(2 * t), 0.0, 0.02]),
                      rng=rng)),
        "phone/gravity": FaultableSensor(
            gravity(lambda t: np.array([0.0, 0.0, 9.81]), rng=rng)),
        "phone/rotation": FaultableSensor(
            rotation(lambda t: np.array([0.0, 0.05 * np.sin(t), 0.0]),
                     rng=rng)),
    }

    def frame_fn(t: float) -> np.ndarray:
        image = rng.random((frame_edge, frame_edge)).astype(np.float32)
        image[:, int(t) % frame_edge] = 1.0
        return image

    camera = FaultableSensor(CameraSensor(frame_fn))
    sensors_cam = {"dashcam/camera": camera}

    distortion = DistortionModule(None)
    escalator = PrivacyEscalator(escalate_above=0.5, relax_below=0.2,
                                 dwell=1.0)

    phone = CollectionAgent(
        "phone", [sensors[f"phone/{n}"] for n in
                  ("accelerometer", "gyroscope", "gravity", "rotation")],
        phone_clock, phone_sender, poll_interval=0.025,
        transmit_interval=0.25, heartbeats=True)
    dashcam = CollectionAgent(
        "dashcam", [camera], dashcam_clock, dashcam_sender,
        poll_interval=0.2, transmit_interval=0.25, heartbeats=True,
        frame_transform=distortion.distort_frame)

    health = HealthRegistry(degraded_after=1.0, silent_after=3.0)
    controller = CentralizedController(true_clock, grid_period=0.25,
                                       health=health)
    controller.register_agent(phone, phone_receiver)
    controller.register_agent(dashcam, dashcam_receiver)

    breaker = PlacementCircuitBreaker(failure_threshold=3,
                                      recovery_timeout=2.0,
                                      success_threshold=2)

    harness = ChaosHarness(
        schedule,
        channels={"phone-data": phone_sender.data,
                  "phone-ack": phone_sender.ack,
                  "dashcam-data": dashcam_sender.data,
                  "dashcam-ack": dashcam_sender.ack,
                  "probe": probe_channel},
        agents={"phone": phone, "dashcam": dashcam},
        sensors={**sensors, **sensors_cam})

    first_escalation_at: float | None = None
    first_shed_at: float | None = None
    next_probe = 0.0
    steps = int(np.ceil(duration / step))
    for _ in range(steps):
        now = true_clock.advance(step)
        harness.apply(now)
        phone.step(now)
        dashcam.step(now)
        controller.step(now)
        # Placement supervision: probe the uplink path when admitted.
        if now >= next_probe:
            next_probe += probe_interval
            if breaker.allow_remote(now):
                ok = probe_channel.send("controller", "server",
                                        b"probe", now) is not None
                probe_channel.poll(now + 1.0)  # probes never accumulate
                if ok:
                    breaker.record_success(now)
                else:
                    breaker.record_failure(now)
        # Bandwidth supervision: escalate distortion under send pressure.
        level = escalator.update(dashcam_sender.pressure, now)
        distortion.level = PrivacyLevel(level) if level else None
        if first_escalation_at is None and escalator.escalations:
            first_escalation_at = now
        if first_shed_at is None and dashcam_sender.stats.shed_frames:
            first_shed_at = now
    # Liveness is judged at end-of-drive: during the settle drain below
    # every agent legitimately stops transmitting, which must not read
    # as the whole fleet going silent.
    drive_end_states = health.states()
    drive_end_transitions = {aid: health.transitions(aid)
                             for aid in ("phone", "dashcam")}
    # Settle: keep transport and controller running so retransmissions
    # land, but take no new samples (mirrors CollectionSession.run).  A
    # suspended agent's sender stays dead with it — process death must
    # not be undone by a ghost retransmission.
    for _ in range(int(np.ceil(settle / step))):
        now = true_clock.advance(step)
        harness.apply(now)
        if not phone.suspended:
            phone_sender.step(now)
        if not dashcam.suspended:
            dashcam_sender.step(now)
        controller.step(now)

    streams = controller.raw_streams()
    accel_ts = streams.get("phone/accelerometer",
                           (np.empty(0), np.empty(0)))[0]
    frame_ts = np.array([f.timestamp for f in controller.frames])
    windows = []
    edges = np.arange(0.0, duration, window_period)
    for start in edges:
        end = min(start + window_period, duration)
        windows.append(WindowHealth(
            start=float(start), end=float(end),
            imu_readings=int(np.sum((accel_ts >= start) & (accel_ts < end))),
            frames=int(np.sum((frame_ts >= start) & (frame_ts < end))),
        ))

    return ChaosDriveReport(
        duration=duration,
        imu_taken=phone.readings_taken,
        imu_arrived=controller.readings_received,
        frames_taken=dashcam.readings_taken,
        frames_arrived=controller.frames_received,
        readings_quarantined=controller.readings_quarantined,
        windows=windows,
        health=health.report(),
        agent_states=drive_end_states,
        agent_transitions=drive_end_transitions,
        breaker_transitions=list(breaker.transitions),
        breaker_location=breaker.location.value,
        privacy_escalations=escalator.escalations,
        privacy_relaxations=escalator.relaxations,
        final_privacy_level=escalator.level,
        phone_sender_stats=phone_sender.stats,
        dashcam_sender_stats=dashcam_sender.stats,
        first_escalation_at=first_escalation_at,
        first_shed_at=first_shed_at,
        harness_log=list(harness.log),
    )
