"""Data records exchanged between agents and the controller.

Records are small frozen dataclasses with dict (JSON-able) round-trips so
the framework can be used for "quickly collecting, aggregating and labeling
data" (paper §1 contribution list) with straightforward persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import StreamingError


@dataclass(frozen=True)
class SensorReading:
    """One timestamped sample from one sensor on one agent.

    Attributes:
        agent_id: originating collection agent.
        sensor: sensor name (e.g. ``"accelerometer"``).
        timestamp: the *agent's local clock* reading at sample time.
        values: the sample vector (copied, read-only).
        label: optional ground-truth behaviour label attached during
            scripted collection drives.
    """

    agent_id: str
    sensor: str
    timestamp: float
    values: tuple[float, ...]
    label: int | None = None

    @classmethod
    def create(cls, agent_id: str, sensor: str, timestamp: float,
               values: np.ndarray | list[float],
               label: int | None = None) -> "SensorReading":
        """Build a reading from any array-like sample."""
        vec = tuple(float(v) for v in np.asarray(values).ravel())
        return cls(agent_id, sensor, float(timestamp), vec, label)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able representation."""
        return {
            "agent_id": self.agent_id,
            "sensor": self.sensor,
            "timestamp": self.timestamp,
            "values": list(self.values),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SensorReading":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                agent_id=str(data["agent_id"]),
                sensor=str(data["sensor"]),
                timestamp=float(data["timestamp"]),
                values=tuple(float(v) for v in data["values"]),
                label=data.get("label"),
            )
        except KeyError as missing:
            raise StreamingError(f"reading dict missing key {missing}") from None


@dataclass(frozen=True)
class FrameRecord:
    """One camera frame with its local-clock timestamp.

    Frames carry the raw image array (HxW or HxWxC float32 in [0, 1]) plus
    the privacy level it was distorted to (``None`` = full resolution).
    """

    agent_id: str
    timestamp: float
    image: np.ndarray
    privacy_level: str | None = None
    label: int | None = None

    def __post_init__(self) -> None:
        image = np.asarray(self.image, dtype=np.float32)
        image.setflags(write=False)
        object.__setattr__(self, "image", image)

    @property
    def nbytes(self) -> int:
        """Transmission size of the frame payload in bytes."""
        return int(self.image.nbytes)


@dataclass(frozen=True)
class SyncMessage:
    """Controller -> agent clock-distribution message (master UTC)."""

    master_time: float


@dataclass
class Message:
    """Transport envelope: a payload with send/delivery bookkeeping.

    ``sent_at`` and ``delivered_at`` are *true* simulation times maintained
    by the channel; payload timestamps remain in agent-local time, which is
    exactly the skew the controller has to handle.
    """

    source: str
    destination: str
    payload: Any
    sent_at: float
    delivered_at: float | None = None
    size_bytes: int = 0
    sequence: int = field(default=0)

    @property
    def latency(self) -> float:
        """One-way delay; raises if the message is still in flight."""
        if self.delivered_at is None:
            raise StreamingError("message has not been delivered yet")
        return self.delivered_at - self.sent_at


def payload_size(payload: Any) -> int:
    """Estimate the wire size of a payload in bytes.

    Envelope types outside this module (reliability packets, heartbeats)
    expose a ``wire_size`` property instead of being special-cased here.
    """
    wire_size = getattr(payload, "wire_size", None)
    if wire_size is not None:
        return int(wire_size)
    if isinstance(payload, FrameRecord):
        return payload.nbytes + 64
    if isinstance(payload, SensorReading):
        return 8 * len(payload.values) + 64
    if isinstance(payload, SyncMessage):
        return 16
    if isinstance(payload, (list, tuple)):
        return sum(payload_size(item) for item in payload) + 16
    return 64
