"""Simulated clocks.

The data-collection framework runs inside a discrete-event simulation: a
single :class:`VirtualClock` advances simulation ("true") time, and each
device owns a :class:`DriftingClock` that maps true time to its local
reading through an offset and a drift rate.  The paper's observation that
"the system clock is highly susceptible to drift" (§4.1) is what the
re-sync protocol in :mod:`repro.streaming.sync` corrects for; this module
provides the drift to correct.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError


class VirtualClock:
    """Monotonic simulation time in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def advance(self, dt: float) -> float:
        """Advance simulation time by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance time by {dt} (< 0)")
        self._now += dt
        return self._now


class DriftingClock:
    """A device-local clock with constant drift relative to true time.

    Local reading ``= offset + (true - anchor) * (1 + drift_ppm * 1e-6)``
    where ``anchor``/``offset`` are reset by :meth:`set_time` — the agent's
    response to a sync message from the controller.

    Args:
        source: the true-time source.
        drift_ppm: drift rate in parts per million (positive = runs fast).
            Real smartphone oscillators drift on the order of 10-100 ppm.
        initial_offset: initial error of the local clock, seconds.
    """

    def __init__(self, source: VirtualClock, *, drift_ppm: float = 0.0,
                 initial_offset: float = 0.0) -> None:
        self.source = source
        self.drift_rate = 1.0 + float(drift_ppm) * 1e-6
        self._anchor_true = source.now()
        self._anchor_local = source.now() + float(initial_offset)

    def now(self) -> float:
        """Local clock reading at the current true time."""
        elapsed = self.source.now() - self._anchor_true
        return self._anchor_local + elapsed * self.drift_rate

    def set_time(self, local_time: float) -> None:
        """Force the local reading to ``local_time`` (clock-sync step)."""
        self._anchor_true = self.source.now()
        self._anchor_local = float(local_time)

    def error(self) -> float:
        """Signed error of the local reading vs. true time (seconds)."""
        return self.now() - self.source.now()
