"""Agent health supervision and sensor fault detection.

The paper's controller assumes agents keep talking; real deployments do
not get that luxury — phones die, dashcams unmount, sensors stick.  This
module gives the controller the machinery to *notice*:

* :class:`Heartbeat` records piggy-back on agent transmissions, so
  liveness costs one tiny record per batch rather than a separate
  keep-alive protocol;
* :class:`HealthRegistry` tracks per-agent liveness with explicit
  HEALTHY -> DEGRADED -> SILENT transitions (and back, on recovery);
* :class:`SensorFaultDetector` screens each sensor stream for stuck-at,
  spike, and dropout faults; a stuck sensor is *quarantined* — excluded
  from alignment — instead of poisoning the interpolation grid.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, HealthError
from repro.obs.metrics import get_registry
from repro.streaming.records import SensorReading


class HealthState(enum.Enum):
    """Liveness classification of one agent, as seen by the controller."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    SILENT = "silent"


@dataclass(frozen=True)
class Heartbeat:
    """Agent -> controller liveness record, shipped inside data batches."""

    agent_id: str
    timestamp: float
    sequence: int
    readings_taken: int = 0

    @property
    def wire_size(self) -> int:
        return 48


@dataclass
class AgentLiveness:
    """Registry entry for one supervised agent."""

    agent_id: str
    last_seen: float
    state: HealthState = HealthState.HEALTHY
    last_heartbeat: Heartbeat | None = None
    heartbeats: int = 0
    transitions: list[tuple[float, HealthState]] = field(default_factory=list)


class SensorFaultDetector:
    """Sliding-window fault screen for one sensor stream.

    Three fault classes (the classic triad for commodity IMUs):

    * **stuck-at** — the same vector repeats ``stuck_count`` times; real
      sensors carry noise, so exact repetition means a frozen driver.
    * **spike** — a sample deviates more than ``spike_sigma`` standard
      deviations from the recent window mean on any axis.
    * **dropout** — no sample for ``dropout_after`` seconds (evaluated by
      the registry, which knows wall time between arrivals).

    Args:
        window: history length for the spike statistics.
        min_history: samples required before spike screening activates.
        stuck_count: identical consecutive samples that mean "stuck".
        stuck_epsilon: per-axis tolerance for "identical".
        spike_sigma: deviation threshold in window standard deviations.
        dropout_after: silence interval that counts as a dropout.
    """

    def __init__(self, *, window: int = 64, min_history: int = 16,
                 stuck_count: int = 12, stuck_epsilon: float = 1e-9,
                 spike_sigma: float = 8.0, dropout_after: float = 1.5) -> None:
        if window < 2 or min_history < 2 or stuck_count < 2:
            raise ConfigurationError(
                "window, min_history and stuck_count must be >= 2")
        if spike_sigma <= 0 or dropout_after <= 0:
            raise ConfigurationError(
                "spike_sigma and dropout_after must be positive")
        self.window = int(window)
        self.min_history = int(min_history)
        self.stuck_count = int(stuck_count)
        self.stuck_epsilon = float(stuck_epsilon)
        self.spike_sigma = float(spike_sigma)
        self.dropout_after = float(dropout_after)
        self._history: list[np.ndarray] = []
        self._last_value: np.ndarray | None = None
        self._repeat_count = 0
        self.last_arrival: float | None = None

    def observe(self, values, now: float) -> str | None:
        """Screen one sample; returns ``"stuck"``/``"spike"`` or ``None``."""
        sample = np.asarray(values, dtype=np.float64).ravel()
        self.last_arrival = now
        if (self._last_value is not None
                and sample.shape == self._last_value.shape
                and np.all(np.abs(sample - self._last_value)
                           <= self.stuck_epsilon)):
            self._repeat_count += 1
        else:
            self._repeat_count = 0
        self._last_value = sample
        if self._repeat_count >= self.stuck_count - 1:
            return "stuck"
        fault = None
        if len(self._history) >= self.min_history:
            window = np.stack(self._history)
            std = np.maximum(window.std(axis=0), 1e-3)
            if np.any(np.abs(sample - window.mean(axis=0))
                      > self.spike_sigma * std):
                fault = "spike"
        if fault is None:
            self._history.append(sample)
            if len(self._history) > self.window:
                del self._history[0]
        return fault

    @property
    def stuck(self) -> bool:
        """Whether the most recent samples look stuck."""
        return self._repeat_count >= self.stuck_count - 1

    def dropped_out(self, now: float) -> bool:
        """Whether the stream has been silent past the dropout threshold."""
        return (self.last_arrival is not None
                and now - self.last_arrival > self.dropout_after)


class HealthRegistry:
    """Controller-side supervision of agent liveness and sensor health.

    State machine per agent, driven by the time since the last arrival
    (data *or* heartbeat):

    ``HEALTHY`` (< ``degraded_after``) -> ``DEGRADED`` (< ``silent_after``)
    -> ``SILENT``; any arrival snaps the agent straight back to HEALTHY.

    Args:
        degraded_after: silence (seconds) before an agent is DEGRADED.
        silent_after: silence before an agent is declared SILENT.
        detector_factory: builds the per-stream
            :class:`SensorFaultDetector`; ``None`` disables sensor
            screening (liveness tracking only).
    """

    def __init__(self, *, degraded_after: float = 1.0,
                 silent_after: float = 3.0,
                 detector_factory=SensorFaultDetector) -> None:
        if not 0 < degraded_after < silent_after:
            raise ConfigurationError(
                "need 0 < degraded_after < silent_after")
        self.degraded_after = float(degraded_after)
        self.silent_after = float(silent_after)
        self.detector_factory = detector_factory
        self._agents: dict[str, AgentLiveness] = {}
        self._detectors: dict[str, SensorFaultDetector] = {}
        self._quarantined: set[str] = set()
        self._ever_quarantined: set[str] = set()
        self.fault_counts: dict[str, int] = {
            "stuck": 0, "spike": 0, "dropout": 0}
        self.readings_rejected = 0
        registry = get_registry()
        self._obs_transitions = {
            state: registry.counter(
                "streaming_health_transitions_total",
                "Agent liveness transitions by target state",
                state=state.value)
            for state in HealthState
        }
        self._obs_quarantines = registry.counter(
            "streaming_sensor_quarantines_total",
            "Sensor streams quarantined by the fault screen")

    # -- registration / liveness ---------------------------------------------
    def register(self, agent_id: str, now: float) -> None:
        """Begin supervising an agent (idempotent registration is an error)."""
        if agent_id in self._agents:
            raise HealthError(f"agent {agent_id!r} already supervised")
        self._agents[agent_id] = AgentLiveness(agent_id, last_seen=now)

    def record_activity(self, agent_id: str, now: float) -> None:
        """Note any arrival from an agent; recovers DEGRADED/SILENT agents."""
        liveness = self._liveness(agent_id)
        liveness.last_seen = max(liveness.last_seen, now)
        self._set_state(liveness, HealthState.HEALTHY, now)

    def record_heartbeat(self, heartbeat: Heartbeat, now: float) -> None:
        """Ingest a piggy-backed heartbeat."""
        liveness = self._liveness(heartbeat.agent_id)
        liveness.last_heartbeat = heartbeat
        liveness.heartbeats += 1
        self.record_activity(heartbeat.agent_id, now)

    def step(self, now: float) -> list[tuple[str, HealthState]]:
        """Re-evaluate every agent's state; returns new transitions."""
        changed: list[tuple[str, HealthState]] = []
        for liveness in self._agents.values():
            silence = now - liveness.last_seen
            if silence >= self.silent_after:
                target = HealthState.SILENT
            elif silence >= self.degraded_after:
                target = HealthState.DEGRADED
            else:
                target = HealthState.HEALTHY
            if self._set_state(liveness, target, now):
                changed.append((liveness.agent_id, target))
        for stream, detector in self._detectors.items():
            # A dropout is a *sensor* fault: only diagnose it while the
            # owning agent is demonstrably alive, otherwise network-level
            # silence (a blackout) would masquerade as dead sensors.
            owner = self._agents.get(stream.split("/", 1)[0])
            if owner is not None and owner.state is not HealthState.HEALTHY:
                continue
            if detector.dropped_out(now):
                if stream not in self._quarantined:
                    self.fault_counts["dropout"] += 1
                    self._quarantine(stream)
        return changed

    # -- sensor screening ----------------------------------------------------
    def observe_reading(self, reading: SensorReading, now: float) -> bool:
        """Screen one reading; returns ``False`` if it must be discarded."""
        self.record_activity(reading.agent_id, now)
        if self.detector_factory is None:
            return True
        stream = f"{reading.agent_id}/{reading.sensor}"
        detector = self._detectors.get(stream)
        if detector is None:
            detector = self._detectors[stream] = self.detector_factory()
        fault = detector.observe(reading.values, now)
        if fault == "stuck":
            if stream not in self._quarantined:
                self.fault_counts["stuck"] += 1
                self._quarantine(stream)
            self.readings_rejected += 1
            return False
        # A healthy sample from a quarantined stream releases it (the
        # stream had stuck or dropped out; it is now live and varying).
        if stream in self._quarantined:
            self._quarantined.discard(stream)
        if fault == "spike":
            self.fault_counts["spike"] += 1
            self.readings_rejected += 1
            return False
        return True

    # -- queries -------------------------------------------------------------
    def state(self, agent_id: str) -> HealthState:
        """Current liveness state of one agent."""
        return self._liveness(agent_id).state

    def states(self) -> dict[str, HealthState]:
        """Current state of every supervised agent."""
        return {aid: live.state for aid, live in self._agents.items()}

    def transitions(self, agent_id: str) -> list[tuple[float, HealthState]]:
        """Timestamped state transitions for one agent."""
        return list(self._liveness(agent_id).transitions)

    def quarantined(self) -> set[str]:
        """Streams currently excluded from alignment (``agent/sensor``)."""
        return set(self._quarantined)

    def ever_quarantined(self) -> set[str]:
        """Streams quarantined at any point in the session."""
        return set(self._ever_quarantined)

    def report(self) -> dict:
        """Summary for dashboards and the chaos harness."""
        return {
            "states": {aid: live.state.value
                       for aid, live in self._agents.items()},
            "heartbeats": {aid: live.heartbeats
                           for aid, live in self._agents.items()},
            "quarantined": sorted(self._quarantined),
            "ever_quarantined": sorted(self._ever_quarantined),
            "fault_counts": dict(self.fault_counts),
            "readings_rejected": self.readings_rejected,
        }

    # -- internals -----------------------------------------------------------
    def _liveness(self, agent_id: str) -> AgentLiveness:
        try:
            return self._agents[agent_id]
        except KeyError:
            raise HealthError(f"agent {agent_id!r} is not supervised") from None

    def _set_state(self, liveness: AgentLiveness, target: HealthState,
                   now: float) -> bool:
        if liveness.state is target:
            return False
        liveness.state = target
        liveness.transitions.append((now, target))
        self._obs_transitions[target].inc()
        return True

    def _quarantine(self, stream: str) -> None:
        if stream not in self._quarantined:
            self._obs_quarantines.inc()
        self._quarantined.add(stream)
        self._ever_quarantined.add(stream)
