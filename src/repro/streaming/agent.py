"""Collection agents.

An agent "periodically polls the device's sensor, maintains an internal
clock for timestamping the data, and transmits the data to the centralized
controller at a specified frequency" (paper §3.1).  Poll and transmit
periods are independent: the agent buffers readings between transmissions
and ships them as a batch, which is what creates the interleaving the
controller must untangle.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import AgentError, ConfigurationError
from repro.streaming.clock import DriftingClock
from repro.streaming.health import Heartbeat
from repro.streaming.records import FrameRecord, SensorReading, SyncMessage
from repro.streaming.sensors import CameraSensor
from repro.streaming.transport import Channel


class CollectionAgent:
    """One IoT device: sensors + local clock + uplink to the controller.

    Args:
        agent_id: unique device name (e.g. ``"phone"``, ``"dashcam"``).
        sensors: sensors this agent polls each cycle.
        clock: the device's drifting local clock.
        channel: uplink to the controller.
        poll_interval: seconds between sensor polls (paper: 25 ms).
        transmit_interval: seconds between batch transmissions.
        label_fn: optional ``true_time -> int`` ground-truth labeller used
            during scripted collection drives.
        frame_transform: optional device-side hook applied to each
            :class:`FrameRecord` *before* it is buffered for transmission
            — this is where the privacy distortion module runs ("the
            distortion module down samples the video according to
            user-specified preference", paper §4.3), so downsampled
            frames genuinely cost less bandwidth on the uplink.
        heartbeats: when true, a :class:`~repro.streaming.health.Heartbeat`
            rides in every transmitted batch (and empty transmit slots send
            a lone heartbeat), so the controller's health registry can
            distinguish "no data" from "agent dead".
    """

    def __init__(self, agent_id: str, sensors: list, clock: DriftingClock,
                 channel: Channel, *, poll_interval: float = 0.025,
                 transmit_interval: float = 0.25,
                 label_fn: Callable[[float], int] | None = None,
                 frame_transform: Callable[[FrameRecord], FrameRecord] | None = None,
                 heartbeats: bool = False) -> None:
        if poll_interval <= 0 or transmit_interval <= 0:
            raise ConfigurationError("poll/transmit intervals must be positive")
        if not sensors:
            raise AgentError(f"agent {agent_id!r} has no sensors")
        self.agent_id = agent_id
        self.sensors = list(sensors)
        self.clock = clock
        self.channel = channel
        self.poll_interval = float(poll_interval)
        self.transmit_interval = float(transmit_interval)
        self.label_fn = label_fn
        self.frame_transform = frame_transform
        self.heartbeats = bool(heartbeats)
        self.suspended = False
        self._buffer: list = []
        self._next_poll = 0.0
        self._next_transmit = 0.0
        self._heartbeat_sequence = 0
        self.readings_taken = 0
        self.batches_sent = 0

    # -- simulation hooks ---------------------------------------------------
    def step(self, true_time: float) -> None:
        """Advance the agent: poll and/or transmit if their periods elapsed."""
        if self.suspended:
            return
        while self._next_poll <= true_time:
            self._poll(self._next_poll)
            self._next_poll += self.poll_interval
        while self._next_transmit <= true_time:
            self._transmit(self._next_transmit)
            self._next_transmit += self.transmit_interval
        transport_step = getattr(self.channel, "step", None)
        if transport_step is not None:
            transport_step(true_time)

    def fast_forward(self, true_time: float) -> None:
        """Skip missed poll/transmit slots (e.g. when resuming from a
        suspension) instead of back-filling them with stale samples."""
        while self._next_poll <= true_time:
            self._next_poll += self.poll_interval
        while self._next_transmit <= true_time:
            self._next_transmit += self.transmit_interval

    def _poll(self, true_time: float) -> None:
        local_ts = self.clock.now()
        label = self.label_fn(true_time) if self.label_fn else None
        polled = 0
        for sensor in self.sensors:
            sample = sensor.sample(true_time)
            if sample is None:  # sensor dropout: no reading this cycle
                continue
            # Unwrap chaos-harness wrappers when deciding the record type.
            if isinstance(getattr(sensor, "inner", sensor), CameraSensor):
                record = FrameRecord(agent_id=self.agent_id,
                                     timestamp=local_ts, image=sample,
                                     label=label)
                if self.frame_transform is not None:
                    record = self.frame_transform(record)
            else:
                record = SensorReading.create(self.agent_id, sensor.name,
                                              local_ts, sample, label)
            self._buffer.append(record)
            polled += 1
        self.readings_taken += polled

    def _transmit(self, true_time: float) -> None:
        if not self._buffer and not self.heartbeats:
            return
        batch = self._buffer
        self._buffer = []
        if self.heartbeats:
            self._heartbeat_sequence += 1
            batch.append(Heartbeat(agent_id=self.agent_id,
                                   timestamp=self.clock.now(),
                                   sequence=self._heartbeat_sequence,
                                   readings_taken=self.readings_taken))
        self.channel.send(self.agent_id, "controller", batch, true_time)
        self.batches_sent += 1

    # -- clock synchronization ---------------------------------------------
    def handle_sync(self, message: SyncMessage,
                    estimated_latency: float) -> None:
        """Apply a controller sync: set local clock to master + latency.

        "The agent sets its own clock to the master's UTC, plus the
        empirically measured network delay" (paper §4.1).
        """
        self.clock.set_time(message.master_time + estimated_latency)

    @property
    def buffered(self) -> int:
        """Readings waiting for the next transmission."""
        return len(self._buffer)


def scripted_labeller(script: list[tuple[float, float, int]]
                      ) -> Callable[[float], int]:
    """Build a label function from ``(start, end, class)`` segments.

    Mirrors the paper's collection protocol where a passenger instructs the
    driver to perform scripted 15-second distractions.  Times outside every
    segment label as class 0 (normal driving).
    """
    segments = sorted(script)
    for (s0, e0, _), (s1, _, _) in zip(segments, segments[1:]):
        if s1 < e0:
            raise ConfigurationError("script segments overlap")

    def label(true_time: float) -> int:
        for start, end, cls in segments:
            if start <= true_time < end:
                return cls
        return 0

    return label
