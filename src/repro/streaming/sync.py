"""Master–slave clock-distribution protocol.

"The controller maintains a system time and pushes this time to each agent.
Whenever an agent receives an updated system time, the agent will update
its own clock to reflect that of the controller's, plus an additional
constant to account for network latency.  This protocol is set to run
periodically in order to account for internal clock drift." (paper §3.2;
§4.1 fixes the period at 5 seconds.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.obs.metrics import get_registry
from repro.streaming.agent import CollectionAgent
from repro.streaming.records import SyncMessage
from repro.streaming.transport import Channel

#: Re-sync period used by the paper's implementation (§4.1).
DEFAULT_SYNC_INTERVAL = 5.0


@dataclass
class SyncStats:
    """Diagnostics for one agent's synchronization history."""

    syncs_sent: int = 0
    syncs_applied: int = 0
    errors_after_sync: list[float] = field(default_factory=list)


class ClockSynchronizer:
    """Drives periodic clock distribution from the controller to one agent.

    Args:
        agent: the slave whose clock is corrected.
        downlink: controller -> agent channel carrying sync messages.
        sync_interval: seconds between pushes (paper default: 5 s).
        latency_estimate: the "empirically measured network delay" added by
            the agent on receipt.  Defaults to the downlink's base latency,
            i.e. a perfect measurement of the deterministic component —
            jitter remains as residual sync error, exactly as in a real
            deployment.
    """

    def __init__(self, agent: CollectionAgent, downlink: Channel, *,
                 sync_interval: float = DEFAULT_SYNC_INTERVAL,
                 latency_estimate: float | None = None) -> None:
        if sync_interval <= 0:
            raise ConfigurationError("sync interval must be positive")
        self.agent = agent
        self.downlink = downlink
        self.sync_interval = float(sync_interval)
        self.latency_estimate = (
            downlink.base_latency if latency_estimate is None
            else float(latency_estimate)
        )
        self.stats = SyncStats()
        self._next_sync = 0.0
        registry = get_registry()
        self._obs_error = registry.gauge(
            "streaming_clock_error_seconds",
            "Signed residual clock error after the latest sync",
            agent=agent.agent_id)
        self._obs_worst = registry.gauge(
            "streaming_clock_worst_error_seconds",
            "Largest absolute post-sync clock error seen",
            agent=agent.agent_id)
        self._obs_syncs = registry.counter(
            "streaming_clock_syncs_applied_total",
            "Sync messages the agent applied", agent=agent.agent_id)

    def step(self, true_time: float, master_time: float) -> None:
        """Push a sync if due, then deliver any pending syncs to the agent.

        Args:
            true_time: current simulation time.
            master_time: the controller's current clock reading (its UTC).
        """
        while self._next_sync <= true_time:
            self.downlink.send("controller", self.agent.agent_id,
                               SyncMessage(master_time=master_time),
                               self._next_sync)
            self.stats.syncs_sent += 1
            self._next_sync += self.sync_interval
        for message in self.downlink.poll(true_time):
            if isinstance(message.payload, SyncMessage):
                self.agent.handle_sync(message.payload, self.latency_estimate)
                self.stats.syncs_applied += 1
                error = self.agent.clock.error()
                self.stats.errors_after_sync.append(error)
                self._obs_syncs.inc()
                self._obs_error.set(error)
                self._obs_worst.set_max(abs(error))

    def worst_residual_error(self) -> float:
        """Largest absolute post-sync error seen so far (0 if never synced)."""
        if not self.stats.errors_after_sync:
            return 0.0
        return max(abs(err) for err in self.stats.errors_after_sync)
