"""Paper-vs-measured report formatting for the benchmark harness."""

from __future__ import annotations

import numpy as np

from repro.datasets.classes import behavior_names
from repro.experiments.config import (
    PAPER_IMU_ONLY,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.nn.metrics import format_confusion


def _row(label: str, paper: float, measured: float) -> str:
    delta = measured - paper
    return (f"  {label:<12} paper={paper * 100:6.2f}%   "
            f"measured={measured * 100:6.2f}%   delta={delta * 100:+6.2f}")


def format_table2(result) -> str:
    """Side-by-side Table 2 report (plus the §5.2 IMU-only numbers)."""
    lines = ["Table 2 — Ensemble model Top-1 classification"]
    for arch in ("cnn+rnn", "cnn+svm", "cnn"):
        lines.append(_row(arch.upper(), PAPER_TABLE2[arch],
                          result.results[arch].top1))
    lines.append("IMU-sequence-only (paper §5.2)")
    for model in ("rnn", "svm"):
        if model in result.imu_only:
            lines.append(_row(model.upper(), PAPER_IMU_ONLY[model],
                              result.imu_only[model]))
    return "\n".join(lines)


def format_table3(result) -> str:
    """Side-by-side Table 3 report."""
    from repro.core.privacy import PrivacyLevel
    lines = ["Table 3 — CNN and dCNN Top-1 (18-class alternative dataset)"]
    lines.append(_row("CNN", PAPER_TABLE3["cnn"], result.cnn_top1))
    for level in PrivacyLevel:
        lines.append(_row(level.model_name, PAPER_TABLE3[level.model_name],
                          result.dcnn_top1[level]))
    return "\n".join(lines)


def format_fig5(result) -> str:
    """The three Figure-5 confusion matrices plus the paper's shape checks."""
    lines = []
    for arch, title in (("cnn+rnn", "(a) CNN+RNN (DarNet)"),
                        ("cnn+svm", "(b) CNN+SVM"),
                        ("cnn", "(c) CNN (frame data only)")):
        lines.append(f"Figure 5 {title} — row-normalized confusion")
        lines.append(format_confusion(result.results[arch].confusion,
                                      behavior_names()))
        lines.append("")
    texting = 2
    cnn_conf = result.results["cnn"].confusion
    ens_conf = result.results["cnn+rnn"].confusion
    cnn_texting = cnn_conf[texting, texting] / max(cnn_conf[texting].sum(), 1)
    ens_texting = ens_conf[texting, texting] / max(ens_conf[texting].sum(), 1)
    lines.append("Shape checks (paper §5.2):")
    lines.append(f"  CNN texting accuracy      paper=36.0%  "
                 f"measured={cnn_texting * 100:5.1f}%")
    lines.append(f"  Ensemble texting accuracy paper=87.0%  "
                 f"measured={ens_texting * 100:5.1f}%")
    reaching = 5
    talking = 1
    reach_talk = (ens_conf[reaching, talking]
                  / max(ens_conf[reaching].sum(), 1))
    lines.append(f"  Ensemble reaching->talking paper=~5%   "
                 f"measured={reach_talk * 100:5.1f}%")
    return "\n".join(lines)


def format_table1(result) -> str:
    """Collected-dataset inventory shaped like Table 1."""
    lines = [f"{'Class':>5}  {'Description':<17} {'Data Types':<12} "
             f"{'Frames':>7} {'IMU pts':>8}"]
    from repro.datasets.classes import DrivingBehavior, to_imu_class
    for behavior in DrivingBehavior:
        has_imu = (to_imu_class(behavior) != 0
                   or behavior == DrivingBehavior.NORMAL)
        data_types = "Image, IMU" if has_imu else "Image, --"
        lines.append(
            f"{behavior.paper_id:>5}  {behavior.display_name:<17} "
            f"{data_types:<12} {result.frame_counts[behavior]:>7} "
            f"{result.imu_reading_counts[behavior]:>8}")
    lines.append(f"Collection health: worst clock error "
                 f"{result.worst_clock_error * 1000:.1f} ms, "
                 f"mean uplink latency "
                 f"{result.mean_channel_latency * 1000:.1f} ms")
    return "\n".join(lines)


def ascii_frame(frame: np.ndarray, width: int = 32) -> str:
    """Render a grayscale frame as ASCII art (Figure-4 visualization)."""
    frame = np.asarray(frame, dtype=np.float64)
    h, w = frame.shape
    step = max(1, w // width)
    small_h = frame[::step * 2, ::step]
    chars = " .:-=+*#%@"
    rows = []
    for row in small_h:
        rows.append("".join(chars[min(int(v * 9.99), 9)] for v in row))
    return "\n".join(rows)
