"""Experiment runners reproducing every table and figure of the paper."""

from repro.experiments.config import (
    DEFAULT,
    FULL,
    PAPER_DATA_REDUCTION,
    PAPER_FIG5_NOTES,
    PAPER_IMU_ONLY,
    PAPER_TABLE2,
    PAPER_TABLE3,
    SMOKE,
    ExperimentScale,
    get_scale,
)
from repro.experiments.runners import (
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Table1Result,
    Table2Result,
    Table3Result,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1,
    run_table2,
    run_table3,
)
from repro.experiments.reporting import (
    ascii_frame,
    format_fig5,
    format_table1,
    format_table2,
    format_table3,
)

__all__ = [
    "ExperimentScale", "SMOKE", "DEFAULT", "FULL", "get_scale",
    "PAPER_TABLE2", "PAPER_TABLE3", "PAPER_IMU_ONLY", "PAPER_FIG5_NOTES",
    "PAPER_DATA_REDUCTION", "run_table1", "run_table2", "run_table3",
    "run_fig2", "run_fig3", "run_fig4", "Table1Result", "Table2Result",
    "Table3Result", "Fig2Result", "Fig3Result", "Fig4Result",
    "format_table1", "format_table2", "format_table3", "format_fig5",
    "ascii_frame",
]
