"""Experiment scales and the paper's reference numbers.

Every table/figure runner takes an :class:`ExperimentScale` so the same
code serves three audiences: the test suite (``SMOKE`` — seconds), the
benchmark harness (``DEFAULT`` — minutes, reproduces the paper's shape),
and overnight validation (``FULL``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that trade fidelity for wall-clock time."""

    name: str
    dataset_samples: int          # Table-2 paired dataset size
    alt_samples_per_class: int    # Table-3 dataset size (x18 classes)
    cnn_epochs: int
    rnn_epochs: int
    distill_epochs: int
    cnn_width: float
    drives_per_driver: int        # Table-1 collection repetitions
    num_drivers: int
    segment_seconds: float


SMOKE = ExperimentScale(
    name="smoke", dataset_samples=120, alt_samples_per_class=6,
    cnn_epochs=2, rnn_epochs=3, distill_epochs=2, cnn_width=0.5,
    drives_per_driver=1, num_drivers=2, segment_seconds=6.0,
)

DEFAULT = ExperimentScale(
    name="default", dataset_samples=1200, alt_samples_per_class=40,
    cnn_epochs=18, rnn_epochs=40, distill_epochs=15, cnn_width=1.0,
    drives_per_driver=1, num_drivers=5, segment_seconds=15.0,
)

FULL = ExperimentScale(
    name="full", dataset_samples=3000, alt_samples_per_class=80,
    cnn_epochs=25, rnn_epochs=60, distill_epochs=20, cnn_width=1.0,
    drives_per_driver=2, num_drivers=5, segment_seconds=15.0,
)

_SCALES = {scale.name: scale for scale in (SMOKE, DEFAULT, FULL)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


# ---------------------------------------------------------------------------
# Reference numbers from the paper, for side-by-side reporting.
# ---------------------------------------------------------------------------

#: Table 2 — ensemble Top-1 classification on the collected dataset.
PAPER_TABLE2 = {"cnn+rnn": 0.8702, "cnn+svm": 0.8623, "cnn": 0.7388}

#: §5.2 — IMU-sequence-only accuracy.
PAPER_IMU_ONLY = {"rnn": 0.9744, "svm": 0.9537}

#: Table 3 — CNN and dCNN Top-1 on the 18-class alternative dataset.
PAPER_TABLE3 = {"cnn": 0.7887, "dCNN-L": 0.8000, "dCNN-M": 0.7778,
                "dCNN-H": 0.6313}

#: §5.2 — per-class notes used as shape checks for Figure 5.
PAPER_FIG5_NOTES = {
    "cnn_texting": 0.36,     # "classification accuracy of 36.0% for texting"
    "ensemble_texting": 0.87,  # "whereas the CNN+RNN produces ... 87.0%"
    "ensemble_reaching_as_talking": 0.05,  # "~5%" talking misclassification
}

#: §4.3 — data-reduction factors at the paper's 300x300 resolution.
PAPER_DATA_REDUCTION = {"low": 9.0, "medium": 25.0, "high": 144.0}
