"""Experiment runners: one function per paper table/figure.

Runners are deterministic in ``(scale, seed)`` and return plain dataclasses
the benchmark harness formats.  Heavy artifacts (trained models, datasets)
are returned too so downstream benches can time inference without
retraining.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cnn import CnnConfig, DriverFrameCNN
from repro.core.darnet import DriveScript, run_collection_drive
from repro.core.distillation import DenoisingCNN, DistillationConfig
from repro.core.ensemble import DarNetEnsemble, EnsembleResult
from repro.core.privacy import PrivacyLevel
from repro.core.rnn import RnnConfig
from repro.datasets.alternative import (
    AlternativeDataset,
    NUM_ALTERNATIVE_CLASSES,
    generate_alternative_dataset,
)
from repro.datasets.classes import DrivingBehavior
from repro.datasets.dataset import DrivingDataset, generate_driving_dataset
from repro.experiments.config import DEFAULT, ExperimentScale
from repro.streaming.pipeline import SessionConfig


# ---------------------------------------------------------------------------
# Table 1 — dataset collection through the streaming framework
# ---------------------------------------------------------------------------

@dataclass
class Table1Result:
    """Collection statistics per behaviour class."""

    frame_counts: dict[DrivingBehavior, int]
    imu_reading_counts: dict[DrivingBehavior, int]
    total_readings: int
    total_frames: int
    worst_clock_error: float
    mean_channel_latency: float


def run_table1(scale: ExperimentScale = DEFAULT, *, seed: int = 0
               ) -> Table1Result:
    """Collect a Table-1-style dataset via scripted drives.

    Every driver executes the scripted distraction drive
    ``drives_per_driver`` times through the full agent/controller stack.
    """
    rng = np.random.default_rng(seed)
    frame_counts = {behavior: 0 for behavior in DrivingBehavior}
    imu_counts = {behavior: 0 for behavior in DrivingBehavior}
    total_readings = 0
    total_frames = 0
    worst_clock = 0.0
    latencies: list[float] = []
    config = SessionConfig()
    for driver in range(scale.num_drivers):
        for _ in range(scale.drives_per_driver):
            script = DriveScript.standard(
                segment_seconds=scale.segment_seconds)
            result = run_collection_drive(script, driver_id=driver,
                                          config=config, rng=rng)
            for frame in result.frames:
                if frame.label is not None:
                    frame_counts[DrivingBehavior(frame.label)] += 1
            for label in result.imu_labels:
                if label >= 0:
                    imu_counts[DrivingBehavior(int(label))] += 1
            controller = result.controller
            total_readings += controller.readings_received
            total_frames += controller.frames_received
            report = controller.sync_report()
            worst_clock = max(worst_clock, *report.values())
            for registered in controller._agents.values():
                latencies.extend(registered.uplink.stats.latencies)
    return Table1Result(
        frame_counts=frame_counts,
        imu_reading_counts=imu_counts,
        total_readings=total_readings,
        total_frames=total_frames,
        worst_clock_error=worst_clock,
        mean_channel_latency=float(np.mean(latencies)) if latencies else 0.0,
    )


# ---------------------------------------------------------------------------
# Table 2 + Figure 5 — the three-architecture comparison
# ---------------------------------------------------------------------------

@dataclass
class Table2Result:
    """Everything the Table-2 / Figure-5 benches report."""

    results: dict[str, EnsembleResult]       # per architecture
    imu_only: dict[str, float]               # rnn / svm IMU accuracy
    train: DrivingDataset
    evaluation: DrivingDataset
    ensembles: dict[str, DarNetEnsemble]
    train_seconds: dict[str, float] = field(default_factory=dict)


def run_table2(scale: ExperimentScale = DEFAULT, *, seed: int = 0,
               pretrain_cnn: bool = False, verbose: bool = False
               ) -> Table2Result:
    """Train and evaluate CNN+RNN, CNN+SVM, and CNN-only architectures.

    The CNN is trained once and shared by all three architectures, exactly
    as the paper evaluates one frame model against different IMU partners.
    """
    rng = np.random.default_rng(seed)
    dataset = generate_driving_dataset(scale.dataset_samples,
                                       num_drivers=scale.num_drivers,
                                       rng=rng)
    train, evaluation = dataset.train_eval_split(rng=rng)
    cnn_config = CnnConfig(epochs=scale.cnn_epochs, width=scale.cnn_width)
    rnn_config = RnnConfig(epochs=scale.rnn_epochs)
    cnn = DriverFrameCNN(cnn_config, rng=np.random.default_rng(seed + 1))
    timings: dict[str, float] = {}
    start = time.perf_counter()
    if pretrain_cnn:
        cnn.pretrain(verbose=verbose)
    cnn.fit(train.images, train.labels, verbose=verbose)
    timings["cnn_training"] = time.perf_counter() - start
    results: dict[str, EnsembleResult] = {}
    ensembles: dict[str, DarNetEnsemble] = {}
    imu_only: dict[str, float] = {}
    for architecture in ("cnn+rnn", "cnn+svm", "cnn"):
        ensemble = DarNetEnsemble(
            architecture, cnn=cnn, rnn_config=rnn_config,
            rng=np.random.default_rng(seed + 2))
        start = time.perf_counter()
        ensemble.fit(train, train_cnn=False, verbose=verbose)
        timings[architecture] = time.perf_counter() - start
        outcome = ensemble.evaluate(evaluation)
        results[architecture] = outcome
        ensembles[architecture] = ensemble
        if outcome.imu_top1 is not None:
            key = "rnn" if architecture == "cnn+rnn" else "svm"
            imu_only[key] = outcome.imu_top1
    return Table2Result(results=results, imu_only=imu_only, train=train,
                        evaluation=evaluation, ensembles=ensembles,
                        train_seconds=timings)


# ---------------------------------------------------------------------------
# Table 3 — privacy-preserving dCNN study
# ---------------------------------------------------------------------------

@dataclass
class Table3Result:
    """Teacher and per-level student accuracy on the 18-class dataset."""

    cnn_top1: float
    dcnn_top1: dict[PrivacyLevel, float]
    teacher: DriverFrameCNN
    students: dict[PrivacyLevel, DenoisingCNN]
    train: AlternativeDataset
    evaluation: AlternativeDataset


def run_table3(scale: ExperimentScale = DEFAULT, *, seed: int = 0,
               init_from_teacher: bool = True, pretrain_teacher: bool = True,
               verbose: bool = False) -> Table3Result:
    """Train the 18-class teacher CNN, distill a dCNN per privacy level.

    The teacher fine-tunes from the generic-shapes checkpoint by default —
    the paper's Inception-V3 started from the ILSVRC-2012 weights (§4.2),
    and from-scratch training on the 18-way task is seed-unstable.
    """
    rng = np.random.default_rng(seed)
    dataset = generate_alternative_dataset(scale.alt_samples_per_class,
                                           rng=rng)
    train, evaluation = dataset.train_eval_split(rng=rng)
    teacher = DriverFrameCNN(
        CnnConfig(num_classes=NUM_ALTERNATIVE_CLASSES,
                  epochs=scale.cnn_epochs, width=scale.cnn_width),
        rng=np.random.default_rng(seed + 1))
    if pretrain_teacher:
        teacher.pretrain(verbose=verbose)
    teacher.fit(train.images, train.labels, verbose=verbose)
    cnn_top1 = teacher.evaluate(evaluation.images, evaluation.labels)
    config = DistillationConfig(epochs=scale.distill_epochs,
                                init_from_teacher=init_from_teacher)
    students: dict[PrivacyLevel, DenoisingCNN] = {}
    dcnn_top1: dict[PrivacyLevel, float] = {}
    for level in PrivacyLevel:
        student = DenoisingCNN(teacher, level, config=config,
                               rng=np.random.default_rng(seed + 2))
        student.distill(train.images, verbose=verbose)
        students[level] = student
        dcnn_top1[level] = student.evaluate(evaluation.images,
                                            evaluation.labels)
    return Table3Result(cnn_top1=cnn_top1, dcnn_top1=dcnn_top1,
                        teacher=teacher, students=students, train=train,
                        evaluation=evaluation)


# ---------------------------------------------------------------------------
# Figure 3 — bandwidth per privacy path
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    """Per-level frame sizes and measured channel usage."""

    full_edge: int
    bytes_per_frame: dict[str, int]          # level name -> payload bytes
    reduction: dict[str, float]              # level name -> measured factor
    paper_reduction: dict[str, float]        # at the paper's 300px divisors
    transfer_seconds: dict[str, float]       # per frame on the sim channel


def run_fig3(*, full_edge: int = 64, bandwidth_bps: float = 2_000_000.0,
             seed: int = 0) -> Fig3Result:
    """Measure per-level transmission cost through the simulated channel."""
    from repro.core.privacy import DistortionModule, PAPER_EDGE_DIVISORS
    from repro.streaming.records import FrameRecord, payload_size
    from repro.streaming.transport import Channel

    rng = np.random.default_rng(seed)
    frame = rng.random((full_edge, full_edge), dtype=np.float64).astype("float32")
    bytes_per_frame: dict[str, int] = {}
    reduction: dict[str, float] = {}
    paper_reduction: dict[str, float] = {}
    transfer: dict[str, float] = {}
    levels: list[PrivacyLevel | None] = [None, *PrivacyLevel]
    full_bytes = None
    for level in levels:
        module = DistortionModule(level)
        record = FrameRecord("dashcam", 0.0, module.distort(frame),
                             privacy_level=None if level is None
                             else level.value)
        name = "full" if level is None else level.value
        size = payload_size(record)
        bytes_per_frame[name] = size
        if level is None:
            full_bytes = size
        channel = Channel("uplink", base_latency=0.005,
                          bandwidth_bps=bandwidth_bps, rng=rng)
        transfer[name] = channel.transit_delay(size)
        if level is not None:
            reduction[name] = full_bytes / size
            divisor = PAPER_EDGE_DIVISORS[level]
            paper_reduction[name] = float(divisor * divisor)
    return Fig3Result(full_edge=full_edge, bytes_per_frame=bytes_per_frame,
                      reduction=reduction, paper_reduction=paper_reduction,
                      transfer_seconds=transfer)


# ---------------------------------------------------------------------------
# Figure 4 — visual distortion levels
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    """One frame rendered at every distortion level with quality metrics."""

    frames: dict[str, np.ndarray]     # level name -> restored frame
    edges: dict[str, int]             # level name -> downsampled edge px
    psnr: dict[str, float]            # vs. the undistorted frame


def run_fig4(*, seed: int = 0, full_edge: int = 64) -> Fig4Result:
    """Render the paper's Figure-4 strip: clean frame + 3 distortions."""
    from repro.core.privacy import distort_restore
    from repro.datasets.image_synth import DriverAppearance, SceneRenderer

    rng = np.random.default_rng(seed)
    renderer = SceneRenderer(DriverAppearance.sample(0, rng), size=full_edge)
    clean = renderer.render(DrivingBehavior.TEXTING, rng=rng)
    frames = {"full": clean}
    edges = {"full": full_edge}
    psnr = {}
    for level in PrivacyLevel:
        restored = distort_restore(clean[None, None], level)[0, 0]
        frames[level.value] = restored
        edges[level.value] = level.target_edge(full_edge)
        mse = float(np.mean((clean - restored) ** 2))
        psnr[level.value] = float(10.0 * np.log10(1.0 / max(mse, 1e-12)))
    return Fig4Result(frames=frames, edges=edges, psnr=psnr)


# ---------------------------------------------------------------------------
# Figure 2 — end-to-end system characterization
# ---------------------------------------------------------------------------

@dataclass
class Fig2Result:
    """Collection-pipeline characterization for one scripted drive."""

    duration: float
    readings_received: int
    frames_received: int
    grid_steps: int
    worst_clock_error: float
    mean_latency: float
    delivery_ratio: float
    wall_seconds: float


def run_fig2(*, seed: int = 0, segment_seconds: float = 10.0,
             drop_probability: float = 0.0) -> Fig2Result:
    """Run one drive end-to-end and report pipeline health metrics."""
    rng = np.random.default_rng(seed)
    script = DriveScript.standard(
        [DrivingBehavior.NORMAL, DrivingBehavior.TALKING,
         DrivingBehavior.TEXTING],
        segment_seconds=segment_seconds)
    config = SessionConfig(channel_drop=drop_probability)
    start = time.perf_counter()
    result = run_collection_drive(script, config=config, rng=rng)
    wall = time.perf_counter() - start
    controller = result.controller
    latencies = []
    sent = 0
    delivered = 0
    for registered in controller._agents.values():
        stats = registered.uplink.stats
        latencies.extend(stats.latencies)
        sent += stats.sent
        delivered += stats.delivered
    return Fig2Result(
        duration=result.duration,
        readings_received=controller.readings_received,
        frames_received=controller.frames_received,
        grid_steps=int(result.grid.shape[0]),
        worst_clock_error=max(controller.sync_report().values()),
        mean_latency=float(np.mean(latencies)) if latencies else 0.0,
        delivery_ratio=delivered / max(sent, 1),
        wall_seconds=wall,
    )
