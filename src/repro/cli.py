"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands mirror the system's lifecycle:

* ``collect``   — run scripted collection drives and save the data.
* ``train``     — train an ensemble and save it with the model store.
* ``evaluate``  — evaluate a saved ensemble on fresh synthetic data.
* ``reproduce`` — run a paper table/figure experiment and print the
  paper-vs-measured report.
* ``chaos``     — run the scripted fault-injection drive and print the
  fault-tolerance report; ``--serving`` runs the serving-tier scenario
  (shard kills, executor hangs, sink blackhole, journal disk full)
  against the shard supervisor, and ``--edge`` runs the edge-fleet
  scenario (uplink blackhole, corrupt OTA artifact, mid-download kill,
  sabotaged canary) against on-device agents.  All modes exit non-zero
  when a chaos invariant is violated, so CI can gate on them.
* ``edge``      — run the edge agent fleet; ``--drive`` replays a clean
  (fault-free) drive through on-device inference, the upload spool and
  the full OTA lifecycle, and prints the fleet report.
* ``serve``     — run the micro-batched inference server; ``--replay``
  pushes N concurrent scripted drives through it and prints a
  throughput/latency report plus the metrics snapshot and a sample
  request trace (``--metrics-out`` saves the snapshot as JSON);
  ``--scenario spec.json`` replays a declarative scenario instead of
  the default sweep.
* ``scenario``  — validate/summarize a scenario spec, bootstrap one
  with ``--init``, or preview its training windows with ``--training``.
* ``stats``     — render a saved metrics snapshot (human table or
  Prometheus text format) without the process that produced it;
  ``--fleet`` merges several per-shard/per-agent snapshots into one
  fleet-wide view (counters and histograms add, gauges take the max).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_collect(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.core import DriveScript, run_collection_drive
    from repro.streaming.persistence import save_tsdb

    script = DriveScript.standard(segment_seconds=args.segment_seconds)
    print(f"Running {args.drives} scripted drive(s) "
          f"({script.duration:.0f} s each)...")
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)
    total_readings = 0
    for index in range(args.drives):
        result = run_collection_drive(
            script, driver_id=index,
            rng=np.random.default_rng(args.seed + index))
        path = str(output / f"drive_{index:02d}.npz")
        save_tsdb(result.tsdb, path)
        total_readings += result.controller.readings_received
        print(f"  drive {index}: "
              f"{result.controller.readings_received} readings, "
              f"{result.controller.frames_received} frames -> {path}")
    print(f"Collected {total_readings} readings total.")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig, save_ensemble
    from repro.datasets import generate_driving_dataset

    rng = np.random.default_rng(args.seed)
    print(f"Generating {args.samples} paired samples...")
    dataset = generate_driving_dataset(args.samples, rng=rng)
    train, evaluation = dataset.train_eval_split(rng=rng)
    ensemble = DarNetEnsemble(
        args.architecture, cnn_config=CnnConfig(epochs=args.epochs),
        rnn_config=RnnConfig(epochs=2 * args.epochs), rng=rng)
    print(f"Training {args.architecture}...")
    ensemble.fit(train, verbose=args.verbose)
    result = ensemble.evaluate(evaluation)
    print(f"Top-1 on held-out data: {result.top1 * 100:.2f}%")
    save_ensemble(ensemble, args.output)
    print(f"Saved to {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.core import load_ensemble
    from repro.datasets import behavior_names, generate_driving_dataset
    from repro.nn.metrics import format_confusion

    print(f"Loading ensemble from {args.model}...")
    ensemble = load_ensemble(args.model)
    rng = np.random.default_rng(args.seed)
    dataset = generate_driving_dataset(args.samples, rng=rng)
    result = ensemble.evaluate(dataset)
    print(f"Architecture: {result.architecture}")
    print(f"Top-1: {result.top1 * 100:.2f}%")
    if result.imu_top1 is not None:
        print(f"IMU-only Top-1: {result.imu_top1 * 100:.2f}%")
    print(format_confusion(result.confusion, behavior_names()))
    return 0


_EXPERIMENTS = ("table1", "table2", "table3", "fig2", "fig3", "fig4", "fig5")


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro import experiments as exp

    scale = exp.get_scale(args.scale)
    name = args.experiment
    print(f"Reproducing {name} at scale {scale.name!r}...")
    if name == "table1":
        print(exp.format_table1(exp.run_table1(scale, seed=args.seed)))
    elif name == "table2":
        print(exp.format_table2(exp.run_table2(scale, seed=args.seed)))
    elif name == "fig5":
        print(exp.format_fig5(exp.run_table2(scale, seed=args.seed)))
    elif name == "table3":
        print(exp.format_table3(exp.run_table3(scale, seed=args.seed)))
    elif name == "fig2":
        result = exp.run_fig2(seed=args.seed)
        print(f"readings={result.readings_received} "
              f"frames={result.frames_received} "
              f"clock_err={result.worst_clock_error * 1e3:.1f}ms "
              f"delivery={result.delivery_ratio:.3f}")
    elif name == "fig3":
        result = exp.run_fig3()
        for level, factor in result.reduction.items():
            print(f"{level}: {result.bytes_per_frame[level]} bytes "
                  f"({factor:.1f}x reduction)")
    elif name == "fig4":
        result = exp.run_fig4(seed=args.seed)
        for level, frame in result.frames.items():
            print(f"--- {level} ({result.edges[level]}px) ---")
            print(exp.ascii_frame(frame))
    return 0


def _load_or_train_model(args: argparse.Namespace):
    """A saved ensemble from ``--model``, or a tiny throwaway one."""
    if getattr(args, "model", None):
        from repro.core import load_ensemble

        print(f"Loading ensemble from {args.model}...")
        return load_ensemble(args.model)
    from repro.core import CnnConfig, DarNetEnsemble, RnnConfig
    from repro.datasets import generate_driving_dataset

    rng = np.random.default_rng(args.seed)
    print(f"No --model given; training a small throwaway ensemble "
          f"({args.train_samples} samples, {args.train_epochs} "
          f"epoch(s))...")
    dataset = generate_driving_dataset(args.train_samples, rng=rng)
    ensemble = DarNetEnsemble(
        "cnn+rnn", cnn_config=CnnConfig(epochs=args.train_epochs),
        rnn_config=RnnConfig(epochs=2 * args.train_epochs), rng=rng)
    ensemble.fit(dataset)
    return ensemble


def _load_scenario(args: argparse.Namespace):
    """The ``--scenario`` spec file, parsed and validated (or ``None``)."""
    path = getattr(args, "scenario", None)
    if not path:
        return None
    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec.load(path)
    print(f"Loaded scenario {spec.name!r}: {spec.drivers} drivers, "
          f"{spec.duration:.0f} s at {1 / spec.grid_period:.0f} Hz, "
          f"{len(spec.timelines)} timeline(s), "
          f"{'extended' if spec.is_extended else 'paper'} label space")
    return spec


def _model_for_scenario(args: argparse.Namespace, spec):
    """A model fit for ``spec``'s label space.

    Extended scenarios (DROWSY / CAMERA_COVERED scheduled) need extended
    heads; without ``--model`` one is trained on the scenario's own
    training windows — the first consumer of the compiled spec.
    """
    if getattr(args, "model", None) or spec is None or not spec.is_extended:
        return _load_or_train_model(args)
    from repro.scenarios import scenario_training_set, train_extended_ensemble

    print(f"No --model given; training extended heads on scenario "
          f"{spec.name!r}'s own windows ({args.train_epochs} epoch(s))...")
    rng = np.random.default_rng(args.seed)
    dataset = scenario_training_set(spec)
    from repro.core import CnnConfig, RnnConfig

    return train_extended_ensemble(
        dataset,
        cnn_config=CnnConfig(epochs=args.train_epochs),
        rnn_config=RnnConfig(epochs=2 * args.train_epochs),
        rng=rng)


def _cmd_serving_chaos(args: argparse.Namespace) -> int:
    from repro.serving import run_serving_chaos

    scenario = _load_scenario(args)
    ensemble = _model_for_scenario(args, scenario)
    drivers = scenario.drivers if scenario is not None else args.drivers
    duration = scenario.duration if scenario is not None else args.duration
    seed = scenario.seed if scenario is not None else args.seed
    print(f"Running serving chaos: {drivers} drivers on "
          f"{args.shards} shards, {duration:.0f} s drive "
          f"(seed {seed})...")
    report = run_serving_chaos(
        ensemble, shards=args.shards, drivers=args.drivers,
        duration=args.duration, seed=args.seed, workers=args.workers,
        scenario=scenario)
    print()
    print(report.format_report())
    if args.metrics_out:
        from repro.obs import bundle, save_snapshot

        save_snapshot(bundle(report.metrics, []), args.metrics_out)
        print(f"\nSnapshot saved to {args.metrics_out} "
              f"(inspect with `repro stats {args.metrics_out}`)")
    if report.violations:
        print(f"\nCHAOS FAILED: {len(report.violations)} invariant "
              f"violation(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_edge_chaos(args: argparse.Namespace) -> int:
    from repro.edge import run_edge_chaos

    ensemble = _load_or_train_model(args)
    print(f"Running edge chaos: {args.agents} agents, "
          f"{args.duration:.0f} s drive (seed {args.seed})...")
    report = run_edge_chaos(
        ensemble, agents=args.agents, duration=args.duration,
        seed=args.seed)
    print()
    print(report.format_report())
    if args.metrics_out:
        from repro.obs import bundle, save_snapshot

        save_snapshot(bundle(report.metrics, []), args.metrics_out)
        print(f"\nSnapshot saved to {args.metrics_out} "
              f"(inspect with `repro stats {args.metrics_out}`)")
    if report.violations:
        print(f"\nCHAOS FAILED: {len(report.violations)} invariant "
              f"violation(s)", file=sys.stderr)
        for violation in report.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_edge(args: argparse.Namespace) -> int:
    from repro.edge import run_edge_chaos
    from repro.streaming.faults import FaultSchedule

    if not args.drive:
        print("repro edge currently supports --drive mode only; pass "
              "--drive to replay a clean fleet drive through on-device "
              "inference, the upload spool and the OTA lifecycle.")
        return 2
    ensemble = _load_or_train_model(args)
    print(f"Driving {args.agents} edge agents for {args.duration:.0f} s "
          f"(no injected faults, seed {args.seed})...")
    report = run_edge_chaos(
        ensemble, agents=args.agents, duration=args.duration,
        seed=args.seed, schedule=FaultSchedule([]))
    print()
    print(report.format_report())
    return 1 if report.violations else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.serving:
        return _cmd_serving_chaos(args)
    if args.edge:
        return _cmd_edge_chaos(args)
    from repro.streaming import run_chaos_drive

    print(f"Running the scripted chaos drive ({args.duration:.0f} s, "
          f"seed {args.seed})...")
    report = run_chaos_drive(duration=args.duration, seed=args.seed)
    print("\n== Transport ==")
    print(f"IMU tuples: {report.imu_arrived}/{report.imu_taken} delivered "
          f"({report.imu_delivery_ratio * 100:.2f}%)")
    phone, dashcam = report.phone_sender_stats, report.dashcam_sender_stats
    print(f"phone sender: {phone.sent} sent, {phone.retransmissions} "
          f"retransmitted, {phone.shed_data} shed, {phone.abandoned} "
          f"abandoned")
    print(f"dashcam sender: {dashcam.sent} sent, {dashcam.retransmissions} "
          f"retransmitted, {dashcam.shed_frames} frames shed")
    print("\n== Health ==")
    for agent_id, state in report.agent_states.items():
        print(f"{agent_id}: {state.value} at end of drive")
    print(f"quarantined at some point: "
          f"{report.health['ever_quarantined'] or 'none'}")
    print(f"fault counts: {report.health['fault_counts']}")
    print(f"readings quarantined: {report.readings_quarantined}")
    print("\n== Placement ==")
    for when, location in report.breaker_transitions:
        print(f"t={when:6.2f}s  -> {location.value}")
    print(f"final placement: {report.breaker_location}")
    print("\n== Privacy ==")
    print(f"escalations: {report.privacy_escalations}, "
          f"relaxations: {report.privacy_relaxations}, "
          f"final level: {report.final_privacy_level or 'undistorted'}")
    if report.first_escalation_at is not None:
        print(f"first escalation at t={report.first_escalation_at:.2f}s")
    print("\n== Verdict windows ==")
    for window in report.windows:
        flag = (f"DEGRADED (missing {', '.join(window.missing)})"
                if window.degraded else "full fidelity")
        print(f"[{window.start:5.1f}, {window.end:5.1f})  "
              f"imu={window.imu_readings:4d}  frames={window.frames:2d}  "
              f"{flag}")
    print(f"\n{report.degraded_windows}/{len(report.windows)} windows "
          f"degraded; every window still receives a verdict.")
    if report.violations:
        print(f"\nCHAOS FAILED: {len(report.violations)} invariant "
              f"violation(s)", file=sys.stderr)
        for violation in report.violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import replay_concurrent_drives

    if not args.replay:
        print("repro serve currently supports --replay mode only; "
              "pass --replay to run N concurrent scripted drives "
              "through the inference server.")
        return 2
    scenario = _load_scenario(args)
    ensemble = _model_for_scenario(args, scenario)
    drivers = scenario.drivers if scenario is not None else args.drivers
    duration = scenario.duration if scenario is not None else args.duration
    print(f"Replaying {drivers} concurrent scripted drives "
          f"({duration:.0f} s, micro-batch {args.max_batch or 'auto'}, "
          f"deadline {args.deadline_ms:.0f} ms, {args.workers} worker(s), "
          f"backend {args.backend}, "
          f"{args.kill_camera} camera(s) killed mid-replay)...")
    from repro.nn.runtime import profiled_layers

    with profiled_layers(args.profile_layers):
        report = replay_concurrent_drives(
            ensemble, drivers=args.drivers, duration=args.duration,
            max_batch=args.max_batch, max_delay=args.deadline_ms / 1e3,
            kill_camera=args.kill_camera, seed=args.seed,
            workers=args.workers, backend=args.backend,
            scenario=scenario)
    print()
    print(report.format_report())
    from repro.obs import bundle, render_text, render_traces, save_snapshot

    document = bundle(report.metrics, report.traces)
    print("\n== Metrics snapshot ==")
    print(render_text(document))
    print("\n== Sample trace ==")
    print(render_traces(document, limit=1))
    if args.metrics_out:
        save_snapshot(document, args.metrics_out)
        print(f"\nSnapshot saved to {args.metrics_out} "
              f"(inspect with `repro stats {args.metrics_out}`)")
    complete = all(count == report.instants
                   for count in report.verdicts_per_session.values())
    print(f"\nOne verdict per grid instant per driver: "
          f"{'yes' if complete else 'NO'}")
    return 0 if complete else 1


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import (
        load_snapshot,
        render_prometheus,
        render_text,
        render_traces,
    )

    if len(args.snapshot) > 1 and not args.fleet:
        print("multiple snapshots given; pass --fleet to merge them "
              "into one fleet-wide view", file=sys.stderr)
        return 2
    if args.fleet:
        from repro.obs import bundle
        from repro.obs.metrics import MetricsRegistry

        fleet = MetricsRegistry()
        traces: list[dict] = []
        for path in args.snapshot:
            member = load_snapshot(path)
            fleet.merge(member)
            traces.extend(member.get("traces", []))
        document = bundle(fleet.snapshot(), traces)
        print(f"Fleet view over {len(args.snapshot)} snapshot(s): "
              f"counters/histograms summed, gauges maxed.\n")
    else:
        document = load_snapshot(args.snapshot[0])
    if args.format == "prometheus":
        print(render_prometheus(document), end="")
    else:
        print(render_text(document, zeros=args.zeros))
        if args.traces:
            print()
            print(render_traces(document, limit=args.traces))
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioSpec, compile_scenario

    if args.init:
        spec = ScenarioSpec.paper_sweep(drivers=args.drivers,
                                        duration=args.duration,
                                        seed=args.seed)
        spec.save(args.spec)
        print(f"Wrote the default paper-sweep spec to {args.spec}; edit "
              "timelines/environment and feed it to `repro serve --replay "
              "--scenario` or `repro chaos --serving --scenario`.")
        return 0
    spec = ScenarioSpec.load(args.spec)
    compiled = compile_scenario(spec)
    behaviors = sorted(spec.behaviors(), key=int)
    env = spec.environment
    print(f"Scenario {spec.name!r} — {spec.drivers} drivers, "
          f"{spec.duration:.0f} s at {1 / spec.grid_period:.0f} Hz "
          f"({len(compiled.instants)} grid instants, seed {spec.seed})")
    print(f"  label space: "
          f"{'extended (8-class)' if spec.is_extended else 'paper (6-class)'}")
    print(f"  behaviours:  "
          + ", ".join(behavior.name for behavior in behaviors))
    for index, timeline in enumerate(spec.timelines):
        count = sum(1 for a in compiled.assignment if a == index)
        print(f"  timeline     {timeline.name!r}: "
              f"{len(timeline.segments)} segment(s), weight "
              f"{timeline.weight:g} -> {count} driver(s)")
    print(f"  environment: {len(env.lighting)} lighting phase(s), "
          f"{len(env.camera_faults)} camera fault(s), "
          f"{len(env.imu_noise)} noise regime(s), road "
          f"{env.road.name!r} (vibration x{env.road.vibration:g}), "
          f"GPS {'on' if env.gps is not None else 'off'}")
    if args.training:
        from repro.datasets import summarize
        from repro.scenarios import scenario_training_set

        dataset = scenario_training_set(compiled)
        print(f"\nTraining windows ({len(dataset)} samples, "
              f"{dataset.num_classes}-class):")
        print(summarize(dataset))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DarNet reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    collect = sub.add_parser("collect", help="run collection drives")
    collect.add_argument("--drives", type=int, default=1)
    collect.add_argument("--segment-seconds", type=float, default=10.0)
    collect.add_argument("--output", default="collected")
    collect.add_argument("--seed", type=int, default=0)
    collect.set_defaults(func=_cmd_collect)

    train = sub.add_parser("train", help="train and save an ensemble")
    train.add_argument("--architecture", default="cnn+rnn",
                       choices=["cnn+rnn", "cnn+svm", "cnn"])
    train.add_argument("--samples", type=int, default=600)
    train.add_argument("--epochs", type=int, default=8)
    train.add_argument("--output", default="darnet_model")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--verbose", action="store_true")
    train.set_defaults(func=_cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved ensemble")
    evaluate.add_argument("--model", default="darnet_model")
    evaluate.add_argument("--samples", type=int, default=200)
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.set_defaults(func=_cmd_evaluate)

    reproduce = sub.add_parser("reproduce",
                               help="re-run a paper table/figure")
    reproduce.add_argument("experiment", choices=_EXPERIMENTS)
    reproduce.add_argument("--scale", default="smoke",
                           choices=["smoke", "default", "full"])
    reproduce.add_argument("--seed", type=int, default=0)
    reproduce.set_defaults(func=_cmd_reproduce)

    chaos = sub.add_parser("chaos",
                           help="run the scripted fault-injection drive; "
                                "exits non-zero on invariant violations")
    chaos.add_argument("--duration", type=float, default=30.0)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--serving", action="store_true",
                       help="run serving-tier chaos (shard kills, "
                            "executor hangs, sink blackhole, full disk) "
                            "against the shard supervisor instead of the "
                            "streaming stack")
    chaos.add_argument("--edge", action="store_true",
                       help="run edge-fleet chaos (uplink blackhole, "
                            "corrupt OTA artifact, mid-download kill, "
                            "sabotaged canary) against on-device agents")
    chaos.add_argument("--shards", type=int, default=3,
                       help="serving mode: shards in the supervised fleet")
    chaos.add_argument("--workers", type=int, default=0,
                       help="persistent executor workers per shard server "
                            "(with --serving; adds a worker_kill fault "
                            "when > 0)")
    chaos.add_argument("--drivers", type=int, default=6,
                       help="serving mode: concurrent driver sessions")
    chaos.add_argument("--agents", type=int, default=3,
                       help="edge mode: agents in the fleet")
    chaos.add_argument("--model", default=None,
                       help="serving/edge mode: saved ensemble directory "
                            "(trains a tiny throwaway model when omitted)")
    chaos.add_argument("--train-samples", type=int, default=120)
    chaos.add_argument("--train-epochs", type=int, default=1)
    chaos.add_argument("--metrics-out", default=None,
                       help="serving/edge mode: write the metrics "
                            "snapshot to this JSON file")
    chaos.add_argument("--scenario", default=None, metavar="SPEC",
                       help="serving mode: declarative scenario spec "
                            "(JSON) shaping the fleet traffic; its "
                            "camera faults join the fault schedule as "
                            "scenario-native chaos")
    chaos.set_defaults(func=_cmd_chaos)

    edge = sub.add_parser(
        "edge", help="run the edge agent fleet (on-device inference, "
                     "spooled uploads, OTA rollout)")
    edge.add_argument("--drive", action="store_true",
                      help="replay a clean fleet drive and print the "
                           "fleet report")
    edge.add_argument("--agents", type=int, default=3)
    edge.add_argument("--duration", type=float, default=24.0)
    edge.add_argument("--model", default=None,
                      help="saved ensemble directory (trains a tiny "
                           "throwaway model when omitted)")
    edge.add_argument("--train-samples", type=int, default=120)
    edge.add_argument("--train-epochs", type=int, default=1)
    edge.add_argument("--seed", type=int, default=0)
    edge.set_defaults(func=_cmd_edge)

    serve = sub.add_parser(
        "serve", help="run the micro-batched inference server")
    serve.add_argument("--replay", action="store_true",
                       help="replay concurrent scripted drives and print "
                            "a throughput/latency report")
    serve.add_argument("--drivers", type=int, default=8)
    serve.add_argument("--duration", type=float, default=20.0)
    serve.add_argument("--model", default=None,
                       help="saved ensemble directory (trains a tiny "
                            "throwaway model when omitted)")
    serve.add_argument("--max-batch", type=int, default=None,
                       help="micro-batch size (default: one batch per "
                            "grid instant; 1 disables batching)")
    serve.add_argument("--deadline-ms", type=float, default=25.0,
                       help="micro-batch flush deadline in milliseconds")
    serve.add_argument("--kill-camera", type=int, default=2,
                       help="drivers whose camera stream dies mid-replay")
    serve.add_argument("--workers", type=int, default=0,
                       help="persistent worker processes executing flushed "
                            "batches over shared-memory rings (0 runs "
                            "in-process; any N delivers the identical "
                            "verdict sequence)")
    serve.add_argument("--backend", default="numpy-fast",
                       help="inference backend: numpy-fast (interpreted), "
                            "numpy-compiled (fused execution plans, "
                            "bit-exact), or numpy-compiled-int8 "
                            "(quantized weights, lossy)")
    serve.add_argument("--train-samples", type=int, default=120)
    serve.add_argument("--train-epochs", type=int, default=1)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--metrics-out", default=None,
                       help="write the metrics+trace snapshot to this "
                            "JSON file")
    serve.add_argument("--profile-layers", type=int, default=0,
                       metavar="N",
                       help="time individual layers on every Nth forward "
                            "pass (0 disables sampling)")
    serve.add_argument("--scenario", default=None, metavar="SPEC",
                       help="replay a declarative scenario spec (JSON) "
                            "instead of the default behaviour sweep; the "
                            "spec is authoritative for drivers, duration "
                            "and seed, and extended-class scenarios get "
                            "extended heads trained from the spec's own "
                            "training windows when --model is omitted")
    serve.set_defaults(func=_cmd_serve)

    scenario = sub.add_parser(
        "scenario", help="validate, summarize or bootstrap a scenario "
                         "spec (the declarative synthetic world shared "
                         "by training, replay and chaos)")
    scenario.add_argument("spec", help="scenario spec JSON file")
    scenario.add_argument("--init", action="store_true",
                          help="write the default paper-sweep spec to "
                               "SPEC instead of reading it")
    scenario.add_argument("--training", action="store_true",
                          help="generate the spec's training windows and "
                               "print the class table")
    scenario.add_argument("--drivers", type=int, default=8,
                          help="fleet size for --init")
    scenario.add_argument("--duration", type=float, default=20.0,
                          help="drive length for --init")
    scenario.add_argument("--seed", type=int, default=0,
                          help="seed for --init")
    scenario.set_defaults(func=_cmd_scenario)

    stats = sub.add_parser(
        "stats", help="render a saved metrics snapshot")
    stats.add_argument("snapshot", nargs="+",
                       help="JSON file(s) written by "
                            "`repro serve --metrics-out` (several with "
                            "--fleet)")
    stats.add_argument("--fleet", action="store_true",
                       help="merge all given snapshots into one "
                            "fleet-wide view (counters and histograms "
                            "add, gauges take the max)")
    stats.add_argument("--format", default="text",
                       choices=["text", "prometheus"])
    stats.add_argument("--traces", type=int, default=1,
                       help="completed traces to render (text format)")
    stats.add_argument("--zeros", action="store_true",
                       help="include instruments that never recorded")
    stats.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
