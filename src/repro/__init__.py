"""DarNet reproduction: deep-learning distracted-driving detection middleware.

Reproduces Streiffer et al., "DarNet: A Deep Learning Solution for
Distracted Driving Detection" (Middleware Industry '17) as a laptop-scale
pure-Python system: the IoT data-collection framework, the CNN+RNN
analytics engine with Bayesian-network ensembling, and the
privacy-preserving downsampled-CNN distillation path.

Quickstart::

    import numpy as np
    from repro import DarNetEnsemble, generate_driving_dataset

    rng = np.random.default_rng(0)
    dataset = generate_driving_dataset(600, rng=rng)
    train, evaluation = dataset.train_eval_split(rng=rng)
    darnet = DarNetEnsemble("cnn+rnn", rng=rng)
    darnet.fit(train)
    print(darnet.evaluate(evaluation).top1)
"""

from repro.core import (
    AnalyticsEngine,
    BayesianNetworkCombiner,
    CnnConfig,
    DarNetEnsemble,
    DarNetSystem,
    DenoisingCNN,
    DistillationConfig,
    DistortionModule,
    DriveScript,
    DriverFrameCNN,
    ImuSequenceRNN,
    PrivacyLevel,
    RnnConfig,
    run_collection_drive,
    train_privacy_suite,
)
from repro.datasets import (
    DrivingBehavior,
    DrivingDataset,
    ImuClass,
    generate_alternative_dataset,
    generate_driving_dataset,
    to_imu_class,
)
from repro.serving import (
    AdmissionController,
    DriverSession,
    InferenceServer,
    MicroBatchScheduler,
    ReplayReport,
    ServingModelRegistry,
    ServingVerdict,
    replay_concurrent_drives,
)
from repro.streaming import (
    CentralizedController,
    Channel,
    CollectionAgent,
    CollectionSession,
    TimeSeriesDatabase,
    VirtualClock,
)

__version__ = "1.0.0"

__all__ = [
    "DarNetEnsemble", "DarNetSystem", "DriverFrameCNN", "ImuSequenceRNN",
    "BayesianNetworkCombiner", "AnalyticsEngine", "CnnConfig", "RnnConfig",
    "PrivacyLevel", "DistortionModule", "DenoisingCNN", "DistillationConfig",
    "train_privacy_suite", "DriveScript", "run_collection_drive",
    "DrivingBehavior", "ImuClass", "to_imu_class", "DrivingDataset",
    "generate_driving_dataset", "generate_alternative_dataset",
    "CollectionSession", "CollectionAgent", "CentralizedController",
    "Channel", "TimeSeriesDatabase", "VirtualClock",
    "InferenceServer", "ServingModelRegistry", "ServingVerdict",
    "DriverSession", "MicroBatchScheduler", "AdmissionController",
    "ReplayReport", "replay_concurrent_drives", "__version__",
]
