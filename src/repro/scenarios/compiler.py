"""Scenario compiler: lower a :class:`ScenarioSpec` onto the generators.

The contract is **spec + seed ⇒ byte-identical streams**.  Three rules
keep it honest:

* Each driver's base RNG is ``default_rng(spec.seed + 1000 + driver_id)``
  and is consumed in *exactly* the order the pre-DSL replay consumed it
  (profile, appearance, per-segment episodes, idle episode, then one
  frame per grid instant).  A default-environment spec therefore
  reproduces the legacy ``synthesize_trace`` output bit for bit.
* Environment effects never touch the base stream.  Lighting phases work
  by swapping the renderer's ``lighting_range`` bounds per instant — the
  per-frame ``uniform(low, high)`` draw count is unchanged, only its
  bounds move.  Jitter, IMU noise regimes, and covered-lens renders each
  consume their own ``default_rng([seed, driver, salt])`` stream, and
  only when the spec actually schedules them.
* Everything downstream (training windows, replay, chaos) reads the same
  compiled :class:`DriverTrace` objects, so the consumers cannot drift
  apart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.darnet import DriveScript
from repro.datasets.classes import DrivingBehavior
from repro.datasets.image_synth import DriverAppearance, SceneRenderer
from repro.datasets.imu_synth import (
    SENSOR_ORDER,
    DriverProfile,
    ImuTraceGenerator,
)
from repro.exceptions import ConfigurationError
from repro.scenarios.spec import ScenarioSpec, Timeline

#: Salts for the per-driver side streams (never the base stream).
_SALT_JITTER = 17
_SALT_NOISE = 3
_SALT_COVER = 13

#: Metres per degree of latitude (good enough for synthetic routes).
_M_PER_DEG = 111_320.0


@dataclass
class DriverTrace:
    """Pre-synthesized raw streams for one replay driver.

    ``frame_mask`` marks instants whose frame must *not* be ingested
    (scenario camera blackouts); ``None`` means every frame flows.
    ``gps`` carries per-instant (lat, lon, speed) when the scenario
    declares a route.
    """

    driver_id: int
    imu: np.ndarray          # (instants, 12) grid-aligned samples
    frames: list[np.ndarray]  # one frame per grid instant
    labels: np.ndarray       # scripted behaviour per instant
    frame_mask: np.ndarray | None = None
    gps: np.ndarray | None = None
    timeline: str = ""


def synthesize_trace(driver_id: int, instants: np.ndarray, *,
                     script: DriveScript,
                     rng: np.random.Generator) -> DriverTrace:
    """Raw per-instant IMU vectors and frames for one scripted drive.

    The legacy entry point (kept for the serving and edge harnesses):
    equivalent to compiling a single-timeline spec with a default
    environment.
    """
    return _synthesize_driver(driver_id, instants, script=script, rng=rng)


def _segment_lookup(script: DriveScript):
    def segment_at(t: float) -> int | None:
        for index, (start, end, _) in enumerate(script.segments):
            if start <= t < end:
                return index
        return None
    return segment_at


def _synthesize_driver(driver_id: int, instants: np.ndarray, *,
                       script: DriveScript, rng: np.random.Generator,
                       spec: ScenarioSpec | None = None,
                       timeline_name: str = "") -> DriverTrace:
    """One driver's streams; ``spec`` adds the environment track."""
    environment = spec.environment if spec is not None else None
    profile = DriverProfile.sample(driver_id, rng)
    if environment is not None and environment.road.vibration != 1.0:
        profile = replace(profile, vibration_scale=(
            profile.vibration_scale * environment.road.vibration))
    appearance = DriverAppearance.sample(driver_id, rng)
    renderer = SceneRenderer(appearance)
    episodes = {
        index: ImuTraceGenerator(behavior, profile, rng=rng)
        for index, (_, _, behavior) in enumerate(script.segments)
    }
    idle = ImuTraceGenerator(DrivingBehavior.NORMAL, profile, rng=rng)
    segment_at = _segment_lookup(script)

    def behavior_at(t: float) -> int:
        index = segment_at(t)
        if index is None:
            return int(DrivingBehavior.NORMAL)
        return int(script.segments[index][2])

    frame_fn = renderer.frame_fn(behavior_at, rng=rng)
    base_range = renderer.lighting_range
    covered = blacked = ()
    cover_rng = None
    if environment is not None:
        covered = tuple(f for f in environment.camera_faults
                        if f.kind == "covered" and f.hits(driver_id))
        blacked = tuple(f for f in environment.camera_faults
                        if f.kind == "blackout" and f.hits(driver_id))
        if covered and spec is not None:
            cover_rng = np.random.default_rng(
                [spec.seed, driver_id, _SALT_COVER])

    imu = np.zeros((len(instants), 12))
    frames: list[np.ndarray] = []
    labels = np.zeros(len(instants), dtype=np.int64)
    frame_mask = None
    if blacked:
        frame_mask = np.ones(len(instants), dtype=bool)
    for k, t in enumerate(instants):
        now = float(t)
        index = segment_at(now)
        generator = idle if index is None else episodes[index]
        imu[k] = np.concatenate(
            [generator.sample(sensor, now) for sensor in SENSOR_ORDER])
        if environment is not None and environment.lighting:
            phase = next((p for p in environment.lighting
                          if p.start <= now < p.end), None)
            renderer.lighting_range = ((phase.low, phase.high)
                                       if phase is not None else base_range)
        frame = np.asarray(frame_fn(now), dtype=np.float32)
        if cover_rng is not None and any(f.start <= now < f.end
                                         for f in covered):
            frame = renderer._render_covered(cover_rng)
        frames.append(frame)
        labels[k] = behavior_at(now)
        if frame_mask is not None and any(f.start <= now < f.end
                                          for f in blacked):
            frame_mask[k] = False
    renderer.lighting_range = base_range
    if environment is not None and environment.imu_noise and spec is not None:
        noise_rng = np.random.default_rng([spec.seed, driver_id, _SALT_NOISE])
        unit = noise_rng.normal(0.0, 1.0, imu.shape)
        stds = np.zeros(len(instants))
        for regime in environment.imu_noise:
            active = (instants >= regime.start) & (instants < regime.end)
            stds = np.maximum(stds, np.where(active, regime.std, 0.0))
        imu = imu + unit * stds[:, None]
    gps = None
    if environment is not None and environment.gps is not None:
        gps = _gps_trace(environment.gps, driver_id, instants)
    return DriverTrace(driver_id=driver_id, imu=imu, frames=frames,
                       labels=labels, frame_mask=frame_mask, gps=gps,
                       timeline=timeline_name)


def _gps_trace(route, driver_id: int, instants: np.ndarray) -> np.ndarray:
    """Dead-reckoned (lat, lon, speed) per instant; analytic, no RNG."""
    lat0 = route.origin[0] + 1e-4 * driver_id
    lon0 = route.origin[1]
    heading = np.deg2rad(route.heading_deg)
    dist = route.speed_mps * np.asarray(instants, dtype=np.float64)
    lat = lat0 + dist * np.cos(heading) / _M_PER_DEG
    lon = lon0 + dist * np.sin(heading) / (
        _M_PER_DEG * max(np.cos(np.deg2rad(lat0)), 1e-6))
    speed = np.full_like(dist, route.speed_mps)
    return np.stack([lat, lon, speed], axis=1)


class CompiledScenario:
    """A spec lowered to per-driver scripts and synthesized traces."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.instants = np.arange(0.0, spec.duration, spec.grid_period)
        if len(self.instants) == 0:
            raise ConfigurationError(
                "scenario produces no grid instants; lengthen duration or "
                "shorten grid_period")
        self.assignment = self._assign_timelines()
        self._traces: dict[int, DriverTrace] = {}

    # -- fleet layout ----------------------------------------------------
    def _assign_timelines(self) -> list[int]:
        """Driver → timeline index, exact largest-remainder weighted mix."""
        spec = self.spec
        weights = np.array([t.weight for t in spec.timelines], dtype=float)
        shares = spec.drivers * weights / weights.sum()
        counts = np.floor(shares).astype(int)
        remainder = spec.drivers - int(counts.sum())
        if remainder:
            order = np.argsort(-(shares - counts), kind="stable")
            for index in order[:remainder]:
                counts[index] += 1
        assignment: list[int] = []
        for index, count in enumerate(counts):
            assignment.extend([index] * int(count))
        return assignment

    def timeline_for(self, driver_id: int) -> Timeline:
        return self.spec.timelines[self.assignment[driver_id]]

    def script_for(self, driver_id: int) -> DriveScript:
        """The driver's jittered drive script."""
        script = self.timeline_for(driver_id).script()
        jitter = self.spec.segment_jitter
        if not jitter:
            return script
        jitter_rng = np.random.default_rng(
            [self.spec.seed, driver_id, _SALT_JITTER])
        segments = []
        for start, end, behavior in script.segments:
            delta = float(jitter_rng.uniform(-jitter, jitter))
            new_start = max(0.0, start + delta)
            # Keep start < end unconditionally; segments shifted past the
            # scenario duration are harmless — the grid never samples them
            # (legacy scripts already run past `duration` the same way).
            new_end = max(new_start + self.spec.grid_period, end + delta)
            segments.append((new_start, new_end, behavior))
        return DriveScript(segments)

    # -- trace synthesis -------------------------------------------------
    def trace_for(self, driver_id: int) -> DriverTrace:
        """The driver's synthesized streams (cached per compile)."""
        if driver_id not in self._traces:
            if not 0 <= driver_id < self.spec.drivers:
                raise ConfigurationError(
                    f"driver {driver_id} outside fleet of "
                    f"{self.spec.drivers}")
            rng = np.random.default_rng(self.spec.seed + 1000 + driver_id)
            self._traces[driver_id] = _synthesize_driver(
                driver_id, self.instants,
                script=self.script_for(driver_id), rng=rng, spec=self.spec,
                timeline_name=self.timeline_for(driver_id).name)
        return self._traces[driver_id]

    def traces(self) -> list[DriverTrace]:
        """Streams for the whole fleet, driver order."""
        return [self.trace_for(d) for d in range(self.spec.drivers)]


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Lower ``spec`` into per-driver scripts and deterministic streams."""
    return CompiledScenario(spec)
