"""Scenario-native fault scheduling.

The environment track's camera faults are *part of the world*, not
out-of-band injection: the compiler bakes them into the traces (covered
frames rendered occluded, blackout frames masked from ingestion).  This
module projects them into the chaos vocabulary — a
:class:`~repro.streaming.faults.FaultSchedule` of ``camera_covered`` /
``camera_blackout`` events — so chaos harnesses can log them, merge them
with shard/sink faults, and audit that they actually engaged.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.scenarios.spec import ScenarioSpec
from repro.streaming.faults import FaultEvent, FaultSchedule


def scenario_fault_events(spec: ScenarioSpec,
                          session_ids: Sequence[str] | None = None
                          ) -> list[FaultEvent]:
    """Camera faults of ``spec`` as chaos events.

    Targets are session ids when the mapping is known (``session_ids[d]``
    for driver ``d``), ``driver-<d>`` placeholders otherwise, and ``"*"``
    for fleet-wide faults.
    """
    events: list[FaultEvent] = []
    for fault in spec.environment.camera_faults:
        kind = f"camera_{fault.kind}"
        if fault.drivers is None:
            events.append(FaultEvent(fault.start, fault.end, kind, "*"))
            continue
        for driver in fault.drivers:
            if session_ids is not None and driver < len(session_ids):
                target = str(session_ids[driver])
            else:
                target = f"driver-{driver}"
            events.append(FaultEvent(fault.start, fault.end, kind, target))
    return events


def scenario_fault_schedule(spec: ScenarioSpec,
                            session_ids: Sequence[str] | None = None,
                            extra: Sequence[FaultEvent] = ()
                            ) -> FaultSchedule:
    """A full schedule: the scenario's camera faults plus ``extra``."""
    return FaultSchedule([*scenario_fault_events(spec, session_ids),
                          *extra])
