"""Declarative scenario DSL: the single source of synthetic truth.

A :class:`ScenarioSpec` describes a synthetic world — behaviour timelines
with fleet mix weights, an environment track (lighting, glare, camera
obstruction, IMU noise regimes, road profiles, GPS routes), and per-driver
identity sampling — and the compiler lowers it deterministically onto the
existing ``imu_synth``/``image_synth`` generators (spec + seed ⇒
byte-identical streams).  One committed spec file therefore drives all
three consumers: labelled training windows (``scenario_training_set``),
concurrent fleet replay (``repro serve --replay --scenario``), and
scenario-native fault injection through the chaos harnesses.
"""

from repro.scenarios.compiler import (
    CompiledScenario,
    DriverTrace,
    compile_scenario,
    synthesize_trace,
)
from repro.scenarios.extended import (
    extended_cnn_config,
    extended_rnn_config,
    project_probs_to_paper,
    train_extended_ensemble,
)
from repro.scenarios.faults import scenario_fault_schedule
from repro.scenarios.spec import (
    BehaviorSegment,
    CameraFault,
    EnvironmentTrack,
    GpsRoute,
    LightingPhase,
    NoiseRegime,
    RoadProfile,
    ScenarioSpec,
    Timeline,
)
from repro.scenarios.training import scenario_training_set

__all__ = [
    "BehaviorSegment", "CameraFault", "CompiledScenario", "DriverTrace",
    "EnvironmentTrack", "GpsRoute", "LightingPhase", "NoiseRegime",
    "RoadProfile", "ScenarioSpec", "Timeline", "compile_scenario",
    "extended_cnn_config", "extended_rnn_config", "project_probs_to_paper",
    "scenario_fault_schedule", "scenario_training_set", "synthesize_trace",
    "train_extended_ensemble",
]
