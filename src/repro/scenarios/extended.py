"""Extended-taxonomy heads: train beyond the paper's six classes.

The scenario DSL schedules :class:`~repro.datasets.classes.ExtendedBehavior`
classes; this module builds the matching heads — an 8-way frame CNN and a
4-way IMU RNN composed by the same Bayesian combiner (its CPT dimensions
follow the head configs) — and the projection that lets every 6-class
consumer (legacy fixtures, distilled dCNNs on the privacy ladder) keep
reading extended verdict streams.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.cnn import CnnConfig
from repro.core.ensemble import DarNetEnsemble
from repro.core.rnn import RnnConfig
from repro.datasets.classes import (
    NUM_BEHAVIOR_CLASSES,
    NUM_EXTENDED_CLASSES,
    NUM_EXTENDED_IMU_CLASSES,
    to_paper_behavior,
)
from repro.datasets.dataset import DrivingDataset
from repro.exceptions import ConfigurationError


def extended_cnn_config(base: CnnConfig | None = None) -> CnnConfig:
    """A frame-head config widened to the 8-class extended space."""
    return replace(base or CnnConfig(), num_classes=NUM_EXTENDED_CLASSES)


def extended_rnn_config(base: RnnConfig | None = None) -> RnnConfig:
    """An IMU-head config widened to the 4-class extended IMU space."""
    return replace(base or RnnConfig(), num_classes=NUM_EXTENDED_IMU_CLASSES)


def train_extended_ensemble(train: DrivingDataset, *,
                            architecture: str = "cnn+rnn",
                            cnn_config: CnnConfig | None = None,
                            rnn_config: RnnConfig | None = None,
                            rng: np.random.Generator | None = None,
                            verbose: bool = False) -> DarNetEnsemble:
    """Fit a full ensemble over the extended label space.

    ``train`` must carry extended labels (``num_classes`` of 8, e.g. from
    :func:`~repro.scenarios.training.scenario_training_set` over a spec
    that schedules DROWSY / CAMERA_COVERED); the combiner's CPTs come out
    8x4 automatically because its dimensions follow the head configs.
    """
    if train.num_classes <= NUM_BEHAVIOR_CLASSES:
        raise ConfigurationError(
            "train_extended_ensemble needs an extended-label dataset; "
            f"got num_classes={train.num_classes}")
    ensemble = DarNetEnsemble(
        architecture,
        cnn_config=extended_cnn_config(cnn_config),
        rnn_config=extended_rnn_config(rnn_config),
        rng=rng)
    ensemble.fit(train, verbose=verbose)
    return ensemble


def project_probs_to_paper(probs: np.ndarray) -> np.ndarray:
    """Collapse extended-class probabilities onto the paper's 6 classes.

    Mass on DROWSY / CAMERA_COVERED folds into NORMAL (no distraction
    *gesture* is in progress), matching
    :func:`~repro.datasets.classes.to_paper_behavior` for hard labels.
    """
    probs = np.asarray(probs, dtype=np.float64)
    if probs.ndim != 2:
        raise ConfigurationError(
            f"expected a (n, classes) batch, got shape {probs.shape}")
    if probs.shape[1] <= NUM_BEHAVIOR_CLASSES:
        return probs
    out = np.zeros((probs.shape[0], NUM_BEHAVIOR_CLASSES))
    for value in range(probs.shape[1]):
        out[:, int(to_paper_behavior(value))] += probs[:, value]
    return out
