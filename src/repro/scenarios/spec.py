"""Scenario specification: declarative, validated, JSON round-trippable.

A spec is pure data — no generators, no RNG state — so it can live in a
fixture file, travel through CI, and mean exactly the same world on every
machine.  The compiler (:mod:`repro.scenarios.compiler`) owns the lowering
onto the synth generators.

Behaviours are stored as enum *names* in JSON (``"TEXTING"``,
``"DROWSY"``) so fixture files stay readable and survive any future
renumbering.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from repro.core.darnet import DriveScript
from repro.datasets.classes import (
    NUM_BEHAVIOR_CLASSES,
    DrivingBehavior,
    ExtendedBehavior,
    as_behavior,
    resolve_behavior,
)
from repro.exceptions import ConfigurationError

#: Environment camera-fault kinds the compiler understands.  ``covered``
#: replaces frames with occluded-lens renders (the server still receives
#: them and the extended CNN should *classify* the condition);
#: ``blackout`` suppresses frame ingestion entirely (the server must
#: degrade to IMU-only verdicts).
CAMERA_FAULT_KINDS = ("covered", "blackout")


def _check_window(start: float, end: float, what: str) -> None:
    if start < 0 or end <= start:
        raise ConfigurationError(
            f"{what} needs 0 <= start < end, got [{start}, {end})")


@dataclass(frozen=True)
class BehaviorSegment:
    """One timed behaviour in a timeline: ``behavior`` over [start, end)."""

    start: float
    end: float
    behavior: DrivingBehavior | ExtendedBehavior

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "behaviour segment")
        object.__setattr__(self, "behavior",
                           as_behavior(int(self.behavior)))

    def to_dict(self) -> dict:
        return {"start": self.start, "end": self.end,
                "behavior": self.behavior.name}

    @classmethod
    def from_dict(cls, data: dict) -> "BehaviorSegment":
        return cls(start=float(data["start"]), end=float(data["end"]),
                   behavior=resolve_behavior(str(data["behavior"])))


@dataclass(frozen=True)
class Timeline:
    """A named behaviour schedule drivers can be assigned to.

    ``weight`` sets the fleet mix: drivers are deterministically
    distributed over timelines proportionally to weight.
    """

    name: str
    segments: tuple[BehaviorSegment, ...]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError(f"timeline {self.name!r} has no segments")
        if self.weight <= 0:
            raise ConfigurationError(
                f"timeline {self.name!r} needs weight > 0, got {self.weight}")
        object.__setattr__(self, "segments", tuple(self.segments))

    def script(self) -> DriveScript:
        """Lower to the collection framework's drive-script form."""
        return DriveScript(
            [(seg.start, seg.end, seg.behavior) for seg in self.segments])

    def to_dict(self) -> dict:
        return {"name": self.name, "weight": self.weight,
                "segments": [seg.to_dict() for seg in self.segments]}

    @classmethod
    def from_dict(cls, data: dict) -> "Timeline":
        return cls(name=str(data["name"]),
                   weight=float(data.get("weight", 1.0)),
                   segments=tuple(BehaviorSegment.from_dict(seg)
                                  for seg in data["segments"]))


@dataclass(frozen=True)
class LightingPhase:
    """Illumination regime over [start, end): overrides the renderer's
    per-frame lighting-multiplier range (night ≈ (0.15, 0.35), glare-bright
    ≈ (1.3, 1.6); the default daylight range is (0.5, 1.2))."""

    start: float
    end: float
    low: float
    high: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "lighting phase")
        if not 0.0 <= self.low <= self.high:
            raise ConfigurationError(
                f"lighting phase needs 0 <= low <= high, got "
                f"({self.low}, {self.high})")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LightingPhase":
        return cls(**{key: float(data[key])
                      for key in ("start", "end", "low", "high")})


@dataclass(frozen=True)
class CameraFault:
    """Scenario-native camera obstruction over [start, end).

    ``drivers`` limits the fault to specific driver ids (``None`` hits the
    whole fleet).  See :data:`CAMERA_FAULT_KINDS` for semantics.
    """

    kind: str
    start: float
    end: float
    drivers: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in CAMERA_FAULT_KINDS:
            raise ConfigurationError(
                f"unknown camera fault {self.kind!r}; choose from "
                f"{CAMERA_FAULT_KINDS}")
        _check_window(self.start, self.end, "camera fault")
        if self.drivers is not None:
            object.__setattr__(self, "drivers",
                               tuple(int(d) for d in self.drivers))

    def hits(self, driver_id: int) -> bool:
        return self.drivers is None or driver_id in self.drivers

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "start": self.start, "end": self.end}
        if self.drivers is not None:
            data["drivers"] = list(self.drivers)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CameraFault":
        drivers = data.get("drivers")
        return cls(kind=str(data["kind"]), start=float(data["start"]),
                   end=float(data["end"]),
                   drivers=None if drivers is None else tuple(drivers))


@dataclass(frozen=True)
class NoiseRegime:
    """Additional IMU sensor noise (std, m/s²-scale) over [start, end) —
    rough pavement, loose mounts, EMI bursts."""

    start: float
    end: float
    std: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "noise regime")
        if self.std < 0:
            raise ConfigurationError(f"noise std must be >= 0: {self.std}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "NoiseRegime":
        return cls(start=float(data["start"]), end=float(data["end"]),
                   std=float(data["std"]))


@dataclass(frozen=True)
class RoadProfile:
    """Road surface: a multiplier on every driver's vibration scale."""

    name: str = "paved"
    vibration: float = 1.0

    def __post_init__(self) -> None:
        if self.vibration <= 0:
            raise ConfigurationError(
                f"road vibration must be > 0: {self.vibration}")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RoadProfile":
        return cls(name=str(data.get("name", "paved")),
                   vibration=float(data.get("vibration", 1.0)))


@dataclass(frozen=True)
class GpsRoute:
    """Synthetic GPS dead-reckoning route for the fleet.

    Each driver's trace starts at ``origin`` (with a small per-driver
    offset) and advances along ``heading_deg`` at ``speed_mps``; the
    compiler emits per-instant (lat, lon, speed) triples.
    """

    origin: tuple[float, float] = (37.7749, -122.4194)
    heading_deg: float = 90.0
    speed_mps: float = 13.4

    def __post_init__(self) -> None:
        if self.speed_mps < 0:
            raise ConfigurationError(
                f"GPS speed must be >= 0: {self.speed_mps}")
        object.__setattr__(self, "origin",
                           (float(self.origin[0]), float(self.origin[1])))

    def to_dict(self) -> dict:
        return {"origin": list(self.origin),
                "heading_deg": self.heading_deg,
                "speed_mps": self.speed_mps}

    @classmethod
    def from_dict(cls, data: dict) -> "GpsRoute":
        return cls(origin=tuple(data.get("origin", (37.7749, -122.4194))),
                   heading_deg=float(data.get("heading_deg", 90.0)),
                   speed_mps=float(data.get("speed_mps", 13.4)))


@dataclass(frozen=True)
class EnvironmentTrack:
    """Everything about the world that is not driver behaviour."""

    lighting: tuple[LightingPhase, ...] = ()
    camera_faults: tuple[CameraFault, ...] = ()
    imu_noise: tuple[NoiseRegime, ...] = ()
    road: RoadProfile = field(default_factory=RoadProfile)
    gps: GpsRoute | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "lighting", tuple(self.lighting))
        object.__setattr__(self, "camera_faults", tuple(self.camera_faults))
        object.__setattr__(self, "imu_noise", tuple(self.imu_noise))

    @property
    def is_default(self) -> bool:
        """True when the track adds nothing over the legacy daylight world."""
        return (not self.lighting and not self.camera_faults
                and not self.imu_noise and self.road.vibration == 1.0
                and self.gps is None)

    def to_dict(self) -> dict:
        data: dict = {}
        if self.lighting:
            data["lighting"] = [p.to_dict() for p in self.lighting]
        if self.camera_faults:
            data["camera_faults"] = [f.to_dict() for f in self.camera_faults]
        if self.imu_noise:
            data["imu_noise"] = [n.to_dict() for n in self.imu_noise]
        if self.road != RoadProfile():
            data["road"] = self.road.to_dict()
        if self.gps is not None:
            data["gps"] = self.gps.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "EnvironmentTrack":
        return cls(
            lighting=tuple(LightingPhase.from_dict(p)
                           for p in data.get("lighting", ())),
            camera_faults=tuple(CameraFault.from_dict(f)
                                for f in data.get("camera_faults", ())),
            imu_noise=tuple(NoiseRegime.from_dict(n)
                            for n in data.get("imu_noise", ())),
            road=RoadProfile.from_dict(data.get("road", {})),
            gps=(GpsRoute.from_dict(data["gps"])
                 if data.get("gps") is not None else None),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative scenario.

    Attributes:
        name: scenario identifier (shows up in reports and fixtures).
        duration: simulated drive length in seconds.
        grid_period: verdict/sample cadence in seconds (paper: 0.25).
        seed: the *only* randomness root — spec + seed ⇒ byte-identical
            streams everywhere.
        drivers: fleet size.
        timelines: behaviour schedules; drivers are distributed over them
            by weight (round-robin over a deterministic weighted layout,
            so the mix is exact, not sampled).
        environment: the shared world track.
        segment_jitter: per-driver segment-boundary jitter in seconds
            (0 = all drivers follow their timeline exactly — required for
            legacy bit-stability).
    """

    name: str
    duration: float
    timelines: tuple[Timeline, ...]
    grid_period: float = 0.25
    seed: int = 0
    drivers: int = 8
    environment: EnvironmentTrack = field(default_factory=EnvironmentTrack)
    segment_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.grid_period <= 0:
            raise ConfigurationError(
                "scenario needs duration > 0 and grid_period > 0")
        if self.drivers < 1:
            raise ConfigurationError("scenario needs drivers >= 1")
        if not self.timelines:
            raise ConfigurationError("scenario needs at least one timeline")
        if self.segment_jitter < 0:
            raise ConfigurationError("segment_jitter must be >= 0")
        object.__setattr__(self, "timelines", tuple(self.timelines))

    # -- derived properties ----------------------------------------------
    def behaviors(self) -> set[DrivingBehavior | ExtendedBehavior]:
        """Every behaviour class any timeline schedules."""
        return {seg.behavior for timeline in self.timelines
                for seg in timeline.segments}

    @property
    def is_extended(self) -> bool:
        """Whether any scheduled behaviour lies beyond the paper's six."""
        return any(int(b) >= NUM_BEHAVIOR_CLASSES for b in self.behaviors())

    def with_overrides(self, **kwargs) -> "ScenarioSpec":
        """A copy with top-level fields replaced (CLI flag overrides)."""
        return replace(self, **kwargs)

    # -- construction helpers --------------------------------------------
    @classmethod
    def paper_sweep(cls, *, drivers: int = 8, duration: float = 20.0,
                    grid_period: float = 0.25, seed: int = 0
                    ) -> "ScenarioSpec":
        """The legacy replay world: an equal-segment sweep over the six
        paper behaviours with 0.25 s gaps — exactly the script
        ``replay_concurrent_drives`` used to hardcode, so compiled traces
        are bit-identical with the pre-DSL replay."""
        behaviors = list(DrivingBehavior)
        segment = max(1.0, duration / len(behaviors) - 0.25)
        script = DriveScript.standard(segment_seconds=segment,
                                      gap_seconds=0.25)
        return cls.from_script(script, name="paper-sweep", drivers=drivers,
                               duration=duration, grid_period=grid_period,
                               seed=seed)

    @classmethod
    def from_script(cls, script: DriveScript, *, name: str = "scripted",
                    drivers: int = 8, duration: float | None = None,
                    grid_period: float = 0.25, seed: int = 0
                    ) -> "ScenarioSpec":
        """Wrap a legacy :class:`DriveScript` as a single-timeline spec."""
        segments = tuple(BehaviorSegment(start, end, behavior)
                         for start, end, behavior in script.segments)
        return cls(name=name,
                   duration=float(duration if duration is not None
                                  else script.duration),
                   grid_period=grid_period, seed=seed, drivers=drivers,
                   timelines=(Timeline(name="script", segments=segments),))

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "duration": self.duration,
            "grid_period": self.grid_period,
            "seed": self.seed,
            "drivers": self.drivers,
            "timelines": [timeline.to_dict() for timeline in self.timelines],
        }
        if self.segment_jitter:
            data["segment_jitter"] = self.segment_jitter
        environment = self.environment.to_dict()
        if environment:
            data["environment"] = environment
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        try:
            timelines = tuple(Timeline.from_dict(t)
                              for t in data["timelines"])
            return cls(
                name=str(data["name"]),
                duration=float(data["duration"]),
                grid_period=float(data.get("grid_period", 0.25)),
                seed=int(data.get("seed", 0)),
                drivers=int(data.get("drivers", 8)),
                timelines=timelines,
                environment=EnvironmentTrack.from_dict(
                    data.get("environment", {})),
                segment_jitter=float(data.get("segment_jitter", 0.0)),
            )
        except KeyError as exc:
            raise ConfigurationError(
                f"scenario spec missing required field {exc}") from None

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigurationError("scenario JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
