"""Training consumer of the scenario DSL.

A training sample here is exactly what the serving tier sees at a grid
instant: the frame at ``t`` plus the window of the last
``window_steps`` grid-aligned 12-feature IMU samples ending at ``t`` —
assembled from the *same* compiled :class:`DriverTrace` objects the
replay harness streams, so training data and replay traffic cannot
diverge by construction.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.classes import (
    NUM_BEHAVIOR_CLASSES,
    NUM_EXTENDED_CLASSES,
)
from repro.datasets.dataset import DrivingDataset
from repro.datasets.imu_synth import DEFAULT_WINDOW_STEPS
from repro.exceptions import ConfigurationError
from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.spec import ScenarioSpec


def scenario_training_set(scenario: ScenarioSpec | CompiledScenario, *,
                          window_steps: int = DEFAULT_WINDOW_STEPS,
                          stride: int = 1,
                          include_masked_frames: bool = True
                          ) -> DrivingDataset:
    """Labelled training windows from a scenario's compiled streams.

    Args:
        scenario: a spec (compiled here) or an already-compiled scenario
            (pass the same object the replay uses to share trace caches).
        window_steps: IMU window length; with the default 0.25 s grid this
            is the paper's 20-step / 5 s window.
        stride: keep every ``stride``-th instant (1 = all instants with a
            full window behind them).
        include_masked_frames: scenario camera *blackouts* mark frames
            that never reach the server; by default they still make
            training samples (the frame exists, ingestion was cut), pass
            ``False`` to drop them.
    """
    compiled = (scenario if isinstance(scenario, CompiledScenario)
                else compile_scenario(scenario))
    if stride < 1:
        raise ConfigurationError(f"stride must be >= 1, got {stride}")
    instants = compiled.instants
    if len(instants) < window_steps:
        raise ConfigurationError(
            f"scenario too short for {window_steps}-step windows: "
            f"{len(instants)} grid instants; lengthen duration")
    images: list[np.ndarray] = []
    windows: list[np.ndarray] = []
    labels: list[int] = []
    drivers: list[int] = []
    for trace in compiled.traces():
        for k in range(window_steps - 1, len(instants), stride):
            if (not include_masked_frames and trace.frame_mask is not None
                    and not trace.frame_mask[k]):
                continue
            images.append(trace.frames[k][None])
            windows.append(trace.imu[k - window_steps + 1:k + 1])
            labels.append(int(trace.labels[k]))
            drivers.append(trace.driver_id)
    num_classes = (NUM_EXTENDED_CLASSES if compiled.spec.is_extended
                   else NUM_BEHAVIOR_CLASSES)
    return DrivingDataset(
        images=np.stack(images).astype(np.float32),
        imu=np.stack(windows).astype(np.float32),
        labels=np.asarray(labels, dtype=np.int64),
        drivers=np.asarray(drivers, dtype=np.int64),
        num_classes=num_classes,
    )
