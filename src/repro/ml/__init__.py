"""Classic-ML baselines: kernel SVM and window-statistic features."""

from repro.ml.kernels import (
    get_kernel,
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
)
from repro.ml.svm import BinarySVM, MultiClassSVM
from repro.ml.features import (
    CHANNEL_STATISTICS,
    FeatureScaler,
    extract_window_features,
    feature_dimension,
)

__all__ = [
    "linear_kernel", "rbf_kernel", "polynomial_kernel", "get_kernel",
    "BinarySVM", "MultiClassSVM", "extract_window_features",
    "feature_dimension", "FeatureScaler", "CHANNEL_STATISTICS",
]
