"""Window-statistic features for the SVM baseline.

Classic time-series feature engineering: per-channel summary statistics
plus cross-channel correlations over each 20-step IMU window.  This is the
conventional pipeline the paper's SVM baseline represents — it captures
orientation (means) well but temporal micro-structure (typing bursts vs.
speech sway) only through coarse aggregates, which is where the RNN's
advantage comes from (§5.2: RNN 97.44% vs SVM 95.37% on IMU data alone).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

#: Feature names per channel, in extraction order.
CHANNEL_STATISTICS = ("mean", "std", "min", "max", "energy", "mean_abs_delta")


def extract_window_features(windows: np.ndarray) -> np.ndarray:
    """Feature matrix for a batch of windows.

    Args:
        windows: (n, steps, channels) IMU windows.

    Returns:
        (n, channels * 6 + pairs) float32 features: six summary statistics
        per channel plus upper-triangle cross-channel correlations of the
        accelerometer block (channels 0-2).  Float32 end-to-end — the
        statistics are means/extrema of O(20) well-scaled samples, where
        double precision buys nothing, and the downstream SVM kernel work
        is halved in memory traffic.
    """
    windows = np.asarray(windows, dtype=np.float32)
    if windows.ndim != 3:
        raise ShapeError(f"expected (n, steps, channels), got {windows.shape}")
    mean = windows.mean(axis=1)
    std = windows.std(axis=1)
    minimum = windows.min(axis=1)
    maximum = windows.max(axis=1)
    energy = np.mean(windows ** 2, axis=1)
    deltas = np.abs(np.diff(windows, axis=1)).mean(axis=1)
    blocks = [mean, std, minimum, maximum, energy, deltas]
    # Accelerometer cross-axis correlations (3 pairs).
    accel = windows[:, :, :3]
    centered = accel - accel.mean(axis=1, keepdims=True)
    denom = np.maximum(accel.std(axis=1), np.float32(1e-9))
    pairs = []
    for i in range(3):
        for j in range(i + 1, 3):
            corr = (centered[:, :, i] * centered[:, :, j]).mean(axis=1)
            pairs.append(corr / (denom[:, i] * denom[:, j]))
    blocks.append(np.stack(pairs, axis=1))
    return np.concatenate(blocks, axis=1)


def feature_dimension(channels: int = 12) -> int:
    """Length of the feature vector produced for ``channels`` channels."""
    return channels * len(CHANNEL_STATISTICS) + 3


class FeatureScaler:
    """Standardize features with training-set statistics."""

    def __init__(self) -> None:
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "FeatureScaler":
        """Learn mean/std from a training feature matrix."""
        features = np.asarray(features, dtype=np.float32)
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std > 1e-9, std, np.float32(1.0))
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self._mean is None or self._std is None:
            raise ShapeError("FeatureScaler used before fit()")
        return ((np.asarray(features, dtype=np.float32) - self._mean)
                / self._std)

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(features).transform(features)
