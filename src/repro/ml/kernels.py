"""Kernel functions for the SVM baseline."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError

Kernel = Callable[[np.ndarray, np.ndarray], np.ndarray]


def linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain inner-product kernel ``K[i, j] = a_i . b_j``."""
    return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64).T


def rbf_kernel(gamma: float = 1.0) -> Kernel:
    """Gaussian kernel factory: ``exp(-gamma * ||a_i - b_j||^2)``."""
    if gamma <= 0:
        raise ConfigurationError(f"gamma must be positive, got {gamma}")

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        a_sq = np.sum(a * a, axis=1)[:, None]
        b_sq = np.sum(b * b, axis=1)[None, :]
        distances = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
        return np.exp(-gamma * distances)

    return kernel


def polynomial_kernel(degree: int = 3, coef0: float = 1.0,
                      scale: float = 1.0) -> Kernel:
    """Polynomial kernel factory: ``(scale * a.b + coef0) ** degree``."""
    if degree < 1:
        raise ConfigurationError(f"degree must be >= 1, got {degree}")

    def kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (scale * linear_kernel(a, b) + coef0) ** degree

    return kernel


def get_kernel(spec: str | Kernel, *, gamma: float = 1.0,
               degree: int = 3) -> Kernel:
    """Resolve a kernel by name ('linear', 'rbf', 'poly') or callable."""
    if callable(spec):
        return spec
    if spec == "linear":
        return linear_kernel
    if spec == "rbf":
        return rbf_kernel(gamma)
    if spec == "poly":
        return polynomial_kernel(degree)
    raise ConfigurationError(f"unknown kernel {spec!r}")
