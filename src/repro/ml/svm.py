"""From-scratch kernel SVM (the paper's IMU baseline).

Binary soft-margin SVMs are trained with a simplified SMO dual solver
(Platt, 1998); multi-class classification uses one-vs-rest with
softmax-calibrated decision values so the classifier emits the probability
distributions the ensemble combiner consumes.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.ml.kernels import Kernel, get_kernel


class BinarySVM:
    """Soft-margin kernel SVM for labels in {-1, +1}.

    Args:
        c: box constraint (regularization inverse).
        kernel: kernel name or callable.
        gamma: RBF width when ``kernel="rbf"``.
        tol: KKT violation tolerance.
        max_passes: SMO sweeps without progress before stopping.
        rng: randomness for SMO partner selection.
    """

    def __init__(self, c: float = 1.0, kernel: str | Kernel = "rbf", *,
                 gamma: float = 1.0, tol: float = 1e-3, max_passes: int = 5,
                 max_iterations: int = 200,
                 rng: np.random.Generator | None = None) -> None:
        if c <= 0:
            raise ConfigurationError(f"C must be positive, got {c}")
        self.c = float(c)
        self.kernel = get_kernel(kernel, gamma=gamma)
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.max_iterations = int(max_iterations)
        self.rng = rng or np.random.default_rng()
        self._alpha: np.ndarray | None = None
        self._bias = 0.0
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BinarySVM":
        """Train with simplified SMO; ``y`` must be in {-1, +1}."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ShapeError("binary SVM labels must be -1/+1")
        n = x.shape[0]
        gram = self.kernel(x, x)
        alpha = np.zeros(n)
        bias = 0.0
        passes = 0
        iterations = 0
        while passes < self.max_passes and iterations < self.max_iterations:
            changed = 0
            errors = (alpha * y) @ gram + bias - y
            for i in range(n):
                err_i = float((alpha * y) @ gram[:, i] + bias - y[i])
                if not ((y[i] * err_i < -self.tol and alpha[i] < self.c)
                        or (y[i] * err_i > self.tol and alpha[i] > 0)):
                    continue
                j = int(self.rng.integers(0, n - 1))
                if j >= i:
                    j += 1
                err_j = float((alpha * y) @ gram[:, j] + bias - y[j])
                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.c, self.c + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.c)
                    high = min(self.c, alpha[i] + alpha[j])
                if low >= high:
                    continue
                eta = 2.0 * gram[i, j] - gram[i, i] - gram[j, j]
                if eta >= 0:
                    continue
                alpha[j] -= y[j] * (err_i - err_j) / eta
                alpha[j] = float(np.clip(alpha[j], low, high))
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
                b1 = (bias - err_i
                      - y[i] * (alpha[i] - alpha_i_old) * gram[i, i]
                      - y[j] * (alpha[j] - alpha_j_old) * gram[i, j])
                b2 = (bias - err_j
                      - y[i] * (alpha[i] - alpha_i_old) * gram[i, j]
                      - y[j] * (alpha[j] - alpha_j_old) * gram[j, j])
                if 0 < alpha[i] < self.c:
                    bias = b1
                elif 0 < alpha[j] < self.c:
                    bias = b2
                else:
                    bias = (b1 + b2) / 2.0
                changed += 1
            passes = passes + 1 if changed == 0 else 0
            iterations += 1
        del errors
        support = alpha > 1e-8
        self._alpha = alpha[support]
        self._y = y[support]
        self._x = x[support]
        self._bias = float(bias)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed margin for each row of ``x``."""
        if self._alpha is None:
            raise NotFittedError("BinarySVM used before fit()")
        if self._alpha.size == 0:
            return np.full(np.asarray(x).shape[0], self._bias)
        gram = self.kernel(np.asarray(x, dtype=np.float64), self._x)
        return gram @ (self._alpha * self._y) + self._bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions in {-1, +1}."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)

    @property
    def num_support_vectors(self) -> int:
        """Support-vector count after training."""
        if self._alpha is None:
            raise NotFittedError("BinarySVM used before fit()")
        return int(self._alpha.size)


class MultiClassSVM:
    """One-vs-rest kernel SVM with softmax-calibrated probabilities.

    The paper combines "the CNN frame architecture with a support vector
    machine (SVM) trained to classify the IMU sequence data" (§5.2); the
    Bayesian-network combiner needs per-class probabilities, which we
    produce by a temperature-scaled softmax over the OvR decision values.
    """

    def __init__(self, c: float = 1.0, kernel: str | Kernel = "rbf", *,
                 gamma: float = 1.0, temperature: float = 1.0,
                 rng: np.random.Generator | None = None) -> None:
        self.c = c
        self.kernel_spec = kernel
        self.gamma = gamma
        self.temperature = float(temperature)
        self.rng = rng or np.random.default_rng()
        self._machines: list[BinarySVM] | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MultiClassSVM":
        """Train one binary machine per class."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        self._classes = np.unique(y)
        if self._classes.size < 2:
            raise ShapeError("need at least two classes")
        self._machines = []
        for class_value in self._classes:
            binary = np.where(y == class_value, 1.0, -1.0)
            machine = BinarySVM(self.c, self.kernel_spec, gamma=self.gamma,
                                rng=self.rng)
            machine.fit(x, binary)
            self._machines.append(machine)
        return self

    def decision_values(self, x: np.ndarray) -> np.ndarray:
        """(n, classes) matrix of OvR margins."""
        if self._machines is None:
            raise NotFittedError("MultiClassSVM used before fit()")
        return np.stack([m.decision_function(x) for m in self._machines],
                        axis=1)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax over decision values, indexed by position in ``classes_``."""
        values = self.decision_values(x) / max(self.temperature, 1e-9)
        values = values - values.max(axis=1, keepdims=True)
        exp = np.exp(values)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard predictions in the original label space."""
        if self._classes is None:
            raise NotFittedError("MultiClassSVM used before fit()")
        return self._classes[np.argmax(self.decision_values(x), axis=1)]

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy."""
        return float(np.mean(self.predict(x) == np.asarray(y)))

    @property
    def classes_(self) -> np.ndarray:
        """Class values in probability-column order."""
        if self._classes is None:
            raise NotFittedError("MultiClassSVM used before fit()")
        return self._classes
