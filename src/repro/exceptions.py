"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """An array argument had an incompatible shape."""


class NotFittedError(ReproError):
    """A model method requiring training was called before training."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid options."""


class SerializationError(ReproError):
    """Saving or loading model state failed."""


class ModelIntegrityError(SerializationError):
    """A stored model artifact does not match its manifest digest."""


class StreamingError(ReproError):
    """Base class for data-collection framework errors."""


class AgentError(StreamingError):
    """A collection agent failed to poll or transmit."""


class ControllerError(StreamingError):
    """The centralized controller received inconsistent input."""


class TransportError(StreamingError):
    """A simulated communication channel rejected a message."""


class ReliabilityError(StreamingError):
    """The reliable-transport layer could not honour a delivery guarantee."""


class HealthError(StreamingError):
    """Agent or sensor health supervision detected an unrecoverable fault."""


class ServingError(ReproError):
    """The inference-serving subsystem was asked for something impossible."""


class ShardUnavailableError(ServingError):
    """A serving shard is dead or unreachable (simulated connection refused)."""


class ShardTimeoutError(ServingError):
    """A serving shard accepted a call but never answered (hung executor)."""


class JournalError(ServingError):
    """The durable verdict journal is unusable (corrupt header, bad path)."""


class RingError(ServingError):
    """A shared-memory ring buffer was misused or sized inconsistently."""


class TornSlotError(RingError):
    """A ring slot's seqlock stamps disagree (writer died mid-publish)."""


class WorkerCrashError(ServingError):
    """A persistent inference worker died with requests in flight."""


class EdgeError(ReproError):
    """Base class for edge-agent runtime errors."""


class SpoolError(EdgeError):
    """The on-device store-and-forward spool is unusable."""


class OtaError(EdgeError):
    """An over-the-air model rollout step failed (bad manifest, bad bytes)."""
