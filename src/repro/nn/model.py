"""High-level training wrapper around a layer graph.

:class:`NeuralNetwork` couples a network (any :class:`Layer`, typically a
:class:`~repro.nn.layers.sequential.Sequential`) with a loss and optimizer
and provides the usual fit / predict / evaluate surface plus training
history, early stopping, gradient clipping, and LR scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.nn.layers.activations import softmax
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.metrics import accuracy
from repro.nn.optimizers import LearningRateSchedule, Optimizer
from repro.nn.runtime.mode import fast_path_enabled
from repro.nn.runtime.workspace import Workspace


@dataclass
class TrainingHistory:
    """Per-epoch training curves."""

    loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    learning_rate: list[float] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        return len(self.loss)


def iterate_minibatches(n: int, batch_size: int,
                        rng: np.random.Generator | None = None):
    """Yield index arrays covering ``range(n)`` in (optionally shuffled) batches."""
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]


class NeuralNetwork:
    """A network + loss + optimizer bundle with a standard training loop.

    Args:
        network: the layer graph.
        loss: training objective (defaults to softmax cross-entropy).
        optimizer_factory: called with the parameter list to build the
            optimizer, e.g. ``lambda p: Adam(p, 1e-3)``.  Deferred so the
            same spec can rebuild after weight surgery (fine-tuning).
        grad_clip: optional global-norm gradient clip (LSTMs need this).
    """

    def __init__(self, network: Layer, *, loss: Loss | None = None,
                 optimizer_factory: Callable[[list], Optimizer] | None = None,
                 grad_clip: float | None = None) -> None:
        self.network = network
        self.loss = loss or SoftmaxCrossEntropy()
        if optimizer_factory is None:
            raise ConfigurationError("optimizer_factory is required")
        self.optimizer = optimizer_factory(list(network.parameters()))
        self.grad_clip = grad_clip
        self.history = TrainingHistory()
        self.workspace = Workspace()
        self._fitted = False
        # Compiled execution plans, keyed by (backend name, input shape).
        # A None value caches a compile miss (unsupported layer) so the
        # walk runs once per shape, not once per batch.
        self._plans: dict = {}

    # -- training -----------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray, *, epochs: int = 10,
            batch_size: int = 32, rng: np.random.Generator | None = None,
            validation: tuple[np.ndarray, np.ndarray] | None = None,
            lr_schedule: LearningRateSchedule | None = None,
            early_stopping_patience: int | None = None,
            verbose: bool = False,
            target_transform: Callable[[np.ndarray], np.ndarray] | None = None,
            ) -> TrainingHistory:
        """Train for ``epochs`` passes over ``(x, y)``.

        ``target_transform`` maps raw targets to loss targets per batch
        (used by distillation, where targets are teacher outputs and the
        loss is MSE — in that case accuracy tracking is skipped).
        """
        x = np.asarray(x, dtype=np.float32)
        if x.shape[0] != np.asarray(y).shape[0]:
            raise ShapeError(
                f"x has {x.shape[0]} samples but y has {np.asarray(y).shape[0]}"
            )
        rng = rng or np.random.default_rng()
        classification = isinstance(self.loss, SoftmaxCrossEntropy)
        best_val = np.inf
        patience_left = early_stopping_patience
        for epoch in range(epochs):
            # Optimizer steps mutate weights in place; any plan compiled
            # during last epoch's validation pass is stale by now.
            self.invalidate_plans()
            self.network.set_training(True)
            epoch_loss = 0.0
            correct = 0
            seen = 0
            for batch in iterate_minibatches(x.shape[0], batch_size, rng):
                xb = x[batch]
                yb = np.asarray(y)[batch]
                if target_transform is not None:
                    yb = target_transform(yb)
                out = self.network.forward(xb)
                batch_loss = self.loss.forward(out, yb)
                self.optimizer.zero_grad()
                self.network.backward(self.loss.backward())
                if self.grad_clip is not None:
                    self.optimizer.clip_gradients(self.grad_clip)
                self.optimizer.step()
                epoch_loss += batch_loss * len(batch)
                seen += len(batch)
                if classification:
                    correct += int(np.sum(out.argmax(axis=1) == yb))
            self.history.loss.append(epoch_loss / max(seen, 1))
            self.history.learning_rate.append(self.optimizer.learning_rate)
            if classification:
                self.history.train_accuracy.append(correct / max(seen, 1))
            if validation is not None:
                val_loss, val_acc = self._validate(*validation)
                self.history.val_loss.append(val_loss)
                if val_acc is not None:
                    self.history.val_accuracy.append(val_acc)
                if early_stopping_patience is not None:
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        patience_left = early_stopping_patience
                    else:
                        patience_left -= 1
                        if patience_left <= 0:
                            break
            if lr_schedule is not None:
                lr_schedule.on_epoch_end()
            if verbose:
                msg = (f"epoch {epoch + 1}/{epochs} "
                       f"loss={self.history.loss[-1]:.4f}")
                if classification:
                    msg += f" acc={self.history.train_accuracy[-1]:.4f}"
                if validation is not None:
                    msg += f" val_loss={self.history.val_loss[-1]:.4f}"
                print(msg)
        self._fitted = True
        self.network.set_training(False)
        self.invalidate_plans()
        return self.history

    def _validate(self, x_val: np.ndarray, y_val: np.ndarray
                  ) -> tuple[float, float | None]:
        self.network.set_training(False)
        out = self.forward_in_batches(x_val)
        val_loss = self.loss.forward(out, y_val)
        val_acc = None
        if isinstance(self.loss, SoftmaxCrossEntropy):
            val_acc = accuracy(np.asarray(y_val), out.argmax(axis=1))
        return val_loss, val_acc

    # -- inference ----------------------------------------------------------
    def forward_in_batches(self, x: np.ndarray,
                           batch_size: int = 128) -> np.ndarray:
        """Run inference in memory-bounded batches, eval mode.

        Eval-mode layers take the workspace fast path: scratch buffers are
        reused across the chunks (every full chunk shares one arena entry;
        a ragged tail gets its own), and no backward caches are built.
        """
        x = np.asarray(x, dtype=np.float32)
        self.network.set_training(False)
        plan = self._compiled_plan(x.shape[1:])
        if plan is not None:
            chunks = [
                plan.run(np.ascontiguousarray(x[start:start + batch_size]))
                for start in range(0, x.shape[0], batch_size)
            ]
        else:
            self.network.set_workspace(self.workspace)
            chunks = [
                self.network.forward(x[start:start + batch_size])
                for start in range(0, x.shape[0], batch_size)
            ]
            self.workspace.publish_metrics()
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks, axis=0)

    def _compiled_plan(self, input_shape: tuple[int, ...]):
        """The active backend's plan for this input shape, if any.

        Returns None when the active backend is the interpreted fast
        path, when the fast path itself is disabled (reference mode needs
        the literal layer-by-layer arithmetic), or when compilation found
        an unsupported layer (the miss is cached per shape).
        """
        if not fast_path_enabled():
            return None
        from repro.nn.compile.backends import active_backend
        backend = active_backend()
        if not backend.compiles:
            return None
        key = (backend.name, tuple(input_shape))
        if key not in self._plans:
            self._plans[key] = backend.compile_model(self.network,
                                                     input_shape)
        return self._plans[key]

    def invalidate_plans(self) -> None:
        """Drop compiled plans after in-place weight mutation.

        Plans snapshot weights at compile time; callers that update
        parameters outside :meth:`fit` (weight surgery, manual loading)
        must invalidate before the next inference call.
        """
        self._plans.clear()

    def __getstate__(self) -> dict:
        # Plans hold weight snapshots and bound arenas — recompiled
        # lazily after unpickling (e.g. in forked executor workers).
        state = self.__dict__.copy()
        state["_plans"] = {}
        return state

    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Raw network outputs (pre-softmax)."""
        self._check_fitted()
        return self.forward_in_batches(x)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities via softmax over logits."""
        return softmax(self.predict_logits(x), axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.predict_logits(x).argmax(axis=1)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy on a labelled set."""
        return accuracy(np.asarray(y), self.predict(x))

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                "model has not been trained; call fit() or load weights first"
            )

    def mark_fitted(self) -> None:
        """Declare the model usable (after loading pretrained weights)."""
        self._fitted = True
