"""Per-channel symmetric int8 weight quantization for compiled plans.

The int8 plan variant stores GEMM weights as int8 plus one float32 scale
per output channel — "int8 at rest".  The arithmetic stays float32: the
dequantized kernel is materialized once per plan (not per call), so the
quantization *error* is baked into the weights while activations keep
full precision.  This composes with the dCNN privacy ladder, where lower
fidelity is already the contract — which is why the int8 plan is gated
on verdict-class agreement only, never on bitwise parity.
"""

from __future__ import annotations

import numpy as np


class PlanWeight:
    """A plan-owned GEMM kernel: a float32 snapshot or an int8 encoding."""

    def __init__(self, array: np.ndarray) -> None:
        self._float: np.ndarray | None = np.array(array, dtype=np.float32,
                                                  order="C")
        self.int8: np.ndarray | None = None
        self.scales: np.ndarray | None = None
        self.channel_axis: int | None = None

    @classmethod
    def quantized(cls, array: np.ndarray, *, channel_axis: int
                  ) -> "PlanWeight":
        """Encode per-channel symmetric int8 along ``channel_axis``."""
        array = np.asarray(array, dtype=np.float32)
        handle = cls.__new__(cls)
        reduce_axes = tuple(a for a in range(array.ndim)
                            if a != channel_axis)
        peak = np.abs(array).max(axis=reduce_axes)
        scales = np.where(peak > 0.0, peak / 127.0, 1.0).astype(np.float32)
        shape = [1] * array.ndim
        shape[channel_axis] = -1
        quant = np.clip(np.round(array / scales.reshape(shape)),
                        -127, 127).astype(np.int8)
        handle._float = None
        handle.int8 = quant
        handle.scales = scales
        handle.channel_axis = channel_axis
        return handle

    @property
    def is_quantized(self) -> bool:
        return self.int8 is not None

    def materialize(self) -> np.ndarray:
        """The float32 GEMM kernel (dequantized once, then cached)."""
        if self._float is None:
            shape = [1] * self.int8.ndim
            shape[self.channel_axis] = -1
            self._float = np.ascontiguousarray(
                self.int8.astype(np.float32)
                * self.scales.reshape(shape))
        return self._float

    @property
    def nbytes_at_rest(self) -> int:
        """Plan storage cost (int8 payload + scales, or the float copy)."""
        if self.is_quantized:
            return self.int8.nbytes + self.scales.nbytes
        return self._float.nbytes


def make_weight(array: np.ndarray, *, quantize: bool,
                channel_axis: int) -> PlanWeight:
    """A plan weight, int8-encoded when the plan requests quantization."""
    if quantize:
        return PlanWeight.quantized(array, channel_axis=channel_axis)
    return PlanWeight(array)
