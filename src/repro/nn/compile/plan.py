"""Execution-plan IR: slots, arena layout, and the bound-plan executor.

A compiled network is a flat list of ops over *slots*.  A slot is one
intermediate tensor with a fixed **per-sample** shape — the batch
dimension stays symbolic until :meth:`CompiledNetwork._bind` pins it.
Because every slot's size is linear in the batch, offsets are planned
once in per-sample float32 elements and simply scale by ``n`` at bind
time: two slots disjoint per sample are disjoint for every batch size.

Offsets come from a liveness-driven first-fit allocator, so slots whose
lifetimes do not overlap share arena memory (the compiled analogue of
the interpreter's :class:`~repro.nn.runtime.workspace.Workspace`, minus
the per-call ``(tag, shape, dtype)`` dict lookups — steady state, a plan
run performs **zero** buffer lookups; every op holds its views).

Binding a batch size allocates one arena, slices every slot's view, and
asks each op to close over its concrete arrays.  Bound plans are cached
per batch size (bounded LRU), so serving traffic with a stable
micro-batch size compiles and binds exactly once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ReproError
from repro.nn.runtime import profiling

#: Bound plans kept per compiled network (distinct batch sizes seen).
BOUND_CACHE_SIZE = 8


class UnsupportedLayerError(ReproError):
    """The graph compiler met a layer it has no lowering for.

    Backends catch this and fall back to the interpreted fast path — an
    uncompilable model must degrade, never crash serving.
    """


@dataclass
class Slot:
    """One planned intermediate tensor (per-sample shape, arena offset)."""

    index: int
    shape: tuple[int, ...]          # per-sample shape (no batch dim)
    first_use: int = -1             # op index of first read/write
    last_use: int = -1
    pinned: bool = False            # never share memory (pre-zeroed pads)
    offset: int = -1                # per-sample float32 element offset

    @property
    def elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1


class SlotRef:
    """A (slot, view-shape) pair — how ops address plan tensors.

    The view shape must hold the same number of per-sample elements as
    the slot; reshapes (Flatten, the LSTM's 2-D GEMM view) are free.
    """

    __slots__ = ("slot", "shape")

    def __init__(self, slot: int, shape: tuple[int, ...]) -> None:
        self.slot = slot
        self.shape = tuple(int(d) for d in shape)

    def __repr__(self) -> str:
        return f"SlotRef(slot={self.slot}, shape={self.shape})"


class InputHolder:
    """Mutable cell the bound plan reads the current input batch from."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: np.ndarray | None = None


class BindContext:
    """What ops see while closing over one batch size's arrays."""

    def __init__(self, n: int, views: list[np.ndarray | None],
                 holder: InputHolder) -> None:
        self.n = int(n)
        self._views = views
        self.holder = holder

    def view(self, ref: SlotRef) -> np.ndarray:
        """The bound array for a non-input slot, in the ref's view shape."""
        base = self._views[ref.slot]
        if base is None:
            raise ReproError("plan bug: op reads the raw input slot via "
                             "view(); use reader()")
        if base.shape[1:] == ref.shape:
            return base
        return base.reshape((self.n,) + ref.shape)

    def reader(self, ref: SlotRef):
        """A zero-arg callable yielding the ref's array at run time.

        Arena slots resolve to a fixed view at bind time; the network
        input slot resolves through the holder so ``run(x)`` never copies
        the input into the arena.
        """
        base = self._views[ref.slot]
        if base is None:
            holder = self.holder
            shape = (self.n,) + ref.shape
            return lambda: holder.value.reshape(shape)
        view = self.view(ref)
        return lambda: view

    def dest(self, ref: SlotRef, channels: tuple[int, int] | None
             ) -> np.ndarray:
        """The output view, optionally restricted to a channel range.

        Channel-sliced destinations are how branch-final ops write
        straight into their :class:`ParallelBranches` concat buffer.
        """
        out = self.view(ref)
        if channels is None:
            return out
        c0, c1 = channels
        return out[:, c0:c1]


class PlanOp:
    """One fused operation of the flat plan."""

    kind = "op"

    def __init__(self, *, layer: str, fused: tuple[str, ...] = ()) -> None:
        #: Primary source layer name — per-layer profiling attributes the
        #: whole fused op's time here.
        self.layer = layer
        #: Every source layer folded into this op (conv + bn + relu).
        self.fused = tuple(fused) or (layer,)
        self.index = -1

    def slot_refs(self) -> list[SlotRef]:
        """Every slot this op touches (reads, writes, scratch)."""
        raise NotImplementedError

    def bind(self, rt: BindContext):
        """Return the zero-arg run closure for one batch size."""
        raise NotImplementedError

    def describe(self) -> dict:
        return {"kind": self.kind, "layer": self.layer,
                "fused": list(self.fused)}


class PlanBuilder:
    """Accumulates slots and ops during the model walk."""

    def __init__(self, input_shape: tuple[int, ...]) -> None:
        self.slots: list[Slot] = [Slot(0, tuple(input_shape))]
        self.ops: list[PlanOp] = []

    def input_ref(self) -> SlotRef:
        return SlotRef(0, self.slots[0].shape)

    def new_slot(self, shape: tuple[int, ...], *,
                 pinned: bool = False) -> SlotRef:
        slot = Slot(len(self.slots), tuple(int(d) for d in shape),
                    pinned=pinned)
        self.slots.append(slot)
        return SlotRef(slot.index, slot.shape)

    def view(self, ref: SlotRef, shape: tuple[int, ...]) -> SlotRef:
        """A reshaped alias of an existing slot (no new storage)."""
        shape = tuple(int(d) for d in shape)
        if int(np.prod(shape)) != self.slots[ref.slot].elements:
            raise ReproError(
                f"plan bug: view {shape} does not cover slot "
                f"{self.slots[ref.slot].shape}")
        return SlotRef(ref.slot, shape)

    def emit(self, op: PlanOp) -> None:
        op.index = len(self.ops)
        self.ops.append(op)
        for ref in op.slot_refs():
            slot = self.slots[ref.slot]
            if slot.first_use < 0:
                slot.first_use = op.index
            slot.last_use = op.index

    def finish(self, output: SlotRef, *, label: str = "network"
               ) -> "CompiledNetwork":
        # The output must survive until run() copies it out.
        self.slots[output.slot].last_use = len(self.ops)
        per_sample = _assign_offsets(self.slots)
        return CompiledNetwork(label=label, ops=self.ops, slots=self.slots,
                               output=output, arena_per_sample=per_sample)


def _assign_offsets(slots: list[Slot]) -> int:
    """First-fit interval allocation over per-sample element offsets.

    Pinned slots get dedicated storage for the plan's whole lifetime
    (their pre-zeroed padding borders must survive arena reuse); every
    other slot may reuse the space of slots whose liveness has ended.
    Returns the arena size in per-sample float32 elements.
    """
    horizon = max((s.last_use for s in slots), default=0) + 1
    for slot in slots:
        if slot.pinned:
            slot.first_use, slot.last_use = 0, horizon
    live: list[Slot] = []     # allocated, sorted by offset
    top = 0
    order = sorted((s for s in slots if s.first_use >= 0),
                   key=lambda s: (s.first_use, -s.elements))
    for slot in order:
        live = [s for s in live if s.last_use >= slot.first_use]
        size = slot.elements
        cursor = 0
        for allocated in sorted(live, key=lambda s: s.offset):
            if allocated.offset - cursor >= size:
                break
            cursor = max(cursor, allocated.offset + allocated.elements)
        slot.offset = cursor
        top = max(top, cursor + size)
        live.append(slot)
    return top


@dataclass
class BoundPlan:
    """One batch size's executable form of the plan."""

    n: int
    holder: InputHolder
    funcs: list
    layers: list[str]
    output_view: np.ndarray
    arena: np.ndarray = field(repr=False, default=None)


class CompiledNetwork:
    """An immutable execution plan plus its per-batch-size bindings."""

    def __init__(self, *, label: str, ops: list[PlanOp], slots: list[Slot],
                 output: SlotRef, arena_per_sample: int) -> None:
        self.label = label
        self.ops = ops
        self.slots = slots
        self.output = output
        #: Arena size in float32 elements per batched sample.
        self.arena_per_sample = arena_per_sample
        self._bound: dict[int, BoundPlan] = {}

    # -- introspection ---------------------------------------------------
    def describe(self) -> list[dict]:
        """The flat op list with fused source-layer attribution."""
        return [op.describe() for op in self.ops]

    @property
    def slot_elements_total(self) -> int:
        """Sum of all live slots' sizes — the no-reuse arena baseline."""
        return sum(s.elements for s in self.slots[1:] if s.first_use >= 0)

    # -- execution -------------------------------------------------------
    def _bind(self, n: int) -> BoundPlan:
        arena = np.empty(self.arena_per_sample * n, dtype=np.float32)
        views: list[np.ndarray | None] = [None]  # slot 0 = network input
        for slot in self.slots[1:]:
            if slot.first_use < 0:
                views.append(None)
                continue
            lo = slot.offset * n
            views.append(arena[lo:lo + slot.elements * n]
                         .reshape((n,) + slot.shape))
            if slot.pinned:
                views[-1].fill(0.0)
        holder = InputHolder()
        rt = BindContext(n, views, holder)
        funcs = [op.bind(rt) for op in self.ops]
        return BoundPlan(n=n, holder=holder, funcs=funcs,
                         layers=[op.layer for op in self.ops],
                         output_view=rt.view(self.output), arena=arena)

    def bound_for(self, n: int) -> BoundPlan:
        bound = self._bound.get(n)
        if bound is None:
            bound = self._bind(n)
            if len(self._bound) >= BOUND_CACHE_SIZE:
                # Evict the least recently used batch size.
                self._bound.pop(next(iter(self._bound)))
            self._bound[n] = bound
        else:
            # Refresh LRU order.
            self._bound.pop(n)
            self._bound[n] = bound
        return bound

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on one batch; returns a fresh output array."""
        bound = self.bound_for(x.shape[0])
        bound.holder.value = x
        try:
            if profiling.should_sample():
                for fn, layer in zip(bound.funcs, bound.layers):
                    start = time.perf_counter()
                    fn()
                    profiling.layer_timer(layer).observe(
                        time.perf_counter() - start)
            else:
                for fn in bound.funcs:
                    fn()
            return bound.output_view.copy()
        finally:
            bound.holder.value = None
