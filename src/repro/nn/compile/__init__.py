"""Graph-compiled inference: execution plans, fused ops, backends.

See ``DESIGN.md`` §14 for the plan IR, fusion rules, and the
quantization contract.
"""

from repro.nn.compile.backends import (
    InferenceBackend,
    NumpyCompiledBackend,
    NumpyCompiledInt8Backend,
    NumpyFastBackend,
    active_backend,
    active_backend_name,
    backend_names,
    get_backend,
    register_backend,
    set_default_backend,
    using_backend,
)
from repro.nn.compile.extract import compile_network, infer_shape
from repro.nn.compile.plan import CompiledNetwork, UnsupportedLayerError
from repro.nn.compile.quantize import PlanWeight

__all__ = [
    "CompiledNetwork",
    "InferenceBackend",
    "NumpyCompiledBackend",
    "NumpyCompiledInt8Backend",
    "NumpyFastBackend",
    "PlanWeight",
    "UnsupportedLayerError",
    "active_backend",
    "active_backend_name",
    "backend_names",
    "compile_network",
    "get_backend",
    "infer_shape",
    "register_backend",
    "set_default_backend",
    "using_backend",
]
